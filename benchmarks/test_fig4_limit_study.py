"""Bench: regenerate Figure 4 (PPK vs Theoretically Optimal limit study).

Shape assertions: PPK matches TO on the regular benchmarks; TO never
loses performance; PPK falls measurably behind TO on energy or
performance for several irregular benchmarks.
"""

from conftest import run_once

from repro.experiments.fig4_limit_study import fig4
from repro.workloads.suites import benchmark as build_benchmark

REGULAR = ("mandelbulbGPU", "NBody", "lbm")


def test_fig4_limit_study(benchmark, ctx):
    table = run_once(benchmark, fig4, ctx)
    print()
    print(table.format())

    for name in REGULAR:
        row = table.row_for(name)
        ppk_e, to_e, ppk_s, to_s = row[1], row[2], row[3], row[4]
        assert abs(to_e - ppk_e) < 6.0
        assert abs(to_s - ppk_s) < 0.06

    # TO holds the baseline performance everywhere.
    assert all(s >= 0.995 for s in table.column("TO speedup"))

    # PPK visibly trails TO on several irregular benchmarks.
    trailing = [
        row[0]
        for row in table.rows
        if row[0] not in REGULAR
        and (row[2] - row[1] > 2.0 or row[4] - row[3] > 0.05)
    ]
    assert len(trailing) >= 4, f"PPK should trail TO; only {trailing}"
