"""Bench: ablations of the reproduction's design choices.

Shape assertions: the whole-window reserve is load-bearing for
performance on phase-structured benchmarks; CPU-phase hiding removes
essentially all wall-clock overhead; neither mechanism costs aggregate
performance when enabled.
"""

from conftest import run_once

from repro.experiments.ablation_design import (
    ablation_overhead_hiding,
    ablation_search_order,
    ablation_window_reserve,
    design_ablation_summary,
)


def test_ablation_window_reserve(benchmark, ctx):
    table = run_once(benchmark, ablation_window_reserve, ctx)
    print()
    print(table.format())
    summary = design_ablation_summary(ctx)
    print(f"summary: {summary}")
    # The reserve must not cost performance, and must help somewhere.
    assert summary["window_reserve_speedup_gain"] > 0.995
    reserve_col = table.column("Speedup (reserve)")
    plain_col = table.column("Speedup (per-kernel)")
    assert any(r > p + 0.01 for r, p in zip(reserve_col, plain_col))


def test_ablation_search_order(benchmark, ctx):
    table = run_once(benchmark, ablation_search_order, ctx)
    print()
    print(table.format())
    summary = design_ablation_summary(ctx)
    assert summary["search_order_speedup_gain"] > 0.99
    assert summary["search_order_energy_gain_pct"] > -2.0


def test_ablation_overhead_hiding(benchmark, ctx):
    table = run_once(benchmark, ablation_overhead_hiding, ctx)
    print()
    print(table.format())
    worst = table.column("Perf overhead, worst case (%)")
    hidden = table.column("Perf overhead, hidden (%)")
    # 2 ms CPU phases swallow the per-decision optimizer time entirely.
    assert all(h <= w + 1e-9 for h, w in zip(hidden, worst))
    assert max(hidden) < 0.05
