"""Shared fixtures for the reproduction benchmarks.

All benches share one engine-backed
:class:`~repro.experiments.common.ExperimentContext`, so each
(benchmark, policy) run — and the one-off Random Forest training —
happens once per session.  Both the trained forest and every policy run
are cached on disk under ``.cache/`` and reused across sessions: a warm
rerun of the bench suite replays runs from the engine cache instead of
re-simulating them.
"""

import pytest

from repro.engine import ExperimentEngine
from repro.experiments.common import ExperimentContext


@pytest.fixture(scope="session")
def engine():
    return ExperimentEngine(jobs=1, cache_dir=".cache")


@pytest.fixture(scope="session")
def ctx(engine):
    return ExperimentContext(cache_dir=".cache", engine=engine)


def run_once(benchmark, func, *args):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, rounds=1, iterations=1)
