"""Shared fixtures for the reproduction benchmarks.

All benches share one :class:`~repro.experiments.common.ExperimentContext`
so each (benchmark, policy) run — and the one-off Random Forest training
— happens once per session.  The trained forest is also cached on disk
under ``.cache/`` and reused across sessions.
"""

import pytest

from repro.experiments.common import ExperimentContext


@pytest.fixture(scope="session")
def ctx():
    return ExperimentContext(cache_dir=".cache")


def run_once(benchmark, func, *args):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, rounds=1, iterations=1)
