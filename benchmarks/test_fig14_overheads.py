"""Bench: regenerate Figure 14 (MPC energy/performance overheads).

Shape assertions: sub-percent average overheads, with the short-kernel
benchmarks (Spmv and the graph workloads) at the top end, and every
benchmark's performance overhead well under the alpha bound.
"""

from conftest import run_once

from repro.experiments.fig14_overheads import fig14, fig14_summary


def test_fig14_overheads(benchmark, ctx):
    table = run_once(benchmark, fig14, ctx)
    print()
    print(table.format())
    summary = fig14_summary(ctx)
    print(f"summary: {summary}")

    # Paper: average 0.15% energy / 0.3% performance overhead, max ~1.2%.
    assert summary["mean_energy_overhead_pct"] < 1.0
    assert summary["mean_perf_overhead_pct"] < 1.5
    assert summary["max_perf_overhead_pct"] < 5.0  # within alpha
