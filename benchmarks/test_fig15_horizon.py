"""Bench: regenerate Figure 15 (average adaptive horizon length).

Shape assertions: several benchmarks (the long-kernel regulars NBody,
lbm, EigenValue among them) afford the full horizon, while others
shrink theirs substantially to bound overhead — the generator is
genuinely adaptive, not a constant.
"""

from conftest import run_once

from repro.experiments.fig15_horizon import fig15, fig15_summary

FULL_HORIZON_EXPECTED = ("NBody", "lbm", "EigenValue", "mandelbulbGPU")


def test_fig15_horizon(benchmark, ctx):
    table = run_once(benchmark, fig15, ctx)
    print()
    print(table.format())
    summary = fig15_summary(ctx)

    # The long-kernel regular benchmarks can afford the full horizon.
    for name in FULL_HORIZON_EXPECTED:
        assert summary[name] > 80.0, f"{name} should run near-full horizons"

    # ... while others shrink substantially: the horizon is adaptive.
    shrunk = [name for name, pct in summary.items() if pct < 75.0]
    assert len(shrunk) >= 3, f"expected several shrunk horizons, got {shrunk}"
    assert min(summary.values()) < 40.0
