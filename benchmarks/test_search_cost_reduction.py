"""Bench: the Section IV-A search-cost claims.

Paper: greedy hill climbing cuts per-kernel energy evaluations from
``|cpu| x |nb| x |gpu| x |cu|`` (336) to ``|cpu| + |nb| + |gpu| + |cu|``
(a factor of ~19x) while "compromising optimality" only mildly.

Shape assertions: an order-of-magnitude fewer evaluations, with chosen
configurations within a few percent of the exhaustive optimum's energy,
across every unique kernel of the evaluation suite.
"""

from conftest import run_once

from repro.core.optimizer import GreedyHillClimbOptimizer
from repro.core.pattern import KernelRecord
from repro.core.tracker import PerformanceTracker
from repro.experiments.common import ExperimentTable
from repro.ml.predictors import OraclePredictor
from repro.workloads.counters import CounterSynthesizer


def _search_cost_table(ctx) -> ExperimentTable:
    synth = CounterSynthesizer(noise=0.0)
    table = ExperimentTable(
        experiment_id="Search cost (IV-A)",
        title="Greedy hill climbing vs exhaustive per-kernel search "
        "(oracle predictions, 1.5x-slack target)",
        headers=[
            "Benchmark",
            "Greedy evals/kernel",
            "Exhaustive evals/kernel",
            "Reduction (x)",
            "Greedy/optimal energy",
        ],
    )
    for name in ctx.benchmark_names:
        app = ctx.app(name)
        oracle = OraclePredictor(ctx.apu, app.unique_kernels)
        optimizer = GreedyHillClimbOptimizer(ctx.space, oracle)
        greedy_evals = exhaustive_evals = 0
        greedy_energy = optimal_energy = 0.0
        for spec in app.unique_kernels:
            counters = synth.nominal(spec)
            record = KernelRecord(
                signature=counters.signature(), counters=counters,
                instructions=spec.instructions,
            )
            baseline = ctx.apu.execute(spec, ctx.space.fastest()).time_s
            tracker = PerformanceTracker(spec.instructions / (1.5 * baseline))
            greedy = optimizer.optimize_kernel(record, tracker)
            exhaustive = optimizer.exhaustive_kernel_search(record, tracker)
            greedy_evals += greedy.evaluations
            exhaustive_evals += exhaustive.evaluations
            greedy_energy += ctx.apu.kernel_energy(spec, greedy.config)
            optimal_energy += ctx.apu.kernel_energy(spec, exhaustive.config)
        n = len(app.unique_kernels)
        table.add_row(
            name,
            round(greedy_evals / n, 1),
            round(exhaustive_evals / n, 1),
            round(exhaustive_evals / greedy_evals, 1),
            round(greedy_energy / optimal_energy, 4),
        )
    return table


def test_search_cost_reduction(benchmark, ctx):
    table = run_once(benchmark, _search_cost_table, ctx)
    print()
    print(table.format())
    reductions = table.column("Reduction (x)")
    ratios = table.column("Greedy/optimal energy")
    # Order-of-magnitude cheaper than exhaustive (paper: ~19x)...
    assert min(reductions) > 5.0
    assert sum(reductions) / len(reductions) > 8.0
    # ...while staying near the exhaustive optimum's energy.
    assert max(ratios) < 1.10
