"""Bench: regenerate Figure 9 (MPC relative to PPK).

Shape assertions: near-zero deltas on regular benchmarks; positive
aggregate speedup on the irregular ones (the paper's 9.6% / 6.6%
headline direction) without giving up energy in aggregate.
"""

from conftest import run_once

from repro.experiments.fig9_mpc_vs_ppk import fig9, fig9_summary

REGULAR = ("mandelbulbGPU", "NBody", "lbm")


def test_fig9_mpc_vs_ppk(benchmark, ctx):
    table = run_once(benchmark, fig9, ctx)
    print()
    print(table.format())
    summary = fig9_summary(ctx)
    print(f"summary: {summary}")

    for name in REGULAR:
        row = table.row_for(name)
        assert abs(row[1]) < 8.0
        assert abs(row[2] - 1.0) < 0.08

    assert summary["irregular_speedup"] > 1.0
    assert summary["speedup"] > 1.0
    assert summary["energy_savings_pct"] > -1.0
