"""Bench: regenerate Table I (DVFS state tables)."""

from conftest import run_once

from repro.experiments.tables import table1


def test_table1_dvfs_states(benchmark, ctx):
    table = run_once(benchmark, table1, ctx)
    print()
    print(table.format())
    assert len(table.rows) == 7 + 4 + 5
    assert table.row_for("CPU")[1] == "P1"
