"""Bench: regenerate Figure 10 (GPU-rail energy savings).

Shape assertions: lbm posts the largest MPC GPU savings (peak kernels);
the mean MPC GPU savings is positive; the chip-wide savings split is
CPU-dominated (the paper's 75%/25%).
"""

from conftest import run_once

from repro.experiments.fig10_gpu_energy import fig10, fig10_summary


def test_fig10_gpu_energy(benchmark, ctx):
    table = run_once(benchmark, fig10, ctx)
    print()
    print(table.format())
    summary = fig10_summary(ctx)
    print(f"summary: {summary}")

    mpc_by_name = dict(zip(table.column("Benchmark"),
                           table.column("MPC GPU energy savings (%)")))
    assert mpc_by_name["lbm"] == max(mpc_by_name.values())
    assert summary["mpc_gpu_energy_savings_pct"] > 3.0
    assert summary["cpu_share_of_savings_pct"] > 50.0
    assert summary["cpu_share_of_savings_pct"] + summary[
        "gpu_share_of_savings_pct"
    ] == __import__("pytest").approx(100.0)
