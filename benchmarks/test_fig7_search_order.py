"""Bench: regenerate Figure 7 (search-order worked example)."""

from conftest import run_once

from repro.experiments.fig7_search_order import fig7


def test_fig7_search_order(benchmark, ctx):
    table = run_once(benchmark, fig7, ctx)
    print()
    print(table.format())
    windows = dict(zip(table.column("Executing kernel"),
                       table.column("Optimization window (search order)")))
    # The paper's worked example, verbatim.
    assert windows[1] == "(3, 2, 1)"
    assert windows[2] == "(3, 2)"
    assert windows[3] == "(3)"
    assert windows[4] == "(6, 5, 4)"
    assert windows[5] == "(6, 5)"
    assert windows[6] == "(6)"
