"""Bench: regenerate Figure 3 (throughput phases of three benchmarks).

Shape assertions: Spmv steps from high to low throughput, kmeans from
low to high, and hybridsort bounces (non-monotone) across its kernels.
"""

from conftest import run_once

from repro.experiments.fig3_throughput import fig3, throughput_series


def test_fig3_throughput_phases(benchmark, ctx):
    table = run_once(benchmark, fig3, ctx)
    print()
    print(table.format())

    spmv = throughput_series(ctx, "Spmv")
    assert spmv[0] > 1.0 > spmv[-1]  # high -> low
    assert spmv[0] > 2.0 * spmv[-1]

    kmeans = throughput_series(ctx, "kmeans")
    assert kmeans[0] < 1.0 < kmeans[-1]  # low -> high

    hybridsort = throughput_series(ctx, "hybridsort")
    rises = sum(1 for a, b in zip(hybridsort, hybridsort[1:]) if b > a)
    falls = sum(1 for a, b in zip(hybridsort, hybridsort[1:]) if b < a)
    assert rises >= 3 and falls >= 3  # multiple phase transitions
