"""Bench: regenerate Figure 8 (PPK and MPC vs Turbo Core, RF predictions).

Shape assertions: substantial mean energy savings at a small mean
performance loss for MPC; MPC ~ PPK on regular benchmarks; MPC's
performance at least matches PPK's on the irregular ones in aggregate.
"""

from conftest import run_once

from repro.experiments.fig8_mpc_vs_turbo import fig8, fig8_summary

REGULAR = ("mandelbulbGPU", "NBody", "lbm")


def test_fig8_mpc_vs_turbo(benchmark, ctx):
    table = run_once(benchmark, fig8, ctx)
    print()
    print(table.format())
    summary = fig8_summary(ctx)
    print(f"summary: {summary}")

    # Paper: 24.8% energy savings at 1.8% performance loss.
    assert summary["mpc_energy_savings_pct"] > 15.0
    assert summary["mpc_speedup"] > 0.93

    for name in REGULAR:
        row = table.row_for(name)
        assert abs(row[2] - row[1]) < 8.0  # MPC ~ PPK energy on regulars
        assert abs(row[4] - row[3]) < 0.08

    # MPC is at least as fast as PPK in aggregate.
    assert summary["mpc_speedup"] >= summary["ppk_speedup"] - 1e-6
