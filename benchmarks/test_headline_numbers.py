"""Bench: the paper's headline aggregates (abstract / Section VI-A).

Paper: 24.8% energy savings at 1.8% performance loss vs Turbo Core;
6.6% energy savings and 9.6% speedup vs PPK; 75%/25% CPU/GPU split.
Shape assertions check signs and rough magnitudes, not exact values.
"""

from conftest import run_once

from repro.experiments.headline import headline_numbers, headline_table


def test_headline_numbers(benchmark, ctx):
    table = run_once(benchmark, headline_table, ctx)
    print()
    print(table.format())
    numbers = headline_numbers(ctx)

    # Large double-digit savings over Turbo Core at a small perf cost.
    assert numbers["mpc_vs_turbo_energy_savings_pct"] > 15.0
    assert numbers["mpc_vs_turbo_perf_loss_pct"] < 7.0

    # MPC wins performance vs PPK without losing energy in aggregate.
    assert numbers["mpc_vs_ppk_speedup_pct"] > 0.0
    assert numbers["mpc_vs_ppk_energy_savings_pct"] > -1.0

    # CPU-dominated savings split (paper: 75 / 25).
    assert numbers["cpu_share_of_savings_pct"] > 50.0
    assert numbers["gpu_share_of_savings_pct"] > 5.0
