"""Bench: regenerate Figure 2 (kernel scaling classes).

Shape assertions: compute scales ~4x with CUs and ignores NB; memory
saturates from NB2; the peak kernel is fastest below 8 CUs; the
unscalable kernel is nearly flat, with its energy optimum at the
smallest configuration.
"""

from conftest import run_once

from repro.experiments.fig2_scaling import fig2


def _grid(table, kernel_label):
    rows = [r for r in table.rows if r[0] == kernel_label]
    return {row[1]: row[2:6] for row in rows}  # NB state -> speedups by CU


def test_fig2_kernel_scaling(benchmark, ctx):
    table = run_once(benchmark, fig2, ctx)
    print()
    print(table.format())

    compute = _grid(table, "compute (MaxFlops)")
    assert compute["NB0"][-1] > 3.5  # ~4x CU scaling
    assert compute["NB0"] == compute["NB3"]  # NB-insensitive

    memory = _grid(table, "memory (readGlobalMemoryCoalesced)")
    assert memory["NB2"] == memory["NB0"]  # saturates from NB2
    assert memory["NB0"][-1] > 2.0 * memory["NB3"][-1]  # NB3 hurts
    assert memory["NB0"][-1] > 2.0  # CU scaling until the bus saturates

    peak = _grid(table, "peak (writeCandidates)")
    best_cu_index = max(range(4), key=lambda i: peak["NB0"][i])
    assert best_cu_index < 3  # fastest below 8 CUs

    unscalable = _grid(table, "unscalable (astar)")
    assert max(unscalable["NB0"]) < 1.5  # flat

    optimal = {row[0]: row[-1] for row in table.rows}
    assert "2 CUs" in optimal["unscalable (astar)"]
    assert "DPM0" in optimal["unscalable (astar)"]
    assert "NB3" in optimal["compute (MaxFlops)"]
