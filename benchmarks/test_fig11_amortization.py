"""Bench: regenerate Figure 11 (amortization of initial profiling losses).

Shape assertions: gains grow with re-executions; by ten re-executions
most of the steady-state gain is recovered; a single re-execution is
already non-negligible.
"""

from conftest import run_once

from repro.experiments.fig11_amortization import fig11, fig11_summary


def test_fig11_amortization(benchmark, ctx):
    table = run_once(benchmark, fig11, ctx)
    print()
    print(table.format())
    summary = fig11_summary(ctx)
    print(f"summary: {summary}")

    s1 = summary[1]["speedup"]
    s10 = summary[10]["speedup"]
    s100 = summary[100]["speedup"]
    assert s1 <= s10 + 1e-9 <= s100 + 2e-9  # monotone improvement

    e10 = summary[10]["energy_savings_pct"]
    e100 = summary[100]["energy_savings_pct"]
    # Most of the x100 gain is already there at x10 (paper: "most of
    # the full gains are observed after only ten re-executions").
    assert e10 > 0.7 * e100
