"""Bench: regenerate Table IV (the 15 evaluation benchmarks)."""

from conftest import run_once

from repro.experiments.tables import table4


def test_table4_benchmarks(benchmark, ctx):
    table = run_once(benchmark, table4, ctx)
    print()
    print(table.format())
    assert len(table.rows) == 15
    categories = set(table.column("Category"))
    assert len(categories) == 4
