"""Bench: regenerate Figure 12 (idealized MPC vs Theoretically Optimal).

Shape assertions: idealized MPC captures the large majority of TO's
energy savings (paper: 92%) and stays close on performance; regular
benchmarks are essentially tied.
"""

from conftest import run_once

from repro.experiments.fig12_theoretical_limit import fig12, fig12_summary

REGULAR = ("mandelbulbGPU", "NBody", "lbm")


def test_fig12_theoretical_limit(benchmark, ctx):
    table = run_once(benchmark, fig12, ctx)
    print()
    print(table.format())
    summary = fig12_summary(ctx)
    print(f"summary: {summary}")

    assert summary["energy_capture_ratio"] > 0.80
    assert summary["mpc_speedup"] > 0.90 * summary["to_speedup"]

    for name in REGULAR:
        row = table.row_for(name)
        assert abs(row[2] - row[1]) < 5.0
