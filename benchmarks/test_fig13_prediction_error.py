"""Bench: regenerate Figure 13 (sensitivity to prediction accuracy).

Shape assertions: results are only mildly sensitive to accuracy — the
RF-driven MPC lands within a few points of the synthetic-error models,
and the perfect model is best or tied on energy.
"""

from conftest import run_once

from repro.experiments.fig13_prediction_error import fig13, fig13_summary


def test_fig13_prediction_error(benchmark, ctx):
    table = run_once(benchmark, fig13, ctx)
    print()
    print(table.format())
    summary = fig13_summary(ctx)
    print(f"summary: {summary}")

    savings = {label: s["energy_savings_pct"] for label, s in summary.items()}
    speeds = {label: s["speedup"] for label, s in summary.items()}

    # Paper: "comparable energy savings with minor differences in
    # performance" — all variants within a few points of each other.
    assert max(savings.values()) - min(savings.values()) < 8.0
    assert max(speeds.values()) - min(speeds.values()) < 0.10

    # RF is in the same ballpark as the published-accuracy models.
    assert abs(savings["RF"] - savings["Err_15%_10%"]) < 6.0
