"""Bench: regenerate Table II (irregular execution patterns)."""

from conftest import run_once

from repro.experiments.tables import table2


def test_table2_patterns(benchmark, ctx):
    table = run_once(benchmark, table2, ctx)
    print()
    print(table.format())
    assert all(table.column("Match"))
