"""Bench: Section VI-E ablation — adaptive vs full horizon.

Shape assertion: once overheads are charged, the adaptive scheme must
dominate the full-horizon scheme on performance while keeping
comparable (or better) energy, concentrated on short-kernel apps.
"""

from conftest import run_once

from repro.experiments.ablation_horizon import ablation, ablation_summary


def test_ablation_full_horizon(benchmark, ctx):
    table = run_once(benchmark, ablation, ctx)
    print()
    print(table.format())
    summary = ablation_summary(ctx)
    print(f"summary: {summary}")

    assert summary["adaptive_speedup"] >= summary["full_speedup"] - 1e-6
    # The energy gap stays small: the paper's full-horizon bonus is
    # only ~2.6% before overheads and negative after.
    assert summary["adaptive_energy_savings_pct"] > summary["full_energy_savings_pct"] - 4.0
