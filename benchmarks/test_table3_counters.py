"""Bench: regenerate Table III (selected GPU performance counters)."""

from conftest import run_once

from repro.experiments.tables import table3


def test_table3_counters(benchmark, ctx):
    table = run_once(benchmark, table3, ctx)
    print()
    print(table.format())
    assert table.column("Name") == [
        "GlobalWorkSize", "MemUnitStalled", "CacheHit", "VFetchInsts",
        "ScratchRegs", "LDSBankConflict", "VALUInsts", "FetchSize",
    ]
