"""Fuzzing the simulator with adversarial policies.

Whatever configurations a (buggy or malicious) policy returns, the
simulator's accounting invariants must hold: positive energies, time
conservation, consistent aggregates.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.config import ConfigSpace
from repro.sim.policy import Decision, PowerPolicy
from repro.sim.simulator import Simulator
from repro.workloads.app import Application, Category
from repro.workloads.kernel import KernelSpec, ScalingClass

SPACE = ConfigSpace()
CONFIGS = SPACE.all_configs()
SIM = Simulator()

KERNELS = [
    KernelSpec("f1", ScalingClass.COMPUTE, 2.0, 0.1, parallel_fraction=0.98),
    KernelSpec("f2", ScalingClass.MEMORY, 0.4, 0.7, parallel_fraction=0.9),
    KernelSpec("f3", ScalingClass.UNSCALABLE, 0.2, 0.05, serial_time_s=0.005,
               parallel_fraction=0.7),
]


class _ScriptedPolicy(PowerPolicy):
    """Plays an arbitrary script of (config index, evaluation count)."""

    name = "fuzz"

    def __init__(self, script):
        self.script = script

    def decide(self, index):
        config_index, evals = self.script[index % len(self.script)]
        return Decision(config=CONFIGS[config_index], model_evaluations=evals)

    def observe(self, observation):
        pass


app_st = st.lists(st.integers(0, len(KERNELS) - 1), min_size=1, max_size=8).map(
    lambda picks: Application(
        "fuzz", "test", Category.IRREGULAR_NON_REPEATING,
        kernels=tuple(KERNELS[p] for p in picks), pattern="",
    )
)

script_st = st.lists(
    st.tuples(st.integers(0, len(CONFIGS) - 1), st.integers(0, 500)),
    min_size=1, max_size=8,
)


@settings(max_examples=40, deadline=None)
@given(app_st, script_st)
def test_accounting_invariants(app, script):
    run = SIM.run(app, _ScriptedPolicy(script))
    assert len(run) == len(app)
    assert run.kernel_time_s > 0
    assert run.total_time_s >= run.kernel_time_s
    assert run.energy_j > 0
    assert run.gpu_energy_j > 0 and run.cpu_energy_j > 0
    assert run.instructions == sum(k.instructions for k in app.kernels)
    # Aggregates decompose over launches exactly.
    assert abs(run.kernel_time_s - sum(r.time_s for r in run.launches)) < 1e-12
    assert run.overhead_energy_j >= 0.0


@settings(max_examples=40, deadline=None)
@given(app_st, script_st)
def test_overhead_free_mode_strips_all_overheads(app, script):
    run = SIM.run(app, _ScriptedPolicy(script), charge_overhead=False)
    assert run.overhead_time_s == 0.0
    assert run.overhead_energy_j == 0.0


@settings(max_examples=30, deadline=None)
@given(app_st, script_st)
def test_runs_are_reproducible(app, script):
    a = SIM.run(app, _ScriptedPolicy(script))
    b = SIM.run(app, _ScriptedPolicy(script))
    assert a.energy_j == b.energy_j
    assert a.total_time_s == b.total_time_s
