"""Property-based tests for the search-order heuristic."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.search_order import build_search_order

profile_st = st.lists(
    st.tuples(st.floats(0.05, 10.0), st.floats(1e-3, 5.0)), min_size=1, max_size=30
)


def _order_from(profile, target=1.0):
    throughputs = [thr for thr, _ in profile]
    cumulative = []
    insts = elapsed = 0.0
    for thr, time_s in profile:
        insts += thr * time_s
        elapsed += time_s
        cumulative.append(insts / elapsed)
    return build_search_order(throughputs, cumulative, target), throughputs, cumulative


@given(profile_st)
def test_order_is_permutation(profile):
    order, _, _ = _order_from(profile)
    assert sorted(order.order) == list(range(len(profile)))


@given(profile_st)
def test_groups_partition_positions(profile):
    order, _, cumulative = _order_from(profile)
    above = order.above_target
    for i, cum in enumerate(cumulative):
        assert (i in above) == (cum >= 1.0)


@given(profile_st)
def test_above_group_ascending_below_descending(profile):
    order, throughputs, _ = _order_from(profile)
    above = [p for p in order.order if p in order.above_target]
    below = [p for p in order.order if p not in order.above_target]
    above_thr = [throughputs[p] for p in above]
    below_thr = [throughputs[p] for p in below]
    assert above_thr == sorted(above_thr)
    assert below_thr == sorted(below_thr, reverse=True)


@given(profile_st)
def test_above_group_comes_first(profile):
    order, _, _ = _order_from(profile)
    seen_below = False
    for position in order.order:
        if position in order.above_target:
            assert not seen_below
        else:
            seen_below = True


@given(profile_st)
def test_every_window_ends_with_current(profile):
    order, _, _ = _order_from(profile)
    for i in range(len(order)):
        for horizon in (1, 2, len(order)):
            window = order.window(i, horizon)
            assert window[-1] == i
            assert all(i <= p < i + horizon for p in window)


@given(profile_st)
def test_window_positions_follow_search_order(profile):
    order, _, _ = _order_from(profile)
    rank = {p: r for r, p in enumerate(order.order)}
    for i in range(len(order)):
        window = order.window(i)
        ranks = [rank[p] for p in window]
        assert ranks == sorted(ranks)


@given(profile_st)
def test_mean_prefix_length_bounds(profile):
    order, _, _ = _order_from(profile)
    assert 1.0 <= order.mean_prefix_length() <= len(profile)
