"""Property-based tests for counter synthesis and signatures."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.counters import CounterSynthesizer, CounterVector
from repro.workloads.kernel import KernelSpec, ScalingClass

SYNTH = CounterSynthesizer(noise=0.0)

kernel_st = st.builds(
    KernelSpec,
    name=st.just("prop"),
    scaling_class=st.sampled_from(ScalingClass),
    compute_work=st.floats(0.05, 30.0),
    memory_traffic=st.floats(0.01, 3.0),
    parallel_fraction=st.floats(0.5, 0.999),
    serial_time_s=st.floats(0.0, 0.05),
    cache_interference=st.floats(0.0, 0.6),
    compute_efficiency=st.floats(0.5, 1.0),
)


@settings(max_examples=60)
@given(kernel_st)
def test_counters_are_finite_and_nonnegative(spec):
    values = SYNTH.nominal(spec).as_array()
    assert np.all(np.isfinite(values))
    assert np.all(values >= 0.0)


@settings(max_examples=60)
@given(kernel_st)
def test_percent_counters_bounded(spec):
    counters = SYNTH.nominal(spec)
    for value in (counters.mem_unit_stalled, counters.cache_hit,
                  counters.lds_bank_conflict):
        assert 0.0 <= value <= 100.0


@settings(max_examples=60)
@given(kernel_st)
def test_nominal_is_deterministic(spec):
    a = SYNTH.nominal(spec).as_array()
    b = SYNTH.nominal(spec).as_array()
    assert np.array_equal(a, b)


@settings(max_examples=60)
@given(kernel_st)
def test_work_identities(spec):
    counters = SYNTH.nominal(spec)
    # VALU insts per item times items recovers the compute work.
    recovered = counters.valu_insts * counters.global_work_size
    assert recovered == __import__("pytest").approx(spec.compute_work * 1e9, rel=1e-6)
    # FetchSize (kB) recovers the memory traffic (GB).
    assert counters.fetch_size == __import__("pytest").approx(
        spec.memory_traffic * 1e6, rel=1e-6
    )


@settings(max_examples=60)
@given(kernel_st, st.floats(1.0, 1.04))
def test_signature_stable_under_small_perturbation_mostly(spec, factor):
    """Log-binning tolerates small counter drift for most values."""
    base = SYNTH.nominal(spec)
    perturbed = CounterVector.from_array(base.as_array() * factor)
    matches = sum(
        1 for a, b in zip(base.signature(), perturbed.signature()) if a == b
    )
    # At most a few bins may flip: counters sitting just below a bin
    # boundary can all be pushed over by the same multiplicative drift.
    assert matches >= 5


@settings(max_examples=40)
@given(kernel_st, st.integers(0, 50))
def test_observation_reproducible(spec, sequence):
    noisy = CounterSynthesizer(noise=0.05, seed=11)
    a = noisy.observe(spec, sequence=sequence).as_array()
    b = noisy.observe(spec, sequence=sequence).as_array()
    assert np.array_equal(a, b)
