"""Property-based tests for the Theoretically Optimal solver."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.oracle import solve_theoretically_optimal
from repro.hardware.apu import APUModel
from repro.hardware.config import ConfigSpace
from repro.workloads.app import Application, Category
from repro.workloads.kernel import KernelSpec, ScalingClass

APU = APUModel()
SMALL_SPACE = ConfigSpace(
    cpu_states=("P7", "P1"), nb_states=("NB3", "NB0"),
    gpu_states=("DPM0", "DPM4"), cu_counts=(2, 8),
)

kernel_st = st.builds(
    KernelSpec,
    name=st.sampled_from(["a", "b", "c"]),
    scaling_class=st.sampled_from(ScalingClass),
    compute_work=st.floats(0.2, 10.0),
    memory_traffic=st.floats(0.05, 1.5),
    parallel_fraction=st.floats(0.6, 0.99),
    serial_time_s=st.floats(0.0, 0.02),
    compute_efficiency=st.floats(0.6, 0.95),
)

def _make_app(kernels) -> Application:
    # Distinct parameter draws must get distinct identities (launches
    # of literally the same spec may still repeat).
    tagged = []
    seen = {}
    for spec in kernels:
        if spec.key in seen and seen[spec.key] != spec:
            spec = spec.with_input(len(tagged) + 1)
        seen[spec.key] = spec
        tagged.append(spec)
    return Application(
        "prop", "test", Category.IRREGULAR_NON_REPEATING,
        kernels=tuple(tagged), pattern="",
    )


app_st = st.lists(kernel_st, min_size=1, max_size=5).map(_make_app)

slack_st = st.floats(1.0, 2.5)


def _target(app, slack):
    fastest = SMALL_SPACE.fastest()
    baseline = sum(APU.execute(k, fastest).time_s for k in app.kernels)
    return app.total_instructions / (slack * baseline)


@settings(max_examples=25, deadline=None)
@given(app_st, slack_st)
def test_plan_is_always_feasible_for_achievable_targets(app, slack):
    plan = solve_theoretically_optimal(app, APU, _target(app, slack), SMALL_SPACE)
    assert plan.feasible
    assert len(plan.configs) == len(app)


@settings(max_examples=25, deadline=None)
@given(app_st, slack_st)
def test_plan_never_beaten_by_uniform_configs(app, slack):
    """No single fixed configuration beats the plan's energy (feasibly)."""
    target = _target(app, slack)
    plan = solve_theoretically_optimal(app, APU, target, SMALL_SPACE)
    budget = app.total_instructions / target
    for config in SMALL_SPACE:
        time_s = sum(APU.execute(k, config).time_s for k in app.kernels)
        if time_s > budget:
            continue
        energy = sum(APU.execute(k, config).energy_j for k in app.kernels)
        assert plan.total_energy_j <= energy * (1 + 1e-9)


@settings(max_examples=20, deadline=None)
@given(app_st)
def test_looser_budget_never_costs_energy(app):
    tight = solve_theoretically_optimal(app, APU, _target(app, 1.1), SMALL_SPACE)
    loose = solve_theoretically_optimal(app, APU, _target(app, 2.0), SMALL_SPACE)
    assert loose.total_energy_j <= tight.total_energy_j * (1 + 1e-9)


@settings(max_examples=25, deadline=None)
@given(app_st, slack_st)
def test_identical_launches_share_configs(app, slack):
    plan = solve_theoretically_optimal(app, APU, _target(app, slack), SMALL_SPACE)
    chosen = {}
    for spec, config in zip(app.kernels, plan.configs):
        assert chosen.setdefault(spec.key, config) == config
