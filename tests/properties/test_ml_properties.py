"""Property-based tests for the ML substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.pattern import detect_period
from repro.ml.tree import DecisionTreeRegressor

dataset_st = st.integers(10, 120).flatmap(
    lambda n: st.tuples(
        arrays(np.float64, (n, 3), elements=st.floats(-10, 10)),
        arrays(np.float64, (n,), elements=st.floats(-100, 100)),
    )
)


@settings(max_examples=40, deadline=None)
@given(dataset_st)
def test_tree_predictions_within_target_range(data):
    X, y = data
    tree = DecisionTreeRegressor(max_depth=6).fit(X, y)
    preds = tree.predict(X)
    assert np.all(preds >= y.min() - 1e-9)
    assert np.all(preds <= y.max() + 1e-9)


@settings(max_examples=40, deadline=None)
@given(dataset_st)
def test_tree_fit_predict_deterministic(data):
    X, y = data
    rng_a = np.random.default_rng(0)
    rng_b = np.random.default_rng(0)
    a = DecisionTreeRegressor(max_depth=5, rng=rng_a).fit(X, y).predict(X)
    b = DecisionTreeRegressor(max_depth=5, rng=rng_b).fit(X, y).predict(X)
    assert np.allclose(a, b)


@settings(max_examples=40, deadline=None)
@given(dataset_st, st.integers(1, 4))
def test_tree_depth_never_exceeds_limit(data, depth):
    X, y = data
    tree = DecisionTreeRegressor(max_depth=depth).fit(X, y)
    assert tree.depth <= depth


period_st = st.tuples(
    st.lists(st.sampled_from("abc"), min_size=1, max_size=4),
    st.integers(2, 5),
)


@given(period_st)
def test_detect_period_finds_constructed_period(case):
    motif, repeats = case
    sequence = motif * repeats
    period = detect_period(sequence, min_repeats=2)
    assert period is not None
    # The detected period must actually tile the tail of the sequence,
    # and be no longer than the constructed motif.
    assert period <= len(motif)
    tail = sequence[-period:]
    assert sequence[-2 * period:-period] == tail


@given(st.lists(st.sampled_from("abcdef"), min_size=0, max_size=12))
def test_detect_period_consistency(sequence):
    period = detect_period(sequence)
    if period is not None:
        assert 1 <= period <= len(sequence) // 2
        assert sequence[-period:] == sequence[-2 * period:-period]
