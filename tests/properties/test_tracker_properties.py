"""Property-based tests for the performance tracker's headroom algebra."""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.tracker import PerformanceTracker

updates_st = st.lists(
    st.tuples(st.floats(1.0, 1e9), st.floats(1e-6, 10.0)), min_size=0, max_size=20
)
target_st = st.floats(1.0, 1e9)
expected_st = st.floats(0.0, 1e9)


def _tracker(target, updates):
    tracker = PerformanceTracker(target)
    for insts, time_s in updates:
        tracker.update(insts, time_s)
    return tracker


@given(target_st, updates_st, expected_st)
def test_headroom_definition(target, updates, expected):
    tracker = _tracker(target, updates)
    headroom = tracker.headroom_s(expected)
    lhs = (tracker.instructions + expected) / target - tracker.time_s
    assert abs(headroom - lhs) < 1e-6 * max(1.0, abs(lhs))


@given(target_st, updates_st, expected_st)
def test_admits_at_headroom_boundary(target, updates, expected):
    tracker = _tracker(target, updates)
    headroom = tracker.headroom_s(expected)
    assume(headroom > 1e-9)
    assert tracker.admits(expected, headroom * 0.999)
    assert not tracker.admits(expected, headroom * 1.001 + 1e-9)


@given(target_st, updates_st, expected_st)
def test_running_exactly_at_headroom_meets_target(target, updates, expected):
    tracker = _tracker(target, updates)
    headroom = tracker.headroom_s(expected)
    assume(headroom > 1e-9)
    tracker.update(expected, headroom)
    assert tracker.throughput >= target * (1 - 1e-9)


@given(target_st, updates_st)
def test_copy_equivalence(target, updates):
    tracker = _tracker(target, updates)
    clone = tracker.copy()
    assert clone.instructions == tracker.instructions
    assert clone.time_s == tracker.time_s
    clone.update(1.0, 1.0)
    assert clone.instructions != tracker.instructions


@given(target_st, updates_st)
def test_above_target_matches_throughput(target, updates):
    tracker = _tracker(target, updates)
    assert tracker.above_target() == (tracker.throughput >= target)
