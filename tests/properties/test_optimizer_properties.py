"""Property-based tests for the greedy hill-climbing optimizer."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.optimizer import GreedyHillClimbOptimizer
from repro.core.pattern import KernelRecord
from repro.core.tracker import PerformanceTracker
from repro.hardware.apu import APUModel
from repro.hardware.config import ConfigSpace
from repro.ml.predictors import OraclePredictor
from repro.workloads.counters import CounterSynthesizer
from repro.workloads.kernel import KernelSpec, ScalingClass

APU = APUModel()
SPACE = ConfigSpace()
SYNTH = CounterSynthesizer(noise=0.0)

kernel_st = st.builds(
    KernelSpec,
    name=st.just("prop"),
    scaling_class=st.sampled_from(ScalingClass),
    compute_work=st.floats(0.2, 20.0),
    memory_traffic=st.floats(0.02, 2.0),
    parallel_fraction=st.floats(0.6, 0.995),
    serial_time_s=st.floats(0.0, 0.02),
    compute_efficiency=st.floats(0.6, 0.95),
)

#: Slack factor: how much slower than the fastest config the target allows.
slack_st = st.floats(1.0, 3.0)


def _setup(spec, slack):
    oracle = OraclePredictor(APU, [spec])
    optimizer = GreedyHillClimbOptimizer(SPACE, oracle)
    counters = SYNTH.nominal(spec)
    record = KernelRecord(
        signature=counters.signature(), counters=counters,
        instructions=spec.instructions,
    )
    baseline = APU.execute(spec, SPACE.fastest()).time_s
    target = spec.instructions / (slack * baseline)
    return optimizer, record, PerformanceTracker(target)


@settings(max_examples=30, deadline=None)
@given(kernel_st, slack_st)
def test_result_config_always_in_space(spec, slack):
    optimizer, record, tracker = _setup(spec, slack)
    result = optimizer.optimize_kernel(record, tracker)
    assert result.config in SPACE


@settings(max_examples=30, deadline=None)
@given(kernel_st, slack_st)
def test_non_failsafe_results_meet_target(spec, slack):
    optimizer, record, tracker = _setup(spec, slack)
    result = optimizer.optimize_kernel(record, tracker)
    if not result.fail_safe:
        # With the oracle predictor the estimate is exact, so the true
        # execution must satisfy Equation 4's headroom.
        assert tracker.admits(record.instructions, result.estimate.time_s)
        truth = APU.execute(spec, result.config).time_s
        assert truth <= tracker.headroom_s(record.instructions) * (1 + 1e-9)


@settings(max_examples=30, deadline=None)
@given(kernel_st, slack_st)
def test_never_worse_than_failsafe_energy(spec, slack):
    optimizer, record, tracker = _setup(spec, slack)
    result = optimizer.optimize_kernel(record, tracker)
    failsafe_energy = APU.kernel_energy(spec, optimizer.fail_safe)
    chosen_energy = APU.kernel_energy(spec, result.config)
    assert chosen_energy <= failsafe_energy * (1 + 1e-9)


@settings(max_examples=30, deadline=None)
@given(kernel_st, slack_st)
def test_evaluation_budget(spec, slack):
    optimizer, record, tracker = _setup(spec, slack)
    result = optimizer.optimize_kernel(record, tracker)
    # 1 start + 8 sensitivity probes + at most every knob axis twice
    # per hill-climbing pass.
    budget = 9 + optimizer.max_passes * 2 * SPACE.knob_cardinality_sum()
    assert 0 < result.evaluations <= budget


@settings(max_examples=20, deadline=None)
@given(kernel_st)
def test_more_slack_never_costs_energy(spec):
    optimizer, record, tracker_tight = _setup(spec, 1.05)
    _, _, tracker_loose = _setup(spec, 2.5)
    tight = optimizer.optimize_kernel(record, tracker_tight)
    loose = optimizer.optimize_kernel(record, tracker_loose)
    tight_energy = APU.kernel_energy(spec, tight.config)
    loose_energy = APU.kernel_energy(spec, loose.config)
    assert loose_energy <= tight_energy * (1 + 1e-9)
