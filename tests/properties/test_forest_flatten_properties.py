"""Property tests: the flattened forest is float-identical to per-tree.

The flattening's contract is *exact* equality: the iterative vectorized
descent over concatenated node arrays must return the same float64
values as the historical per-tree loop (sequential accumulation in tree
order), because the golden-result suite pins simulation outputs
byte-for-byte.  The references here are reconstructed independently —
per-tree ``tree.predict`` calls and a pure-Python recursive descent of
the tree arrays — so a drift in either layout fails loudly.  Pickle
bytes are asserted invariant under prediction: flat arrays are derived
state and must never leak into serialized forests.
"""

import pickle

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.ml.forest import RandomForestRegressor

forest_params_st = st.tuples(
    st.integers(1, 6),  # n_estimators
    st.integers(1, 8),  # max_depth
    st.integers(1, 4),  # min_samples_leaf
    st.integers(0, 2**16),  # seed
)

dataset_st = st.integers(8, 60).flatmap(
    lambda n: st.tuples(
        arrays(np.float64, (n, 4), elements=st.floats(-50, 50)),
        arrays(np.float64, (n,), elements=st.floats(-100, 100)),
    )
)


def _fit(params, data):
    n_estimators, max_depth, min_samples_leaf, seed = params
    X, y = data
    forest = RandomForestRegressor(
        n_estimators=n_estimators,
        max_depth=max_depth,
        min_samples_leaf=min_samples_leaf,
        seed=seed,
    )
    return forest.fit(X, y), X


def _per_tree_reference(forest, X):
    """The historical predict: one tree.predict per tree, sequential sum."""
    acc = np.zeros(X.shape[0], dtype=float)
    for tree in forest.trees:
        acc += tree.predict(X)
    return acc / len(forest.trees)


def _recursive_reference(forest, X):
    """Pure-Python recursive descent of each tree's node arrays."""

    def descend(tree, node, x):
        feature = int(tree._feature[node])
        if feature < 0:
            return float(tree._value[node])
        if x[feature] <= tree._threshold[node]:
            return descend(tree, int(tree._left[node]), x)
        return descend(tree, int(tree._right[node]), x)

    acc = np.zeros(X.shape[0], dtype=float)
    for tree in forest.trees:
        acc += np.array([descend(tree, 0, x) for x in X])
    return acc / len(forest.trees)


@settings(max_examples=40, deadline=None)
@given(forest_params_st, dataset_st)
def test_flattened_predict_equals_per_tree_reference(params, data):
    forest, X = _fit(params, data)
    assert np.array_equal(forest.predict(X), _per_tree_reference(forest, X))


@settings(max_examples=15, deadline=None)
@given(forest_params_st, dataset_st)
def test_flattened_predict_equals_recursive_reference(params, data):
    forest, X = _fit(params, data)
    assert np.array_equal(forest.predict(X), _recursive_reference(forest, X))


@settings(max_examples=25, deadline=None)
@given(forest_params_st, dataset_st)
def test_unpickled_forest_predicts_identically(params, data):
    forest, X = _fit(params, data)
    clone = pickle.loads(pickle.dumps(forest))
    assert np.array_equal(clone.predict(X), forest.predict(X))


@settings(max_examples=25, deadline=None)
@given(forest_params_st, dataset_st)
def test_prediction_never_changes_pickle_bytes(params, data):
    # Flat arrays are derived state in a module-level weak-key memo:
    # predicting (which builds/uses them) must leave pickles untouched.
    forest, X = _fit(params, data)
    before = pickle.dumps(forest)
    forest.predict(X)
    assert pickle.dumps(forest) == before


@settings(max_examples=25, deadline=None)
@given(forest_params_st, dataset_st)
def test_legacy_unpickle_without_primed_arrays(params, data):
    # A pickle predates the flattening iff its trees carry node arrays
    # but no flat block was ever built; __setstate__ must prime it and
    # predict must match a freshly fitted twin exactly.
    forest, X = _fit(params, data)
    legacy = pickle.loads(pickle.dumps(forest))
    from repro.ml.forest import _FLAT_FORESTS

    _FLAT_FORESTS.pop(legacy, None)  # simulate a cold, legacy unpickle
    assert np.array_equal(legacy.predict(X), forest.predict(X))


@settings(max_examples=20, deadline=None)
@given(forest_params_st, dataset_st)
def test_refit_invalidates_stale_flat_arrays(params, data):
    forest, X = _fit(params, data)
    forest.predict(X)  # memoize the first flattening
    rng = np.random.default_rng(1234)
    y2 = rng.normal(size=X.shape[0])
    forest.fit(X, y2)  # refit in place: new node arrays
    assert np.array_equal(forest.predict(X), _per_tree_reference(forest, X))
