"""Property-based tests for the configuration space."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.config import KNOBS, ConfigSpace, HardwareConfig, Knob

SPACE = ConfigSpace()
CONFIGS = SPACE.all_configs()

config_st = st.sampled_from(CONFIGS)
knob_st = st.sampled_from(KNOBS)
direction_st = st.sampled_from([-1, 1])


@given(config_st, knob_st, direction_st)
def test_step_stays_in_space(config, knob, direction):
    stepped = SPACE.step(config, knob, direction)
    assert stepped is None or stepped in SPACE


@given(config_st, knob_st, direction_st)
def test_step_is_reversible(config, knob, direction):
    stepped = SPACE.step(config, knob, direction)
    if stepped is not None:
        back = SPACE.step(stepped, knob, -direction)
        assert back == config


@given(config_st, knob_st)
def test_step_changes_only_one_knob(config, knob):
    stepped = SPACE.step(config, knob, +1)
    if stepped is None:
        return
    for other in KNOBS:
        if other == knob:
            assert stepped.knob(other) != config.knob(other)
        else:
            assert stepped.knob(other) == config.knob(other)


@given(config_st)
def test_clamp_is_identity_on_members(config):
    assert SPACE.clamp(config) == config


@given(config_st)
def test_replace_roundtrip(config):
    rebuilt = HardwareConfig(
        cpu=config.cpu, nb=config.nb, gpu=config.gpu, cu=config.cu
    )
    assert rebuilt == config


@given(config_st)
def test_rail_voltage_at_least_gpu_voltage(config):
    assert config.rail_voltage >= config.gpu_state.voltage


@settings(max_examples=30)
@given(st.sampled_from([c for c in CONFIGS if c.gpu != "DPM4"]))
def test_clamp_snaps_into_reduced_space(config):
    reduced = ConfigSpace(gpu_states=("DPM4",))
    clamped = reduced.clamp(config)
    assert clamped in reduced
    # Non-GPU knobs are untouched.
    assert clamped.cpu == config.cpu and clamped.cu == config.cu
