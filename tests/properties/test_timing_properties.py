"""Property-based tests for the ground-truth timing and power models."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.apu import APUModel
from repro.hardware.config import ConfigSpace
from repro.workloads.kernel import KernelSpec, ScalingClass

APU = APUModel()
SPACE = ConfigSpace()
CONFIGS = SPACE.all_configs()

kernel_st = st.builds(
    KernelSpec,
    name=st.just("prop"),
    scaling_class=st.sampled_from(ScalingClass),
    compute_work=st.floats(0.05, 30.0),
    memory_traffic=st.floats(0.01, 3.0),
    parallel_fraction=st.floats(0.5, 0.999),
    serial_time_s=st.floats(0.0, 0.05),
    cache_interference=st.floats(0.0, 0.6),
    cache_sweet_spot_cu=st.sampled_from([2, 4, 6, 8]),
    compute_efficiency=st.floats(0.5, 1.0),
)

config_st = st.sampled_from(CONFIGS)


@settings(max_examples=60)
@given(kernel_st, config_st)
def test_measurements_are_physical(spec, config):
    m = APU.execute(spec, config)
    assert m.time_s > 0
    assert m.gpu_power_w > 0
    assert m.cpu_power_w > 0
    assert m.energy_j > 0
    assert m.temperature_c >= 45.0


@settings(max_examples=60)
@given(kernel_st, config_st)
def test_time_at_least_serial_floor(spec, config):
    assert APU.execute(spec, config).time_s >= spec.serial_time_s


@settings(max_examples=40)
@given(kernel_st)
def test_fastest_config_dominates_interference_free_kernels(spec):
    if spec.cache_interference > 0:
        return  # peak kernels may be faster below 8 CUs by design
    fastest = APU.execute(spec, SPACE.fastest()).time_s
    slowest = APU.execute(spec, SPACE.slowest()).time_s
    assert fastest <= slowest * (1 + 1e-9)


@settings(max_examples=40)
@given(kernel_st, config_st)
def test_gpu_frequency_monotonicity(spec, config):
    if spec.cache_interference > 0:
        return
    faster = SPACE.step(config, "gpu", +1)
    if faster is None:
        return
    assert APU.execute(spec, faster).time_s <= APU.execute(spec, config).time_s * (1 + 1e-9)


@settings(max_examples=40)
@given(kernel_st, config_st)
def test_cpu_state_never_affects_kernel_time(spec, config):
    other = config.replace(cpu="P1" if config.cpu != "P1" else "P7")
    a = APU.execute(spec, config).time_s
    b = APU.execute(spec, other).time_s
    assert abs(a - b) < 1e-12


@settings(max_examples=40)
@given(kernel_st, config_st)
def test_determinism(spec, config):
    assert APU.execute(spec, config) == APU.execute(spec, config)
