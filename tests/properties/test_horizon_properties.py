"""Property-based tests for the adaptive horizon generator."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.horizon import AdaptiveHorizonGenerator

params_st = st.fixed_dictionaries(
    {
        "num_kernels": st.integers(1, 40),
        "mean_prefix_length": st.floats(1.0, 20.0),
        "ppk_overhead_s": st.floats(1e-6, 0.01),
        "baseline_total_time_s": st.floats(0.05, 5.0),
        "alpha": st.floats(0.0, 0.3),
    }
)

history_st = st.lists(
    st.tuples(st.floats(1e-4, 0.2), st.floats(0.0, 1e-3)), max_size=20
)

index_st = st.integers(0, 60)


def _generator(params, history):
    gen = AdaptiveHorizonGenerator(**params)
    for kernel_time, overhead in history:
        gen.record(kernel_time, overhead)
    return gen


@given(params_st, history_st, index_st)
def test_horizon_always_within_bounds(params, history, index):
    gen = _generator(params, history)
    h = gen.horizon(index)
    assert 0 <= h <= params["num_kernels"]
    assert isinstance(h, int)


@given(params_st, history_st, index_st)
def test_more_elapsed_never_lengthens_horizon(params, history, index):
    lean = _generator(params, history)
    laden = _generator(params, history)
    laden.record(0.05, 0.001)
    assert laden.horizon(index) <= lean.horizon(index)


@given(params_st, history_st, index_st, st.floats(0.01, 0.3))
def test_larger_alpha_never_shortens_horizon(params, history, index, bump):
    small = _generator(params, history)
    big_params = dict(params)
    big_params["alpha"] = params["alpha"] + bump
    big = _generator(big_params, history)
    assert big.horizon(index) >= small.horizon(index)


@given(params_st, history_st, index_st)
def test_free_optimizer_gets_full_horizon(params, history, index):
    free_params = dict(params)
    free_params["ppk_overhead_s"] = 0.0
    gen = _generator(free_params, history)
    assert gen.horizon(index) == params["num_kernels"]


@given(params_st, history_st)
def test_reset_restores_fresh_horizons(params, history):
    gen = _generator(params, history)
    gen.reset()
    fresh = AdaptiveHorizonGenerator(**params)
    for i in (0, 1, 5):
        assert gen.horizon(i) == fresh.horizon(i)
