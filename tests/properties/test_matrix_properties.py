"""Property tests: the columnar decision core is float-identical to scalar.

The refactor's contract is *exact* equality, not tolerance: every row of
an ``estimate_matrix`` batch must carry the same float64 values the
pre-refactor scalar path computed, because the golden-result suite
pins simulation outputs byte-for-byte.  These tests compare against
independently reconstructed references (``build_features`` + per-row
forest calls, ``apu.execute``) rather than against the facades under
test, so a drift in either path fails loudly.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.apu import APUModel
from repro.hardware.config import KNOBS, ConfigSpace
from repro.hardware.table import ConfigTable
from repro.ml.dataset import build_features
from repro.ml.predictors import OraclePredictor, train_predictor
from repro.workloads.counters import CounterSynthesizer
from repro.workloads.kernel import KernelSpec, ScalingClass

APU = APUModel()
SPACE = ConfigSpace()
TABLE = ConfigTable(SPACE)
SYNTH = CounterSynthesizer(noise=0.0)

KERNELS = [
    KernelSpec("mat-a", ScalingClass.COMPUTE, 5.0, 0.1, parallel_fraction=0.99),
    KernelSpec("mat-b", ScalingClass.MEMORY, 0.5, 1.0, parallel_fraction=0.9),
]
COUNTERS = [SYNTH.nominal(spec) for spec in KERNELS]

# Small forests keep the module import cheap; exactness does not depend
# on model size.
RF = train_predictor(apu=APU, kernels=KERNELS, n_estimators=3, max_depth=5)
ORACLE = OraclePredictor(APU, KERNELS)

index_st = st.integers(0, len(TABLE) - 1)
kernel_st = st.integers(0, len(KERNELS) - 1)
knob_st = st.sampled_from(KNOBS)
direction_st = st.sampled_from([-1, 1])


def _rf_reference(counters, config):
    """The pre-refactor scalar Random Forest estimate, reconstructed."""
    features = build_features(counters, config).reshape(1, -1)
    time_s = float(np.exp(float(RF.time_forest.predict(features)[0])))
    gpu_power_w = max(0.1, float(RF.power_forest.predict(features)[0]))
    cpu_power_w = RF.cpu_model.predict(config)
    return time_s, gpu_power_w, cpu_power_w


@settings(max_examples=60, deadline=None)
@given(kernel_st, index_st)
def test_rf_matrix_row_equals_scalar_reference(k, i):
    counters = COUNTERS[k]
    batch = RF.estimate_matrix(counters, TABLE)
    time_s, gpu_power_w, cpu_power_w = _rf_reference(
        counters, TABLE.config_at(i)
    )
    assert float(batch.times_s[i]) == time_s
    assert float(batch.gpu_power_w[i]) == gpu_power_w
    assert float(batch.cpu_power_w[i]) == cpu_power_w
    assert float(batch.energy_j[i]) == (gpu_power_w + cpu_power_w) * time_s


@settings(max_examples=60, deadline=None)
@given(kernel_st, index_st)
def test_rf_scalar_facades_equal_matrix_rows(k, i):
    counters = COUNTERS[k]
    config = TABLE.config_at(i)
    row = RF.estimate_matrix(counters, TABLE).estimate(i)
    single = RF.estimate(counters, config)
    [batched] = RF.estimate_batch(counters, [config])
    subset = RF.estimate_matrix(
        counters, TABLE, np.asarray([i], dtype=np.intp)
    ).estimate(0)
    for other in (single, batched, subset):
        assert other.time_s == row.time_s
        assert other.gpu_power_w == row.gpu_power_w
        assert other.cpu_power_w == row.cpu_power_w
        assert other.energy_j == row.energy_j


@settings(max_examples=60, deadline=None)
@given(kernel_st, index_st)
def test_oracle_matrix_row_equals_scalar_estimate(k, i):
    counters = COUNTERS[k]
    config = TABLE.config_at(i)
    row = ORACLE.estimate_matrix(counters, TABLE).estimate(i)
    single = ORACLE.estimate(counters, config)
    assert single.time_s == row.time_s
    assert single.gpu_power_w == row.gpu_power_w
    assert single.cpu_power_w == row.cpu_power_w
    assert single.energy_j == row.energy_j


def test_oracle_matrix_matches_ground_truth_execution():
    spec, counters = KERNELS[0], COUNTERS[0]
    batch = ORACLE.estimate_matrix(counters, TABLE)
    for i in (0, len(TABLE) // 2, len(TABLE) - 1):
        truth = APU.execute(spec, TABLE.config_at(i))
        assert float(batch.times_s[i]) == pytest.approx(truth.time_s)
        assert float(batch.gpu_power_w[i]) == pytest.approx(truth.gpu_power_w)


def test_config_table_roundtrip_covers_full_lattice():
    assert TABLE.configs == tuple(SPACE.all_configs())
    for i, config in enumerate(TABLE.configs):
        assert TABLE.index_of_config(config) == i
        assert TABLE.config_at(i) == config


@given(index_st, knob_st, direction_st)
def test_step_index_matches_space_step(i, knob, direction):
    stepped = TABLE.step_index(i, knob, direction)
    expected = SPACE.step(TABLE.config_at(i), knob, direction)
    if expected is None:
        assert stepped is None
    else:
        assert stepped is not None
        assert TABLE.config_at(stepped) == expected


@given(index_st, knob_st)
def test_set_knob_changes_only_that_axis(i, knob):
    moved = TABLE.set_knob(i, knob, 0)
    before = TABLE.config_at(i)
    after = TABLE.config_at(moved)
    for other in KNOBS:
        if other == knob:
            assert after.knob(other) == SPACE.axis(knob)[0]
        else:
            assert after.knob(other) == before.knob(other)


# ----- stacked multi-counter sweeps ------------------------------------------


@settings(max_examples=30, deadline=None)
@given(st.lists(kernel_st, min_size=0, max_size=4))
def test_rf_estimate_matrix_many_equals_per_counter_sweeps(ks):
    # The stacked sweep feeds all counters through one forest call; its
    # per-counter slices must be float-identical to one-at-a-time
    # estimate_matrix sweeps (the batched step_batch contract).
    counters_list = [COUNTERS[k] for k in ks]
    stacked = RF.estimate_matrix_many(counters_list, TABLE)
    assert len(stacked) == len(counters_list)
    for counters, batch in zip(counters_list, stacked):
        single = RF.estimate_matrix(counters, TABLE)
        assert np.array_equal(batch.times_s, single.times_s)
        assert np.array_equal(batch.gpu_power_w, single.gpu_power_w)
        assert np.array_equal(batch.cpu_power_w, single.cpu_power_w)
        assert np.array_equal(batch.energy_j, single.energy_j)


@settings(max_examples=30, deadline=None)
@given(st.lists(kernel_st, min_size=1, max_size=3), st.lists(index_st, min_size=1, max_size=8))
def test_rf_estimate_matrix_many_with_indices(ks, idx):
    counters_list = [COUNTERS[k] for k in ks]
    indices = np.asarray(idx, dtype=np.intp)
    stacked = RF.estimate_matrix_many(counters_list, TABLE, indices)
    for counters, batch in zip(counters_list, stacked):
        single = RF.estimate_matrix(counters, TABLE, indices)
        assert np.array_equal(batch.times_s, single.times_s)
        assert np.array_equal(batch.energy_j, single.energy_j)


@settings(max_examples=20, deadline=None)
@given(st.lists(kernel_st, min_size=0, max_size=3))
def test_oracle_estimate_matrix_many_equals_per_counter_sweeps(ks):
    # The oracle inherits the generic loop default; same contract.
    counters_list = [COUNTERS[k] for k in ks]
    stacked = ORACLE.estimate_matrix_many(counters_list, TABLE)
    for counters, batch in zip(counters_list, stacked):
        single = ORACLE.estimate_matrix(counters, TABLE)
        assert np.array_equal(batch.times_s, single.times_s)
        assert np.array_equal(batch.energy_j, single.energy_j)
