"""Shared fixtures for the fleet-simulation test suite.

The differential tests reuse the adversarial scenario corpus (one
generated trace per family at the harness seed); the placement,
admission, and migration tests run hand-built schedules over the same
small kernel pair the runtime suite uses, so every test stays inside
tier-1-style time budgets.
"""

from typing import Dict, Sequence

import pytest

from repro.workloads.traces import (
    FAMILIES,
    PolicySpec,
    ScenarioGenerator,
    SessionSpec,
    Trace,
    TraceEvent,
    TraceHeader,
)

from tests.traces.conftest import COMPUTE, MEMORY, turbo_target

#: The seed the fleet differential harness runs at (matches the
#: differential suite and the checked-in golden traces).
SEED = 0


@pytest.fixture(scope="session")
def corpus():
    """Every adversarial family's trace at the harness seed."""
    generator = ScenarioGenerator(seed=SEED)
    return {family: generator.generate(family) for family in FAMILIES}


def build_schedule_trace(
    schedule: Sequence[str],
    *,
    name: str = "fleet-mini",
    policy_kind: str = "mpc",
    **header_kw,
) -> Trace:
    """A trace whose event order *is* ``schedule`` (one id per event).

    Each session's launches alternate the compute/memory pair with
    per-session sequential indices, so arrival order, interleaving,
    and departure points are exactly what the schedule spells out —
    the control the placement/admission/migration tests need.
    """
    counts: Dict[str, int] = {}
    events = []
    for sid in schedule:
        index = counts.get(sid, 0)
        spec = COMPUTE if index % 2 == 0 else MEMORY
        events.append(TraceEvent(index=index, session=sid, spec=spec))
        counts[sid] = index + 1
    policy = PolicySpec(kind=policy_kind, target_throughput=turbo_target())
    header = TraceHeader(
        name=name,
        source="test:fleet",
        sessions=tuple(
            SessionSpec(session_id=sid, app_name="alt", policy=policy)
            for sid in sorted(counts)
        ),
        **header_kw,
    )
    return Trace(header=header, events=tuple(events)).ensure_valid()
