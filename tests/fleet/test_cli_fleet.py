"""Tests for the ``repro fleet`` and ``repro bench fleet`` CLI surface."""

import json

import pytest

import repro.experiments.bench_fleet as bench_fleet
from repro.cli import main

from tests.fleet.conftest import build_schedule_trace

pytestmark = pytest.mark.fleet


@pytest.fixture(scope="module")
def trace_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("fleet-cli") / "mini.jsonl"
    build_schedule_trace(["a", "b"] * 4, name="fleet-cli").dump(str(path))
    return str(path)


def test_fleet_run_reports_placement_and_budgets(trace_file, capsys):
    code = main(
        ["fleet", "run", trace_file, "--nodes", "2", "--cap-w", "100",
         "--epoch-launches", "4"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "2 node(s) (inline), 100 W cap" in out
    assert "node-0: 1 session(s)" in out
    assert "node-1: 1 session(s)" in out
    assert "last epoch budgets" in out
    assert "aggregate:" in out


def test_fleet_run_writes_obs_artifacts(trace_file, tmp_path, capsys):
    spans = str(tmp_path / "spans.jsonl")
    metrics = str(tmp_path / "metrics.prom")
    code = main(
        ["fleet", "run", trace_file, "--nodes", "2", "--cap-w", "100",
         "--trace-out", spans, "--metrics-out", metrics]
    )
    assert code == 0
    lines = [json.loads(l) for l in open(spans, encoding="utf-8")]
    assert any(span["name"] == "epoch" for span in lines)
    prom = open(metrics, encoding="utf-8").read()
    assert "repro_fleet_epochs_total" in prom
    assert "repro_fleet_node_budget_watts" in prom


def test_fleet_run_missing_trace_exits_two(capsys):
    assert main(["fleet", "run", "no-such-trace.jsonl"]) == 2
    assert "no-such-trace.jsonl" in capsys.readouterr().err


def test_fleet_run_rejects_invalid_config(trace_file, capsys):
    code = main(["fleet", "run", trace_file, "--nodes", "0"])
    assert code == 2
    assert "repro fleet run:" in capsys.readouterr().err


def test_bench_fleet_quick_appends_trajectory(tmp_path, capsys, monkeypatch):
    monkeypatch.setattr(
        bench_fleet, "bench_trace",
        lambda seed=0, quick=False: build_schedule_trace(
            ["a", "b"] * 4, name="bench-mini"
        ),
    )
    monkeypatch.setattr(bench_fleet, "_QUICK_NODES", (1,))
    out = str(tmp_path / "BENCH_fleet.json")
    assert main(["bench", "fleet", "--quick", "-o", out]) == 0
    stdout = capsys.readouterr().out
    assert "== bench fleet (quick)" in stdout
    assert f"appended to {out}" in stdout
    payload = json.load(open(out, encoding="utf-8"))
    assert payload["schema"] == bench_fleet.SCHEMA
    (entry,) = payload["trajectory"]
    assert entry["cpu_count"] >= 1
    assert {p["cap"] for p in entry["grid"]} == {"tight", "loose"}
    assert all(p["budget_conserved"] for p in entry["grid"])
    # A second run appends rather than overwrites.
    assert main(["bench", "fleet", "--quick", "-o", out, "-l", "again"]) == 0
    trajectory = json.load(open(out, encoding="utf-8"))["trajectory"]
    assert [e["label"] for e in trajectory] == ["quick", "again"]


def test_bench_fleet_enforces_min_speedup(tmp_path, capsys, monkeypatch):
    monkeypatch.setattr(
        bench_fleet, "bench_trace",
        lambda seed=0, quick=False: build_schedule_trace(
            ["a", "b"] * 4, name="bench-mini"
        ),
    )
    monkeypatch.setattr(bench_fleet, "_QUICK_NODES", (1,))
    out = str(tmp_path / "BENCH_fleet.json")
    # With no 4-node grid point the speedup is unmeasured, which must
    # fail the bound rather than silently pass.
    code = main(
        ["bench", "fleet", "--quick", "-o", out, "--min-speedup", "2.0"]
    )
    assert code == 1
    assert "below the required 2.0x" in capsys.readouterr().err
