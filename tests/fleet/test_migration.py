"""Migration: snapshot/restore moves sessions without moving decisions."""

import pytest

from repro.fleet import FleetSimulator
from repro.fleet.node import FleetNode

from tests.fleet.conftest import build_schedule_trace

pytestmark = pytest.mark.fleet

#: a and c (long-lived) land on node-0, b and d (short-lived) on
#: node-1; b and d finish inside epoch 1, leaving loads 2 vs 0 — the
#: >=2 imbalance that triggers one rebalance migration.
IMBALANCE = (
    ["a", "b", "c", "d"] * 4  # epoch 1: b and d run their 4 launches
    + ["a", "c"] * 10         # the survivors keep node-0 busy
)


def test_rebalance_migrates_without_changing_decisions():
    trace = build_schedule_trace(IMBALANCE)
    baseline = FleetSimulator(trace, nodes=2, epoch_launches=16).run()
    rebalanced = FleetSimulator(
        trace, nodes=2, epoch_launches=16, rebalance=True
    ).run()
    migrations = rebalanced.registry.counter(
        "repro_fleet_migrations_total"
    ).total()
    assert migrations == 1
    # a (lexicographically first on the loaded node) moved to node-1.
    assert baseline.placement["a"] == "node-0"
    assert rebalanced.placement["a"] == "node-1"
    # Placement invariance: the migrated session's decisions — and
    # everyone else's — are float-for-float the baseline's.
    assert rebalanced.decisions == baseline.decisions
    assert rebalanced.stats == baseline.stats


def test_rebalance_is_idle_on_balanced_fleets():
    trace = build_schedule_trace(["a", "b"] * 8)
    report = FleetSimulator(
        trace, nodes=2, epoch_launches=4, rebalance=True
    ).run()
    assert report.registry.counter(
        "repro_fleet_migrations_total"
    ).total() == 0


def test_node_snapshot_restore_resumes_mid_run():
    """A session moved between nodes mid-stream decides as if it never
    moved (the placement-invariance foundation, node-level)."""
    trace = build_schedule_trace(["s"] * 8, name="migrate-mini")
    spec = trace.session("s")
    kernels = trace.unique_kernels("s")
    events = [(e.index, e.session, e.spec.key) for e in trace.events]

    stay = FleetNode("stay")
    stay.add_session(spec, kernels)
    expected = stay.step(events)

    source = FleetNode("source")
    source.add_session(spec, kernels)
    first_half = source.step(events[:4])
    payload = source.snapshot_session("s")
    source.remove_session("s")
    assert source.session_ids() == []

    target = FleetNode("target")
    target.restore_session(payload)
    second_half = target.step(events[4:])
    assert first_half + second_half == expected


def test_restore_failure_leaves_no_half_registered_session():
    trace = build_schedule_trace(["s"] * 4, name="migrate-bad")
    node = FleetNode("n")
    node.add_session(trace.session("s"), trace.unique_kernels("s"))
    payload = node.snapshot_session("s")
    node.remove_session("s")
    payload["session"] = {"schema": 999}  # unrecognisable snapshot
    with pytest.raises(Exception):
        node.restore_session(payload)
    assert node.session_ids() == []
