"""The fleet determinism contract.

Same seed + same shard count => identical per-session decisions,
placement, and per-epoch budgets — run to run, and transport to
transport.
"""

import pytest

from repro.fleet import FleetSimulator

pytestmark = pytest.mark.fleet


def fingerprint(report):
    return (
        report.decisions,
        report.placement,
        [(e.epoch, e.launches, e.budgets) for e in report.epochs],
        {sid: stats for sid, stats in report.stats.items()},
    )


def test_same_seed_same_shards_is_identical(corpus):
    trace = corpus["serverless"]
    first = FleetSimulator(
        trace, nodes=3, cap_w=150.0, epoch_launches=8
    ).run()
    second = FleetSimulator(
        trace, nodes=3, cap_w=150.0, epoch_launches=8
    ).run()
    assert fingerprint(first) == fingerprint(second)


def test_regenerated_trace_reproduces_the_fleet_run(corpus):
    """The workload seed pins the whole fleet, not just the trace."""
    from repro.workloads.traces import ScenarioGenerator

    regenerated = ScenarioGenerator(seed=0).generate("serverless")
    first = FleetSimulator(
        corpus["serverless"], nodes=2, cap_w=120.0, epoch_launches=8
    ).run()
    second = FleetSimulator(
        regenerated, nodes=2, cap_w=120.0, epoch_launches=8
    ).run()
    assert fingerprint(first) == fingerprint(second)


def test_process_transport_matches_inline(corpus):
    """The worker-process shard protocol is observably the inline one."""
    trace = corpus["serverless"]
    inline = FleetSimulator(
        trace, nodes=2, cap_w=150.0, epoch_launches=16
    ).run()
    process = FleetSimulator(
        trace, nodes=2, cap_w=150.0, epoch_launches=16, transport="process"
    ).run()
    assert fingerprint(process) == fingerprint(inline)
    # Merged node metrics agree too (e.g. throttle counts).
    name = "repro_runtime_tdp_throttles_total"
    assert process.registry.counter(name).total() == inline.registry.counter(
        name
    ).total()
