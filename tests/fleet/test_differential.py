"""The fleet-of-one differential contract.

A fleet of one node is, by construction, the streaming runtime: one
``SessionManager`` stepping ``step_batch`` chunks.  These tests pin
that equivalence float-for-float on every adversarial scenario family
— decisions *and* per-session statistics — and against the checked-in
stamped golden traces, so any divergence between the fleet path and
the streaming path shows up as a failing float, not a drifting trend.
"""

import os

import pytest

from repro.fleet import FleetSimulator
from repro.workloads.traces import FAMILIES, Trace, TraceReplayer
from repro.workloads.traces.replay import outcome_decision

pytestmark = pytest.mark.fleet

GOLDEN_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "differential",
    "golden",
)


def streaming_decisions(trace):
    """Per-session decision sequences of the streaming replayer."""
    report = TraceReplayer(trace).replay()
    decisions = {}
    for outcome in report.outcomes:
        decisions.setdefault(outcome.session_id, []).append(
            outcome_decision(outcome)
        )
    return decisions, report


@pytest.mark.parametrize("family", FAMILIES)
def test_fleet_of_one_reproduces_streaming_decisions(corpus, family):
    trace = corpus[family]
    expected, replay_report = streaming_decisions(trace)
    report = FleetSimulator(trace, nodes=1).run()
    assert report.decisions == expected
    assert report.launches() == len(trace.events)
    # step_batch statistics carry over field-for-field too.
    assert report.stats == replay_report.stats


@pytest.mark.parametrize("family", FAMILIES)
def test_fleet_of_one_unbatched_matches_batched(corpus, family):
    """Dispatch-one-at-a-time nodes decide identically to step_batch."""
    trace = corpus[family]
    batched = FleetSimulator(trace, nodes=1).run()
    unbatched = FleetSimulator(trace, nodes=1, batched=False).run()
    assert unbatched.decisions == batched.decisions
    assert unbatched.stats == batched.stats


@pytest.mark.parametrize(
    "family",
    [f for f in FAMILIES if os.path.exists(os.path.join(GOLDEN_DIR, f"{f}.jsonl"))],
)
def test_fleet_of_one_matches_stamped_golden_decisions(family):
    """The golden traces' recorded decisions are the fleet's decisions."""
    trace = Trace.load(os.path.join(GOLDEN_DIR, f"{family}.jsonl"))
    report = FleetSimulator(trace, nodes=1).run()
    for sid in trace.session_ids():
        recorded = [e.decision for e in trace.events_for(sid)]
        assert (
            report.decisions[sid] == recorded
        ), f"{family}: session {sid} diverged from its stamped decisions"


@pytest.mark.parametrize("epoch_launches", [1, 7, 32, 10_000])
def test_epoch_length_never_changes_decisions(corpus, epoch_launches):
    """Epoch boundaries are observability structure, not semantics."""
    trace = corpus["serverless"]
    baseline = FleetSimulator(trace, nodes=1).run()
    report = FleetSimulator(
        trace, nodes=1, epoch_launches=epoch_launches
    ).run()
    assert report.decisions == baseline.decisions
    assert report.stats == baseline.stats


def test_sharding_never_changes_decisions(corpus):
    """Placement invariance: N-node uncapped == 1-node == streaming."""
    trace = corpus["serverless"]
    expected, _ = streaming_decisions(trace)
    for nodes in (2, 3, 5):
        report = FleetSimulator(trace, nodes=nodes).run()
        assert report.decisions == expected, f"{nodes}-node fleet diverged"
        assert report.stats == FleetSimulator(trace, nodes=1).run().stats
