"""FleetNode: demand windows, budget application, slim-step protocol."""

import pytest

from repro.fleet.node import FleetNode

from tests.fleet.conftest import build_schedule_trace

pytestmark = pytest.mark.fleet


@pytest.fixture()
def hosted():
    trace = build_schedule_trace(["s"] * 8, name="node-mini")
    node = FleetNode("n")
    node.add_session(trace.session("s"), trace.unique_kernels("s"))
    return node, [(e.index, e.session, e.spec.key) for e in trace.events]


def test_demand_is_epoch_windowed(hosted):
    node, events = hosted
    node.step(events[:4])
    first = node.demand()
    assert first["node_id"] == "n"
    assert first["launches"] == 4
    assert first["power_w"] > 0
    assert first["sessions"] == 1
    node.step(events[4:])
    second = node.demand()
    assert second["launches"] == 4
    # Nothing processed since: the window must read zero, not repeat.
    assert node.demand()["launches"] == 0
    assert node.demand()["power_w"] == 0.0


def free_running_power():
    """Average power of the unbudgeted run (computed once per test)."""
    trace = build_schedule_trace(["s"] * 8, name="node-free")
    node = FleetNode("n")
    node.add_session(trace.session("s"), trace.unique_kernels("s"))
    node.step([(e.index, e.session, e.spec.key) for e in trace.events])
    return node.demand()["power_w"]


def test_budget_reaches_the_throttle_path(hosted):
    node, events = hosted
    node.set_budget(5.0)  # below the floor config: every launch throttles
    node.step(events)
    throttled = node.demand()
    # 5 W is infeasible — the throttle bottoms out at the lowest
    # config, so power lands at the hardware floor, not the budget.
    assert throttled["power_w"] < free_running_power()
    throttles = node.obs.registry.counter(
        "repro_runtime_tdp_throttles_total"
    ).total()
    assert throttles == len(events)


def test_budget_applies_to_later_arrivals():
    trace = build_schedule_trace(["s"] * 8, name="node-late")
    node = FleetNode("n")
    node.set_budget(5.0)
    node.add_session(trace.session("s"), trace.unique_kernels("s"))
    node.step([(e.index, e.session, e.spec.key) for e in trace.events])
    assert node.demand()["power_w"] < free_running_power()


def test_step_rejects_unknown_kernel_keys(hosted):
    node, _ = hosted
    with pytest.raises(KeyError):
        node.step([(0, "s", "no-such-kernel")])


def test_step_rejects_unknown_sessions(hosted):
    node, events = hosted
    index, _, key = events[0]
    with pytest.raises(KeyError):
        node.step([(index, "ghost", key)])


def test_drain_obs_resets_between_epochs(hosted):
    node, events = hosted
    node.step(events[:4])
    snapshot, spans = node.drain_obs()
    assert snapshot["metrics"]
    assert spans
    # Draining again without work ships nothing twice.
    snapshot2, spans2 = node.drain_obs()
    assert spans2 == []
    totals = {
        m["name"]: sum(s["value"] for s in m.get("series", []))
        for m in snapshot2["metrics"]
        if m["kind"] == "counter"
    }
    assert all(v == 0 for v in totals.values())
