"""Property tests for the hierarchical budget allocator.

Conservation, min-floor, and headroom-reclaim must hold for *any*
demand vector, so these tests sweep seeded random load vectors rather
than hand-picked cases; the fixed seed keeps every run identical.
"""

import math
import random

import pytest

from repro.fleet import BudgetAllocator, NodeDemand

pytestmark = pytest.mark.fleet


def random_demands(rng, n):
    """One random demand vector: mixed idle/moderate/saturated nodes."""
    demands = []
    for i in range(n):
        kind = rng.random()
        if kind < 0.25:
            power = 0.0
        elif kind < 0.75:
            power = rng.uniform(1.0, 120.0)
        else:
            power = rng.uniform(120.0, 500.0)
        demands.append(NodeDemand(node_id=f"node-{i}", power_w=power))
    return demands


def random_allocator(rng):
    return BudgetAllocator(
        rng.uniform(20.0, 800.0),
        min_floor_w=rng.uniform(1.0, 40.0),
        headroom_frac=rng.uniform(0.0, 1.0),
    )


def test_conservation_and_floor_hold_for_random_load_vectors():
    """sum(budgets) <= cap and budget >= feasible floor, always."""
    rng = random.Random(0x5EED)
    for _ in range(300):
        allocator = random_allocator(rng)
        demands = random_demands(rng, rng.randint(1, 16))
        budgets = allocator.apportion(demands)
        assert set(budgets) == {d.node_id for d in demands}
        total = math.fsum(budgets.values())
        assert total <= allocator.cap_w
        floor = min(allocator.min_floor_w, allocator.cap_w / len(demands))
        for watts in budgets.values():
            assert watts >= floor * (1.0 - 1e-9)


def test_full_cap_is_apportioned_when_any_node_is_busy():
    """Reclaim leaves no watts stranded: the cap is spent (to 1e-12)."""
    rng = random.Random(0xCAFE)
    for _ in range(200):
        allocator = random_allocator(rng)
        demands = random_demands(rng, rng.randint(1, 12))
        budgets = allocator.apportion(demands)
        total = math.fsum(budgets.values())
        # Under- or over-subscribed, the leftover/spare split always
        # hands out the whole cap; only the defensive 1e-12 shave and
        # float rounding separate the sum from it.
        assert total == pytest.approx(allocator.cap_w, rel=1e-9)


def test_reclaim_routes_headroom_to_busy_nodes_pro_rata():
    allocator = BudgetAllocator(100.0, min_floor_w=10.0, headroom_frac=0.0)
    budgets = allocator.apportion(
        [
            NodeDemand("busy", power_w=40.0),
            NodeDemand("half", power_w=10.0),
            NodeDemand("idle", power_w=0.0),
        ]
    )
    # Requests are 40 + 10 + floor(10) = 60; the 40 W leftover goes to
    # the busy nodes 4:1 and the idle node keeps exactly its floor.
    assert budgets["idle"] == pytest.approx(10.0)
    assert budgets["busy"] == pytest.approx(40.0 + 32.0)
    assert budgets["half"] == pytest.approx(10.0 + 8.0)


def test_oversubscription_scales_above_floor_shares():
    allocator = BudgetAllocator(100.0, min_floor_w=10.0, headroom_frac=0.0)
    budgets = allocator.apportion(
        [
            NodeDemand("a", power_w=190.0),
            NodeDemand("b", power_w=100.0),
            NodeDemand("c", power_w=0.0),
        ]
    )
    # Floors (3 x 10) are sacred; the 70 W spare splits by above-floor
    # request: a gets 180/270, b gets 90/270, c stays at its floor.
    assert budgets["c"] == pytest.approx(10.0)
    assert budgets["a"] == pytest.approx(10.0 + 70.0 * 180.0 / 270.0)
    assert budgets["b"] == pytest.approx(10.0 + 70.0 * 90.0 / 270.0)
    assert math.fsum(budgets.values()) <= 100.0


def test_floor_is_feasibility_clamped_at_scale():
    """At 20 nodes a 10 W floor would oversubscribe a 100 W cap."""
    allocator = BudgetAllocator(100.0, min_floor_w=10.0)
    demands = [NodeDemand(f"n{i}", power_w=0.0) for i in range(20)]
    budgets = allocator.apportion(demands)
    assert math.fsum(budgets.values()) <= 100.0
    for watts in budgets.values():
        assert watts == pytest.approx(5.0)


def test_apportion_is_deterministic():
    rng = random.Random(7)
    allocator = random_allocator(rng)
    demands = random_demands(rng, 9)
    assert allocator.apportion(demands) == allocator.apportion(demands)


def test_empty_demand_vector_is_empty():
    assert BudgetAllocator(100.0).apportion([]) == {}


def test_duplicate_node_ids_are_rejected():
    with pytest.raises(ValueError, match="duplicate"):
        BudgetAllocator(100.0).apportion(
            [NodeDemand("a"), NodeDemand("a")]
        )


@pytest.mark.parametrize(
    "kwargs",
    [
        {"cap_w": 0.0},
        {"cap_w": -5.0},
        {"cap_w": 100.0, "min_floor_w": 0.0},
        {"cap_w": 100.0, "headroom_frac": -0.1},
    ],
)
def test_invalid_parameters_are_rejected(kwargs):
    cap_w = kwargs.pop("cap_w")
    with pytest.raises(ValueError):
        BudgetAllocator(cap_w, **kwargs)
