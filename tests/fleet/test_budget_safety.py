"""Budget safety: conservation at every epoch, throttling under caps.

The acceptance invariant: at no epoch does the sum of apportioned node
budgets exceed the global cap.  These tests re-check it from the
*report* (independently of the allocator's own RL013-checked
assertion) and verify the budgets actually reach the throttle path.
"""

import math

import pytest

from repro.fleet import FleetSimulator

pytestmark = pytest.mark.fleet


@pytest.mark.parametrize("nodes", [1, 2, 3])
def test_sum_of_node_budgets_never_exceeds_the_cap(corpus, nodes):
    cap_w = 60.0 * nodes
    report = FleetSimulator(
        corpus["serverless"], nodes=nodes, cap_w=cap_w, epoch_launches=8
    ).run()
    assert report.epochs, "capped run recorded no epochs"
    for record in report.epochs:
        assert record.cap_w == cap_w
        assert set(record.budgets) == {f"node-{i}" for i in range(nodes)}
        assert math.fsum(record.budgets.values()) <= cap_w, (
            f"epoch {record.epoch} oversubscribed the cap"
        )


def test_tight_cap_engages_the_throttle_path(corpus):
    """A starving cap must show up as budget throttles, not nothing."""
    trace = corpus["serverless"]
    report = FleetSimulator(
        trace, nodes=2, cap_w=40.0, epoch_launches=8
    ).run()
    throttles = report.registry.counter(
        "repro_runtime_tdp_throttles_total"
    ).total()
    assert throttles > 0
    # Total energy under the tight cap is below the uncapped run's.
    uncapped = FleetSimulator(trace, nodes=2).run()
    assert (
        report.aggregate_stats().energy_j
        < uncapped.aggregate_stats().energy_j
    )


def test_loose_cap_changes_nothing_while_nodes_stay_busy(corpus):
    """A cap above aggregate demand must leave decisions untouched.

    The contract holds for continuously-busy nodes: reclaim routes the
    whole leftover to them, so their budgets stay far above demand.
    (A node that idles an epoch keeps only its floor and pays one
    throttled epoch on wake — that ramp is deliberate allocator
    policy, covered by the tight-cap test.)
    """
    trace = corpus["phase-shift"]
    uncapped = FleetSimulator(trace, nodes=2).run()
    loose = FleetSimulator(
        trace, nodes=2, cap_w=10_000.0, epoch_launches=8
    ).run()
    assert loose.decisions == uncapped.decisions
    assert loose.stats == uncapped.stats
    # The idle node was floored, the busy node got the reclaimed rest.
    for record in loose.epochs:
        assert max(record.budgets.values()) > 9_000.0


def test_fleet_metrics_are_published(corpus):
    report = FleetSimulator(
        corpus["serverless"], nodes=2, cap_w=120.0, epoch_launches=8
    ).run()
    registry = report.registry
    assert registry.counter("repro_fleet_epochs_total").total() == len(
        report.epochs
    )
    gauge = registry.gauge("repro_fleet_node_budget_watts")
    last = report.epochs[-1].budgets
    for node_id, watts in last.items():
        assert gauge.value(node=node_id) == watts


def test_epoch_spans_cover_the_run(corpus):
    report = FleetSimulator(
        corpus["serverless"], nodes=2, cap_w=120.0, epoch_launches=8
    ).run()
    epoch_spans = [s for s in report.spans if s["name"] == "epoch"]
    assert len(epoch_spans) == len(report.epochs)
    for span, record in zip(epoch_spans, report.epochs):
        attrs = span["attributes"]
        assert attrs["epoch"] == record.epoch
        assert attrs["launches"] == record.launches
        assert attrs["cap_w"] == record.cap_w
        assert attrs["budget_total_w"] == pytest.approx(
            sum(record.budgets.values())
        )
        assert span["end_s"] == span["start_s"] + 1.0


def test_fleet_spans_validate_against_the_trace_schema(corpus):
    """Everything --trace-out writes — node launch spans and fleet
    epoch spans — matches a branch of docs/trace.schema.json."""
    import json

    from repro.obs.exporters import validate_span

    with open("docs/trace.schema.json", encoding="utf-8") as handle:
        schema = json.load(handle)
    report = FleetSimulator(
        corpus["serverless"], nodes=2, cap_w=120.0, epoch_launches=8
    ).run()
    assert report.spans
    for span in report.spans:
        assert validate_span(span, schema) == []
