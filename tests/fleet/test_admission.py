"""Admission control: placement, queueing, and shedding."""

import pytest

from repro.fleet import FleetSimulator

from tests.fleet.conftest import build_schedule_trace

pytestmark = pytest.mark.fleet


def test_sessions_place_on_the_least_loaded_node():
    trace = build_schedule_trace(["a", "b", "c", "d"] * 4)
    report = FleetSimulator(trace, nodes=2, epoch_launches=4).run()
    assert report.placement == {
        "a": "node-0", "b": "node-1", "c": "node-0", "d": "node-1",
    }
    assert report.queued == 0 and report.shed == 0


def test_arrivals_beyond_capacity_queue_and_complete():
    """With room for one session, later arrivals wait their turn —
    and still process every launch with unchanged decisions."""
    schedule = ["a", "b", "c"] * 4  # b and c arrive while a is hosted
    trace = build_schedule_trace(schedule)
    report = FleetSimulator(
        trace, nodes=1, max_sessions_per_node=1, epoch_launches=6
    ).run()
    assert report.queued == 2
    assert report.shed == 0
    assert report.launches() == len(trace.events)
    # Queueing delays execution, never changes per-session decisions.
    unconstrained = FleetSimulator(trace, nodes=1).run()
    assert report.decisions == unconstrained.decisions
    counter = report.registry.counter("repro_fleet_sessions_queued_total")
    assert counter.total() == 2


def test_overflow_beyond_the_queue_sheds():
    schedule = ["a", "b", "c"] * 4
    trace = build_schedule_trace(schedule)
    report = FleetSimulator(
        trace,
        nodes=1,
        max_sessions_per_node=1,
        max_queued=1,
        epoch_launches=100,
    ).run()
    # a holds the node for the whole run, b waits in the queue, and c
    # finds both full.
    assert report.queued == 1
    assert report.shed == 1
    assert "c" not in report.decisions
    assert report.registry.counter(
        "repro_fleet_sessions_shed_total"
    ).total() == 1
    # Shed sessions shed entirely: every admitted launch still ran.
    expected = sum(1 for sid in schedule if sid != "c")
    assert report.launches() == expected


def test_queued_sessions_admit_in_arrival_order():
    schedule = ["a", "b", "c"] * 4
    trace = build_schedule_trace(schedule)
    report = FleetSimulator(
        trace, nodes=1, max_sessions_per_node=1, epoch_launches=8
    ).run()
    assert report.queued == 2
    assert report.launches() == len(trace.events)
    # b (first queued) ran before c: its launches appear earlier.
    assert list(report.decisions) == ["a", "b", "c"]
