"""Shard transports: the post/collect protocol and worker failures."""

import pytest

from repro.fleet import InlineShard, ProcessShard, ShardError

from tests.fleet.conftest import build_schedule_trace

pytestmark = pytest.mark.fleet


@pytest.fixture()
def mini():
    trace = build_schedule_trace(["s"] * 4, name="shard-mini")
    return (
        trace.session("s"),
        trace.unique_kernels("s"),
        [(e.index, e.session, e.spec.key) for e in trace.events],
    )


def drive(shard, spec, kernels, events):
    shard.post("add_session", spec, kernels)
    shard.post("step", events)
    shard.post("demand")
    results = shard.collect()
    return results[1], results[2]


def test_process_shard_matches_inline(mini):
    spec, kernels, events = mini
    inline = InlineShard("n")
    process = ProcessShard("n")
    try:
        inline_out = drive(inline, spec, kernels, events)
        process_out = drive(process, spec, kernels, events)
        assert process_out == inline_out
    finally:
        process.close()
        inline.close()


def test_worker_failure_raises_shard_error_with_remote_traceback(mini):
    spec, kernels, events = mini
    shard = ProcessShard("n")
    try:
        shard.post("remove_session", "never-added")
        with pytest.raises(ShardError) as excinfo:
            shard.collect()
        assert excinfo.value.node_id == "n"
        assert excinfo.value.command == "remove_session"
        assert "KeyError" in excinfo.value.remote_traceback
        # One bad command does not wedge the worker: it keeps serving.
        shard.post("add_session", spec, kernels)
        shard.post("step", events)
        _, decisions = shard.collect()
        assert len(decisions) == len(events)
    finally:
        shard.close()


def test_shard_error_is_attributed_to_the_right_command(mini):
    spec, kernels, events = mini
    shard = ProcessShard("n")
    try:
        shard.post("add_session", spec, kernels)
        shard.post("remove_session", "never-added")  # fails
        shard.post("demand")
        with pytest.raises(ShardError) as excinfo:
            shard.collect()
        assert excinfo.value.command == "remove_session"
    finally:
        shard.close()


def test_process_shard_rejects_obs_kwarg():
    with pytest.raises(ValueError, match="drain_obs"):
        ProcessShard("n", obs=object())


def test_close_is_safe_to_repeat(mini):
    shard = ProcessShard("n")
    shard.close()
    shard.close()
