"""RL003 mixed fixture: one clean spec, one carrying a lock."""

import threading
from dataclasses import dataclass, field


@dataclass(frozen=True)
class GoodSpec:
    name: str
    weight: float = 1.0


@dataclass
class RacySpec:
    name: str
    guard: threading.Lock = field(default_factory=threading.Lock)
