"""RL003 bad fixture: a Callable field on cache-key material."""

from dataclasses import dataclass
from typing import Any, Callable, Tuple


@dataclass(frozen=True)
class CachedRequest:
    benchmark: str
    params: Tuple[Tuple[str, Any], ...]
    transform: Callable[[float], float]
