"""RL011 good fixture: guarded and keyed memo reads."""

import weakref

# repro-lint: memo-guard=matches
_FLAT_FORESTS = weakref.WeakKeyDictionary()

# Stale hits are impossible: the payload is a dict keyed by the
# coefficient pair, so a changed model is a different key.
# repro-lint: memo-guard=keyed
_POWER_COLUMNS = weakref.WeakKeyDictionary()


def _flatten(forest):
    return list(forest.trees)


def flat_of(forest):
    flat = _FLAT_FORESTS.get(forest)
    if flat is None or not flat.matches(forest.trees):
        flat = _flatten(forest)
        _FLAT_FORESTS[forest] = flat
    return flat


def columns_of(table, key):
    memo = _POWER_COLUMNS.get(table)
    if memo is None:
        memo = {}
        _POWER_COLUMNS[table] = memo
    return memo.setdefault(key, table.compute(key))
