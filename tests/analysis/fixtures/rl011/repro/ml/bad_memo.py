"""RL011 bad fixture: stale-prone reads from a weak-key memo."""

import weakref

# repro-lint: memo-guard=matches
_FLAT_FORESTS = weakref.WeakKeyDictionary()


def _flatten(forest):
    return list(forest.trees)


def flat_of(forest):
    flat = _FLAT_FORESTS.get(forest)
    if flat is None:
        flat = _flatten(forest)
        _FLAT_FORESTS[forest] = flat
    # BAD: a hit is returned without a matches() staleness check — a
    # refit rebinds forest.trees but leaves the memo entry in place.
    return flat


def tree_count(forest):
    # BAD: direct unguarded read; no binding to validate at all.
    return len(_FLAT_FORESTS[forest])
