"""RL013 fixture: allocators whose apportion paths carry the assertion."""

import math


class DirectAllocator:
    """Asserts conservation directly inside apportion."""

    def __init__(self, cap_w):
        self.cap_w = cap_w

    def apportion(self, demands):
        budgets = {d.node_id: self.cap_w / len(demands) for d in demands}
        assert math.fsum(budgets.values()) <= self.cap_w
        return budgets


class HelperAllocator:
    """Asserts conservation in a same-class helper apportion calls."""

    def __init__(self, cap_w):
        self.cap_w = cap_w

    def apportion(self, demands):
        budgets = {d.node_id: self.cap_w / len(demands) for d in demands}
        return self._finalize(budgets)

    def _finalize(self, budgets):
        return _checked(budgets, self.cap_w)


def _checked(budgets, cap_w):
    """Module-level tail of the apportion path (two hops from entry)."""
    assert sum(budgets.values()) <= cap_w, "conservation violated"
    return budgets


class NotAnAllocator:
    """No apportion method: out of the rule's scope entirely."""

    def divide(self, demands):
        return {d.node_id: 0.0 for d in demands}
