"""RL013 fixture: allocators missing the conservation assertion."""

import math


class UncheckedAllocator:
    """No assertion anywhere on the apportion path."""

    def __init__(self, cap_w):
        self.cap_w = cap_w

    def apportion(self, demands):
        return {d.node_id: self.cap_w / len(demands) for d in demands}


class WrongAssertAllocator:
    """Has an assert, but it neither sums nor bounds the budgets."""

    def __init__(self, cap_w):
        self.cap_w = cap_w

    def apportion(self, demands):
        assert demands, "empty demand vector"
        budgets = {d.node_id: self.cap_w / len(demands) for d in demands}
        return self._finalize(budgets)

    def _finalize(self, budgets):
        # Sums without bounding: max() is not a conservation check and
        # the comparison is strict-greater, not a <= cap bound.
        assert max(budgets.values()) > 0
        total = math.fsum(budgets.values())
        return budgets if total else {}
