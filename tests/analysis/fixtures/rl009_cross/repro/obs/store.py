"""Cross-module RL009 fixture: the annotated callee lives here."""

import threading


class EventStore:
    def __init__(self):
        self.lock = threading.Lock()
        self.pending = []

    # repro-lint: requires-lock=lock
    def flush_pending(self):
        drained, self.pending = self.pending, []
        return drained
