"""Cross-module RL009 fixture: the caller holds the store's lock."""


def drain(store):
    with store.lock:
        return store.flush_pending()
