"""Cross-module RL009 fixture: unlocked call into another module.

``flush_pending`` is not named ``*_unlocked``; the requirement reaches
this module only through the call-graph layer resolving the annotation
on ``EventStore.flush_pending`` in ``store.py``.
"""


def drain(store):
    # BAD: no frame; the requires-lock fact comes from store.py.
    return store.flush_pending()
