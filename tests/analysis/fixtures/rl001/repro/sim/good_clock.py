"""RL001 clean fixture: time is injected, never read from the host."""


class Stepper:
    def __init__(self, clock):
        self._clock = clock

    def step(self, at=None):
        return self._clock() if at is None else at
