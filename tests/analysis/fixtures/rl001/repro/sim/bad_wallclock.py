"""RL001 bad fixture: wall-clock reads on a simulated-time hot path."""

import datetime
import time
from time import perf_counter


def step(dt):
    started = time.time()
    tick = perf_counter()
    stamp = datetime.datetime.now()
    return started + tick + stamp.timestamp() + dt
