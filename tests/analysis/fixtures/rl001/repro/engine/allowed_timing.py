"""RL001 allowlist fixture: engine timing blocks may read the wall clock."""

import time


def measure():
    start = time.perf_counter()
    return time.perf_counter() - start
