"""Suppression fixture: whole-file directive for one rule."""

# repro-lint: disable-file=RL002

import numpy as np


def draw():
    return np.random.default_rng() + np.random.rand()
