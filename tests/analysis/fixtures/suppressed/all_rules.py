"""Suppression fixture: the ALL wildcard silences every rule."""

# repro-lint: disable-file=ALL

import numpy as np


def draw(options={}):
    return np.random.default_rng(), options
