"""Suppression fixture: one violation silenced on its own line."""

import numpy as np


def draw():
    return np.random.default_rng()  # repro-lint: disable=RL002
