"""Parse-error fixture (deliberately invalid syntax)."""


def broken(:
    pass
