"""RL012 bad fixture: unguarded writes to declared shared state."""

import threading


# repro-lint: shared-state=entries,total
class Accumulator:
    def __init__(self):
        self._lock = threading.Lock()
        self.entries = []
        self.total = 0

    def add(self, value):
        # BAD: no lock frame on any path.
        self.entries.append(value)

    def merge(self, amount, fast):
        if fast:
            with self._lock:
                self.total += amount
        else:
            # BAD: the frame covers only the other branch.
            self.total += amount

    def drain(self):
        items = self.entries
        # BAD: mutator through a local alias of self.entries.
        items.clear()


class FastAccumulator(Accumulator):
    def bump(self, value):
        # BAD: the shared-state declaration is inherited from the base.
        self.total += value
