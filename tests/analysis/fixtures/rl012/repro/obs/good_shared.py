"""RL012 good fixture: every shared-state write sits under a frame."""

import threading


# repro-lint: shared-state=entries,total
class Accumulator:
    def __init__(self):
        # Construction precedes sharing; __init__ writes are exempt.
        self._lock = threading.Lock()
        self.entries = []
        self.total = 0

    def add(self, value):
        with self._lock:
            self.entries.append(value)

    # repro-lint: requires-lock=_lock
    def merge_unlocked(self, amount):
        # The caller's frame covers this write (RL009 polices callers).
        self.total += amount

    def merge(self, amount):
        with self._lock:
            self.merge_unlocked(amount)

    def drain(self):
        with self._lock:
            items = self.entries
            items.clear()
            self.total = 0
