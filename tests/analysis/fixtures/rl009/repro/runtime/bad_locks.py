"""RL009 bad fixture: unlocked calls and a re-acquired lock."""

import threading


class Registry:
    def __init__(self):
        self.lock = threading.Lock()
        self.count = 0

    # repro-lint: requires-lock=lock
    def inc_unlocked(self, n=1):
        self.count += n

    def bump_without_frame(self):
        # BAD: no lock frame on any path.
        self.inc_unlocked()

    def bump_partially_dominated(self, fast):
        # BAD: the frame covers only one branch; the must-analysis
        # meets to the empty set at the call.
        if fast:
            with self.lock:
                pass
        self.inc_unlocked()

    def reacquire(self):
        # BAD: the inner with re-acquires a held non-reentrant lock.
        with self.lock:
            with self.lock:
                self.inc_unlocked()
