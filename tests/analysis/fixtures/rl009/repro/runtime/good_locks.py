"""RL009 good fixture: every unlocked call sits under a dominating frame."""

import threading


class Registry:
    def __init__(self):
        self.lock = threading.Lock()
        self.count = 0

    # repro-lint: requires-lock=lock
    def inc_unlocked(self, n=1):
        self.count += n

    def bump(self):
        with self.lock:
            self.inc_unlocked()

    def bump_both_branches(self, fast):
        # The frame dominates the call on every path.
        with self.lock:
            if fast:
                self.inc_unlocked()
            else:
                self.inc_unlocked(2)

    # repro-lint: requires-lock=lock
    def bump_many_unlocked(self, n):
        # Callers hold the lock; the batch call inherits their frame.
        for _ in range(n):
            self.inc_unlocked()

    def bump_explicit(self):
        self.lock.acquire()
        try:
            self.inc_unlocked()
        finally:
            self.lock.release()
