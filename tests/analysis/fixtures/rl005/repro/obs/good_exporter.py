"""RL005 clean fixture: obs stays per-call and mutates only itself."""


class Recorder:
    def __init__(self):
        self.rows = []

    def record(self, span):
        self.rows.append(dict(span.attributes))
        return self.rows[-1]
