"""RL005 bad fixture: obs code mutating the objects it observes."""


class Probe:
    def collect(self, sim):
        sim.last_probe = self
        return sim.state


def install(session):
    session.obs = object()
    return session
