"""RL005 bad fixture: obs handles installed on guarded objects."""


class Simulator:
    pass


def attach(tracer):
    sim = Simulator()
    sim.obs = tracer
    return sim


def attach_session(runtime: "SessionRuntime", tracer):
    runtime.tracer = tracer
    return runtime
