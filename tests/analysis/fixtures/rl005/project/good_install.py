"""RL005 clean fixture: instrumentation passed per call, never stored."""


class Simulator:
    def run(self, app, obs=None):
        return app, obs


def run_instrumented(sim, app, obs):
    return sim.run(app, obs=obs)
