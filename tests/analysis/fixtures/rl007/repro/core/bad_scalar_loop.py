"""RL007 bad fixture: per-config scalar predictor calls in core loops."""


def sweep(predictor, counters, configs):
    estimates = []
    for config in configs:
        estimates.append(predictor.estimate(counters, config))
    return estimates


def sweep_comprehension(self, counters, configs):
    return [self.predictor.estimate(counters, c) for c in configs]


def climb(self, counters, start):
    current = start
    while self.predictor.estimate(counters, current).energy_j > 1.0:
        current = current.step()
    return current
