"""RL007 good fixture: columnar batches and sanctioned scalar fallbacks."""

import numpy as np


def sweep(predictor, counters, table, candidate_indices):
    # The hot-path contract: one columnar call for the whole batch.
    return predictor.estimate_matrix(
        counters, table, np.asarray(candidate_indices)
    )


def single(predictor, counters, config):
    # A lone scalar call outside any loop is fine.
    return predictor.estimate(counters, config)


def fallback_loop(predictor, counters, configs):
    # Deliberate scalar fallback wrapped in a helper: the call site in
    # the loop is the helper, a new execution context per RL007.
    def fetch_one(config):
        return predictor.estimate(counters, config)

    return [fetch_one(config) for config in configs]


def non_predictor_loop(estimator, counters, configs):
    # Receivers not named like predictors are out of scope.
    return [estimator.estimate(counters, config) for config in configs]
