"""RL007 good fixture: predictions flow through the forest interface."""

import numpy as np


def ensemble_mean(forest, X):
    # The sanctioned entry point: one flattened iterative descent for
    # the whole ensemble.
    return forest.predict(X)


def model_predict_loop(models, X):
    # Receivers not named like trees are out of the rule's scope.
    return np.array([model.predict(X) for model in models])
