"""RL007 bad fixture: per-tree predicts bypassing the flattened forest."""

import numpy as np


def ensemble_mean(forest, X):
    # Looping the ensemble re-creates the per-tree Python loop the
    # flattened node arrays removed.
    total = np.zeros(len(X))
    for tree in forest.trees:
        total += tree.predict(X)
    return total / len(forest.trees)


def first_tree_only(forest, X):
    # Even a single un-looped call is drift: subscripts are transparent
    # to the receiver check, so indexing into the collection is seen.
    return forest.trees[0].predict(X)


def aliased_tree(decision_tree, X):
    return decision_tree.predict(X)
