"""RL010 good fixture: every acquisition reaches release on all paths."""

import contextlib
from multiprocessing import shared_memory


def encode(payload):
    return bytes(payload)


class Optimizer:
    def __init__(self):
        self._preloaded = {}

    # repro-lint: acquires-on-receiver=clear_preload
    def preload_lattice(self, batches):
        self._preloaded.update(batches)

    def clear_preload(self):
        self._preloaded.clear()

    def dispatch(self):
        return len(self._preloaded)


def release_in_finally(payload):
    shm = shared_memory.SharedMemory(create=True, size=64)
    try:
        data = encode(payload)
        shm.buf[: len(data)] = data
    finally:
        shm.unlink()
        shm.close()


def register_with_exitstack(payload):
    with contextlib.ExitStack() as stack:
        shm = shared_memory.SharedMemory(create=True, size=64)
        stack.callback(shm.unlink)
        data = encode(payload)
        shm.buf[: len(data)] = data


def transfer_ownership(size):
    # Returning the handle moves ownership to the caller.
    return shared_memory.SharedMemory(create=True, size=size)


def sweep_balanced(optimizer, batches):
    optimizer.preload_lattice(batches)
    try:
        return optimizer.dispatch()
    finally:
        optimizer.clear_preload()


# repro-lint: shm-attach
def attach_read_only(handle_name):
    shm = shared_memory.SharedMemory(name=handle_name)
    view = bytes(shm.buf)
    shm.close()
    return view
