"""RL010 bad fixture: segments that miss their release on some path."""

from multiprocessing import shared_memory


def encode(payload):
    return bytes(payload)


class Optimizer:
    def __init__(self):
        self._preloaded = {}

    # repro-lint: acquires-on-receiver=clear_preload
    def preload_lattice(self, batches):
        self._preloaded.update(batches)

    def clear_preload(self):
        self._preloaded.clear()

    def dispatch(self):
        return len(self._preloaded)


def leak_on_exception(payload):
    # BAD: encode() can raise after the create; the unlink at the end
    # is not reached on the exceptional path (no try/finally).
    shm = shared_memory.SharedMemory(create=True, size=64)
    data = encode(payload)
    shm.buf[: len(data)] = data
    shm.unlink()
    shm.close()


def leak_in_try_body(payload):
    shm = shared_memory.SharedMemory(create=True, size=64)
    try:
        data = encode(payload)
        shm.buf[: len(data)] = data
        # BAD: releases inside the try body cover only the happy
        # path; they belong in the finally.
        shm.unlink()
        shm.close()
    except KeyError:
        pass


def rebind_while_live(payloads):
    shm = None
    for payload in payloads:
        # BAD: each iteration overwrites the previous live segment.
        shm = shared_memory.SharedMemory(create=True, size=64)
        shm.buf[:1] = b"x"
    if shm is not None:
        shm.unlink()
        shm.close()


def sweep_unbalanced(optimizer, batches):
    # BAD: dispatch() can raise between the preload and the clear.
    optimizer.preload_lattice(batches)
    count = optimizer.dispatch()
    optimizer.clear_preload()
    return count


# repro-lint: shm-attach
def attach_and_destroy(handle_name):
    shm = shared_memory.SharedMemory(name=handle_name)
    view = bytes(shm.buf)
    # BAD: workers never unlink; the owner's segment is not theirs.
    shm.unlink()
    return view
