"""RL006 bad fixture: shared mutable defaults."""

from dataclasses import dataclass, field


class ConfigSpace:
    pass


def search(seen=[], options={}):
    return seen, options


def explore(space=ConfigSpace()):
    return space


@dataclass
class Config:
    knobs: dict = field(default=dict())
    targets: list = []
