"""RL006 clean fixture: None defaults and default_factory."""

from dataclasses import dataclass, field


def search(seen=None, limit=10):
    return ([] if seen is None else seen), limit


@dataclass
class Config:
    knobs: dict = field(default_factory=dict)
    name: str = "default"
