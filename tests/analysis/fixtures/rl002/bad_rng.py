"""RL002 bad fixture: unseeded and process-global random generation."""

import random

import numpy as np


def draw():
    rng = np.random.default_rng()
    return rng.normal() + np.random.rand() + random.random()
