"""RL002 clean fixture: every generator is explicitly seeded."""

import numpy as np


def draw(seed):
    rng = np.random.default_rng(seed)
    jitter = np.random.default_rng(seed=seed + 1)
    return rng.normal() + jitter.normal()
