"""Serializer side of the RL003 coverage fixture (misses resumed_at)."""


def to_dict(run):
    return {"app_name": run.app_name, "launches": list(run.launches)}


def from_dict(payload):
    return payload["app_name"], payload["launches"]
