"""RL003 serializer-coverage fixture: one field missing downstream."""

from dataclasses import dataclass, field
from typing import List


@dataclass
class FixtureRun:
    app_name: str
    launches: List[float] = field(default_factory=list)
    resumed_at: int = 0
