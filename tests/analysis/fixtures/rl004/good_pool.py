"""RL004 clean fixture: module-level target, plain-value payloads."""

import pickle
from concurrent.futures import ProcessPoolExecutor


def _double(item):
    return item * 2


def _init(spec_bytes):
    pickle.loads(spec_bytes)


def run(items, spec):
    spec_bytes = pickle.dumps(spec)
    with ProcessPoolExecutor(
        max_workers=2, initializer=_init, initargs=(spec_bytes,)
    ) as pool:
        return [pool.submit(_double, item) for item in items]
