"""RL004 bad fixture: unpicklable process-pool targets and payloads."""

import threading
from concurrent.futures import ProcessPoolExecutor


def process(item):
    return item


def run(items):
    lock = threading.Lock()
    log = open("log.txt", "w")

    def helper(item):
        return item * 2

    with ProcessPoolExecutor(max_workers=2) as pool:
        futures = [pool.submit(lambda x: x, item) for item in items]
        futures.append(pool.submit(helper, items[0]))
        futures.append(pool.submit(process, lock))
        futures.append(pool.submit(process, log))
    return futures


def setup():
    return ProcessPoolExecutor(
        initializer=lambda: None, initargs=(open("x.txt", "w"),)
    )
