"""Replay side of the RL008 fixture (never compares cache_energy_j)."""


def compare(recorded, outcome):
    mismatches = []
    if recorded.config != outcome.config:
        mismatches.append("config")
    if recorded.time_s != outcome.time_s:
        mismatches.append("time_s")
    return mismatches
