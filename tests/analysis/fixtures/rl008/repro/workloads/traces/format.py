"""Format side of the RL008 fixture (misses warp_occupancy)."""

from dataclasses import dataclass


@dataclass(frozen=True)
class RecordedDecision:
    config: str
    time_s: float
    cache_energy_j: float = 0.0


def kernel_to_dict(spec):
    return {"name": spec.name, "compute_work": spec.compute_work}


def kernel_from_dict(payload):
    return payload["name"], payload["compute_work"]
