"""RL008 fixture kernel module: one field missing from the format."""

from dataclasses import dataclass


@dataclass(frozen=True)
class FixtureKernel:
    name: str
    compute_work: float
    warp_occupancy: float = 1.0
