"""Baseline files: round-trip, budget semantics, CLI wiring, --stats."""

import json

import pytest

from repro.analysis import Baseline, render_stats, run_lint
from repro.cli import main

from tests.analysis.conftest import FIXTURES, REPO_ROOT, lint_fixture

pytestmark = pytest.mark.analysis

BAD_LOCKS = str(FIXTURES / "rl009" / "repro" / "runtime" / "bad_locks.py")


def test_baseline_round_trips():
    result = lint_fixture("rl009")
    baseline = Baseline.from_findings(result.findings)
    parsed = Baseline.parse(baseline.render())
    assert parsed == baseline
    assert sum(baseline.entries.values()) == len(result.findings)


def test_baseline_absorbs_known_findings():
    result = lint_fixture("rl009")
    baseline = Baseline.from_findings(result.findings)
    kept, baselined = baseline.apply(result.findings)
    assert kept == []
    assert baselined == len(result.findings)


def test_baseline_budget_is_per_instance():
    result = lint_fixture("rl009")
    findings = result.findings
    # A baseline recording one instance absorbs one, not all.
    baseline = Baseline.from_findings(findings[:1])
    kept, baselined = baseline.apply(findings)
    assert baselined == 1
    assert len(kept) == len(findings) - 1


def test_baseline_rejects_unknown_schema():
    payload = json.loads(Baseline().render())
    payload["schema"] = 99
    with pytest.raises(ValueError):
        Baseline.parse(json.dumps(payload))


def test_run_lint_applies_baseline():
    dirty = lint_fixture("rl009")
    baseline = Baseline.from_findings(dirty.findings)
    clean = run_lint(
        [str(FIXTURES / "rl009")], root=str(REPO_ROOT), baseline=baseline
    )
    assert clean.exit_code == 0
    assert clean.findings == []
    assert clean.baselined == len(dirty.findings)


def test_cli_write_then_apply_baseline(tmp_path, capsys):
    baseline_file = tmp_path / "lint-baseline.json"
    code = main(
        ["lint", BAD_LOCKS, "--write-baseline", str(baseline_file)]
    )
    assert code == 0
    assert baseline_file.exists()
    capsys.readouterr()

    code = main(["lint", BAD_LOCKS, "--baseline", str(baseline_file)])
    assert code == 0
    assert "baselined" in capsys.readouterr().out


def test_cli_baseline_does_not_hide_new_findings(tmp_path, capsys):
    baseline_file = tmp_path / "lint-baseline.json"
    # Baseline only the RL011 fixture, then lint RL009 + RL011 trees.
    rl011 = str(FIXTURES / "rl011")
    code = main(["lint", rl011, "--write-baseline", str(baseline_file)])
    assert code == 0
    capsys.readouterr()
    code = main(
        ["lint", rl011, BAD_LOCKS, "--baseline", str(baseline_file)]
    )
    assert code == 1  # the RL009 findings are new


def test_cli_bad_baseline_exits_two(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text("{}")
    code = main(["lint", BAD_LOCKS, "--baseline", str(bad)])
    assert code == 2
    assert "bad baseline" in capsys.readouterr().err


def test_stats_reports_each_rule(capsys):
    result = lint_fixture("rl009")
    stats = render_stats(result)
    for rule_id in result.rules_run:
        assert rule_id in stats
    assert "flow" in stats and "module" in stats
    code = main(["lint", BAD_LOCKS, "--select", "RL009", "--stats"])
    assert code == 1
    out = capsys.readouterr().out
    assert "RL009" in out and "ms" in out
