"""RL009-RL012 behaviour over the fixture mirror-trees + mutation test."""

import shutil
from pathlib import Path

import pytest

from repro.analysis import run_lint

from tests.analysis.conftest import REPO_ROOT, lint_fixture

pytestmark = pytest.mark.analysis

FLOW_RULES = ["RL009", "RL010", "RL011", "RL012"]


def _by_rule(result, rule_id):
    return [f for f in result.findings if f.rule_id == rule_id]


# -- RL009 lock-discipline ----------------------------------------------------


def test_rl009_flags_undominated_and_reacquired_locks():
    result = lint_fixture("rl009")
    findings = _by_rule(result, "RL009")
    assert len(findings) == 3
    assert all(f.path.endswith("bad_locks.py") for f in findings)
    messages = " ".join(f.message for f in findings)
    assert "no lock frame dominates" in messages
    assert "re-acquiring lock 'self.lock'" in messages
    # The partially-dominated frame (one branch only) is among them.
    lines = {f.line for f in findings}
    assert 25 in lines


def test_rl009_good_fixture_is_clean():
    assert lint_fixture("rl009/repro/runtime/good_locks.py").findings == []


def test_rl009_requires_lock_propagates_across_modules():
    result = lint_fixture("rl009_cross")
    findings = _by_rule(result, "RL009")
    assert len(findings) == 1
    assert findings[0].path.endswith("bad_caller.py")
    assert "flush_pending" in findings[0].message


def test_rl009_cross_module_good_caller_is_clean():
    # Linted together so the annotation in store.py is still visible.
    result = lint_fixture("rl009_cross")
    assert not any(
        f.path.endswith("good_caller.py") for f in result.findings
    )


# -- RL010 shm-lifecycle ------------------------------------------------------


def test_rl010_flags_leaky_paths():
    result = lint_fixture("rl010")
    findings = _by_rule(result, "RL010")
    assert len(findings) == 6
    assert all(f.path.endswith("bad_leak.py") for f in findings)
    messages = " ".join(f.message for f in findings)
    assert "may not reach 'unlink()' on all paths" in messages
    assert "rebinding 'shm'" in messages
    assert "clear_preload" in messages
    assert "shm-attach" in messages


def test_rl010_good_fixture_is_clean():
    assert lint_fixture("rl010/repro/engine/good_lifecycle.py").findings == []


# -- RL011 memo-staleness -----------------------------------------------------


def test_rl011_flags_unvalidated_cache_reads():
    result = lint_fixture("rl011")
    findings = _by_rule(result, "RL011")
    assert len(findings) == 2
    assert all(f.path.endswith("bad_memo.py") for f in findings)
    messages = " ".join(f.message for f in findings)
    assert "staleness" in messages


def test_rl011_good_fixture_is_clean():
    assert lint_fixture("rl011/repro/ml/good_memo.py").findings == []


# -- RL012 unguarded-shared-mutation ------------------------------------------


def test_rl012_flags_unguarded_writes():
    result = lint_fixture("rl012")
    findings = _by_rule(result, "RL012")
    assert len(findings) == 4
    assert all(f.path.endswith("bad_shared.py") for f in findings)
    messages = " ".join(f.message for f in findings)
    assert "Accumulator.entries" in messages
    assert "Accumulator.total" in messages
    # The declaration reaches the module-local subclass.
    assert "FastAccumulator.total" in messages


def test_rl012_good_fixture_is_clean():
    assert lint_fixture("rl012/repro/obs/good_shared.py").findings == []


# -- whole-tree + mutation ----------------------------------------------------


def test_flow_rules_clean_on_shipped_tree():
    result = run_lint(
        [str(REPO_ROOT / "src")], select=FLOW_RULES, root=str(REPO_ROOT)
    )
    assert result.findings == []


def test_removing_lock_frame_flips_lint_red(tmp_path):
    """Mutation check: dropping one `with self._lock:` frame in
    obs/health.py must flip `repro lint` from exit 0 to exit 1."""
    source_path = REPO_ROOT / "src" / "repro" / "obs" / "health.py"
    mirror = tmp_path / "repro" / "obs"
    mirror.mkdir(parents=True)
    shutil.copy(source_path, mirror / "health.py")

    clean = run_lint(
        [str(tmp_path)], select=["RL009"], root=str(tmp_path)
    )
    assert clean.exit_code == 0

    lines = (mirror / "health.py").read_text().splitlines(keepends=True)
    mutated_at = None
    for i, line in enumerate(lines):
        if line.strip() == "with self._lock:" and "inc_unlocked" in lines[i + 1]:
            indent = line[: len(line) - len(line.lstrip())]
            lines[i] = f"{indent}if True:\n"
            mutated_at = i
            break
    assert mutated_at is not None, "lock frame around inc_unlocked not found"
    (mirror / "health.py").write_text("".join(lines))

    mutated = run_lint(
        [str(tmp_path)], select=["RL009"], root=str(tmp_path)
    )
    assert mutated.exit_code == 1
    assert any(
        f.rule_id == "RL009" and "inc_unlocked" in f.message
        for f in mutated.findings
    )
