"""Framework-level behaviour: discovery, selection, suppression, exit codes."""

import pytest

from repro.analysis import PARSE_ERROR_ID, all_rules, discover_files, get_rule, run_lint

from tests.analysis.conftest import FIXTURES, REPO_ROOT, lint_fixture

pytestmark = pytest.mark.analysis


def test_discovery_skips_fixture_trees():
    found = discover_files([str(REPO_ROOT / "tests" / "analysis")])
    assert found, "the test modules themselves should be discovered"
    assert not any("fixtures" in path.split("/") for path in found)


def test_explicit_fixture_path_bypasses_exclusion():
    found = discover_files([str(FIXTURES / "rl001")])
    assert any(path.endswith("bad_wallclock.py") for path in found)


def test_missing_path_raises():
    with pytest.raises(FileNotFoundError):
        discover_files([str(FIXTURES / "no_such_dir")])


def test_unknown_rule_id_raises_keyerror():
    with pytest.raises(KeyError):
        get_rule("RL999")
    with pytest.raises(KeyError):
        run_lint([str(FIXTURES / "rl002")], select=["RL999"])


def test_select_restricts_rules():
    result = lint_fixture("rl002", select=["RL001"])
    assert result.rules_run == ("RL001",)
    assert result.findings == []


def test_ignore_removes_rules():
    result = lint_fixture("rl002", ignore=["RL002"])
    assert "RL002" not in result.rules_run
    assert result.findings == []


def test_parse_error_becomes_rl000_finding():
    result = lint_fixture("broken")
    assert [f.rule_id for f in result.findings] == [PARSE_ERROR_ID]
    assert result.exit_code == 1
    assert "does not parse" in result.findings[0].message


def test_inline_suppression():
    result = lint_fixture("suppressed/inline.py")
    assert result.findings == []
    assert result.suppressed == 1


def test_file_wide_suppression():
    result = lint_fixture("suppressed/file_wide.py")
    assert result.findings == []
    assert result.suppressed == 2


def test_all_wildcard_suppression_covers_every_rule():
    result = lint_fixture("suppressed/all_rules.py")
    assert result.findings == []
    # One RL002 (unseeded default_rng) and one RL006 (options={}).
    assert result.suppressed == 2


def test_exit_codes():
    assert lint_fixture("rl004/good_pool.py").exit_code == 0
    assert lint_fixture("rl004/bad_pool.py").exit_code == 1


def test_findings_are_sorted():
    result = lint_fixture("rl001", "rl002")
    keys = [(f.path, f.line, f.col, f.rule_id) for f in result.findings]
    assert keys == sorted(keys)


def test_files_checked_counts_every_file():
    result = lint_fixture("rl001")
    assert result.files_checked == 3


def test_thirteen_rules_registered():
    ids = [rule.id for rule in all_rules()]
    assert ids == sorted(ids)
    assert set(ids) == {
        "RL001", "RL002", "RL003", "RL004", "RL005", "RL006", "RL007",
        "RL008", "RL009", "RL010", "RL011", "RL012", "RL013",
    }
