"""Per-rule behaviour: each bad fixture is caught, each good one is clean."""

import pytest

from repro.analysis import run_lint

from tests.analysis.conftest import REPO_ROOT, lint_fixture

pytestmark = pytest.mark.analysis


def _by_rule(result, rule_id):
    return [f for f in result.findings if f.rule_id == rule_id]


def test_rl001_flags_wallclock_on_hot_paths():
    result = lint_fixture("rl001")
    findings = _by_rule(result, "RL001")
    assert len(findings) == 3
    assert all(f.path.endswith("bad_wallclock.py") for f in findings)
    assert any("time.time" in f.message for f in findings)


def test_rl001_allows_injected_clock_and_engine_timing():
    assert lint_fixture("rl001/repro/sim/good_clock.py").findings == []
    assert lint_fixture("rl001/repro/engine/allowed_timing.py").findings == []


def test_rl002_flags_unseeded_rngs():
    result = lint_fixture("rl002/bad_rng.py")
    assert len(_by_rule(result, "RL002")) == 3


def test_rl002_allows_seeded_rngs():
    assert lint_fixture("rl002/good_rng.py").findings == []


def test_rl003_flags_unfingerprintable_fields():
    result = lint_fixture("rl003")
    findings = _by_rule(result, "RL003")
    assert len(findings) == 2
    messages = " ".join(f.message for f in findings)
    assert "CachedRequest.transform" in messages
    assert "RacySpec.guard" in messages
    # GoodSpec has only describable field types and stays clean.
    assert "GoodSpec" not in messages


def test_rl003_flags_serializer_coverage_gap():
    result = lint_fixture("rl003_serialize")
    findings = _by_rule(result, "RL003")
    assert len(findings) == 1
    assert "resumed_at" in findings[0].message


def test_rl004_flags_unpicklable_pool_usage():
    result = lint_fixture("rl004/bad_pool.py")
    findings = _by_rule(result, "RL004")
    assert len(findings) == 6
    messages = " ".join(f.message for f in findings)
    assert "lambda" in messages
    assert "helper" in messages
    assert "lock" in messages
    assert "open file" in messages


def test_rl004_allows_module_level_targets():
    assert lint_fixture("rl004/good_pool.py").findings == []


def test_rl005_flags_obs_mutation_and_handle_installs():
    result = lint_fixture("rl005")
    findings = _by_rule(result, "RL005")
    assert len(findings) == 4
    messages = " ".join(f.message for f in findings)
    assert "sim.last_probe" in messages
    assert "sim.obs" in messages
    assert "runtime.tracer" in messages


def test_rl005_allows_per_call_instrumentation():
    assert lint_fixture("rl005/repro/obs/good_exporter.py").findings == []
    assert lint_fixture("rl005/project/good_install.py").findings == []


def test_rl006_flags_mutable_defaults():
    result = lint_fixture("rl006/bad_defaults.py")
    findings = _by_rule(result, "RL006")
    assert len(findings) == 5
    messages = " ".join(f.message for f in findings)
    assert "ConfigSpace()" in messages
    assert "Config.knobs" in messages
    assert "Config.targets" in messages


def test_rl006_allows_none_and_default_factory():
    assert lint_fixture("rl006/good_defaults.py").findings == []


def test_rl007_flags_scalar_estimate_loops_in_core():
    result = lint_fixture("rl007/repro/core/bad_scalar_loop.py")
    findings = _by_rule(result, "RL007")
    assert len(findings) == 3
    assert all("estimate_matrix" in f.message for f in findings)


def test_rl007_allows_matrix_batches_and_helper_fallbacks():
    assert lint_fixture("rl007/repro/core/good_matrix_loop.py").findings == []


def test_rl007_ignores_scalar_loops_outside_core():
    # The same bad code outside repro/core/ is out of the rule's scope.
    result = lint_fixture("rl001/repro/sim/good_clock.py", select=["RL007"])
    assert result.findings == []


def test_rl007_flags_per_tree_predicts_in_runtime():
    result = lint_fixture("rl007/repro/runtime/bad_tree_predict.py")
    findings = _by_rule(result, "RL007")
    # The loop body call, the subscripted trees[0] call, and the alias.
    assert len(findings) == 3
    assert all("RandomForest.predict" in f.message for f in findings)


def test_rl007_allows_forest_predicts_and_non_tree_models():
    result = lint_fixture("rl007/repro/runtime/good_forest_predict.py")
    assert result.findings == []


def test_rl008_flags_trace_format_and_comparator_gaps():
    result = lint_fixture("rl008")
    findings = _by_rule(result, "RL008")
    assert len(findings) == 2
    messages = " ".join(f.message for f in findings)
    # Facet 1: a kernel field the format module never serializes.
    assert "FixtureKernel.warp_occupancy" in messages
    assert "format.py" in messages
    # Facet 2: a decision field the replay comparator never checks.
    assert "RecordedDecision.cache_energy_j" in messages
    assert "replay.py" in messages
    # Fields both sides mention stay clean.
    assert "compute_work" not in messages
    assert "time_s" not in messages


def test_rl008_real_trace_format_covers_kernel_fields():
    """The shipped format/replay modules cover every field (RL008 clean)."""
    result = run_lint(
        [str(REPO_ROOT / "src" / "repro" / "workloads")],
        select=["RL008"],
        root=str(REPO_ROOT),
    )
    assert result.findings == []


def test_rl013_flags_unasserted_apportion_paths():
    result = lint_fixture("rl013/bad")
    findings = _by_rule(result, "RL013")
    assert len(findings) == 2
    messages = " ".join(f.message for f in findings)
    # No assert at all, and an assert that neither sums nor bounds.
    assert "UncheckedAllocator.apportion" in messages
    assert "WrongAssertAllocator.apportion" in messages
    assert all(f.path.endswith("budget.py") for f in findings)


def test_rl013_allows_asserted_apportion_paths():
    """Direct asserts and helper-chain asserts both satisfy the rule."""
    assert lint_fixture("rl013/good").findings == []


def test_rl013_real_allocator_carries_the_assertion():
    """The shipped BudgetAllocator.apportion stays covered (RL013 clean)."""
    result = run_lint(
        [str(REPO_ROOT / "src" / "repro" / "fleet")],
        select=["RL013"],
        root=str(REPO_ROOT),
    )
    assert result.findings == []


def test_shipped_tree_is_clean():
    """The acceptance bar: ``repro lint src`` exits 0 on the repo itself."""
    result = run_lint([str(REPO_ROOT / "src")], root=str(REPO_ROOT))
    assert result.findings == []
    assert result.exit_code == 0
    assert result.files_checked > 50
