"""Reporter behaviour: text formatting, JSON schema stability, round-trip."""

import json

import pytest

from repro.analysis import (
    REPORT_SCHEMA,
    parse_json,
    render_catalogue,
    render_json,
    render_text,
)

from tests.analysis.conftest import lint_fixture

pytestmark = pytest.mark.analysis


def test_json_round_trip_is_lossless():
    result = lint_fixture("rl001", "rl006")
    parsed = parse_json(render_json(result))
    assert parsed == result


def test_json_layout():
    payload = json.loads(render_json(lint_fixture("rl002/bad_rng.py")))
    assert payload["schema"] == REPORT_SCHEMA == 2
    assert payload["tool"] == "repro-lint"
    assert payload["summary"]["findings"] == len(payload["findings"])
    assert payload["summary"]["errors"] == 3
    assert payload["summary"]["baselined"] == 0
    first = payload["findings"][0]
    assert set(first) == {"path", "line", "col", "rule", "severity", "message"}


def test_json_rules_metadata_names_scope_and_index_need():
    payload = json.loads(render_json(lint_fixture("rl002/good_rng.py")))
    by_id = {entry["id"]: entry for entry in payload["rules"]}
    assert set(by_id) == set(payload["rules_run"])
    assert by_id["RL002"]["scope"] == "module"
    assert by_id["RL002"]["needs_index"] is False
    assert by_id["RL009"]["scope"] == "flow"
    assert by_id["RL009"]["needs_index"] is True


def test_unknown_schema_rejected():
    payload = json.loads(render_json(lint_fixture("rl002/good_rng.py")))
    payload["schema"] = REPORT_SCHEMA + 1
    with pytest.raises(ValueError):
        parse_json(json.dumps(payload))


def test_text_report_has_location_lines_and_summary():
    result = lint_fixture("rl001")
    text = render_text(result)
    lines = text.splitlines()
    assert len(lines) == len(result.findings) + 1
    assert lines[0].count(":") >= 3  # path:line:col: id severity: message
    assert "3 files checked" in lines[-1]
    assert "3 errors" in lines[-1]


def test_catalogue_lists_every_rule_with_scope():
    catalogue = render_catalogue()
    for rule_id in (
        "RL001", "RL002", "RL003", "RL004", "RL005", "RL006",
        "RL007", "RL008", "RL009", "RL010", "RL011", "RL012",
    ):
        assert rule_id in catalogue
    assert "(module)" in catalogue
    assert "(flow, needs project index)" in catalogue
