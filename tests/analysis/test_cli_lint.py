"""End-to-end ``repro lint`` CLI behaviour."""

import json

import pytest

from repro.cli import main

from tests.analysis.conftest import FIXTURES, REPO_ROOT

pytestmark = pytest.mark.analysis


def test_lint_bad_fixture_json_exit_one(capsys):
    code = main(["lint", str(FIXTURES / "rl002" / "bad_rng.py"), "--format", "json"])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["tool"] == "repro-lint"
    assert payload["summary"]["errors"] == 3


def test_lint_good_fixture_exit_zero(capsys):
    code = main(["lint", str(FIXTURES / "rl004" / "good_pool.py")])
    assert code == 0
    assert "0 findings" in capsys.readouterr().out


def test_list_rules(capsys):
    code = main(["lint", "--list-rules"])
    assert code == 0
    out = capsys.readouterr().out
    for rule_id in ("RL001", "RL002", "RL003", "RL004", "RL005", "RL006"):
        assert rule_id in out


def test_unknown_rule_exits_two(capsys):
    code = main(["lint", str(FIXTURES / "rl002"), "--select", "RL999"])
    assert code == 2
    assert "RL999" in capsys.readouterr().err


def test_missing_path_exits_two(capsys):
    code = main(["lint", str(FIXTURES / "does_not_exist")])
    assert code == 2
    assert "repro lint:" in capsys.readouterr().err


def test_select_and_ignore_flags(capsys):
    code = main(
        ["lint", str(FIXTURES / "rl002" / "bad_rng.py"), "--ignore", "RL002"]
    )
    assert code == 0


def test_lint_shipped_src_exits_zero(capsys):
    code = main(["lint", str(REPO_ROOT / "src"), "--format", "json"])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["findings"] == 0
