"""Shared helpers for the lint-framework test suite.

The fixture trees under ``fixtures/`` mirror the package layout the
path-scoped rules expect (``.../repro/sim/...`` and so on), so the same
rule code runs unchanged against the real tree and the fixtures.
"""

from pathlib import Path

from repro.analysis import run_lint

#: Repository root (tests/analysis/conftest.py -> repo).
REPO_ROOT = Path(__file__).resolve().parents[2]

#: Directory holding the per-rule fixture trees.
FIXTURES = Path(__file__).resolve().parent / "fixtures"


def lint_fixture(*names, select=None, ignore=None):
    """Lint one or more fixture files/directories by name.

    Names are relative to :data:`FIXTURES`; the repo root is passed as
    the scoping root so fixture paths look like
    ``tests/analysis/fixtures/rl001/repro/sim/...`` to the rules.
    """
    paths = [str(FIXTURES / name) for name in names]
    return run_lint(paths, select=select, ignore=ignore, root=str(REPO_ROOT))
