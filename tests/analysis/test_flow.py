"""Flow-engine unit tests: CFG construction, fixpoints, annotations."""

import ast
import textwrap

import pytest

from repro.analysis.flow import (
    ForwardAnalysis,
    build_cfg,
    held_lock_states,
    lock_token,
    module_flow,
    run_forward,
    scan_annotation_comments,
)
from repro.analysis.index import build_module

pytestmark = pytest.mark.analysis


def _func(source):
    node = ast.parse(textwrap.dedent(source)).body[0]
    assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    return node


def _flow_func(source, name, tmp_path):
    path = tmp_path / "repro" / "mod.py"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    module = build_module(str(path), root=str(tmp_path))
    flow = module_flow(module)
    return next(f for f in flow.functions if f.name == name)


# -- CFG construction ---------------------------------------------------------


def test_cfg_straight_line_reaches_exit():
    cfg = build_cfg(_func("""
        def f(x):
            y = x + 1
            return y
    """))
    kinds = [atom.kind for _, atom in cfg.atoms()]
    assert kinds == ["stmt", "stmt"]
    # The return's only successor is the exit block.
    ret = next(
        b for b in cfg.blocks.values()
        if b.atom is not None and isinstance(b.atom.node, ast.Return)
    )
    assert ret.succ == [cfg.exit]
    assert cfg.blocks[cfg.exit].atom is None


def test_cfg_if_has_two_way_branch_and_join():
    cfg = build_cfg(_func("""
        def f(x):
            if x:
                a = 1
            else:
                a = 2
            return a
    """))
    test = next(
        b for b in cfg.blocks.values()
        if b.atom is not None and b.atom.kind == "test"
    )
    assert len(test.succ) == 2


def test_cfg_while_loop_has_back_edge():
    cfg = build_cfg(_func("""
        def f(n):
            while n:
                n = n - 1
            return n
    """))
    test = next(
        b for b in cfg.blocks.values()
        if b.atom is not None and b.atom.kind == "test"
    )
    body = next(
        b for b in cfg.blocks.values()
        if b.atom is not None and isinstance(b.atom.node, ast.Assign)
    )
    assert body.succ == [test.id]  # the loop's back edge


def test_cfg_with_emits_enter_and_exit_atoms():
    cfg = build_cfg(_func("""
        def f(lock):
            with lock:
                pass
    """))
    kinds = [atom.kind for _, atom in cfg.atoms()]
    assert "with-enter" in kinds
    assert "with-exit" in kinds


def test_cfg_finally_is_duplicated_per_continuation():
    cfg = build_cfg(_func("""
        def f(x):
            try:
                if x:
                    return 1
                y = risky()
            finally:
                cleanup()
            return 0
    """))
    finally_stmt = None
    for _, atom in cfg.atoms():
        node = atom.node
        if (
            isinstance(node, ast.Expr)
            and isinstance(node.value, ast.Call)
            and isinstance(node.value.func, ast.Name)
            and node.value.func.id == "cleanup"
        ):
            finally_stmt = finally_stmt or node
    # return / fall-through / exception each run their own copy of the
    # finally body, so the same AST statement appears in >= 3 blocks.
    copies = sum(
        1 for _, atom in cfg.atoms() if atom.node is finally_stmt
    )
    assert copies >= 3


def test_cfg_uncaught_exception_reaches_raise_exit():
    cfg = build_cfg(_func("""
        def f():
            try:
                risky()
            except KeyError:
                pass
    """))
    # KeyError does not catch everything: some exc edge must reach the
    # raise exit.
    reachable = set()
    frontier = [cfg.entry]
    while frontier:
        block_id = frontier.pop()
        if block_id in reachable:
            continue
        reachable.add(block_id)
        block = cfg.blocks[block_id]
        frontier.extend(block.succ)
        frontier.extend(block.exc_succ)
    assert cfg.raise_exit in reachable


# -- dataflow fixpoint --------------------------------------------------------


class _MayAssign(ForwardAnalysis):
    """May-analysis collecting names ever assigned (tests the worklist)."""

    def entry_state(self, cfg):
        return frozenset()

    def join(self, a, b):
        return a | b

    def transfer(self, atom, state):
        node = atom.node
        if isinstance(node, ast.Assign):
            names = {
                t.id for t in node.targets if isinstance(t, ast.Name)
            }
            return state | names
        return state


def test_fixpoint_converges_on_loop():
    cfg = build_cfg(_func("""
        def f(n):
            while n:
                a = 1
                b = 2
            return n
    """))
    states = run_forward(cfg, _MayAssign())
    # After one full trip around the loop, both names flow back into
    # the loop test — requiring a second visit (a genuine fixpoint).
    test = next(
        b for b in cfg.blocks.values()
        if b.atom is not None and b.atom.kind == "test"
    )
    assert states[test.id] == frozenset({"a", "b"})
    assert states[cfg.exit] == frozenset({"a", "b"})


def test_unreachable_code_has_no_state():
    cfg = build_cfg(_func("""
        def f():
            return 1
            x = dead()
    """))
    dead = [
        b for b in cfg.blocks.values()
        if b.atom is not None and isinstance(b.atom.node, ast.Assign)
    ]
    states = run_forward(cfg, _MayAssign())
    for block in dead:
        assert block.id not in states


# -- lock states (must-analysis) ----------------------------------------------


def test_held_locks_intersect_at_joins(tmp_path):
    func = _flow_func("""
        def f(self, fast):
            if fast:
                with self._lock:
                    pass
            probe = 1
    """, "f", tmp_path)
    cfg = func.cfg()
    states = held_lock_states(func)
    probe = next(
        b for b in cfg.blocks.values()
        if b.atom is not None and isinstance(b.atom.node, ast.Assign)
    )
    # Held on one branch only -> not held at the join.
    assert states[probe.id] == frozenset()


def test_held_locks_survive_loops(tmp_path):
    func = _flow_func("""
        def f(self, items):
            with self._lock:
                for item in items:
                    probe = item
    """, "f", tmp_path)
    cfg = func.cfg()
    states = held_lock_states(func)
    probe = next(
        b for b in cfg.blocks.values()
        if b.atom is not None and isinstance(b.atom.node, ast.Assign)
    )
    assert states[probe.id] == frozenset({"self.lock"})


# -- annotations --------------------------------------------------------------


def test_lock_token_normalizes_leading_underscores():
    assert lock_token("self._lock") == "self.lock"
    assert lock_token("self.lock") == "self.lock"
    assert lock_token("registry.tree_lock") == "registry.tree_lock"
    assert lock_token("self.data") is None


def test_annotation_comments_attach_to_next_def():
    source = textwrap.dedent("""
        # repro-lint: requires-lock=_lock
        def merge_series(self):
            pass
    """)
    annotations = scan_annotation_comments(source)
    assert annotations == {2: {"requires-lock": "_lock"}}


def test_unlocked_suffix_implies_requires_lock(tmp_path):
    func = _flow_func("""
        class R:
            def inc_unlocked(self):
                pass
    """, "inc_unlocked", tmp_path)
    assert func.requires_lock == "lock"
