"""End-to-end integration tests of the full power-management pipeline.

Uses the oracle predictor (no slow forest training) over real Table-IV
benchmarks, driving the full architecture: Turbo Core reference, PPK,
MPC profiling + steady state, and the theoretically-optimal plan.
"""

import pytest

from repro.core.manager import MPCPowerManager
from repro.core.oracle import solve_theoretically_optimal
from repro.core.policies import PlannedPolicy, PPKPolicy
from repro.ml.predictors import OraclePredictor
from repro.sim.metrics import energy_savings_pct, speedup
from repro.sim.simulator import Simulator
from repro.sim.turbocore import TurboCorePolicy
from repro.workloads.suites import benchmark


@pytest.fixture(scope="module")
def sim():
    return Simulator()


def _setup(sim, name):
    app = benchmark(name)
    turbo = sim.run(app, TurboCorePolicy(tdp_w=sim.apu.tdp_w))
    target = turbo.instructions / turbo.kernel_time_s
    oracle = OraclePredictor(sim.apu, app.unique_kernels)
    return app, turbo, target, oracle


class TestRegularBenchmark:
    NAME = "mandelbulbGPU"

    def test_all_policies_save_energy(self, sim):
        app, turbo, target, oracle = _setup(sim, self.NAME)
        ppk = sim.run(app, PPKPolicy(target, oracle))
        manager = MPCPowerManager(target, oracle, overhead_model=sim.overhead)
        sim.run(app, manager)
        mpc = sim.run(app, manager)
        plan = solve_theoretically_optimal(app, sim.apu, target)
        to = sim.run(app, PlannedPolicy(plan.configs), charge_overhead=False)
        for run in (ppk, mpc, to):
            assert energy_savings_pct(run, turbo) > 10.0

    def test_mpc_matches_ppk_on_regular_apps(self, sim):
        # The paper: future knowledge is worthless for single-kernel apps.
        app, turbo, target, oracle = _setup(sim, self.NAME)
        ppk = sim.run(app, PPKPolicy(target, oracle))
        manager = MPCPowerManager(target, oracle, overhead_model=sim.overhead)
        sim.run(app, manager)
        mpc = sim.run(app, manager)
        assert abs(
            energy_savings_pct(mpc, turbo) - energy_savings_pct(ppk, turbo)
        ) < 5.0

    def test_to_dominates_in_energy(self, sim):
        app, turbo, target, oracle = _setup(sim, self.NAME)
        manager = MPCPowerManager(target, oracle, overhead_model=sim.overhead)
        sim.run(app, manager)
        mpc = sim.run(app, manager)
        plan = solve_theoretically_optimal(app, sim.apu, target)
        to = sim.run(app, PlannedPolicy(plan.configs), charge_overhead=False)
        assert to.energy_j <= mpc.energy_j * 1.02


class TestIrregularBenchmark:
    NAME = "EigenValue"

    def test_mpc_beats_ppk(self, sim):
        app, turbo, target, oracle = _setup(sim, self.NAME)
        ppk = sim.run(app, PPKPolicy(target, oracle))
        manager = MPCPowerManager(target, oracle, overhead_model=sim.overhead)
        sim.run(app, manager)
        mpc = sim.run(app, manager)
        # MPC must not lose on both axes, and must win on at least one.
        d_energy = mpc.energy_j <= ppk.energy_j * 1.01
        d_speed = mpc.total_time_s <= ppk.total_time_s * 1.01
        assert d_energy and d_speed
        assert (mpc.energy_j < ppk.energy_j * 0.995) or (
            mpc.total_time_s < ppk.total_time_s * 0.995
        )

    def test_mpc_near_target_throughput(self, sim):
        app, turbo, target, oracle = _setup(sim, self.NAME)
        manager = MPCPowerManager(target, oracle, overhead_model=sim.overhead)
        sim.run(app, manager)
        mpc = sim.run(app, manager)
        achieved = mpc.instructions / mpc.kernel_time_s
        assert achieved >= 0.90 * target


class TestOverheadAccounting:
    def test_mpc_overheads_bounded_by_alpha(self, sim):
        app, turbo, target, oracle = _setup(sim, "kmeans")
        manager = MPCPowerManager(
            target, oracle, alpha=0.05, overhead_model=sim.overhead
        )
        sim.run(app, manager)
        mpc = sim.run(app, manager)
        assert mpc.overhead_time_s <= 0.05 * turbo.total_time_s

    def test_profiling_run_is_ppk_like(self, sim):
        app, turbo, target, oracle = _setup(sim, "kmeans")
        manager = MPCPowerManager(target, oracle, overhead_model=sim.overhead)
        first = sim.run(app, manager)
        ppk = sim.run(app, PPKPolicy(target, oracle))
        # Same policy logic on the first invocation: identical configs.
        assert [r.config for r in first.launches] == [r.config for r in ppk.launches]


class TestTheoreticalOptimalAcrossSuite:
    @pytest.mark.parametrize("name", ["Spmv", "kmeans", "lbm", "hybridsort"])
    def test_to_feasible_and_saves_energy(self, sim, name):
        app, turbo, target, oracle = _setup(sim, name)
        plan = solve_theoretically_optimal(app, sim.apu, target)
        to = sim.run(app, PlannedPolicy(plan.configs), charge_overhead=False)
        assert plan.feasible
        assert speedup(to, turbo) >= 0.999
        assert energy_savings_pct(to, turbo) > 15.0
