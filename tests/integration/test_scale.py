"""Scale test: the manager on a long application.

The paper's applications top out around 30 launches; a resident runtime
must also handle long-running services that launch hundreds of kernels
without its per-decision cost or memory growing out of control.
"""

import time

import pytest

from repro.core.manager import MPCPowerManager
from repro.ml.predictors import OraclePredictor
from repro.sim.simulator import Simulator
from repro.sim.turbocore import TurboCorePolicy
from repro.workloads.app import Application, Category
from repro.workloads.generator import KernelPopulationGenerator


@pytest.fixture(scope="module")
def long_app():
    generator = KernelPopulationGenerator(seed=17)
    population = generator.population(12)
    # A 150-launch irregular mix cycling through 12 distinct kernels.
    kernels = tuple(population[i % len(population)] for i in range(150))
    return Application(
        "long-service", "scale-test", Category.IRREGULAR_NON_REPEATING,
        kernels=kernels, pattern="mix150",
    )


class TestScale:
    def test_long_run_completes_and_behaves(self, long_app):
        sim = Simulator()
        turbo = sim.run(long_app, TurboCorePolicy(tdp_w=sim.apu.tdp_w))
        target = turbo.instructions / turbo.kernel_time_s
        manager = MPCPowerManager(
            target, OraclePredictor(sim.apu, long_app.unique_kernels),
            overhead_model=sim.overhead,
        )

        start = time.time()
        sim.run(long_app, manager)            # profiling
        steady = sim.run(long_app, manager)   # MPC
        elapsed = time.time() - start

        assert len(steady) == 150
        assert steady.energy_j < turbo.energy_j
        assert steady.total_time_s < 1.25 * turbo.total_time_s
        # The adaptive horizon keeps the optimizer overhead bounded.
        assert steady.overhead_time_s < 0.06 * turbo.total_time_s
        # And the whole simulation stays interactive.
        assert elapsed < 120.0

    def test_pattern_store_stays_compact(self, long_app):
        sim = Simulator()
        turbo = sim.run(long_app, TurboCorePolicy(tdp_w=sim.apu.tdp_w))
        target = turbo.instructions / turbo.kernel_time_s
        manager = MPCPowerManager(
            target, OraclePredictor(sim.apu, long_app.unique_kernels),
            overhead_model=sim.overhead,
        )
        sim.run(long_app, manager)
        sim.run(long_app, manager)
        # One record per dissimilar kernel, not per launch: the paper's
        # 80-byte-per-kernel store stays tiny.
        assert manager.extractor.num_records <= 2 * len(long_app.unique_kernels)
        assert manager.extractor.storage_bytes <= 2 * 80 * len(long_app.unique_kernels)
