"""Robustness: the manager on workloads it was never calibrated against.

The extended collection (repro.workloads.extended) rebuilds benchmarks
from the paper's wider 73-app corpus.  None of them informed any tuning
in this repository, so they act as a held-out sanity sweep: on every
one, MPC must save energy against Turbo Core without pathological
performance loss, honour its overhead bound, and never crash.
"""

import pytest

from repro.core.manager import MPCPowerManager
from repro.core.policies import PPKPolicy
from repro.ml.predictors import OraclePredictor
from repro.sim.metrics import energy_savings_pct, speedup
from repro.sim.simulator import Simulator
from repro.sim.turbocore import TurboCorePolicy
from repro.workloads.extended import EXTENDED_BENCHMARK_NAMES, extended_benchmark


@pytest.fixture(scope="module")
def sim():
    return Simulator()


def _mpc_steady(sim, app, target):
    manager = MPCPowerManager(
        target, OraclePredictor(sim.apu, app.unique_kernels),
        overhead_model=sim.overhead,
    )
    sim.run(app, manager)
    return sim.run(app, manager)


class TestExtendedCollection:
    def test_collection_size_and_shape(self):
        assert len(EXTENDED_BENCHMARK_NAMES) >= 15
        for name in EXTENDED_BENCHMARK_NAMES:
            app = extended_benchmark(name)
            assert len(app) >= 6
            assert app.total_instructions > 0

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            extended_benchmark("doom3")

    def test_no_overlap_with_evaluation_suite(self):
        from repro.workloads.suites import BENCHMARK_NAMES

        assert not set(EXTENDED_BENCHMARK_NAMES) & set(BENCHMARK_NAMES)


@pytest.mark.parametrize("name", EXTENDED_BENCHMARK_NAMES)
class TestRobustSweep:
    def test_mpc_saves_energy_with_bounded_loss(self, sim, name):
        app = extended_benchmark(name)
        turbo = sim.run(app, TurboCorePolicy(tdp_w=sim.apu.tdp_w))
        target = turbo.instructions / turbo.kernel_time_s
        steady = _mpc_steady(sim, app, target)
        assert energy_savings_pct(steady, turbo) > 5.0
        assert speedup(steady, turbo) > 0.85
        assert steady.overhead_time_s < 0.05 * turbo.total_time_s

    def test_mpc_not_worse_than_ppk_everywhere(self, sim, name):
        app = extended_benchmark(name)
        turbo = sim.run(app, TurboCorePolicy(tdp_w=sim.apu.tdp_w))
        target = turbo.instructions / turbo.kernel_time_s
        ppk = sim.run(app, PPKPolicy(target, OraclePredictor(sim.apu, app.unique_kernels)))
        steady = _mpc_steady(sim, app, target)
        # MPC may trade a little energy for performance or vice versa,
        # but must not lose clearly on both axes at once.
        loses_energy = steady.energy_j > ppk.energy_j * 1.03
        loses_time = steady.total_time_s > ppk.total_time_s * 1.03
        assert not (loses_energy and loses_time)
