"""Cross-invocation drift: the counter-feedback EMA at work.

The paper's pattern extractor "dynamically updates the stored kernel
performance counter values based on the performance counter feedback of
the last executed kernel".  That only matters when an application's
behaviour drifts between invocations (same kernel structure, different
inputs).  These tests profile on one input set, then re-invoke on a
drifted variant, and check that (a) positional pattern replay still
drives MPC sensibly and (b) repeated exposure to the drifted input
improves the stored knowledge rather than corrupting it.
"""

import pytest

from repro.core.manager import MPCPowerManager
from repro.ml.predictors import OraclePredictor
from repro.sim.metrics import energy_savings_pct, speedup
from repro.sim.simulator import Simulator
from repro.sim.turbocore import TurboCorePolicy
from repro.workloads.app import Application, Category
from repro.workloads.kernel import KernelSpec, ScalingClass


def _variant(scale: float) -> Application:
    compute = KernelSpec(
        "drift_compute", ScalingClass.COMPUTE, 4.0 * scale, 0.1 * scale,
        parallel_fraction=0.98,
    )
    memory = KernelSpec(
        "drift_memory", ScalingClass.MEMORY, 0.5 * scale, 0.8 * scale,
        parallel_fraction=0.9,
    )
    return Application(
        "drift-app", "unit", Category.IRREGULAR_REPEATING,
        kernels=(compute, memory) * 4, pattern="(AB)4",
    )


@pytest.fixture(scope="module")
def setup():
    sim = Simulator()
    base = _variant(1.0)
    drifted = _variant(1.3)  # 30% bigger inputs on later invocations
    kernels = base.unique_kernels + drifted.unique_kernels
    oracle = OraclePredictor(sim.apu, kernels)
    turbo = sim.run(drifted, TurboCorePolicy(tdp_w=sim.apu.tdp_w))
    target = turbo.instructions / turbo.kernel_time_s
    return sim, base, drifted, oracle, turbo, target


class TestDriftAdaptation:
    def test_drifted_runs_stay_sane(self, setup):
        sim, base, drifted, oracle, turbo, target = setup
        manager = MPCPowerManager(target, oracle, overhead_model=sim.overhead)
        sim.run(base, manager)              # profile on the old input
        first_drifted = sim.run(drifted, manager)
        assert energy_savings_pct(first_drifted, turbo) > 5.0
        assert speedup(first_drifted, turbo) > 0.85

    def test_feedback_updates_stored_knowledge(self, setup):
        sim, base, drifted, oracle, turbo, target = setup
        manager = MPCPowerManager(target, oracle, overhead_model=sim.overhead)
        sim.run(base, manager)

        before = max(
            record.instructions
            for record in manager.extractor._records.values()
        )
        sim.run(drifted, manager)
        # The profile is archived at the second run's start.
        assert manager.extractor.recorded_order is not None
        # The drifted kernels bin to new signatures or refresh existing
        # records; either way the store now reflects the larger inputs.
        after = max(
            record.instructions
            for record in manager.extractor._records.values()
        )
        assert after > before * 1.05

    def test_repeated_drifted_invocations_do_not_degrade(self, setup):
        sim, base, drifted, oracle, turbo, target = setup
        manager = MPCPowerManager(target, oracle, overhead_model=sim.overhead)
        sim.run(base, manager)
        runs = [sim.run(drifted, manager) for _ in range(4)]
        speeds = [speedup(r, turbo) for r in runs]
        # Later invocations (with refreshed counters) are at least as
        # good as the first drifted one.
        assert speeds[-1] >= speeds[0] - 0.02
        assert all(energy_savings_pct(r, turbo) > 5.0 for r in runs)
