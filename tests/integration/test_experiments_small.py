"""Fast structural checks of every figure module on a reduced context.

Runs each experiment over two benchmarks with an oracle predictor
(no forest training), verifying table structure and basic sanity.  The
full-suite shape checks live in ``benchmarks/``.
"""

import pytest

from repro.engine import ExperimentEngine
from repro.engine.matrix import requests_for
from repro.experiments import fig4_limit_study, fig8_mpc_vs_turbo
from repro.experiments import fig9_mpc_vs_ppk, fig10_gpu_energy
from repro.experiments import fig11_amortization, fig12_theoretical_limit
from repro.experiments import fig13_prediction_error, fig14_overheads
from repro.experiments import fig15_horizon, fig2_scaling, fig3_throughput
from repro.experiments.common import ExperimentContext
from repro.ml.predictors import OraclePredictor
from repro.workloads.suites import benchmark

NAMES = ["NBody", "kmeans"]

#: Experiment keys this module exercises on the shared context; their
#: policy runs are prefetched in one engine pass and replayed from the
#: on-disk cache on warm reruns of the suite.
KEYS = ["fig4", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
        "fig14", "fig15"]


@pytest.fixture(scope="module")
def ctx():
    kernels = []
    for name in NAMES + ["Spmv", "hybridsort"]:
        kernels.extend(benchmark(name).unique_kernels)
    engine = ExperimentEngine(jobs=1, cache_dir=".cache")
    context = ExperimentContext(benchmark_names=NAMES,
                                cache_dir=".cache", engine=engine)
    # Inject a training-free predictor covering the context's kernels.
    context.predictor = OraclePredictor(context.apu, kernels)
    engine.prefetch(context, requests_for(KEYS, context))
    return context


class TestFigureStructure:
    def test_fig2(self, ctx):
        table = fig2_scaling.fig2(ctx)
        assert len(table.rows) == 4 * 4  # 4 classes x 4 NB states

    def test_fig3_uses_its_own_benchmarks(self):
        sub = ExperimentContext(benchmark_names=list(fig3_throughput.FIG3_BENCHMARKS))
        series = fig3_throughput.throughput_series(sub, "kmeans")
        assert len(series) == 21

    def test_fig4(self, ctx):
        table = fig4_limit_study.fig4(ctx)
        assert table.column("Benchmark") == NAMES
        assert all(s > 0.9 for s in table.column("TO speedup"))

    def test_fig8_and_summary(self, ctx):
        table = fig8_mpc_vs_turbo.fig8(ctx)
        assert len(table.rows) == len(NAMES)
        summary = fig8_mpc_vs_turbo.fig8_summary(ctx)
        assert 0 < summary["mpc_energy_savings_pct"] < 100

    def test_fig9_summary_keys(self, ctx):
        summary = fig9_mpc_vs_ppk.fig9_summary(ctx)
        assert set(summary) == {
            "energy_savings_pct", "speedup",
            "irregular_energy_savings_pct", "irregular_speedup",
        }

    def test_fig10_split_sums_to_100(self, ctx):
        summary = fig10_gpu_energy.fig10_summary(ctx)
        total = (summary["cpu_share_of_savings_pct"]
                 + summary["gpu_share_of_savings_pct"])
        assert total == pytest.approx(100.0)

    def test_fig11_matches_manual_accounting(self, ctx):
        deltas = fig11_amortization.amortized_deltas(ctx, "kmeans", 1)
        first = ctx.mpc_first("kmeans")
        steady = ctx.mpc("kmeans")
        ppk = ctx.ppk("kmeans")
        expected = (2 * ppk.total_time_s) / (first.total_time_s + steady.total_time_s)
        assert deltas["speedup"] == pytest.approx(expected)

    def test_fig11_converges_to_steady_state(self, ctx):
        big = fig11_amortization.amortized_deltas(ctx, "kmeans", 10_000)
        steady = fig11_amortization.steady_state_deltas(ctx, "kmeans")
        assert big["speedup"] == pytest.approx(steady["speedup"], rel=1e-3)

    def test_fig11_rejects_negative(self, ctx):
        with pytest.raises(ValueError):
            fig11_amortization.amortized_deltas(ctx, "kmeans", -1)

    def test_fig12_capture_ratio(self, ctx):
        summary = fig12_theoretical_limit.fig12_summary(ctx)
        assert 0.5 < summary["energy_capture_ratio"] <= 1.05

    def test_fig13_labels(self, ctx):
        summary = fig13_prediction_error.fig13_summary(ctx)
        assert set(summary) == {"RF", "Err_15%_10%", "Err_5%", "Err_0%"}

    def test_fig13_rejects_unknown_variant(self, ctx):
        with pytest.raises(KeyError):
            fig13_prediction_error._variant_run(ctx, "kmeans", "Err_99%")

    def test_fig14_overheads_nonnegative(self, ctx):
        summary = fig14_overheads.fig14_summary(ctx)
        assert summary["max_perf_overhead_pct"] >= summary["mean_perf_overhead_pct"] >= 0

    def test_fig15_bounds(self, ctx):
        summary = fig15_horizon.fig15_summary(ctx)
        for value in summary.values():
            assert 0.0 <= value <= 100.0
