"""Tests for SessionManager.step_batch: batching edge cases.

The float-for-float equivalence of batched vs. streaming decisions is
asserted per adversarial family in
``tests/differential/test_step_batch.py``; here the batching machinery
itself is exercised — input validation, fault isolation of the
advisory prefetch, preload cleanup, and the batching telemetry.
"""

import pytest

from repro.core.policies import PPKPolicy
from repro.ml.predictors import OraclePredictor
from repro.obs import make_instrumentation
from repro.runtime.events import launch_events
from repro.runtime.manager import SessionManager

from .conftest import APP, turbo_target

pytestmark = pytest.mark.runtime


def _manager(sim, obs=None):
    return SessionManager(
        apu=sim.apu, counters=sim.counters, overhead=sim.overhead, obs=obs
    )


def _ppk(sim):
    return PPKPolicy(
        turbo_target(sim), OraclePredictor(sim.apu, APP.unique_kernels)
    )


def _sessions(manager, sim, ids):
    for session_id in ids:
        manager.add_session(session_id, _ppk(sim))
    return {
        session_id: list(launch_events(APP, session_id=session_id))
        for session_id in ids
    }


def test_outcomes_in_input_order_and_equal_to_streaming(sim):
    batched = _manager(sim)
    events = _sessions(batched, sim, ["a", "b", "c"])
    streaming = _manager(sim)
    _sessions(streaming, sim, ["a", "b", "c"])

    for step in range(len(APP.kernels)):
        batch = [events[sid][step] for sid in ("c", "a", "b")]
        outcomes = batched.step_batch(batch)
        assert [o.session_id for o in outcomes] == ["c", "a", "b"]
        for event, outcome in zip(batch, outcomes):
            assert outcome.record == streaming.dispatch(event).record


def test_empty_batch_is_a_noop(sim):
    assert _manager(sim).step_batch([]) == []


def test_duplicate_session_rejected_by_name(sim):
    manager = _manager(sim)
    events = _sessions(manager, sim, ["a"])
    with pytest.raises(ValueError, match="'a' appears more than once"):
        manager.step_batch([events["a"][0], events["a"][1]])


def test_unknown_session_rejected(sim):
    manager = _manager(sim)
    events = _sessions(manager, sim, ["a"])
    ghost = [e for e in launch_events(APP, session_id="ghost")]
    with pytest.raises(KeyError, match="ghost"):
        manager.step_batch([events["a"][0], ghost[0]])


def test_failing_prefetch_falls_back_to_lazy_sweep(sim):
    class ExplosivePrefetch(PPKPolicy):
        def prefetch_counters(self, index):
            raise RuntimeError("prefetch boom")

    batched = _manager(sim)
    batched.add_session(
        "a",
        ExplosivePrefetch(
            turbo_target(sim), OraclePredictor(sim.apu, APP.unique_kernels)
        ),
    )
    streaming = _manager(sim)
    _sessions(streaming, sim, ["a"])
    for event in launch_events(APP, session_id="a"):
        [outcome] = batched.step_batch([event])
        assert outcome.record == streaming.dispatch(event).record


def test_preloads_cleared_after_batch(sim):
    manager = _manager(sim)
    events = _sessions(manager, sim, ["a", "b"])
    for step in range(3):
        manager.step_batch([events["a"][step], events["b"][step]])
        for session_id in ("a", "b"):
            optimizer = manager.session(session_id).policy.optimizer
            assert optimizer._preloaded == {}


def test_batching_telemetry_counts_sweeps_and_dedup(sim):
    obs = make_instrumentation()
    manager = _manager(sim, obs=obs)
    # Sessions group only when they share a predictor *instance* (and
    # lattice), so sharing one oracle is what enables dedup here.
    predictor = OraclePredictor(sim.apu, APP.unique_kernels)
    target = turbo_target(sim)
    for session_id in ("a", "b"):
        manager.add_session(session_id, PPKPolicy(target, predictor))
    events = {
        session_id: list(launch_events(APP, session_id=session_id))
        for session_id in ("a", "b")
    }
    # Step 0 decides fail-safe (no history: nothing to prefetch); step 1
    # has both sessions sweeping the same kernel's counters -> one
    # shared sweep, one dedup hit.
    manager.step_batch([events["a"][0], events["b"][0]])
    manager.step_batch([events["a"][1], events["b"][1]])
    registry = obs.registry
    assert registry.counter("repro_runtime_batched_steps_total").value() == 2
    assert registry.counter("repro_runtime_batched_launches_total").value() == 4
    assert registry.counter("repro_runtime_batched_sweeps_total").value() == 1
    assert registry.counter("repro_runtime_batched_dedup_hits_total").value() == 1
