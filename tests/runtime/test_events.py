"""Tests for the typed kernel-launch event protocol."""

import pytest

from repro.hardware.config import FAILSAFE_CONFIG
from repro.core.policies import FixedConfigPolicy
from repro.runtime.events import KernelLaunch, launch_events
from repro.sim.simulator import Simulator

from .conftest import APP

pytestmark = pytest.mark.runtime


def test_launch_events_enumerate_the_app():
    events = list(launch_events(APP, "s1"))
    assert [e.index for e in events] == list(range(len(APP)))
    assert [e.spec for e in events] == list(APP.kernels)
    assert all(e.session_id == "s1" for e in events)


def test_default_session_id_is_empty():
    first = next(launch_events(APP))
    assert first.session_id == ""


def test_negative_index_rejected():
    with pytest.raises(ValueError, match="non-negative"):
        KernelLaunch(index=-1, spec=APP.kernels[0])


def test_events_are_immutable():
    event = next(launch_events(APP))
    with pytest.raises(Exception):
        event.index = 3


def test_outcome_carries_record_and_identity():
    session = Simulator().session(
        FixedConfigPolicy(FAILSAFE_CONFIG), session_id="s7", app_name="alt"
    )
    outcome = session.process(next(launch_events(APP, "s7")))
    assert outcome.session_id == "s7"
    assert outcome.app_name == "alt"
    assert outcome.policy_name == "Fixed"
    assert outcome.index == 0
    assert outcome.record.config == FAILSAFE_CONFIG
    assert not outcome.fallback
