"""Differential test: periodic snapshot/restore vs. uninterrupted replay.

``test_snapshot.py`` migrates a session once, at one hand-picked cut.
This harness is adversarial about *where* the cut lands: the session is
snapshotted, JSON round-tripped, and restored onto a fresh host after
every k-th launch, for several k — covering cuts inside profiling,
at invocation boundaries, and mid-steady-state.  Every decision must be
identical to the uninterrupted run's.
"""

import json

import pytest

from repro.runtime.events import launch_events

from .conftest import APP, make_manager, turbo_target

pytestmark = [pytest.mark.runtime, pytest.mark.traces]

#: Invocations each differential run covers (profiling + steady state).
INVOCATIONS = 3


def _uninterrupted(sim, target):
    session = sim.session(make_manager(sim, target=target))
    records = []
    for _ in range(INVOCATIONS):
        for event in launch_events(APP):
            records.append(session.process(event).record)
    return records


def _migrating_every(sim, target, k):
    """Replay, moving to a fresh host after every k-th launch."""
    session = sim.session(make_manager(sim, target=target), session_id="m0")
    records = []
    processed = 0
    for _ in range(INVOCATIONS):
        for event in launch_events(APP):
            records.append(session.process(event).record)
            processed += 1
            if processed % k == 0:
                payload = json.loads(json.dumps(session.snapshot()))
                session = sim.session(
                    make_manager(sim, target=target),
                    session_id=f"m{processed}",
                )
                session.restore(payload)
    return records


@pytest.mark.parametrize("k", [1, 2, 3, 5])
def test_snapshot_every_kth_launch_is_decision_invariant(sim, k):
    target = turbo_target(sim)
    reference = _uninterrupted(sim, target)
    migrated = _migrating_every(sim, target, k)
    assert len(reference) == INVOCATIONS * len(APP)
    assert migrated == reference


def test_snapshot_at_every_single_launch_covers_all_lifecycle_states(sim):
    """k=1 migrates inside profiling, across the freeze, and in MPC
    steady state; the end-state statistics must match too."""
    target = turbo_target(sim)
    session = sim.session(make_manager(sim, target=target), session_id="s")
    for _ in range(INVOCATIONS):
        for event in launch_events(APP):
            session.process(event)
    reference_stats = session.stats

    migrating = sim.session(make_manager(sim, target=target), session_id="m")
    processed = 0
    for _ in range(INVOCATIONS):
        for event in launch_events(APP):
            migrating.process(event)
            processed += 1
            payload = json.loads(json.dumps(migrating.snapshot()))
            fresh = sim.session(
                make_manager(sim, target=target), session_id=f"m{processed}"
            )
            fresh.restore(payload)
            migrating = fresh
    assert migrating.stats == reference_stats
