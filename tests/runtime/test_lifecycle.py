"""Tests for the PROFILING -> FROZEN -> MPC lifecycle state machine."""

import pytest

from repro.runtime.lifecycle import LifecycleError, PolicyLifecycle, PolicyState

from .conftest import APP, make_manager

pytestmark = pytest.mark.runtime


class TestStateMachine:
    def test_starts_profiling(self):
        assert PolicyLifecycle().state is PolicyState.PROFILING

    def test_legal_walk(self):
        machine = PolicyLifecycle()
        machine.transition(PolicyState.FROZEN)
        assert machine.state is PolicyState.FROZEN
        machine.transition(PolicyState.MPC)
        assert machine.state is PolicyState.MPC

    @pytest.mark.parametrize("start, target", [
        (PolicyState.PROFILING, PolicyState.MPC),
        (PolicyState.PROFILING, PolicyState.PROFILING),
        (PolicyState.FROZEN, PolicyState.PROFILING),
        (PolicyState.FROZEN, PolicyState.FROZEN),
        (PolicyState.MPC, PolicyState.PROFILING),
        (PolicyState.MPC, PolicyState.FROZEN),
        (PolicyState.MPC, PolicyState.MPC),
    ])
    def test_illegal_transitions_raise(self, start, target):
        machine = PolicyLifecycle(start)
        with pytest.raises(LifecycleError, match="illegal lifecycle transition"):
            machine.transition(target)
        assert machine.state is start  # unchanged after the failed attempt

    def test_expect_passes_and_raises(self):
        machine = PolicyLifecycle(PolicyState.FROZEN)
        machine.expect(PolicyState.FROZEN, PolicyState.MPC)
        with pytest.raises(LifecycleError, match="requires lifecycle state"):
            machine.expect(PolicyState.PROFILING)

    def test_repr_names_the_state(self):
        assert "frozen" in repr(PolicyLifecycle(PolicyState.FROZEN))


class TestManagerLifecycle:
    def test_manager_walks_the_machine(self, sim):
        manager = make_manager(sim)
        assert manager.state is PolicyState.PROFILING
        sim.run(APP, manager)
        # The freeze happens when the *next* run begins, not mid-run.
        assert manager.state is PolicyState.PROFILING
        manager.begin_run()
        assert manager.state is PolicyState.FROZEN
        manager.decide(0)
        assert manager.state is PolicyState.MPC

    def test_steady_state_persists_across_runs(self, sim):
        manager = make_manager(sim)
        sim.run(APP, manager)
        sim.run(APP, manager)
        assert manager.state is PolicyState.MPC
        # A new invocation resets per-run cursors but never regresses
        # the lifecycle (transitions are one-way).
        manager.begin_run()
        assert manager.state is PolicyState.MPC
        assert manager.tracker.instructions == 0.0
        assert manager.tracker.time_s == 0.0

    def test_profiled_reflects_lifecycle(self, sim):
        manager = make_manager(sim)
        assert not manager.profiled
        sim.run(APP, manager)
        sim.run(APP, manager)
        assert manager.profiled
