"""Tests for session snapshot/restore: migration across hosts."""

import json

import pytest

from repro.core.policies import FixedConfigPolicy, PlannedPolicy, PPKPolicy
from repro.hardware.config import FAILSAFE_CONFIG, HardwareConfig
from repro.ml.predictors import OraclePredictor
from repro.runtime.events import launch_events
from repro.runtime.lifecycle import PolicyState
from repro.sim.policy import PowerPolicy
from repro.sim.simulator import Simulator
from repro.sim.turbocore import TurboCorePolicy

from .conftest import APP, make_manager, turbo_target

pytestmark = pytest.mark.runtime


def _json_roundtrip(payload):
    """Assert the snapshot is genuinely JSON-able and reload it."""
    return json.loads(json.dumps(payload))


def _migrate_mid_run(sim, make_policy, *, warmup_runs, cut):
    """Run ``warmup_runs`` invocations, then split the next one at ``cut``.

    The uninterrupted session keeps going on the original host; the
    migrated one restores a JSON round-tripped snapshot onto a fresh
    host and processes the remaining events.  Returns both final-run
    traces.
    """
    events = list(launch_events(APP))

    # Reference: one session, never interrupted.
    reference = sim.session(make_policy())
    for _ in range(warmup_runs):
        reference.run(APP)
    ref_result = reference.run(APP)

    # Migrated: identical warmup, snapshot mid-run, restore elsewhere.
    source = sim.session(make_policy(), session_id="mig", app_name=APP.name)
    for _ in range(warmup_runs):
        source.run(APP)
    source.begin_run()
    for event in events[:cut]:
        source.process(event)
    payload = _json_roundtrip(source.snapshot())

    target = sim.session(make_policy(), session_id="other")
    target.restore(payload)
    for event in events[cut:]:
        target.process(event)

    migrated = source.result.launches[:cut] + target.result.launches
    return ref_result.launches, migrated


class TestMPCRoundTrip:
    def test_mid_steady_run_migration_is_exact(self, sim):
        """A restored MPC session reproduces the uninterrupted decisions."""
        target_tp = turbo_target(sim)
        reference, migrated = _migrate_mid_run(
            sim,
            lambda: make_manager(sim, target=target_tp),
            warmup_runs=2, cut=3,
        )
        assert migrated == reference

    def test_snapshot_restores_lifecycle_state(self, sim):
        manager = make_manager(sim)
        sim.run(APP, manager)
        sim.run(APP, manager)
        assert manager.state is PolicyState.MPC
        payload = _json_roundtrip(manager.snapshot())

        clone = make_manager(sim, target=manager.tracker.target_throughput)
        clone.restore(payload)
        assert clone.state is PolicyState.MPC
        assert clone.search_order.order == manager.search_order.order
        assert clone.extractor.num_records == manager.extractor.num_records

    def test_profiling_snapshot_stays_profiling(self, sim):
        manager = make_manager(sim)
        payload = _json_roundtrip(manager.snapshot())
        clone = make_manager(sim, target=manager.tracker.target_throughput)
        clone.restore(payload)
        assert clone.state is PolicyState.PROFILING
        assert clone.search_order is None

    def test_bad_schema_rejected(self, sim):
        manager = make_manager(sim)
        with pytest.raises(ValueError, match="snapshot schema"):
            manager.restore({"schema": 999})


class TestOtherPolicies:
    def test_ppk_roundtrip(self, sim):
        target_tp = turbo_target(sim)

        def policy():
            return PPKPolicy(
                target_tp, OraclePredictor(sim.apu, APP.unique_kernels)
            )

        reference, migrated = _migrate_mid_run(
            sim, policy, warmup_runs=0, cut=4
        )
        assert migrated == reference

    def test_turbo_roundtrip(self, sim):
        def policy():
            return TurboCorePolicy(tdp_w=sim.apu.tdp_w)

        reference, migrated = _migrate_mid_run(
            sim, policy, warmup_runs=0, cut=5
        )
        assert migrated == reference

    def test_stateless_policies_snapshot_empty(self):
        assert FixedConfigPolicy(FAILSAFE_CONFIG).snapshot() == {}
        assert PlannedPolicy([FAILSAFE_CONFIG]).snapshot() == {}

    def test_base_policy_snapshot_not_implemented(self):
        class Opaque(PowerPolicy):
            name = "Opaque"

            def decide(self, index):
                raise NotImplementedError

            def observe(self, observation):
                pass

        with pytest.raises(NotImplementedError, match="session snapshots"):
            Opaque().snapshot()
        with pytest.raises(NotImplementedError, match="session snapshots"):
            Opaque().restore({})


class TestSessionEnvelope:
    def test_session_snapshot_schema_and_position(self, sim):
        session = sim.session(
            FixedConfigPolicy(FAILSAFE_CONFIG), session_id="s", app_name="alt"
        )
        events = list(launch_events(APP))
        session.process(events[0])
        session.process(events[1])
        payload = _json_roundtrip(session.snapshot())
        assert payload["schema"] == 1
        assert payload["session_id"] == "s"
        assert payload["next_index"] == 2
        assert payload["policy"]["name"] == "Fixed"

    def test_policy_name_mismatch_rejected(self, sim):
        payload = sim.session(FixedConfigPolicy(FAILSAFE_CONFIG)).snapshot()
        other = sim.session(TurboCorePolicy())
        with pytest.raises(ValueError, match="snapshot is for policy"):
            other.restore(payload)

    def test_restored_stats_match(self, sim):
        session = Simulator().session(TurboCorePolicy(), session_id="s")
        session.run(APP)
        payload = _json_roundtrip(session.snapshot())
        clone = Simulator().session(TurboCorePolicy())
        clone.restore(payload)
        assert clone.stats == session.stats
        assert clone.session_id == "s"
