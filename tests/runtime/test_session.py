"""Tests for SessionRuntime: parity, streaming, and fault isolation."""

import pytest

from repro.core.policies import FixedConfigPolicy, PPKPolicy
from repro.hardware.config import FAILSAFE_CONFIG
from repro.ml.predictors import OraclePredictor
from repro.runtime.events import launch_events
from repro.sim.simulator import Simulator
from repro.sim.turbocore import TurboCorePolicy

from .conftest import APP, make_manager, turbo_target

pytestmark = pytest.mark.runtime


class _RaisingPredictor:
    """A predictor whose every estimate blows up."""

    def estimate(self, counters, config):
        raise RuntimeError("predictor exploded")

    def estimate_batch(self, counters, configs):
        raise RuntimeError("predictor exploded")


class _RaisingObserver(FixedConfigPolicy):
    """A policy whose telemetry path always fails."""

    def observe(self, observation):
        raise RuntimeError("telemetry lost")


# ----- parity: every driver produces the same trace --------------------------


def _policies(sim, app=APP):
    return {
        "turbo": lambda: TurboCorePolicy(tdp_w=sim.apu.tdp_w),
        "ppk": lambda: PPKPolicy(
            turbo_target(sim, app),
            OraclePredictor(sim.apu, app.unique_kernels),
        ),
        "mpc": lambda: make_manager(sim, app),
    }


@pytest.mark.parametrize("kind", ["turbo", "ppk", "mpc"])
def test_offline_replay_matches_simulator(kind, sim):
    """sim.run and an explicit SessionRuntime produce identical traces."""
    factory = _policies(sim)[kind]
    policy = factory()
    via_sim = [sim.run(APP, policy) for _ in range(2)]
    session = sim.session(factory())
    via_session = [session.run(APP) for _ in range(2)]
    for a, b in zip(via_sim, via_session):
        assert a.launches == b.launches


@pytest.mark.parametrize("kind", ["turbo", "ppk", "mpc"])
def test_streamed_equals_offline(kind, sim):
    """Consuming launch events one by one replays sim.run exactly."""
    factory = _policies(sim)[kind]
    policy = factory()
    offline = [sim.run(APP, policy) for _ in range(2)]

    session = sim.session(factory(), app_name=APP.name)
    streamed = []
    for _ in range(2):
        outcomes = list(session.run_stream(launch_events(APP)))
        assert len(outcomes) == len(APP)
        streamed.append(session.result)
    for a, b in zip(offline, streamed):
        assert a.launches == b.launches


def test_tdp_enforcement_parity():
    """TDP throttling is identical offline and streamed."""
    sim = Simulator(enforce_tdp=True)
    offline = sim.run(APP, TurboCorePolicy(tdp_w=sim.apu.tdp_w))
    session = sim.session(TurboCorePolicy(tdp_w=sim.apu.tdp_w))
    list(session.run_stream(launch_events(APP)))
    assert session.result.launches == offline.launches


# ----- event-stream semantics -------------------------------------------------


def test_index_zero_opens_a_new_run(sim):
    session = sim.session(FixedConfigPolicy(FAILSAFE_CONFIG))
    for _ in range(3):
        list(session.run_stream(launch_events(APP)))
    assert session.stats.runs == 3
    assert session.stats.launches == 3 * len(APP)
    assert len(session.result) == len(APP)  # trace covers the last run


def test_out_of_order_event_rejected(sim):
    session = sim.session(FixedConfigPolicy(FAILSAFE_CONFIG))
    events = list(launch_events(APP))
    session.process(events[0])
    with pytest.raises(ValueError, match="out-of-order"):
        session.process(events[2])
    # The policy was never consulted for the bad event.
    assert session.stats.launches == 1


# ----- fault isolation --------------------------------------------------------


def test_raising_predictor_degrades_to_fail_safe(sim):
    """A blowing-up predictor yields a completed, fail-safed session."""
    manager = make_manager(sim)
    manager.optimizer.predictor = _RaisingPredictor()
    session = sim.session(manager, isolate_faults=True)
    result = session.run(APP)
    assert len(result) == len(APP)  # the session completed
    assert session.stats.fail_safe_fallbacks > 0
    assert "predictor exploded" in session.stats.last_error
    # Degraded launches run at the fail-safe configuration.
    assert all(
        r.config == FAILSAFE_CONFIG for r in result.launches[1:]
    )


def test_fault_isolation_off_propagates(sim):
    manager = make_manager(sim)
    manager.optimizer.predictor = _RaisingPredictor()
    session = sim.session(manager, isolate_faults=False)
    with pytest.raises(RuntimeError, match="predictor exploded"):
        session.run(APP)


def test_simulator_run_stays_fail_fast(sim):
    """The offline harness preserves its legacy fail-fast semantics."""
    manager = make_manager(sim)
    manager.optimizer.predictor = _RaisingPredictor()
    with pytest.raises(RuntimeError, match="predictor exploded"):
        sim.run(APP, manager)


def test_observe_failures_counted_and_swallowed(sim):
    session = sim.session(
        _RaisingObserver(FAILSAFE_CONFIG), isolate_faults=True
    )
    result = session.run(APP)
    assert len(result) == len(APP)
    assert session.stats.observe_failures == len(APP)
    assert session.stats.fail_safe_fallbacks == 0
    assert "telemetry lost" in session.stats.last_error


def test_fallback_outcomes_are_flagged(sim):
    manager = make_manager(sim)
    manager.optimizer.predictor = _RaisingPredictor()
    session = sim.session(manager, isolate_faults=True)
    outcomes = list(session.run_stream(launch_events(APP)))
    # Launch 0 is PPK's legitimate fail-safe (no counters yet), every
    # later decision faults in the optimizer and is degraded.
    assert not outcomes[0].fallback
    assert all(o.fallback for o in outcomes[1:])
    assert all(o.record.fail_safe for o in outcomes[1:])


def test_stats_format_mentions_fallbacks(sim):
    manager = make_manager(sim)
    manager.optimizer.predictor = _RaisingPredictor()
    session = sim.session(manager, isolate_faults=True)
    session.run(APP)
    line = session.stats.format()
    assert "by fault degradation" in line
    assert "1 run(s)" in line
