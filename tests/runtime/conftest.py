"""Shared fixtures for the streaming-runtime test suite.

Everything runs on a tiny two-kernel alternating application with an
oracle predictor, mirroring the unit-test setup, so the suite stays in
tier-1 time budgets.
"""

import pytest

from repro.core.manager import MPCPowerManager
from repro.ml.predictors import OraclePredictor
from repro.sim.simulator import Simulator
from repro.sim.turbocore import TurboCorePolicy
from repro.workloads.app import Application, Category
from repro.workloads.kernel import KernelSpec, ScalingClass

COMPUTE = KernelSpec("c", ScalingClass.COMPUTE, 4.0, 0.1, parallel_fraction=0.99)
MEMORY = KernelSpec("m", ScalingClass.MEMORY, 0.5, 0.9, parallel_fraction=0.9)

#: Alternating compute/memory app used across the runtime tests.
APP = Application(
    "alt", "runtime", Category.IRREGULAR_REPEATING,
    kernels=(COMPUTE, MEMORY) * 4, pattern="(AB)4",
)

#: Single-kernel app (every launch has the same signature).
UNIFORM = Application(
    "uni", "runtime", Category.REGULAR,
    kernels=(COMPUTE,) * 8, pattern="A8",
)


@pytest.fixture
def sim():
    return Simulator()


def turbo_target(sim, app=APP):
    """The Turbo Core kernel throughput of ``app`` on ``sim``."""
    turbo = sim.run(app, TurboCorePolicy())
    return turbo.instructions / turbo.kernel_time_s


def make_manager(sim, app=APP, target=None, **kw):
    """An oracle-backed MPC manager targeting Turbo Core throughput."""
    if target is None:
        target = turbo_target(sim, app)
    return MPCPowerManager(
        target, OraclePredictor(sim.apu, app.unique_kernels),
        overhead_model=sim.overhead, **kw,
    )
