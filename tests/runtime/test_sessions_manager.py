"""Tests for SessionManager: routing, interleaving, and persistence."""

import itertools

import pytest

from repro.core.policies import FixedConfigPolicy, PPKPolicy
from repro.engine.cache import ResultCache
from repro.engine.sessions import SessionStore
from repro.hardware.config import FAILSAFE_CONFIG
from repro.ml.predictors import OraclePredictor
from repro.runtime.events import launch_events
from repro.runtime.manager import SessionManager
from repro.sim.turbocore import TurboCorePolicy

from .conftest import APP, UNIFORM, turbo_target

pytestmark = pytest.mark.runtime


def _interleave(*streams):
    """Round-robin merge of several event iterators."""
    iterators = [iter(s) for s in streams]
    for chunk in itertools.zip_longest(*iterators):
        for event in chunk:
            if event is not None:
                yield event


@pytest.fixture
def manager(sim):
    return SessionManager(
        apu=sim.apu, counters=sim.counters, overhead=sim.overhead
    )


class TestRegistry:
    def test_add_and_lookup(self, manager):
        session = manager.add_session("a", FixedConfigPolicy(FAILSAFE_CONFIG))
        assert manager.session("a") is session
        assert "a" in manager
        assert len(manager) == 1
        assert manager.session_ids() == ["a"]

    def test_empty_id_rejected(self, manager):
        with pytest.raises(ValueError, match="non-empty"):
            manager.add_session("", FixedConfigPolicy(FAILSAFE_CONFIG))

    def test_duplicate_id_rejected(self, manager):
        manager.add_session("a", FixedConfigPolicy(FAILSAFE_CONFIG))
        with pytest.raises(ValueError, match="already registered"):
            manager.add_session("a", FixedConfigPolicy(FAILSAFE_CONFIG))

    def test_unknown_session_names_known_ids(self, manager):
        manager.add_session("a", FixedConfigPolicy(FAILSAFE_CONFIG))
        with pytest.raises(KeyError, match="registered: a"):
            manager.session("b")

    def test_recent_errors_limit_forwarded(self, manager):
        session = manager.add_session(
            "a", FixedConfigPolicy(FAILSAFE_CONFIG), recent_errors_limit=3
        )
        assert session.stats.recent_errors_limit == 3
        with pytest.raises(ValueError):
            manager.add_session(
                "b", FixedConfigPolicy(FAILSAFE_CONFIG), recent_errors_limit=0
            )

    def test_remove_session(self, manager):
        manager.add_session("a", FixedConfigPolicy(FAILSAFE_CONFIG))
        removed = manager.remove_session("a")
        assert "a" not in manager
        assert removed.policy.name == "Fixed"


class TestInterleaving:
    def test_interleaved_sessions_match_independent_runs(self, sim, manager):
        """A session's trace is unaffected by multiplexing with others."""
        def policies():
            return {
                "turbo": TurboCorePolicy(tdp_w=sim.apu.tdp_w),
                "ppk": PPKPolicy(
                    turbo_target(sim),
                    OraclePredictor(sim.apu, APP.unique_kernels),
                ),
            }

        # Independent reference runs on a fresh, identical simulator.
        reference = {
            sid: sim.run(APP, policy) for sid, policy in policies().items()
        }

        for sid, policy in policies().items():
            manager.add_session(sid, policy, app_name=APP.name)
        outcomes = list(manager.run_stream(_interleave(
            launch_events(APP, "turbo"), launch_events(APP, "ppk"),
        )))
        assert len(outcomes) == 2 * len(APP)
        for sid, expected in reference.items():
            assert manager.session(sid).result.launches == expected.launches

    def test_different_apps_per_session(self, manager):
        manager.add_session("alt", FixedConfigPolicy(FAILSAFE_CONFIG),
                            app_name=APP.name)
        manager.add_session("uni", FixedConfigPolicy(FAILSAFE_CONFIG),
                            app_name=UNIFORM.name)
        list(manager.run_stream(_interleave(
            launch_events(APP, "alt"), launch_events(UNIFORM, "uni"),
        )))
        stats = manager.stats()
        assert stats["alt"].launches == len(APP)
        assert stats["uni"].launches == len(UNIFORM)

    def test_multi_invocation_stream_restarts_runs(self, manager):
        manager.add_session("a", FixedConfigPolicy(FAILSAFE_CONFIG))
        events = list(launch_events(APP, "a")) * 2
        list(manager.run_stream(events))
        assert manager.stats()["a"].runs == 2


class TestPersistence:
    def _store(self, tmp_path):
        return SessionStore(ResultCache(cache_dir=str(tmp_path)))

    def test_requires_store(self, manager):
        manager.add_session("a", FixedConfigPolicy(FAILSAFE_CONFIG))
        with pytest.raises(RuntimeError, match="no SessionStore"):
            manager.persist("a")

    def test_persist_and_resume_roundtrip(self, sim, tmp_path):
        store = self._store(tmp_path)
        source = SessionManager(
            apu=sim.apu, counters=sim.counters, overhead=sim.overhead,
            store=store,
        )
        source.add_session("t", TurboCorePolicy(tdp_w=sim.apu.tdp_w),
                           app_name=APP.name)
        events = list(launch_events(APP, "t"))
        cut = len(events) // 2
        for event in events[:cut]:
            source.dispatch(event)
        key = source.persist("t")
        assert store.cache.load(key) is not None

        # A different worker resumes the session and finishes the run.
        target = SessionManager(
            apu=sim.apu, counters=sim.counters, overhead=sim.overhead,
            store=store,
        )
        resumed = target.resume("t", TurboCorePolicy(tdp_w=sim.apu.tdp_w))
        for event in events[cut:]:
            target.dispatch(event)

        # The combined trace equals one uninterrupted run.
        reference = sim.run(APP, TurboCorePolicy(tdp_w=sim.apu.tdp_w))
        combined = (
            source.session("t").result.launches + resumed.result.launches
        )
        assert combined == reference.launches
        assert resumed.result.base_index == cut

    def test_resume_missing_snapshot_raises(self, sim, tmp_path):
        manager = SessionManager(
            apu=sim.apu, counters=sim.counters, overhead=sim.overhead,
            store=self._store(tmp_path),
        )
        with pytest.raises(KeyError, match="no persisted snapshot"):
            manager.resume("ghost", FixedConfigPolicy(FAILSAFE_CONFIG))
        assert "ghost" not in manager  # registration rolled back

    def test_persist_all(self, sim, tmp_path):
        store = self._store(tmp_path)
        manager = SessionManager(
            apu=sim.apu, counters=sim.counters, overhead=sim.overhead,
            store=store,
        )
        manager.add_session("a", FixedConfigPolicy(FAILSAFE_CONFIG))
        manager.add_session("b", FixedConfigPolicy(FAILSAFE_CONFIG))
        keys = manager.persist_all()
        assert sorted(keys) == ["a", "b"]
        assert all(store.cache.load(k) is not None for k in keys.values())
