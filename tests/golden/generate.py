"""Regenerate the golden snapshot for the engine regression suite.

Usage (from the repo root)::

    PYTHONPATH=src python tests/golden/generate.py

Rerun this after any *intentional* change to the simulator, policies,
or hardware model, and review the numeric diff like any other code
change — the golden test exists to make unintentional drift loud.
"""

import json
import os
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
for path in (ROOT, os.path.join(ROOT, "src")):
    if path not in sys.path:
        sys.path.insert(0, path)

from repro.engine import ExperimentEngine, canonical_requests  # noqa: E402
from tests.engine.conftest import small_context  # noqa: E402
from tests.golden.common import (  # noqa: E402
    GOLDEN_FILE,
    headline_summary,
    run_summary,
)


def build_snapshot(cache_dir=None) -> dict:
    """Compute the snapshot payload on a serial, cache-less engine."""
    engine = ExperimentEngine(jobs=1, cache_dir=".", use_cache=False)
    if cache_dir is not None:
        engine = ExperimentEngine(jobs=1, cache_dir=str(cache_dir))
    ctx = small_context(cache_dir, engine)
    engine.prefetch(ctx, canonical_requests(ctx))
    return {
        "benchmarks": list(ctx.benchmark_names),
        "runs": run_summary(ctx),
        "headline": headline_summary(ctx),
    }


def main() -> int:
    target = os.path.join(os.path.dirname(os.path.abspath(__file__)), GOLDEN_FILE)
    snapshot = build_snapshot()
    with open(target, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {target}: {len(snapshot['runs'])} runs, "
          f"{len(snapshot['headline'])} headline metrics")
    return 0


if __name__ == "__main__":
    sys.exit(main())
