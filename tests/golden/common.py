"""Shared helpers for the golden-result regression suite.

The golden snapshot records, for the reduced oracle-backed context of
``tests/engine/conftest.small_context``, the aggregate numbers of every
canonical policy run plus the headline metrics.  ``generate.py``
refreshes the snapshot; ``tests/engine/test_golden.py`` asserts against
it.
"""

from typing import Any, Dict

GOLDEN_FILE = "small_canonical.json"

#: Canonical per-run aggregates snapshotted per (benchmark, run) key.
RUN_METRICS = (
    "kernel_time_s",
    "overhead_time_s",
    "total_time_s",
    "gpu_energy_j",
    "cpu_energy_j",
    "energy_j",
    "instructions",
    "mean_horizon",
)

#: The run suffixes canonical_requests() materializes per benchmark.
RUN_SUFFIXES = (
    "turbo",
    "ppk",
    "ppk_oracle",
    "mpc_first",
    "mpc",
    "mpc_first_full",
    "mpc_full",
    "mpc_ideal",
    "to",
)


def run_summary(ctx) -> Dict[str, Dict[str, Any]]:
    """Aggregate numbers of every canonical run held by a context."""
    out: Dict[str, Dict[str, Any]] = {}
    for name in ctx.benchmark_names:
        for suffix in RUN_SUFFIXES:
            run = ctx._runs[(name, suffix)]
            out[f"{name}/{suffix}"] = {
                "launches": len(run),
                **{metric: getattr(run, metric) for metric in RUN_METRICS},
            }
    return out


def headline_summary(ctx) -> Dict[str, float]:
    """The headline metrics over the reduced benchmark set."""
    from repro.experiments.headline import headline_numbers

    return headline_numbers(ctx)
