"""Unit tests for the APU facade and Measurement telemetry."""

import pytest

from repro.hardware.apu import APUModel, Measurement
from repro.hardware.config import HardwareConfig
from repro.hardware.power import PowerModel, PowerModelParams
from repro.workloads.kernel import KernelSpec, ScalingClass

KERNEL = KernelSpec("k", ScalingClass.COMPUTE, 5.0, 0.2, parallel_fraction=0.98)
BASE = HardwareConfig(cpu="P1", nb="NB0", gpu="DPM4", cu=8)


@pytest.fixture
def apu():
    return APUModel()


class TestMeasurement:
    def test_energy_decomposition(self):
        m = Measurement(time_s=2.0, gpu_power_w=30.0, cpu_power_w=20.0, temperature_c=70.0)
        assert m.total_power_w == 50.0
        assert m.gpu_energy_j == 60.0
        assert m.cpu_energy_j == 40.0
        assert m.energy_j == 100.0


class TestExecute:
    def test_deterministic(self, apu):
        first = apu.execute(KERNEL, BASE)
        second = apu.execute(KERNEL, BASE)
        assert first == second

    def test_slower_config_longer_time(self, apu):
        slow = apu.execute(KERNEL, HardwareConfig(cpu="P1", nb="NB0", gpu="DPM0", cu=2))
        assert slow.time_s > apu.execute(KERNEL, BASE).time_s

    def test_kernel_energy_matches_measurement(self, apu):
        m = apu.execute(KERNEL, BASE)
        assert apu.kernel_energy(KERNEL, BASE) == pytest.approx(m.energy_j)

    def test_energy_vs_time_tradeoff_exists(self, apu):
        # Some slower configuration must save energy, else DVFS is moot.
        base = apu.execute(KERNEL, BASE)
        cheaper = apu.execute(
            KERNEL, HardwareConfig(cpu="P7", nb="NB3", gpu="DPM2", cu=8)
        )
        assert cheaper.energy_j < base.energy_j

    def test_cpu_state_does_not_affect_kernel_time(self, apu):
        fast_cpu = apu.execute(KERNEL, BASE)
        slow_cpu = apu.execute(KERNEL, BASE.replace(cpu="P7"))
        assert fast_cpu.time_s == pytest.approx(slow_cpu.time_s)
        assert slow_cpu.cpu_power_w < fast_cpu.cpu_power_w


class TestManagerMeasurement:
    def test_charges_requested_time(self, apu):
        m = apu.manager_measurement(0.01, BASE)
        assert m.time_s == 0.01
        assert m.cpu_power_w > 0
        assert m.gpu_power_w > 0  # idle leakage

    def test_rejects_negative_time(self, apu):
        with pytest.raises(ValueError):
            apu.manager_measurement(-1.0, BASE)

    def test_manager_power_below_kernel_power(self, apu):
        kernel = apu.execute(KERNEL, BASE)
        manager = apu.manager_measurement(0.01, BASE)
        assert manager.total_power_w < kernel.total_power_w


class TestConstruction:
    def test_with_params(self):
        params = PowerModelParams(tdp_w=65.0)
        apu = APUModel.with_params(params)
        assert apu.tdp_w == 65.0

    def test_within_tdp(self, apu):
        assert apu.within_tdp(KERNEL, BASE)
        tiny = APUModel(power=PowerModel(PowerModelParams(tdp_w=10.0)))
        assert not tiny.within_tdp(KERNEL, BASE)
