"""Unit tests for corpus statistics and TDP enforcement."""

import pytest

from repro.core.policies import FixedConfigPolicy
from repro.hardware.apu import APUModel
from repro.hardware.config import ConfigSpace
from repro.hardware.power import PowerModel, PowerModelParams
from repro.sim.simulator import Simulator
from repro.workloads.app import Application, Category
from repro.workloads.extended import extended_benchmarks
from repro.workloads.kernel import KernelSpec, ScalingClass
from repro.workloads.stats import corpus_stats
from repro.workloads.suites import all_benchmarks

KERNEL = KernelSpec("k", ScalingClass.COMPUTE, 4.0, 0.1, parallel_fraction=0.99)
APP = Application("t", "unit", Category.REGULAR, kernels=(KERNEL,) * 3, pattern="A3")


class TestCorpusStats:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            corpus_stats([])

    def test_paper_evaluation_set_distribution(self):
        stats = corpus_stats(all_benchmarks())
        assert stats.num_benchmarks == 15
        # Paper: 12 of the 15 evaluated benchmarks are irregular (80%).
        assert stats.irregular_fraction == pytest.approx(12 / 15)
        assert stats.input_varying_fraction == pytest.approx(8 / 15)

    def test_combined_corpus_matches_paper_shape(self):
        # Paper (73-app corpus): ~75% irregular, ~44% input-varying.
        stats = corpus_stats(all_benchmarks() + extended_benchmarks())
        assert 0.55 < stats.irregular_fraction < 0.9
        assert 0.3 < stats.input_varying_fraction < 0.6

    def test_scaling_classes_all_present(self):
        stats = corpus_stats(all_benchmarks())
        assert set(stats.scaling_class_counts) == {
            c.value for c in ScalingClass
        }

    def test_means(self):
        stats = corpus_stats([APP])
        assert stats.mean_launches == 3.0
        assert stats.mean_unique_kernels == 1.0


class TestTdpEnforcement:
    def _low_tdp_sim(self, tdp_w: float, enforce: bool) -> Simulator:
        apu = APUModel(power=PowerModel(PowerModelParams(tdp_w=tdp_w)))
        return Simulator(apu=apu, enforce_tdp=enforce)

    def test_within_tdp_config_untouched(self):
        sim = self._low_tdp_sim(95.0, enforce=True)
        fast = ConfigSpace().fastest()
        run = sim.run(APP, FixedConfigPolicy(fast))
        assert all(r.config == fast for r in run.launches)

    def test_over_tdp_config_throttled(self):
        sim = self._low_tdp_sim(40.0, enforce=True)
        fast = ConfigSpace().fastest()
        run = sim.run(APP, FixedConfigPolicy(fast))
        for record in run.launches:
            assert record.config != fast
            assert sim.apu.within_tdp(KERNEL, record.config)

    def test_cpu_shed_before_gpu(self):
        sim = self._low_tdp_sim(55.0, enforce=True)
        fast = ConfigSpace().fastest()
        run = sim.run(APP, FixedConfigPolicy(fast))
        config = run.launches[0].config
        assert config.cpu != "P1"
        assert config.gpu == "DPM4"  # the CPU shed sufficed

    def test_enforcement_off_by_default(self):
        sim = self._low_tdp_sim(40.0, enforce=False)
        fast = ConfigSpace().fastest()
        run = sim.run(APP, FixedConfigPolicy(fast))
        assert all(r.config == fast for r in run.launches)

    def test_unreachable_tdp_clamps_to_floor(self):
        sim = self._low_tdp_sim(5.0, enforce=True)
        fast = ConfigSpace().fastest()
        run = sim.run(APP, FixedConfigPolicy(fast))
        config = run.launches[0].config
        assert config.cpu == "P7"
        assert config.gpu == "DPM0"
