"""Unit tests for KernelSpec."""

import math

import pytest

from repro.workloads.kernel import KernelSpec, ScalingClass


def _spec(**kw):
    defaults = dict(
        name="k", scaling_class=ScalingClass.COMPUTE,
        compute_work=2.0, memory_traffic=0.5,
    )
    defaults.update(kw)
    return KernelSpec(**defaults)


class TestValidation:
    def test_negative_work_rejected(self):
        with pytest.raises(ValueError):
            _spec(compute_work=-1.0)

    def test_parallel_fraction_bounds(self):
        with pytest.raises(ValueError):
            _spec(parallel_fraction=1.5)

    def test_efficiency_bounds(self):
        with pytest.raises(ValueError):
            _spec(compute_efficiency=0.0)

    def test_zero_work_kernel_rejected(self):
        with pytest.raises(ValueError):
            _spec(compute_work=0.0, memory_traffic=0.0, serial_time_s=0.0)

    def test_serial_only_kernel_allowed(self):
        spec = KernelSpec(
            "s", ScalingClass.UNSCALABLE, 0.0, 0.0, serial_time_s=0.01,
            instructions=1e6,
        )
        assert spec.serial_time_s == 0.01

    def test_negative_interference_rejected(self):
        with pytest.raises(ValueError):
            _spec(cache_interference=-0.1)


class TestDerivedFields:
    def test_instructions_default(self):
        spec = _spec(compute_work=2.0, memory_traffic=0.4)
        assert spec.instructions == pytest.approx(1e9 * (2.0 + 0.1))

    def test_instructions_override(self):
        spec = _spec(instructions=123.0)
        assert spec.instructions == 123.0

    def test_arithmetic_intensity(self):
        assert _spec(compute_work=4.0, memory_traffic=2.0).arithmetic_intensity == 2.0

    def test_arithmetic_intensity_infinite_without_memory(self):
        assert math.isinf(_spec(memory_traffic=0.0).arithmetic_intensity)


class TestIdentity:
    def test_key_without_input(self):
        assert _spec(name="foo").key == "foo"

    def test_key_with_input(self):
        assert _spec(name="foo", input_id=3).key == "foo#3"

    def test_with_input_scales_work(self):
        base = _spec(compute_work=2.0, memory_traffic=1.0)
        variant = base.with_input(2, work_scale=2.0)
        assert variant.compute_work == pytest.approx(4.0)
        assert variant.memory_traffic == pytest.approx(2.0)
        assert variant.instructions == pytest.approx(base.instructions * 2.0)
        assert variant.name == base.name
        assert variant.key != base.key

    def test_with_input_separate_memory_scale(self):
        base = _spec(compute_work=2.0, memory_traffic=1.0)
        variant = base.with_input(1, work_scale=2.0, memory_scale=1.5)
        assert variant.memory_traffic == pytest.approx(1.5)

    def test_str_mentions_class(self):
        assert "compute" in str(_spec())
