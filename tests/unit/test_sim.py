"""Unit tests for the simulator, traces, and metrics."""

import pytest

from repro.core.policies import FixedConfigPolicy
from repro.hardware.config import ConfigSpace, HardwareConfig
from repro.sim.metrics import (
    energy_savings_pct,
    geomean,
    gpu_energy_savings_pct,
    mean,
    performance_loss_pct,
    speedup,
)
from repro.sim.policy import Decision
from repro.sim.simulator import OverheadModel, Simulator
from repro.sim.trace import LaunchRecord, RunResult
from repro.workloads.app import Application, Category
from repro.workloads.kernel import KernelSpec, ScalingClass

KERNEL = KernelSpec("k", ScalingClass.COMPUTE, 2.0, 0.1, parallel_fraction=0.98)
APP = Application("app", "unit", Category.REGULAR, kernels=(KERNEL,) * 3, pattern="A3")
FAST = ConfigSpace().fastest()
SLOW = HardwareConfig(cpu="P7", nb="NB2", gpu="DPM0", cu=2)


def _record(index=0, time_s=1.0, gpu_j=10.0, cpu_j=5.0, insts=1e9, **kw):
    return LaunchRecord(
        index=index, kernel_key="k", config=FAST, time_s=time_s,
        gpu_energy_j=gpu_j, cpu_energy_j=cpu_j, instructions=insts, **kw,
    )


class TestOverheadModel:
    def test_zero_evaluations_free(self):
        model = OverheadModel()
        assert model.decision_time_s(Decision(config=FAST)) == 0.0

    def test_linear_in_evaluations(self):
        model = OverheadModel(seconds_per_evaluation=1e-6, fixed_seconds=1e-5)
        d10 = Decision(config=FAST, model_evaluations=10)
        d20 = Decision(config=FAST, model_evaluations=20)
        assert model.decision_time_s(d20) - model.decision_time_s(d10) == pytest.approx(1e-5)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            OverheadModel().decision_time_s(Decision(config=FAST, model_evaluations=-1))


class TestSimulator:
    def test_trace_matches_app(self):
        result = Simulator().run(APP, FixedConfigPolicy(FAST))
        assert len(result) == 3
        assert [r.index for r in result.launches] == [0, 1, 2]
        assert result.instructions == pytest.approx(APP.total_instructions)

    def test_charge_overhead_flag(self):
        sim = Simulator()

        class Chatty(FixedConfigPolicy):
            def decide(self, index):
                return Decision(config=self.config, model_evaluations=10)

        charged = sim.run(APP, Chatty(FAST))
        free = sim.run(APP, Chatty(FAST), charge_overhead=False)
        assert charged.overhead_time_s > 0
        assert free.overhead_time_s == 0.0
        assert charged.overhead_energy_j > 0

    def test_run_many(self):
        sim = Simulator()
        results = sim.run_many(APP, FixedConfigPolicy(FAST), 3)
        assert len(results) == 3
        with pytest.raises(ValueError):
            sim.run_many(APP, FixedConfigPolicy(FAST), 0)

    def test_slow_config_longer_run(self):
        sim = Simulator()
        fast = sim.run(APP, FixedConfigPolicy(FAST))
        slow = sim.run(APP, FixedConfigPolicy(SLOW))
        assert slow.kernel_time_s > fast.kernel_time_s


class TestRunResult:
    def test_out_of_order_append_rejected(self):
        result = RunResult(app_name="a", policy_name="p")
        with pytest.raises(ValueError):
            result.append(_record(index=1))

    def test_aggregates(self):
        result = RunResult(app_name="a", policy_name="p")
        result.append(_record(index=0, overhead_time_s=0.1,
                              overhead_cpu_energy_j=1.0, overhead_gpu_energy_j=0.5))
        result.append(_record(index=1))
        assert result.kernel_time_s == pytest.approx(2.0)
        assert result.total_time_s == pytest.approx(2.1)
        assert result.energy_j == pytest.approx(31.5)
        assert result.gpu_energy_j == pytest.approx(20.5)
        assert result.cpu_energy_j == pytest.approx(11.0)
        assert result.overhead_energy_j == pytest.approx(1.5)
        assert result.throughput == pytest.approx(2e9 / 2.1)

    def test_cumulative_throughputs(self):
        result = RunResult(app_name="a", policy_name="p")
        result.append(_record(index=0, time_s=1.0, insts=2e9))
        result.append(_record(index=1, time_s=3.0, insts=2e9))
        assert result.cumulative_throughputs() == pytest.approx([2e9, 1e9])

    def test_mean_horizon_empty(self):
        assert RunResult(app_name="a", policy_name="p").mean_horizon == 0.0


class TestMetrics:
    def _pair(self):
        ref = RunResult(app_name="a", policy_name="ref")
        ref.append(_record(index=0, time_s=2.0, gpu_j=20.0, cpu_j=20.0))
        run = RunResult(app_name="a", policy_name="x")
        run.append(_record(index=0, time_s=2.5, gpu_j=15.0, cpu_j=5.0))
        return run, ref

    def test_energy_savings(self):
        run, ref = self._pair()
        assert energy_savings_pct(run, ref) == pytest.approx(50.0)

    def test_gpu_energy_savings(self):
        run, ref = self._pair()
        assert gpu_energy_savings_pct(run, ref) == pytest.approx(25.0)

    def test_speedup_and_loss(self):
        run, ref = self._pair()
        assert speedup(run, ref) == pytest.approx(0.8)
        assert performance_loss_pct(run, ref) == pytest.approx(20.0)

    def test_app_mismatch_rejected(self):
        run, ref = self._pair()
        other = RunResult(app_name="b", policy_name="ref")
        other.append(_record(index=0))
        with pytest.raises(ValueError):
            energy_savings_pct(run, other)

    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geomean([])
        with pytest.raises(ValueError):
            geomean([1.0, -1.0])

    def test_mean(self):
        assert mean([1.0, 3.0]) == 2.0
        with pytest.raises(ValueError):
            mean([])
