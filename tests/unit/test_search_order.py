"""Unit tests for the search-order heuristic (Figure 7)."""

import pytest

from repro.core.search_order import SearchOrder, build_search_order
from repro.experiments.fig7_search_order import example_profile, example_search_order


class TestBuild:
    def test_paper_example_order(self):
        order = example_search_order()
        # The paper's (3, 2, 1, 6, 5, 4), zero-based.
        assert order.order == (2, 1, 0, 5, 4, 3)

    def test_paper_example_groups(self):
        order = example_search_order()
        assert order.above_target == frozenset({0, 1, 2})

    def test_all_above_target(self):
        order = build_search_order([2.0, 3.0, 1.5], [2.0, 2.5, 2.2], 1.0)
        assert order.above_target == frozenset({0, 1, 2})
        # ascending by kernel throughput
        assert order.order == (2, 0, 1)

    def test_all_below_target(self):
        order = build_search_order([0.2, 0.5, 0.4], [0.2, 0.3, 0.35], 1.0)
        assert order.above_target == frozenset()
        # descending by kernel throughput
        assert order.order == (1, 2, 0)

    def test_ties_break_by_index(self):
        order = build_search_order([1.0, 1.0], [2.0, 2.0], 1.5)
        assert order.order == (0, 1)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            build_search_order([1.0], [1.0, 2.0], 1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            build_search_order([], [], 1.0)

    def test_non_permutation_rejected(self):
        with pytest.raises(ValueError):
            SearchOrder(order=(0, 0, 1), above_target=frozenset())


class TestWindows:
    def test_paper_worked_example(self):
        order = example_search_order()
        # 1-based in the paper: kernel 1 -> (3,2,1) ... kernel 4 -> (6,5,4).
        assert order.window(0) == [2, 1, 0]
        assert order.window(1) == [2, 1]
        assert order.window(2) == [2]
        assert order.window(3) == [5, 4, 3]
        assert order.window(4) == [5, 4]
        assert order.window(5) == [5]

    def test_window_always_ends_with_current(self):
        order = example_search_order()
        for i in range(len(order)):
            assert order.window(i)[-1] == i

    def test_horizon_limits_window(self):
        order = example_search_order()
        # Horizon 2 at kernel 0: only positions within [0, 2) qualify.
        window = order.window(0, horizon=2)
        assert window[-1] == 0
        assert all(0 <= p < 2 for p in window)

    def test_horizon_one_is_self_only(self):
        order = example_search_order()
        for i in range(len(order)):
            assert order.window(i, horizon=1) == [i]

    def test_out_of_range_current(self):
        with pytest.raises(ValueError):
            example_search_order().window(10)

    def test_prefix_lengths(self):
        order = example_search_order()
        assert order.prefix_length(0) == 3
        assert order.prefix_length(3) == 3
        assert order.prefix_length(5) == 1

    def test_mean_prefix_length(self):
        order = example_search_order()
        assert order.mean_prefix_length() == pytest.approx((3 + 2 + 1 + 3 + 2 + 1) / 6)
