"""Unit tests for the performance tracker (Equations 4-5)."""

import math

import pytest

from repro.core.tracker import PerformanceTracker


class TestConstruction:
    def test_rejects_nonpositive_target(self):
        with pytest.raises(ValueError):
            PerformanceTracker(0.0)

    def test_rejects_infinite_target(self):
        with pytest.raises(ValueError):
            PerformanceTracker(math.inf)


class TestAccumulation:
    def test_initial_state(self):
        tracker = PerformanceTracker(100.0)
        assert tracker.instructions == 0.0
        assert tracker.time_s == 0.0
        assert math.isinf(tracker.throughput)
        assert tracker.above_target()

    def test_update(self):
        tracker = PerformanceTracker(100.0)
        tracker.update(500.0, 4.0)
        assert tracker.throughput == pytest.approx(125.0)
        assert tracker.above_target()
        tracker.update(100.0, 4.0)
        assert tracker.throughput == pytest.approx(75.0)
        assert not tracker.above_target()

    def test_negative_update_rejected(self):
        tracker = PerformanceTracker(100.0)
        with pytest.raises(ValueError):
            tracker.update(-1.0, 1.0)

    def test_reset(self):
        tracker = PerformanceTracker(100.0)
        tracker.update(500.0, 4.0)
        tracker.reset()
        assert tracker.instructions == 0.0


class TestHeadroom:
    def test_equation5_form(self):
        # headroom = (ΣI + E[I]) / target - ΣT
        tracker = PerformanceTracker(100.0)
        tracker.update(1000.0, 8.0)
        assert tracker.headroom_s(200.0) == pytest.approx((1000 + 200) / 100 - 8)

    def test_headroom_without_history(self):
        tracker = PerformanceTracker(50.0)
        assert tracker.headroom_s(100.0) == pytest.approx(2.0)

    def test_headroom_can_go_negative(self):
        tracker = PerformanceTracker(100.0)
        tracker.update(100.0, 10.0)  # way behind target
        assert tracker.headroom_s(10.0) < 0.0

    def test_admits_matches_headroom(self):
        tracker = PerformanceTracker(100.0)
        tracker.update(1000.0, 8.0)
        headroom = tracker.headroom_s(200.0)
        assert tracker.admits(200.0, headroom - 1e-9)
        assert not tracker.admits(200.0, headroom + 1e-6)

    def test_negative_expected_instructions_rejected(self):
        with pytest.raises(ValueError):
            PerformanceTracker(1.0).headroom_s(-5.0)

    def test_slack_accumulates(self):
        tracker = PerformanceTracker(100.0)
        tracker.update(1000.0, 5.0)  # 5 s of slack earned
        assert tracker.headroom_s(100.0) == pytest.approx(6.0)


class TestCopy:
    def test_copy_is_independent(self):
        tracker = PerformanceTracker(100.0)
        tracker.update(100.0, 1.0)
        clone = tracker.copy()
        clone.update(900.0, 1.0)
        assert tracker.instructions == 100.0
        assert clone.instructions == 1000.0
        assert clone.target_throughput == tracker.target_throughput
