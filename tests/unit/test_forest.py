"""Unit tests for the Random Forest regressor and MAPE metric."""

import numpy as np
import pytest

from repro.ml.forest import RandomForestRegressor, mean_absolute_percentage_error


def _noisy_surface(n=500, seed=3):
    rng = np.random.default_rng(seed)
    X = rng.uniform(0, 1, size=(n, 4))
    y = 3 * X[:, 0] + np.sin(6 * X[:, 1]) + 0.1 * rng.normal(size=n)
    return X, y


class TestValidation:
    def test_zero_estimators(self):
        with pytest.raises(ValueError):
            RandomForestRegressor(n_estimators=0)

    def test_bad_max_features_string(self):
        forest = RandomForestRegressor(max_features="log2")
        with pytest.raises(ValueError):
            forest.fit(*_noisy_surface(50))

    def test_bad_fraction(self):
        forest = RandomForestRegressor(max_features=1.5)
        with pytest.raises(ValueError):
            forest.fit(*_noisy_surface(50))

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            RandomForestRegressor().predict(np.ones((1, 4)))


class TestFitting:
    def test_learns_smooth_surface(self):
        X, y = _noisy_surface()
        forest = RandomForestRegressor(n_estimators=10, max_depth=8, seed=0).fit(X, y)
        residual = forest.predict(X) - y
        assert np.sqrt(np.mean(residual**2)) < 0.4

    def test_deterministic_given_seed(self):
        X, y = _noisy_surface()
        a = RandomForestRegressor(n_estimators=5, seed=42).fit(X, y).predict(X)
        b = RandomForestRegressor(n_estimators=5, seed=42).fit(X, y).predict(X)
        assert np.allclose(a, b)

    def test_seed_changes_model(self):
        X, y = _noisy_surface()
        a = RandomForestRegressor(n_estimators=5, seed=1).fit(X, y).predict(X)
        b = RandomForestRegressor(n_estimators=5, seed=2).fit(X, y).predict(X)
        assert not np.allclose(a, b)

    def test_prediction_is_tree_mean(self):
        X, y = _noisy_surface(100)
        forest = RandomForestRegressor(n_estimators=4, seed=0).fit(X, y)
        stacked = np.mean([t.predict(X) for t in forest.trees], axis=0)
        assert np.allclose(forest.predict(X), stacked)

    def test_target_range_recorded(self):
        X, y = _noisy_surface()
        forest = RandomForestRegressor(n_estimators=3, seed=0).fit(X, y)
        lo, hi = forest.target_range
        assert lo == pytest.approx(y.min())
        assert hi == pytest.approx(y.max())

    def test_predictions_within_target_range(self):
        X, y = _noisy_surface()
        forest = RandomForestRegressor(n_estimators=5, seed=0).fit(X, y)
        preds = forest.predict(np.random.default_rng(9).uniform(-2, 3, size=(200, 4)))
        lo, hi = forest.target_range
        assert np.all(preds >= lo - 1e-9) and np.all(preds <= hi + 1e-9)

    def test_no_bootstrap_with_full_features_reduces_to_bagging_of_identical(self):
        X, y = _noisy_surface(200)
        forest = RandomForestRegressor(
            n_estimators=3, bootstrap=False, max_features=1.0, seed=0
        ).fit(X, y)
        a, b, c = (t.predict(X) for t in forest.trees)
        assert np.allclose(a, b) and np.allclose(b, c)

    def test_predict_one(self):
        X, y = _noisy_surface(100)
        forest = RandomForestRegressor(n_estimators=3, seed=0).fit(X, y)
        assert forest.predict_one(X[0]) == pytest.approx(forest.predict(X[:1])[0])


class TestMape:
    def test_perfect_prediction(self):
        y = np.array([1.0, 2.0, 4.0])
        assert mean_absolute_percentage_error(y, y) == 0.0

    def test_known_value(self):
        y_true = np.array([2.0, 4.0])
        y_pred = np.array([3.0, 3.0])
        assert mean_absolute_percentage_error(y_true, y_pred) == pytest.approx(37.5)

    def test_zero_target_rejected(self):
        with pytest.raises(ValueError):
            mean_absolute_percentage_error(np.array([0.0]), np.array([1.0]))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mean_absolute_percentage_error(np.ones(3), np.ones(2))
