"""Unit tests for group k-fold and predictor cross-validation."""

import numpy as np
import pytest

from repro.hardware.config import ConfigSpace
from repro.ml.validation import cross_validate_predictor, group_kfold
from repro.workloads.generator import training_population

SMALL_SPACE = ConfigSpace(
    cpu_states=("P7", "P1"), nb_states=("NB3", "NB0"),
    gpu_states=("DPM0", "DPM4"), cu_counts=(2, 8),
)


class TestGroupKFold:
    GROUPS = ["a", "a", "b", "b", "c", "c", "d", "d"]

    def test_every_row_tested_once(self):
        seen = []
        for _, test in group_kfold(self.GROUPS, 2, seed=0):
            seen.extend(test.tolist())
        assert sorted(seen) == list(range(len(self.GROUPS)))

    def test_groups_never_straddle(self):
        groups = np.asarray(self.GROUPS)
        for train, test in group_kfold(self.GROUPS, 4, seed=1):
            assert not set(groups[train]) & set(groups[test])

    def test_train_test_disjoint(self):
        for train, test in group_kfold(self.GROUPS, 2, seed=0):
            assert not set(train.tolist()) & set(test.tolist())

    def test_too_many_folds_rejected(self):
        with pytest.raises(ValueError):
            list(group_kfold(self.GROUPS, 5))

    def test_single_fold_rejected(self):
        with pytest.raises(ValueError):
            list(group_kfold(self.GROUPS, 1))

    def test_seed_changes_assignment(self):
        a = [t.tolist() for _, t in group_kfold(self.GROUPS, 2, seed=0)]
        b = [t.tolist() for _, t in group_kfold(self.GROUPS, 2, seed=5)]
        assert a != b or True  # assignments may coincide; just no crash


class TestCrossValidation:
    def test_small_pipeline(self):
        kernels = training_population(12, seed=3)
        result = cross_validate_predictor(
            kernels, space=SMALL_SPACE, n_splits=3,
            n_estimators=4, max_depth=8, seed=0,
        )
        assert len(result.time_mape_pct) == 3
        assert len(result.power_mape_pct) == 3
        assert all(m > 0 for m in result.time_mape_pct)
        # Power is the easier target on the modelled APU.
        assert result.mean_power_mape_pct < result.mean_time_mape_pct

    def test_mape_magnitudes_reasonable(self):
        kernels = training_population(16, seed=4)
        result = cross_validate_predictor(
            kernels, space=SMALL_SPACE, n_splits=4,
            n_estimators=4, max_depth=8, seed=0,
        )
        # Out-of-group errors are substantial but not absurd.
        assert 3.0 < result.mean_time_mape_pct < 120.0
        assert result.mean_power_mape_pct < 40.0
