"""Unit tests for the power and thermal models."""

import pytest

from repro.hardware.config import HardwareConfig
from repro.hardware.perf import TimingModel
from repro.hardware.power import PowerModel, PowerModelParams
from repro.hardware.thermal import ThermalModel
from repro.workloads.kernel import KernelSpec, ScalingClass

KERNEL = KernelSpec("k", ScalingClass.COMPUTE, 10.0, 0.1, parallel_fraction=0.99)


@pytest.fixture
def power():
    return PowerModel()


def _breakdown(power, config):
    timing = TimingModel().kernel_timing(KERNEL, config)
    return power.kernel_power(config, timing)


class TestThermalModel:
    def test_temperature_linear_in_power(self):
        thermal = ThermalModel()
        assert thermal.temperature(0.0) == thermal.ambient_c
        assert thermal.temperature(100.0) == pytest.approx(
            thermal.ambient_c + 100.0 * thermal.theta_c_per_w
        )

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            ThermalModel().temperature(-1.0)

    def test_leakage_factor_reference(self):
        thermal = ThermalModel()
        assert thermal.leakage_factor(thermal.reference_c) == pytest.approx(1.0)

    def test_leakage_grows_with_temperature(self):
        thermal = ThermalModel()
        assert thermal.leakage_factor(90.0) > thermal.leakage_factor(50.0)

    def test_leakage_factor_floor(self):
        assert ThermalModel().leakage_factor(-1000.0) == pytest.approx(0.5)

    def test_fixed_point_consistency(self):
        thermal = ThermalModel()
        temp, factor = thermal.solve(40.0, 8.0, iterations=10)
        assert temp == pytest.approx(thermal.temperature(40.0 + 8.0 * factor), abs=0.05)
        assert factor == pytest.approx(thermal.leakage_factor(temp), abs=0.01)


class TestCpuPower:
    def test_higher_pstate_draws_more(self, power):
        p1 = power.cpu_power(HardwareConfig(cpu="P1", nb="NB0", gpu="DPM4", cu=8))
        p7 = power.cpu_power(HardwareConfig(cpu="P7", nb="NB0", gpu="DPM4", cu=8))
        assert p1 > 2.5 * p7

    def test_busy_cores_bounds(self, power):
        config = HardwareConfig(cpu="P1", nb="NB0", gpu="DPM4", cu=8)
        with pytest.raises(ValueError):
            power.cpu_power(config, busy_cores=5)

    def test_more_busy_cores_more_power(self, power):
        config = HardwareConfig(cpu="P1", nb="NB0", gpu="DPM4", cu=8)
        assert power.cpu_power(config, busy_cores=4) > power.cpu_power(config, busy_cores=1)


class TestGpuPower:
    def test_power_grows_with_cu(self, power):
        small = _breakdown(power, HardwareConfig(cpu="P5", nb="NB0", gpu="DPM4", cu=2))
        big = _breakdown(power, HardwareConfig(cpu="P5", nb="NB0", gpu="DPM4", cu=8))
        assert big.gpu_w > small.gpu_w

    def test_power_grows_with_dpm(self, power):
        slow = _breakdown(power, HardwareConfig(cpu="P5", nb="NB3", gpu="DPM0", cu=8))
        fast = _breakdown(power, HardwareConfig(cpu="P5", nb="NB3", gpu="DPM4", cu=8))
        assert fast.gpu_w > 2.0 * slow.gpu_w

    def test_gated_cus_save_leakage(self, power):
        leak2 = power.gpu_leakage_power(HardwareConfig(cpu="P5", nb="NB3", gpu="DPM0", cu=2))
        leak8 = power.gpu_leakage_power(HardwareConfig(cpu="P5", nb="NB3", gpu="DPM0", cu=8))
        assert leak8 > leak2

    def test_shared_rail_blocks_gpu_power_savings(self, power):
        # At NB0 the rail stays at the NB voltage even at DPM0.
        nb0 = power.gpu_leakage_power(HardwareConfig(cpu="P5", nb="NB0", gpu="DPM0", cu=8))
        nb3 = power.gpu_leakage_power(HardwareConfig(cpu="P5", nb="NB3", gpu="DPM0", cu=8))
        assert nb0 > nb3

    def test_breakdown_totals(self, power):
        config = HardwareConfig(cpu="P3", nb="NB1", gpu="DPM2", cu=6)
        breakdown = _breakdown(power, config)
        assert breakdown.total_w == pytest.approx(breakdown.gpu_w + breakdown.cpu_w)
        assert breakdown.gpu_w == pytest.approx(
            breakdown.gpu_dynamic_w + breakdown.gpu_leakage_w + breakdown.nb_w
        )


class TestManagerPower:
    def test_gpu_idles_during_optimization(self, power):
        manager = power.manager_power(HardwareConfig(cpu="P5", nb="NB0", gpu="DPM0", cu=2))
        assert manager.gpu_dynamic_w == 0.0
        assert manager.gpu_w < 5.0  # idle leakage only

    def test_within_tdp(self, power):
        config = HardwareConfig(cpu="P1", nb="NB0", gpu="DPM4", cu=8)
        assert power.within_tdp(_breakdown(power, config))


class TestCalibration:
    def test_chip_power_in_realistic_envelope(self, power):
        full = _breakdown(power, HardwareConfig(cpu="P1", nb="NB0", gpu="DPM4", cu=8))
        assert 40.0 < full.total_w < PowerModelParams().tdp_w

    def test_thermal_coupling_cpu_to_gpu(self, power):
        # Lowering the CPU P-state slightly reduces GPU leakage via
        # die temperature (Section II-A of the paper).
        hot = _breakdown(power, HardwareConfig(cpu="P1", nb="NB0", gpu="DPM4", cu=8))
        cool = _breakdown(power, HardwareConfig(cpu="P7", nb="NB0", gpu="DPM4", cu=8))
        assert cool.gpu_leakage_w < hot.gpu_leakage_w
        assert cool.temperature_c < hot.temperature_c
