"""Edge-case coverage for configuration-space corners."""

import pytest

from repro.hardware.config import ConfigSpace, HardwareConfig
from repro.sim.policy import Decision, Observation
from repro.sim.trace import LaunchRecord


class TestClampFallback:
    def test_clamp_falls_back_to_fastest_axis_value(self):
        # P1-only CPU axis: clamping P7 (slower than anything on the
        # axis) has no at-or-above candidate ordering issue; clamping a
        # value *above* every axis member must fall back to the top.
        reduced = ConfigSpace(cpu_states=("P7", "P6"))
        clamped = reduced.clamp(HardwareConfig(cpu="P1", nb="NB2", gpu="DPM4", cu=8))
        assert clamped.cpu == "P6"  # fastest available
        assert clamped in reduced

    def test_clamp_prefers_next_faster_value(self):
        reduced = ConfigSpace(cu_counts=(2, 8))
        clamped = reduced.clamp(HardwareConfig(cpu="P7", nb="NB2", gpu="DPM4", cu=4))
        assert clamped.cu == 8  # nearest at-or-above in performance

    def test_clamp_multiple_knobs(self):
        reduced = ConfigSpace(cpu_states=("P7",), gpu_states=("DPM0",),
                              cu_counts=(2,), nb_states=("NB3",))
        clamped = reduced.clamp(HardwareConfig(cpu="P1", nb="NB0", gpu="DPM4", cu=8))
        assert clamped == HardwareConfig(cpu="P7", nb="NB3", gpu="DPM0", cu=2)


class TestDecisionDefaults:
    def test_defaults(self):
        decision = Decision(config=ConfigSpace().fastest())
        assert decision.model_evaluations == 0
        assert decision.horizon == 0
        assert not decision.fail_safe


class TestObservationThroughput:
    def test_throughput(self):
        from repro.hardware.apu import Measurement
        from repro.workloads.counters import CounterVector
        import numpy as np

        obs = Observation(
            index=0,
            config=ConfigSpace().fastest(),
            counters=CounterVector.from_array(np.ones(8)),
            measurement=Measurement(2.0, 10.0, 5.0, 60.0),
            instructions=4e9,
        )
        assert obs.throughput == pytest.approx(2e9)


class TestLaunchRecordEdges:
    def test_overhead_free_record(self):
        record = LaunchRecord(
            index=0, kernel_key="k", config=ConfigSpace().fastest(),
            time_s=1.0, gpu_energy_j=10.0, cpu_energy_j=5.0,
            instructions=1e9,
        )
        assert record.overhead_energy_j == 0.0
        assert record.energy_j == 15.0
        assert record.throughput == pytest.approx(1e9)
