"""Unit tests for the ground-truth timing model (Figure 2 behaviours)."""

import pytest

from repro.hardware.config import HardwareConfig
from repro.hardware.perf import TimingModel
from repro.workloads.kernel import KernelSpec, ScalingClass


@pytest.fixture
def model():
    return TimingModel()


def _config(nb="NB0", gpu="DPM4", cu=8, cpu="P1"):
    return HardwareConfig(cpu=cpu, nb=nb, gpu=gpu, cu=cu)


COMPUTE = KernelSpec("c", ScalingClass.COMPUTE, 10.0, 0.02,
                     parallel_fraction=0.995, compute_efficiency=0.9)
MEMORY = KernelSpec("m", ScalingClass.MEMORY, 0.8, 1.5,
                    parallel_fraction=0.9, compute_efficiency=0.7)
PEAK = KernelSpec("p", ScalingClass.PEAK, 4.0, 0.5, cache_interference=0.5,
                  cache_sweet_spot_cu=4, parallel_fraction=0.95)
UNSCALABLE = KernelSpec("u", ScalingClass.UNSCALABLE, 0.3, 0.08,
                        serial_time_s=0.03, parallel_fraction=0.7)


class TestConstruction:
    def test_invalid_lanes(self):
        with pytest.raises(ValueError):
            TimingModel(lanes_per_cu=0)

    def test_invalid_bw_demand(self):
        with pytest.raises(ValueError):
            TimingModel(bw_demand_per_cu_ghz=-1.0)


class TestComputeKernels:
    def test_scales_with_cu(self, model):
        t2 = model.kernel_time(COMPUTE, _config(cu=2))
        t8 = model.kernel_time(COMPUTE, _config(cu=8))
        assert 3.0 < t2 / t8 < 4.5  # near-linear CU scaling

    def test_scales_with_gpu_frequency(self, model):
        slow = model.kernel_time(COMPUTE, _config(gpu="DPM0"))
        fast = model.kernel_time(COMPUTE, _config(gpu="DPM4"))
        assert slow / fast == pytest.approx(0.720 / 0.351, rel=0.01)

    def test_nb_state_irrelevant(self, model):
        t_nb0 = model.kernel_time(COMPUTE, _config(nb="NB0"))
        t_nb3 = model.kernel_time(COMPUTE, _config(nb="NB3"))
        assert t_nb0 == pytest.approx(t_nb3, rel=1e-9)


class TestMemoryKernels:
    def test_nb3_hurts(self, model):
        t_nb2 = model.kernel_time(MEMORY, _config(nb="NB2"))
        t_nb3 = model.kernel_time(MEMORY, _config(nb="NB3"))
        assert t_nb3 > 1.5 * t_nb2

    def test_saturates_from_nb2(self, model):
        times = [model.kernel_time(MEMORY, _config(nb=nb)) for nb in ("NB2", "NB1", "NB0")]
        assert max(times) == pytest.approx(min(times), rel=1e-9)

    def test_small_gpu_cannot_saturate_bus(self, model):
        t2 = model.kernel_time(MEMORY, _config(cu=2))
        t8 = model.kernel_time(MEMORY, _config(cu=8))
        assert t2 / t8 > 2.0  # Fig 2(b): ~2.4x from 2 to 8 CUs

    def test_achieved_bandwidth_capped_by_bus(self, model):
        timing = model.kernel_timing(MEMORY, _config())
        assert timing.achieved_bandwidth_gbps <= _config().memory_bandwidth_gbps + 1e-9


class TestPeakKernels:
    def test_fastest_below_max_cu(self, model):
        times = {cu: model.kernel_time(PEAK, _config(cu=cu)) for cu in (2, 4, 6, 8)}
        best_cu = min(times, key=times.get)
        assert best_cu < 8

    def test_interference_inflates_traffic(self, model):
        t4 = model.effective_memory_traffic(PEAK, 4)
        t8 = model.effective_memory_traffic(PEAK, 8)
        assert t8 == pytest.approx(t4 * (1 + 0.5 * 4))

    def test_no_interference_below_sweet_spot(self, model):
        assert model.effective_memory_traffic(PEAK, 2) == PEAK.memory_traffic


class TestUnscalableKernels:
    def test_insensitive_to_configuration(self, model):
        # Figure 2(d): the unscalable kernel gains well under 1.5x over
        # the whole configuration sweep (vs ~4x for compute kernels).
        t_small = model.kernel_time(UNSCALABLE, _config(nb="NB2", gpu="DPM0", cu=2))
        t_big = model.kernel_time(UNSCALABLE, _config(nb="NB0", gpu="DPM4", cu=8))
        assert t_big <= t_small <= 1.5 * t_big

    def test_serial_floor(self, model):
        assert model.kernel_time(UNSCALABLE, _config()) >= UNSCALABLE.serial_time_s


class TestTimingBreakdown:
    def test_total_is_serial_plus_overlap(self, model):
        timing = model.kernel_timing(MEMORY, _config())
        assert timing.total_time_s == pytest.approx(
            timing.serial_time_s + max(timing.compute_time_s, timing.memory_time_s)
        )

    def test_utilizations_bounded(self, model):
        for spec in (COMPUTE, MEMORY, PEAK, UNSCALABLE):
            timing = model.kernel_timing(spec, _config())
            assert 0.0 <= timing.compute_utilization <= 1.0
            assert 0.0 <= timing.memory_utilization <= 1.0

    def test_compute_bound_has_full_compute_utilization(self, model):
        timing = model.kernel_timing(COMPUTE, _config())
        assert timing.compute_utilization == pytest.approx(1.0)

    def test_amdahl_speedup_monotone(self, model):
        speedups = [model.amdahl_speedup(COMPUTE, cu) for cu in (2, 4, 6, 8)]
        assert speedups == sorted(speedups)
        assert speedups[0] > 1.0
