"""Unit tests for the experiments infrastructure (tables, runner, report)."""

import pytest

from repro.experiments.common import ExperimentContext, ExperimentTable
from repro.experiments.report import PAPER_NOTES
from repro.experiments.runner import ALL_EXPERIMENTS, run_all
from repro.experiments.tables import table1, table2, table3, table4


class TestExperimentTable:
    def _table(self):
        return ExperimentTable("Fig X", "demo", headers=["a", "b"])

    def test_add_row_checks_width(self):
        table = self._table()
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_column(self):
        table = self._table()
        table.add_row("x", 1)
        table.add_row("y", 2)
        assert table.column("b") == [1, 2]

    def test_column_unknown(self):
        with pytest.raises(ValueError):
            self._table().column("zz")

    def test_row_for(self):
        table = self._table()
        table.add_row("x", 1)
        assert table.row_for("x") == ["x", 1]
        with pytest.raises(KeyError):
            table.row_for("nope")

    def test_format_contains_everything(self):
        table = self._table()
        table.add_row("hello", 3.14159)
        rendered = table.format()
        assert "Fig X" in rendered
        assert "hello" in rendered
        assert "3.142" in rendered  # floats at 3 decimals


class TestStaticTables:
    def test_table1_counts(self):
        assert len(table1().rows) == 16

    def test_table2_matches(self):
        assert all(table2().column("Match"))

    def test_table3_has_eight_counters(self):
        assert len(table3().rows) == 8

    def test_table4_lists_fifteen(self):
        assert len(table4().rows) == 15


class TestRunner:
    def test_every_experiment_registered(self):
        expected = {
            "table1", "table2", "table3", "table4",
            "fig2", "fig3", "fig4", "fig7", "fig8", "fig9", "fig10",
            "fig11", "fig12", "fig13", "fig14", "fig15",
            "headline", "ablation",
            "ablation_search_order", "ablation_window_reserve",
            "ablation_overhead_hiding",
        }
        assert set(ALL_EXPERIMENTS) == expected

    def test_every_experiment_has_a_paper_note(self):
        for key in ALL_EXPERIMENTS:
            assert key in PAPER_NOTES, f"missing paper note for {key}"

    def test_unknown_key_rejected(self):
        with pytest.raises(KeyError):
            run_all(only=["figZZ"], echo=False)

    def test_static_subset_runs(self, capsys):
        tables = run_all(only=["table1", "fig7"], echo=True)
        assert [t.experiment_id for t in tables] == ["Table I", "Figure 7"]
        out = capsys.readouterr().out
        assert "Table I" in out


class TestContext:
    def test_restricted_benchmark_set(self):
        ctx = ExperimentContext(benchmark_names=["NBody"])
        assert ctx.benchmark_names == ["NBody"]
        run = ctx.turbo("NBody")
        assert run.app_name == "NBody"
        # Cached: the same object comes back.
        assert ctx.turbo("NBody") is run

    def test_target_matches_turbo_run(self):
        ctx = ExperimentContext(benchmark_names=["NBody"])
        turbo = ctx.turbo("NBody")
        assert ctx.target_throughput("NBody") == pytest.approx(
            turbo.instructions / turbo.kernel_time_s
        )


class TestBenchDecide:
    def test_trajectory_appends_and_survives_schema_mismatch(self, tmp_path):
        from repro.experiments.bench_decide import SCHEMA, _load_trajectory

        path = tmp_path / "bench.json"
        assert _load_trajectory(str(path)) == []
        path.write_text('{"schema": "other/v0", "trajectory": [1]}')
        assert _load_trajectory(str(path)) == []
        path.write_text(
            '{"schema": "%s", "trajectory": [{"label": "seed"}]}' % SCHEMA
        )
        assert _load_trajectory(str(path)) == [{"label": "seed"}]

    def test_format_entry_lists_every_backend(self):
        from repro.experiments.bench_decide import format_entry

        entry = {
            "label": "seed", "benchmark": "kmeans", "cases": 2,
            "backends": {
                "rf": {
                    "scalar_decisions_per_s": 10.0,
                    "matrix_decisions_per_s": 40.0, "speedup": 4.0,
                },
            },
        }
        text = format_entry(entry)
        assert "rf" in text and "4.00x" in text

    def test_format_entry_renders_health_overhead_budget(self):
        from repro.experiments.bench_decide import format_entry

        entry = {
            "label": "full", "benchmark": "kmeans", "cases": 2,
            "backends": {
                "rf": {
                    "scalar_decisions_per_s": 10.0,
                    "matrix_decisions_per_s": 40.0, "speedup": 4.0,
                },
            },
            "health_overhead": {
                "sessions": 64,
                "noop_decisions_per_s": 400.0,
                "health_decisions_per_s": 390.0,
                "overhead_pct": 2.5,
                "budget_pct": 5.0,
            },
        }
        text = format_entry(entry)
        assert "health" in text
        assert "+2.50% overhead" in text
        assert "budget 5%" in text
