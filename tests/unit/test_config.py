"""Unit tests for hardware configurations and the config space."""

import pytest

from repro.hardware.config import FAILSAFE_CONFIG, ConfigSpace, HardwareConfig, Knob


@pytest.fixture
def space():
    return ConfigSpace()


class TestHardwareConfig:
    def test_valid_construction(self):
        config = HardwareConfig(cpu="P3", nb="NB1", gpu="DPM2", cu=4)
        assert config.cpu == "P3"
        assert config.cu == 4

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(cpu="P0", nb="NB0", gpu="DPM4", cu=8),
            dict(cpu="P1", nb="NB9", gpu="DPM4", cu=8),
            dict(cpu="P1", nb="NB0", gpu="DPM7", cu=8),
            dict(cpu="P1", nb="NB0", gpu="DPM4", cu=3),
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            HardwareConfig(**kwargs)

    def test_replace(self):
        config = FAILSAFE_CONFIG.replace(cpu="P1")
        assert config.cpu == "P1"
        assert config.nb == FAILSAFE_CONFIG.nb
        assert FAILSAFE_CONFIG.cpu == "P7"  # original untouched

    def test_knob_accessor(self):
        config = HardwareConfig(cpu="P2", nb="NB3", gpu="DPM0", cu=6)
        assert config.knob(Knob.CPU) == "P2"
        assert config.knob(Knob.NB) == "NB3"
        assert config.knob(Knob.GPU) == "DPM0"
        assert config.knob(Knob.CU) == 6

    def test_knob_accessor_rejects_unknown(self):
        with pytest.raises(ValueError):
            FAILSAFE_CONFIG.knob("voltage")

    def test_rail_voltage_property(self):
        config = HardwareConfig(cpu="P7", nb="NB0", gpu="DPM0", cu=2)
        assert config.rail_voltage == pytest.approx(1.15)

    def test_failsafe_is_papers(self):
        assert FAILSAFE_CONFIG == HardwareConfig(cpu="P7", nb="NB2", gpu="DPM4", cu=8)

    def test_str(self):
        assert str(FAILSAFE_CONFIG) == "[P7, NB2, DPM4, 8 CUs]"

    def test_hashable_and_ordered(self):
        a = HardwareConfig(cpu="P1", nb="NB0", gpu="DPM4", cu=8)
        b = HardwareConfig(cpu="P1", nb="NB0", gpu="DPM4", cu=8)
        assert a == b
        assert len({a, b}) == 1


class TestConfigSpace:
    def test_default_size_is_336(self, space):
        assert len(space) == 336
        assert len(space.all_configs()) == 336

    def test_knob_cardinality_sum(self, space):
        # 7 CPU + 4 NB + 3 GPU + 4 CU = 18, the paper's ~19x reduction.
        assert space.knob_cardinality_sum() == 18

    def test_axes_run_slow_to_fast(self, space):
        assert space.cpu_axis[0] == "P7" and space.cpu_axis[-1] == "P1"
        assert space.nb_axis[0] == "NB3" and space.nb_axis[-1] == "NB0"
        assert space.gpu_axis == ("DPM0", "DPM2", "DPM4")
        assert space.cu_axis == (2, 4, 6, 8)

    def test_contains(self, space):
        assert FAILSAFE_CONFIG in space
        outside = HardwareConfig(cpu="P1", nb="NB0", gpu="DPM1", cu=8)
        assert outside not in space

    def test_iteration_yields_unique_members(self, space):
        configs = list(space)
        assert len(set(configs)) == 336

    def test_step_up_and_down(self, space):
        config = HardwareConfig(cpu="P5", nb="NB2", gpu="DPM2", cu=4)
        up = space.step(config, Knob.CU, +1)
        down = space.step(config, Knob.CU, -1)
        assert up.cu == 6
        assert down.cu == 2

    def test_step_off_axis_returns_none(self, space):
        fastest = space.fastest()
        for knob in Knob.ALL:
            assert space.step(fastest, knob, +1) is None
        slowest = space.slowest()
        for knob in Knob.ALL:
            assert space.step(slowest, knob, -1) is None

    def test_step_rejects_bad_direction(self, space):
        with pytest.raises(ValueError):
            space.step(FAILSAFE_CONFIG, Knob.CPU, 2)

    def test_fastest_slowest(self, space):
        assert space.fastest() == HardwareConfig(cpu="P1", nb="NB0", gpu="DPM4", cu=8)
        assert space.slowest() == HardwareConfig(cpu="P7", nb="NB3", gpu="DPM0", cu=2)

    def test_reduced_space(self):
        reduced = ConfigSpace(
            cpu_states=("P7", "P1"), nb_states=("NB2",),
            gpu_states=("DPM0", "DPM4"), cu_counts=(2, 8),
        )
        assert len(reduced) == 8
        assert reduced.knob_cardinality_sum() == 7

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError):
            ConfigSpace(cpu_states=())

    def test_duplicate_axis_rejected(self):
        with pytest.raises(ValueError):
            ConfigSpace(cu_counts=(2, 2, 4))

    def test_clamp_noop_for_member(self, space):
        assert space.clamp(FAILSAFE_CONFIG) == FAILSAFE_CONFIG

    def test_clamp_snaps_off_axis_values(self):
        reduced = ConfigSpace(gpu_states=("DPM0", "DPM4"))
        clamped = reduced.clamp(HardwareConfig(cpu="P7", nb="NB2", gpu="DPM2", cu=8))
        assert clamped.gpu == "DPM4"
        assert clamped in reduced

    def test_index_of_unknown_value(self, space):
        with pytest.raises(ValueError):
            space.index_of(Knob.GPU, "DPM1")
