"""Unit tests for baseline policies and Turbo Core."""

import pytest

from repro.core.policies import FixedConfigPolicy, PlannedPolicy, PPKPolicy
from repro.hardware.apu import APUModel, Measurement
from repro.hardware.config import ConfigSpace, HardwareConfig
from repro.hardware.power import PowerModel, PowerModelParams
from repro.ml.predictors import OraclePredictor
from repro.sim.policy import Observation
from repro.sim.simulator import Simulator
from repro.sim.turbocore import TurboCorePolicy
from repro.workloads.app import Application, Category
from repro.workloads.counters import CounterSynthesizer
from repro.workloads.kernel import KernelSpec, ScalingClass

COMPUTE = KernelSpec("c", ScalingClass.COMPUTE, 5.0, 0.1, parallel_fraction=0.99)
APP = Application(
    "test", "unit", Category.REGULAR, kernels=(COMPUTE,) * 6, pattern="A6"
)


@pytest.fixture
def sim():
    return Simulator()


class TestFixedConfigPolicy:
    def test_always_same_config(self, sim):
        config = HardwareConfig(cpu="P5", nb="NB1", gpu="DPM2", cu=4)
        result = sim.run(APP, FixedConfigPolicy(config))
        assert all(r.config == config for r in result.launches)
        assert result.overhead_time_s == 0.0


class TestPlannedPolicy:
    def test_replays_plan(self, sim):
        space = ConfigSpace()
        plan = space.all_configs()[: len(APP)]
        result = sim.run(APP, PlannedPolicy(plan))
        assert [r.config for r in result.launches] == plan

    def test_short_plan_raises(self, sim):
        with pytest.raises(IndexError):
            sim.run(APP, PlannedPolicy([ConfigSpace().fastest()]))

    def test_empty_plan_rejected(self):
        with pytest.raises(ValueError):
            PlannedPolicy([])


class TestPPKPolicy:
    def _target(self, sim):
        turbo = sim.run(APP, TurboCorePolicy())
        return turbo, turbo.instructions / turbo.kernel_time_s

    def test_first_kernel_fail_safe(self, sim):
        _, target = self._target(sim)
        policy = PPKPolicy(target, OraclePredictor(sim.apu, [COMPUTE]))
        result = sim.run(APP, policy)
        assert result.launches[0].fail_safe
        assert result.launches[0].config == policy.optimizer.fail_safe

    def test_saves_energy_on_regular_app(self, sim):
        turbo, target = self._target(sim)
        policy = PPKPolicy(target, OraclePredictor(sim.apu, [COMPUTE]))
        result = sim.run(APP, policy)
        assert result.energy_j < turbo.energy_j

    def test_meets_throughput_target_on_regular_app(self, sim):
        turbo, target = self._target(sim)
        policy = PPKPolicy(target, OraclePredictor(sim.apu, [COMPUTE]))
        result = sim.run(APP, policy)
        assert result.instructions / result.kernel_time_s >= 0.99 * target

    def test_charges_overhead_after_first_kernel(self, sim):
        _, target = self._target(sim)
        policy = PPKPolicy(target, OraclePredictor(sim.apu, [COMPUTE]))
        result = sim.run(APP, policy)
        assert result.launches[0].overhead_time_s == 0.0
        assert all(r.overhead_time_s > 0 for r in result.launches[1:])

    def test_begin_run_resets_tracker(self, sim):
        _, target = self._target(sim)
        policy = PPKPolicy(target, OraclePredictor(sim.apu, [COMPUTE]))
        sim.run(APP, policy)
        assert policy.tracker.instructions > 0
        policy.begin_run()
        assert policy.tracker.instructions == 0.0


class TestTurboCore:
    def test_boosts_when_within_tdp(self, sim):
        result = sim.run(APP, TurboCorePolicy(tdp_w=95.0))
        assert all(
            r.config == ConfigSpace().fastest() for r in result.launches
        )

    def test_backs_off_cpu_when_over_tdp(self):
        # A 40 W TDP part cannot hold the full boost configuration.
        params = PowerModelParams(tdp_w=40.0)
        apu = APUModel(power=PowerModel(params))
        sim = Simulator(apu=apu)
        policy = TurboCorePolicy(tdp_w=40.0)
        result = sim.run(APP, policy)
        late = result.launches[-1].config
        assert late.cpu != "P1"  # CPU states shed first

    def test_no_optimizer_overhead(self, sim):
        result = sim.run(APP, TurboCorePolicy())
        assert result.overhead_time_s == 0.0

    def test_observe_tracks_power(self):
        policy = TurboCorePolicy()
        m = Measurement(time_s=0.01, gpu_power_w=30.0, cpu_power_w=20.0,
                        temperature_c=70.0)
        counters = CounterSynthesizer(noise=0.0).nominal(COMPUTE)
        policy.observe(Observation(0, ConfigSpace().fastest(), counters, m, 1e9))
        assert policy._last_power_w == pytest.approx(50.0)
