"""Unit tests for the extension switches (overhead hiding, ablations)."""

import pytest

from repro.core.manager import MPCPowerManager
from repro.core.policies import FixedConfigPolicy
from repro.ml.predictors import OraclePredictor
from repro.sim.policy import Decision
from repro.sim.simulator import Simulator
from repro.sim.turbocore import TurboCorePolicy
from repro.workloads.app import Application, Category
from repro.workloads.kernel import KernelSpec, ScalingClass

COMPUTE = KernelSpec("c", ScalingClass.COMPUTE, 4.0, 0.1, parallel_fraction=0.99)
MEMORY = KernelSpec("m", ScalingClass.MEMORY, 0.5, 0.9, parallel_fraction=0.9)
APP = Application(
    "alt", "unit", Category.IRREGULAR_REPEATING,
    kernels=(COMPUTE, MEMORY) * 4, pattern="(AB)4",
)


class _Chatty(FixedConfigPolicy):
    """Fixed-config policy that pretends to do optimizer work."""

    def decide(self, index):
        return Decision(config=self.config, model_evaluations=100)


class TestOverheadHiding:
    def test_negative_phase_rejected(self):
        with pytest.raises(ValueError):
            Simulator(cpu_phase_s=-1.0)

    def test_phase_hides_wall_clock_overhead(self):
        from repro.hardware.config import ConfigSpace
        config = ConfigSpace().fastest()
        worst = Simulator(cpu_phase_s=0.0).run(APP, _Chatty(config))
        hidden = Simulator(cpu_phase_s=1.0).run(APP, _Chatty(config))
        assert worst.overhead_time_s > 0.0
        assert hidden.overhead_time_s == 0.0

    def test_phase_does_not_hide_energy(self):
        from repro.hardware.config import ConfigSpace
        config = ConfigSpace().fastest()
        worst = Simulator(cpu_phase_s=0.0).run(APP, _Chatty(config))
        hidden = Simulator(cpu_phase_s=1.0).run(APP, _Chatty(config))
        assert hidden.overhead_energy_j == pytest.approx(worst.overhead_energy_j)

    def test_partial_hiding(self):
        from repro.hardware.config import ConfigSpace
        config = ConfigSpace().fastest()
        sim = Simulator(cpu_phase_s=1e-4)
        run = sim.run(APP, _Chatty(config))
        per_decision = sim.overhead.decision_time_s(
            Decision(config=config, model_evaluations=100)
        )
        expected = max(0.0, per_decision - 1e-4) * len(APP)
        assert run.overhead_time_s == pytest.approx(expected)


class TestManagerAblationFlags:
    def _steady(self, sim, **kw):
        turbo = sim.run(APP, TurboCorePolicy())
        target = turbo.instructions / turbo.kernel_time_s
        manager = MPCPowerManager(
            target, OraclePredictor(sim.apu, APP.unique_kernels),
            overhead_model=sim.overhead, **kw,
        )
        sim.run(APP, manager)
        return manager, sim.run(APP, manager)

    def test_plain_order_is_identity(self):
        sim = Simulator()
        manager, _ = self._steady(sim, use_search_order=False)
        assert manager.search_order.order == tuple(range(len(APP)))

    def test_search_order_reorders(self):
        sim = Simulator()
        manager, _ = self._steady(sim, use_search_order=True)
        assert manager.search_order.order != tuple(range(len(APP)))

    def test_no_reserve_still_runs(self):
        sim = Simulator()
        _, run = self._steady(sim, window_reserve=False)
        assert len(run.launches) == len(APP)

    def test_reserve_protects_throughput(self):
        sim = Simulator()
        turbo = sim.run(APP, TurboCorePolicy())
        target = turbo.instructions / turbo.kernel_time_s
        _, with_reserve = self._steady(sim, window_reserve=True)
        achieved = with_reserve.instructions / with_reserve.kernel_time_s
        assert achieved >= 0.97 * target
