"""Unit tests for the Table-I DVFS state tables."""

import pytest

from repro.hardware import dvfs


class TestStateTables:
    def test_cpu_pstate_count(self):
        assert len(dvfs.CPU_PSTATES) == 7

    def test_nb_state_count(self):
        assert len(dvfs.NB_PSTATES) == 4

    def test_gpu_dpm_count(self):
        assert len(dvfs.GPU_DPM_STATES) == 5

    def test_cpu_p1_matches_table1(self):
        state = dvfs.CPU_PSTATES["P1"]
        assert state.voltage == pytest.approx(1.325)
        assert state.freq_ghz == pytest.approx(3.9)

    def test_cpu_p7_matches_table1(self):
        state = dvfs.CPU_PSTATES["P7"]
        assert state.voltage == pytest.approx(0.8875)
        assert state.freq_ghz == pytest.approx(1.7)

    def test_gpu_dpm0_matches_table1(self):
        state = dvfs.GPU_DPM_STATES["DPM0"]
        assert state.voltage == pytest.approx(0.95)
        assert state.freq_ghz == pytest.approx(0.351)

    def test_gpu_dpm4_matches_table1(self):
        state = dvfs.GPU_DPM_STATES["DPM4"]
        assert state.voltage == pytest.approx(1.225)
        assert state.freq_ghz == pytest.approx(0.720)

    def test_nb_frequencies_match_table1(self):
        freqs = [dvfs.NB_PSTATES[n].freq_ghz for n in ("NB0", "NB1", "NB2", "NB3")]
        assert freqs == pytest.approx([1.8, 1.6, 1.4, 1.1])

    def test_cpu_voltage_decreases_with_state(self):
        states = list(dvfs.CPU_PSTATES.values())
        voltages = [s.voltage for s in states]
        assert voltages == sorted(voltages, reverse=True)

    def test_gpu_voltage_increases_with_dpm(self):
        voltages = [s.voltage for s in dvfs.GPU_DPM_STATES.values()]
        assert voltages == sorted(voltages)

    def test_searched_gpu_subset(self):
        assert dvfs.SEARCHED_GPU_STATES == ("DPM0", "DPM2", "DPM4")

    def test_cu_counts(self):
        assert dvfs.CU_COUNTS == (2, 4, 6, 8)

    def test_state_str(self):
        assert "P1" in str(dvfs.CPU_PSTATES["P1"])


class TestMemoryBandwidth:
    def test_nb0_through_nb2_share_dram_bus(self):
        bw = {n: dvfs.memory_bus_bandwidth_gbps(n) for n in ("NB0", "NB1", "NB2")}
        assert len(set(bw.values())) == 1

    def test_nb3_reduces_bandwidth(self):
        assert dvfs.memory_bus_bandwidth_gbps("NB3") < dvfs.memory_bus_bandwidth_gbps("NB2")

    def test_nb0_bandwidth_value(self):
        # 800 MHz dual-channel DDR3: 25.6 GB/s.
        assert dvfs.memory_bus_bandwidth_gbps("NB0") == pytest.approx(25.6)


class TestRailVoltage:
    def test_rail_is_max_of_domains(self):
        for gpu in dvfs.GPU_DPM_STATES:
            for nb in dvfs.NB_PSTATES:
                rail = dvfs.rail_voltage(gpu, nb)
                assert rail == max(
                    dvfs.GPU_DPM_STATES[gpu].voltage, dvfs.NB_RAIL_VOLTAGE[nb]
                )

    def test_high_nb_state_blocks_gpu_voltage_reduction(self):
        # Dropping the GPU from DPM2 to DPM0 at NB0 cannot drop the rail
        # below the NB requirement.
        assert dvfs.rail_voltage("DPM0", "NB0") == dvfs.NB_RAIL_VOLTAGE["NB0"]
        assert dvfs.rail_voltage("DPM0", "NB0") > dvfs.GPU_DPM_STATES["DPM0"].voltage

    def test_fast_gpu_dominates_rail(self):
        assert dvfs.rail_voltage("DPM4", "NB3") == dvfs.GPU_DPM_STATES["DPM4"].voltage
