"""Unit tests for the power-controller telemetry."""

import pytest

from repro.core.policies import FixedConfigPolicy
from repro.hardware.config import ConfigSpace
from repro.hardware.telemetry import PowerSample, PowerTelemetry, PowerTrace
from repro.sim.policy import Decision
from repro.sim.simulator import Simulator
from repro.workloads.app import Application, Category
from repro.workloads.kernel import KernelSpec, ScalingClass

KERNEL = KernelSpec("k", ScalingClass.COMPUTE, 4.0, 0.1, parallel_fraction=0.99)
APP = Application("t", "unit", Category.REGULAR, kernels=(KERNEL,) * 4, pattern="A4")
FAST = ConfigSpace().fastest()


class _Chatty(FixedConfigPolicy):
    def decide(self, index):
        return Decision(config=self.config, model_evaluations=500)


@pytest.fixture(scope="module")
def run():
    return Simulator().run(APP, FixedConfigPolicy(FAST))


@pytest.fixture(scope="module")
def run_with_overhead():
    return Simulator().run(APP, _Chatty(FAST))


class TestConstruction:
    def test_bad_period(self):
        with pytest.raises(ValueError):
            PowerTelemetry(period_s=0.0)

    def test_bad_noise(self):
        with pytest.raises(ValueError):
            PowerTelemetry(noise=-0.1)


class TestSampling:
    def test_sample_count_matches_duration(self, run):
        telemetry = PowerTelemetry(period_s=1e-3)
        trace = telemetry.sample(run)
        expected = int(run.total_time_s / 1e-3)
        assert abs(len(trace) - expected) <= 1

    def test_energy_integrates_to_accounted(self, run):
        telemetry = PowerTelemetry(period_s=1e-4)
        trace = telemetry.sample(run)
        assert trace.energy_j() == pytest.approx(run.energy_j, rel=0.01)
        assert trace.gpu_energy_j() == pytest.approx(run.gpu_energy_j, rel=0.01)

    def test_all_samples_are_kernel_phase_without_overhead(self, run):
        trace = PowerTelemetry(period_s=1e-3).sample(run)
        assert trace.phase_fraction("kernel") == 1.0

    def test_manager_phases_visible_with_overhead(self, run_with_overhead):
        trace = PowerTelemetry(period_s=1e-5).sample(run_with_overhead)
        assert trace.phase_fraction("manager") > 0.0
        manager_samples = [s for s in trace.samples if s.phase == "manager"]
        kernel_samples = [s for s in trace.samples if s.phase == "kernel"]
        # The optimizer phase draws much less power than kernels.
        assert max(s.total_power_w for s in manager_samples) < min(
            s.total_power_w for s in kernel_samples
        )

    def test_kernel_keys_attached(self, run):
        trace = PowerTelemetry(period_s=1e-3).sample(run)
        assert all(s.kernel_key == "k" for s in trace.samples)

    def test_sensor_noise(self, run):
        clean = PowerTelemetry(period_s=1e-3, noise=0.0).sample(run)
        noisy = PowerTelemetry(period_s=1e-3, noise=0.05, seed=3).sample(run)
        assert clean.samples[0].gpu_power_w != noisy.samples[0].gpu_power_w
        # Noise is zero-mean: integrated energy stays close.
        assert noisy.energy_j() == pytest.approx(clean.energy_j(), rel=0.05)

    def test_timestamps_monotone(self, run):
        trace = PowerTelemetry(period_s=1e-3).sample(run)
        times = [s.time_s for s in trace.samples]
        assert times == sorted(times)

    def test_as_arrays(self, run):
        trace = PowerTelemetry(period_s=1e-3).sample(run)
        times, gpu, cpu = trace.as_arrays()
        assert times.shape == gpu.shape == cpu.shape == (len(trace),)


class TestTraceStats:
    def test_empty_trace(self):
        trace = PowerTrace(samples=[], period_s=1e-3)
        assert trace.duration_s == 0.0
        assert trace.mean_power_w() == 0.0
        assert trace.peak_power_w() == 0.0
        assert trace.phase_fraction("kernel") == 0.0

    def test_peak_at_least_mean(self, run):
        trace = PowerTelemetry(period_s=1e-3).sample(run)
        assert trace.peak_power_w() >= trace.mean_power_w()

    def test_sample_total(self):
        sample = PowerSample(0.0, 30.0, 20.0, "kernel", "k")
        assert sample.total_power_w == 50.0
