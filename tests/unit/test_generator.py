"""Unit tests for the synthetic training-population generator."""

import pytest

from repro.workloads.generator import KernelPopulationGenerator, training_population
from repro.workloads.kernel import ScalingClass


class TestSampling:
    def test_population_size(self):
        assert len(training_population(32)) == 32

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            KernelPopulationGenerator().population(0)

    def test_bad_mix_rejected(self):
        with pytest.raises(ValueError):
            KernelPopulationGenerator().population(4, class_mix=[1.0, 0.5, 0.0, 0.0])

    def test_deterministic_per_seed(self):
        a = training_population(16, seed=3)
        b = training_population(16, seed=3)
        assert [k.key for k in a] == [k.key for k in b]
        assert [k.compute_work for k in a] == [k.compute_work for k in b]

    def test_seed_changes_population(self):
        a = training_population(16, seed=3)
        b = training_population(16, seed=4)
        assert [k.compute_work for k in a] != [k.compute_work for k in b]

    def test_all_classes_represented(self):
        population = training_population(64, seed=0)
        classes = {k.scaling_class for k in population}
        assert classes == set(ScalingClass)

    def test_class_specific_sampling(self):
        gen = KernelPopulationGenerator(seed=1)
        spec = gen.sample(ScalingClass.PEAK, index=7)
        assert spec.scaling_class is ScalingClass.PEAK
        assert spec.cache_interference > 0
        assert "peak" in spec.name

    def test_unscalable_kernels_have_serial_time(self):
        gen = KernelPopulationGenerator(seed=2)
        for i in range(10):
            spec = gen.sample(ScalingClass.UNSCALABLE, index=i)
            assert spec.serial_time_s > 0

    def test_parameter_ranges_are_valid(self):
        for spec in training_population(128, seed=5):
            assert 0.0 < spec.parallel_fraction <= 1.0
            assert 0.0 < spec.compute_efficiency <= 1.0
            assert spec.compute_work > 0
            assert spec.memory_traffic > 0

    def test_unique_names(self):
        population = training_population(64, seed=0)
        assert len({k.key for k in population}) == 64
