"""Unit tests for applications and the Table-IV benchmark suite."""

import pytest

from repro.workloads.app import Application, Category, expand_pattern
from repro.workloads.kernel import KernelSpec, ScalingClass
from repro.workloads.suites import (
    BENCHMARK_NAMES,
    TABLE_II_PATTERNS,
    all_benchmarks,
    benchmark,
    benchmarks_by_category,
)

K1 = KernelSpec("a", ScalingClass.COMPUTE, 1.0, 0.1)
K2 = KernelSpec("b", ScalingClass.MEMORY, 0.5, 0.8)


class TestApplication:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Application("x", "s", Category.REGULAR, kernels=())

    def test_len_and_iter(self):
        app = Application("x", "s", Category.REGULAR, kernels=(K1, K2, K1))
        assert len(app) == 3
        assert list(app) == [K1, K2, K1]

    def test_unique_kernels_order(self):
        app = Application("x", "s", Category.REGULAR, kernels=(K1, K2, K1))
        assert [k.key for k in app.unique_kernels] == ["a", "b"]

    def test_total_instructions(self):
        app = Application("x", "s", Category.REGULAR, kernels=(K1, K1))
        assert app.total_instructions == pytest.approx(2 * K1.instructions)

    def test_letter_sequence(self):
        app = Application("x", "s", Category.REGULAR, kernels=(K1, K2, K1, K2))
        assert app.letter_sequence() == ["A", "B", "A", "B"]

    def test_expand_pattern(self):
        assert expand_pattern([(K1, 2), (K2, 1)]) == [K1, K1, K2]

    def test_expand_pattern_rejects_zero_count(self):
        with pytest.raises(ValueError):
            expand_pattern([(K1, 0)])

    def test_conflicting_kernels_with_same_key_rejected(self):
        impostor = KernelSpec("a", ScalingClass.MEMORY, 9.0, 2.0)
        with pytest.raises(ValueError, match="key 'a' differ"):
            Application("x", "s", Category.REGULAR, kernels=(K1, impostor))

    def test_repeated_identical_kernels_allowed(self):
        app = Application("x", "s", Category.REGULAR, kernels=(K1, K1, K1))
        assert len(app) == 3


class TestSuite:
    def test_fifteen_benchmarks(self):
        assert len(BENCHMARK_NAMES) == 15
        assert len(all_benchmarks()) == 15

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            benchmark("doom")

    def test_table2_patterns_match(self):
        for name, pattern in TABLE_II_PATTERNS.items():
            assert benchmark(name).pattern == pattern

    def test_spmv_sequence(self):
        app = benchmark("Spmv")
        letters = app.letter_sequence()
        assert letters == ["A"] * 10 + ["B"] * 10 + ["C"] * 10

    def test_kmeans_sequence(self):
        letters = benchmark("kmeans").letter_sequence()
        assert letters == ["A"] + ["B"] * 20

    def test_eigenvalue_alternates(self):
        letters = benchmark("EigenValue").letter_sequence()
        assert letters == ["A", "B"] * 5

    def test_hybridsort_structure(self):
        app = benchmark("hybridsort")
        assert len(app) == 15
        merge = [k for k in app.kernels if k.name == "mergeSortPass"]
        assert len(merge) == 9
        assert len({k.key for k in merge}) == 9  # distinct inputs

    def test_regular_benchmarks_single_kernel(self):
        for name in ("mandelbulbGPU", "NBody", "lbm"):
            app = benchmark(name)
            assert app.category is Category.REGULAR
            assert len(app.unique_kernels) == 1

    def test_category_partition(self):
        grouped = benchmarks_by_category()
        assert sum(len(v) for v in grouped.values()) == 15
        assert len(grouped[Category.REGULAR]) == 3
        assert len(grouped[Category.IRREGULAR_REPEATING]) == 2
        assert len(grouped[Category.IRREGULAR_NON_REPEATING]) == 2
        assert len(grouped[Category.IRREGULAR_INPUT_VARYING]) == 8

    def test_lbm_is_peak_class(self):
        assert all(
            k.scaling_class is ScalingClass.PEAK for k in benchmark("lbm").kernels
        )

    def test_benchmarks_are_rebuilt_fresh(self):
        assert benchmark("Spmv") is not benchmark("Spmv")

    def test_all_kernels_have_positive_work(self):
        for app in all_benchmarks():
            for kernel in app.kernels:
                assert kernel.instructions > 0
                assert (
                    kernel.compute_work > 0
                    or kernel.memory_traffic > 0
                    or kernel.serial_time_s > 0
                )
