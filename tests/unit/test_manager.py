"""Unit tests for the MPC power manager lifecycle."""

import math

import pytest

from repro.core.manager import MPCPowerManager
from repro.runtime.lifecycle import PolicyState
from repro.hardware.apu import APUModel
from repro.ml.predictors import OraclePredictor
from repro.sim.simulator import Simulator
from repro.sim.turbocore import TurboCorePolicy
from repro.workloads.counters import CounterSynthesizer
from repro.workloads.app import Application, Category
from repro.workloads.kernel import KernelSpec, ScalingClass

COMPUTE = KernelSpec("c", ScalingClass.COMPUTE, 4.0, 0.1, parallel_fraction=0.99)
MEMORY = KernelSpec("m", ScalingClass.MEMORY, 0.5, 0.9, parallel_fraction=0.9)
APP = Application(
    "alt", "unit", Category.IRREGULAR_REPEATING,
    kernels=(COMPUTE, MEMORY) * 4, pattern="(AB)4",
)


@pytest.fixture
def sim():
    return Simulator()


def _manager(sim, **kw):
    turbo = sim.run(APP, TurboCorePolicy())
    target = turbo.instructions / turbo.kernel_time_s
    manager = MPCPowerManager(
        target, OraclePredictor(sim.apu, APP.unique_kernels),
        overhead_model=sim.overhead, **kw,
    )
    return turbo, manager


class TestLifecycle:
    def test_first_invocation_runs_ppk(self, sim):
        _, manager = _manager(sim)
        result = sim.run(APP, manager)
        assert not manager.profiled or True  # profiling freezes on next begin_run
        assert result.launches[0].fail_safe  # no counters yet -> fail-safe
        assert all(r.horizon <= 1 for r in result.launches)

    def test_profile_frozen_after_first_run(self, sim):
        _, manager = _manager(sim)
        sim.run(APP, manager)
        sim.run(APP, manager)
        assert manager.profiled
        assert manager.search_order is not None
        assert len(manager.search_order) == len(APP)

    def test_steady_state_uses_multi_kernel_horizons(self, sim):
        _, manager = _manager(sim)
        sim.run(APP, manager)
        steady = sim.run(APP, manager)
        assert max(r.horizon for r in steady.launches) > 1

    def test_steady_state_saves_energy_vs_turbo(self, sim):
        turbo, manager = _manager(sim)
        sim.run(APP, manager)
        steady = sim.run(APP, manager)
        assert steady.energy_j < turbo.energy_j

    def test_steady_state_holds_throughput(self, sim):
        turbo, manager = _manager(sim)
        target = turbo.instructions / turbo.kernel_time_s
        sim.run(APP, manager)
        steady = sim.run(APP, manager)
        achieved = steady.instructions / steady.kernel_time_s
        assert achieved >= 0.93 * target

    def test_full_horizon_mode(self, sim):
        _, manager = _manager(sim, adaptive_horizon=False)
        sim.run(APP, manager)
        steady = sim.run(APP, manager)
        assert manager.profiled
        assert max(r.horizon for r in steady.launches) >= len(APP) // 2

    def test_search_order_stable_across_runs(self, sim):
        _, manager = _manager(sim)
        sim.run(APP, manager)
        sim.run(APP, manager)
        first_order = manager.search_order.order
        sim.run(APP, manager)
        assert manager.search_order.order == first_order

    def test_extra_launches_degrade_to_ppk(self, sim):
        _, manager = _manager(sim)
        sim.run(APP, manager)
        longer = Application(
            "alt", "unit", Category.IRREGULAR_REPEATING,
            kernels=(COMPUTE, MEMORY) * 6, pattern="(AB)6",
        )
        result = sim.run(longer, manager)
        # Launches beyond the profiled N still get decisions.
        assert len(result.launches) == 12

    def test_alpha_zero_minimizes_horizon(self, sim):
        _, manager = _manager(sim, alpha=0.0)
        sim.run(APP, manager)
        steady = sim.run(APP, manager)
        # With no overhead budget at the first kernel, H_1 = 0.
        assert steady.launches[0].horizon == 0

    def test_lifecycle_walks_profiling_frozen_mpc(self, sim):
        _, manager = _manager(sim)
        assert manager.state is PolicyState.PROFILING
        sim.run(APP, manager)
        manager.begin_run()
        assert manager.state is PolicyState.FROZEN
        manager.decide(0)
        assert manager.state is PolicyState.MPC

    def test_begin_run_resets_cursors_not_lifecycle(self, sim):
        _, manager = _manager(sim)
        sim.run(APP, manager)
        sim.run(APP, manager)
        assert manager.state is PolicyState.MPC
        manager.begin_run()
        assert manager.state is PolicyState.MPC
        assert manager.tracker.instructions == 0.0
        assert manager._horizon_gen.elapsed_s == 0.0


class TestValidation:
    def _predictor(self, sim):
        return OraclePredictor(sim.apu, APP.unique_kernels)

    @pytest.mark.parametrize(
        "target", [0.0, -1.0, -1e9, float("nan"), float("inf")]
    )
    def test_invalid_target_throughput_raises(self, sim, target):
        with pytest.raises(ValueError, match="target_throughput"):
            MPCPowerManager(target, self._predictor(sim))

    @pytest.mark.parametrize(
        "alpha", [-0.01, -5.0, float("nan"), float("inf")]
    )
    def test_invalid_alpha_raises(self, sim, alpha):
        with pytest.raises(ValueError, match="alpha"):
            MPCPowerManager(1e9, self._predictor(sim), alpha=alpha)

    def test_error_messages_show_the_value(self, sim):
        with pytest.raises(ValueError, match="-3.0"):
            MPCPowerManager(-3.0, self._predictor(sim))
        with pytest.raises(ValueError, match="-0.5"):
            MPCPowerManager(1e9, self._predictor(sim), alpha=-0.5)

    def test_alpha_zero_remains_a_valid_ablation(self, sim):
        manager = MPCPowerManager(1e9, self._predictor(sim), alpha=0.0)
        assert math.isclose(manager.alpha, 0.0)


class TestZeroHorizonFastPath:
    UNIFORM = Application(
        "uni", "unit", Category.REGULAR,
        kernels=(COMPUTE,) * 8, pattern="A8",
    )

    def _steady(self, app, target_scale):
        # Noise-free counters: every launch of the uniform kernel must
        # bin to the same signature for the reuse path to be reachable.
        sim = Simulator(counters=CounterSynthesizer(noise=0.0))
        turbo = sim.run(app, TurboCorePolicy())
        target = target_scale * turbo.instructions / turbo.kernel_time_s
        manager = MPCPowerManager(
            target, OraclePredictor(sim.apu, app.unique_kernels),
            overhead_model=sim.overhead,
        )
        sim.run(app, manager)
        sim.run(app, manager)
        return sim, manager

    def test_same_kernel_above_target_reuses_last_config(self, monkeypatch):
        # A loose target keeps the tracker above target; with a uniform
        # app every upcoming kernel matches the one that just ran.
        sim, manager = self._steady(self.UNIFORM, target_scale=0.5)
        monkeypatch.setattr(manager._horizon_gen, "horizon", lambda index: 0)
        third = sim.run(self.UNIFORM, manager)
        # Launch 0 has no previous kernel in the run -> fail-safe; every
        # later launch reuses the previous configuration at zero cost.
        assert third.launches[0].fail_safe
        for record in third.launches[1:]:
            assert record.horizon == 0
            assert not record.fail_safe
            assert record.config == third.launches[0].config
            assert record.overhead_time_s == 0.0

    def test_kernel_transition_takes_fail_safe(self, sim, monkeypatch):
        # The alternating app changes kernels every launch, so the
        # previous configuration is never safe to reuse.
        turbo = sim.run(APP, TurboCorePolicy())
        target = 0.5 * turbo.instructions / turbo.kernel_time_s
        manager = MPCPowerManager(
            target, OraclePredictor(sim.apu, APP.unique_kernels),
            overhead_model=sim.overhead,
        )
        sim.run(APP, manager)
        sim.run(APP, manager)
        monkeypatch.setattr(manager._horizon_gen, "horizon", lambda index: 0)
        third = sim.run(APP, manager)
        assert all(r.fail_safe for r in third.launches)
        assert all(r.horizon == 0 for r in third.launches)

    def test_below_target_takes_fail_safe(self, monkeypatch):
        # An unreachable target keeps the tracker below target, so even
        # a same-kernel launch falls back to fail-safe.
        sim, manager = self._steady(self.UNIFORM, target_scale=10.0)
        monkeypatch.setattr(manager._horizon_gen, "horizon", lambda index: 0)
        third = sim.run(self.UNIFORM, manager)
        assert all(r.fail_safe for r in third.launches)


class TestOverProfileLaunches:
    def test_over_profile_launches_use_ppk_decisions(self, sim):
        _, manager = _manager(sim)
        sim.run(APP, manager)
        longer = Application(
            "alt", "unit", Category.IRREGULAR_REPEATING,
            kernels=(COMPUTE, MEMORY) * 6, pattern="(AB)6",
        )
        result = sim.run(longer, manager)
        n = len(APP)
        # Beyond the profiled N the manager degrades to PPK behaviour:
        # single-kernel horizons, never the multi-kernel MPC windows.
        assert all(r.horizon <= 1 for r in result.launches[n:])
        assert manager.state is PolicyState.MPC  # lifecycle unchanged
