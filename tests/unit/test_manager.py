"""Unit tests for the MPC power manager lifecycle."""

import pytest

from repro.core.manager import MPCPowerManager
from repro.hardware.apu import APUModel
from repro.ml.predictors import OraclePredictor
from repro.sim.simulator import Simulator
from repro.sim.turbocore import TurboCorePolicy
from repro.workloads.app import Application, Category
from repro.workloads.kernel import KernelSpec, ScalingClass

COMPUTE = KernelSpec("c", ScalingClass.COMPUTE, 4.0, 0.1, parallel_fraction=0.99)
MEMORY = KernelSpec("m", ScalingClass.MEMORY, 0.5, 0.9, parallel_fraction=0.9)
APP = Application(
    "alt", "unit", Category.IRREGULAR_REPEATING,
    kernels=(COMPUTE, MEMORY) * 4, pattern="(AB)4",
)


@pytest.fixture
def sim():
    return Simulator()


def _manager(sim, **kw):
    turbo = sim.run(APP, TurboCorePolicy())
    target = turbo.instructions / turbo.kernel_time_s
    manager = MPCPowerManager(
        target, OraclePredictor(sim.apu, APP.unique_kernels),
        overhead_model=sim.overhead, **kw,
    )
    return turbo, manager


class TestLifecycle:
    def test_first_invocation_runs_ppk(self, sim):
        _, manager = _manager(sim)
        result = sim.run(APP, manager)
        assert not manager.profiled or True  # profiling freezes on next begin_run
        assert result.launches[0].fail_safe  # no counters yet -> fail-safe
        assert all(r.horizon <= 1 for r in result.launches)

    def test_profile_frozen_after_first_run(self, sim):
        _, manager = _manager(sim)
        sim.run(APP, manager)
        sim.run(APP, manager)
        assert manager.profiled
        assert manager.search_order is not None
        assert len(manager.search_order) == len(APP)

    def test_steady_state_uses_multi_kernel_horizons(self, sim):
        _, manager = _manager(sim)
        sim.run(APP, manager)
        steady = sim.run(APP, manager)
        assert max(r.horizon for r in steady.launches) > 1

    def test_steady_state_saves_energy_vs_turbo(self, sim):
        turbo, manager = _manager(sim)
        sim.run(APP, manager)
        steady = sim.run(APP, manager)
        assert steady.energy_j < turbo.energy_j

    def test_steady_state_holds_throughput(self, sim):
        turbo, manager = _manager(sim)
        target = turbo.instructions / turbo.kernel_time_s
        sim.run(APP, manager)
        steady = sim.run(APP, manager)
        achieved = steady.instructions / steady.kernel_time_s
        assert achieved >= 0.93 * target

    def test_full_horizon_mode(self, sim):
        _, manager = _manager(sim, adaptive_horizon=False)
        sim.run(APP, manager)
        steady = sim.run(APP, manager)
        assert manager.profiled
        assert max(r.horizon for r in steady.launches) >= len(APP) // 2

    def test_search_order_stable_across_runs(self, sim):
        _, manager = _manager(sim)
        sim.run(APP, manager)
        sim.run(APP, manager)
        first_order = manager.search_order.order
        sim.run(APP, manager)
        assert manager.search_order.order == first_order

    def test_extra_launches_degrade_to_ppk(self, sim):
        _, manager = _manager(sim)
        sim.run(APP, manager)
        longer = Application(
            "alt", "unit", Category.IRREGULAR_REPEATING,
            kernels=(COMPUTE, MEMORY) * 6, pattern="(AB)6",
        )
        result = sim.run(longer, manager)
        # Launches beyond the profiled N still get decisions.
        assert len(result.launches) == 12

    def test_alpha_zero_minimizes_horizon(self, sim):
        _, manager = _manager(sim, alpha=0.0)
        sim.run(APP, manager)
        steady = sim.run(APP, manager)
        # With no overhead budget at the first kernel, H_1 = 0.
        assert steady.launches[0].horizon == 0
