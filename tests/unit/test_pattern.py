"""Unit tests for the kernel pattern extractor and period detection."""

import numpy as np
import pytest

from repro.core.pattern import (
    BYTES_PER_RECORD,
    KernelPatternExtractor,
    detect_period,
)
from repro.workloads.counters import CounterVector


def _counters(scale: float) -> CounterVector:
    return CounterVector.from_array(np.full(8, scale))


A = _counters(10.0)
B = _counters(1000.0)
C = _counters(100000.0)


class TestDetectPeriod:
    def test_constant_sequence(self):
        assert detect_period(["a", "a", "a", "a"]) == 1

    def test_alternating(self):
        assert detect_period(["a", "b", "a", "b", "a", "b"]) == 2

    def test_triplet(self):
        assert detect_period(["a", "b", "c", "a", "b", "c"]) == 3

    def test_no_period(self):
        assert detect_period(["a", "b", "c", "d"]) is None

    def test_period_at_tail_only(self):
        # Prefix is irregular but the tail repeats.
        assert detect_period(["x", "a", "b", "a", "b"]) == 2

    def test_too_short(self):
        assert detect_period(["a"]) is None

    def test_min_repeats(self):
        assert detect_period(["a", "b", "a", "b"], min_repeats=3) is None
        assert detect_period(["a"] * 6, min_repeats=3) == 1


class TestObservation:
    def test_new_record_created(self):
        extractor = KernelPatternExtractor()
        record = extractor.observe(A, 100.0, 0.01, 20.0)
        assert record.observations == 1
        assert extractor.num_records == 1

    def test_same_signature_updates_record(self):
        extractor = KernelPatternExtractor()
        extractor.observe(A, 100.0, 0.01, 20.0)
        record = extractor.observe(A, 200.0, 0.02, 25.0)
        assert extractor.num_records == 1
        assert record.observations == 2
        # EMA with weight 0.5: (100 + 200) / 2
        assert record.instructions == pytest.approx(150.0)
        assert record.last_time_s == 0.02

    def test_counter_feedback_blends(self):
        extractor = KernelPatternExtractor(feedback_weight=0.5)
        extractor.observe(_counters(10.0), 1.0, 0.01, 1.0)
        record = extractor.observe(_counters(12.0), 1.0, 0.01, 1.0)
        assert record.counters.as_array()[0] == pytest.approx(11.0)

    def test_invalid_feedback_weight(self):
        with pytest.raises(ValueError):
            KernelPatternExtractor(feedback_weight=0.0)

    def test_storage_accounting(self):
        extractor = KernelPatternExtractor()
        extractor.observe(A, 1.0, 0.01, 1.0)
        extractor.observe(B, 1.0, 0.01, 1.0)
        assert extractor.storage_bytes == 2 * BYTES_PER_RECORD


class TestReplayPrediction:
    def _profiled(self):
        extractor = KernelPatternExtractor()
        for counters in (A, B, B, C):
            extractor.observe(counters, 1.0, 0.01, 1.0)
        extractor.end_run()
        return extractor

    def test_profile_recorded_once(self):
        extractor = self._profiled()
        assert extractor.has_profile
        first_order = extractor.recorded_order
        extractor.observe(C, 1.0, 0.01, 1.0)
        extractor.end_run()
        assert extractor.recorded_order == first_order

    def test_expected_record_by_position(self):
        extractor = self._profiled()
        assert extractor.expected_record(0).signature == A.signature()
        assert extractor.expected_record(1).signature == B.signature()
        assert extractor.expected_record(3).signature == C.signature()

    def test_expected_record_out_of_range(self):
        assert self._profiled().expected_record(10) is None

    def test_expected_sequence(self):
        extractor = self._profiled()
        records = extractor.expected_sequence(1, 3)
        assert [r.signature for r in records] == [
            B.signature(), B.signature(), C.signature()
        ]

    def test_expected_sequence_negative_length(self):
        with pytest.raises(ValueError):
            self._profiled().expected_sequence(0, -1)


class TestOnlinePrediction:
    def test_periodic_prediction_without_profile(self):
        extractor = KernelPatternExtractor()
        for counters in (A, B, A, B):
            extractor.observe(counters, 1.0, 0.01, 1.0)
        # Next (index 4) should look like A, then B.
        assert extractor.expected_record(4).signature == A.signature()
        assert extractor.expected_record(5).signature == B.signature()

    def test_no_pattern_no_prediction(self):
        extractor = KernelPatternExtractor()
        extractor.observe(A, 1.0, 0.01, 1.0)
        extractor.observe(B, 1.0, 0.01, 1.0)
        assert extractor.expected_record(5) is None

    def test_last_record(self):
        extractor = KernelPatternExtractor()
        assert extractor.last_record() is None
        extractor.observe(A, 1.0, 0.01, 1.0)
        extractor.observe(B, 2.0, 0.02, 2.0)
        assert extractor.last_record().signature == B.signature()

    def test_end_run_clears_current_history(self):
        extractor = KernelPatternExtractor()
        extractor.observe(A, 1.0, 0.01, 1.0)
        extractor.end_run()
        assert extractor.last_record() is None
