"""Unit tests for Table-III counter synthesis and signatures."""

import numpy as np
import pytest

from repro.workloads.counters import COUNTER_NAMES, CounterSynthesizer, CounterVector
from repro.workloads.kernel import KernelSpec, ScalingClass

COMPUTE = KernelSpec("c", ScalingClass.COMPUTE, 10.0, 0.05, parallel_fraction=0.99)
MEMORY = KernelSpec("m", ScalingClass.MEMORY, 0.5, 1.5, parallel_fraction=0.9)
UNSCALABLE = KernelSpec("u", ScalingClass.UNSCALABLE, 0.2, 0.05,
                        serial_time_s=0.02, parallel_fraction=0.7)


@pytest.fixture
def synth():
    return CounterSynthesizer(noise=0.0)


class TestCounterVector:
    def test_roundtrip(self):
        values = np.arange(1.0, 9.0)
        vector = CounterVector.from_array(values)
        assert np.allclose(vector.as_array(), values)

    def test_as_dict_keys(self):
        vector = CounterVector.from_array(np.ones(8))
        assert tuple(vector.as_dict()) == COUNTER_NAMES

    def test_from_array_wrong_length(self):
        with pytest.raises(ValueError):
            CounterVector.from_array([1.0, 2.0])

    def test_signature_log_binning(self):
        vector = CounterVector.from_array([1.0, 2.0, 3.0, 8.0, 20.0, 55.0, 150.0, 0.0])
        # floor(ln(u)); zero maps to the sentinel bin -1.
        assert vector.signature() == (0, 0, 1, 2, 2, 4, 5, -1)

    def test_values_in_same_bin_share_signature(self):
        a = CounterVector.from_array([10.0] * 8)
        b = CounterVector.from_array([12.0] * 8)  # ln in [2.30, 2.48]
        assert a.signature() == b.signature()

    def test_blending(self):
        a = CounterVector.from_array(np.zeros(8) + 2.0)
        b = CounterVector.from_array(np.zeros(8) + 4.0)
        blended = a.blended_with(b, weight=0.5)
        assert np.allclose(blended.as_array(), 3.0)

    def test_blending_weight_bounds(self):
        a = CounterVector.from_array(np.ones(8))
        with pytest.raises(ValueError):
            a.blended_with(a, weight=1.5)


class TestSynthesis:
    def test_nominal_deterministic(self, synth):
        assert np.allclose(
            synth.nominal(COMPUTE).as_array(), synth.nominal(COMPUTE).as_array()
        )

    def test_memory_kernel_stalls_more(self, synth):
        assert (
            synth.nominal(MEMORY).mem_unit_stalled
            > synth.nominal(COMPUTE).mem_unit_stalled
        )

    def test_compute_kernel_hits_cache_more(self, synth):
        assert synth.nominal(COMPUTE).cache_hit > synth.nominal(MEMORY).cache_hit

    def test_serialized_kernel_has_lds_conflicts(self, synth):
        assert (
            synth.nominal(UNSCALABLE).lds_bank_conflict
            > synth.nominal(COMPUTE).lds_bank_conflict
        )

    def test_fetch_size_tracks_memory_traffic(self, synth):
        assert synth.nominal(MEMORY).fetch_size == pytest.approx(1.5e6)

    def test_percent_counters_bounded(self, synth):
        for spec in (COMPUTE, MEMORY, UNSCALABLE):
            counters = synth.nominal(spec)
            for value in (counters.mem_unit_stalled, counters.cache_hit,
                          counters.lds_bank_conflict):
                assert 0.0 <= value <= 100.0

    def test_observation_noise(self):
        noisy = CounterSynthesizer(noise=0.05, seed=1)
        clean = noisy.nominal(COMPUTE).as_array()
        observed = noisy.observe(COMPUTE).as_array()
        assert not np.allclose(observed, clean)
        assert np.all(observed >= 0.0)

    def test_observation_deterministic_per_launch(self):
        noisy = CounterSynthesizer(noise=0.05, seed=1)
        a = noisy.observe(COMPUTE, sequence=3).as_array()
        b = noisy.observe(COMPUTE, sequence=3).as_array()
        c = noisy.observe(COMPUTE, sequence=4).as_array()
        assert np.allclose(a, b)
        assert not np.allclose(a, c)

    def test_zero_noise_observation_equals_nominal(self, synth):
        assert np.allclose(
            synth.observe(COMPUTE).as_array(), synth.nominal(COMPUTE).as_array()
        )

    def test_negative_noise_rejected(self):
        with pytest.raises(ValueError):
            CounterSynthesizer(noise=-0.1)

    def test_different_kernels_different_signatures(self, synth):
        assert synth.nominal(COMPUTE).signature() != synth.nominal(MEMORY).signature()
