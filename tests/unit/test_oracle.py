"""Unit tests for the Theoretically Optimal solver."""

import itertools

import pytest

from repro.core.oracle import solve_theoretically_optimal
from repro.hardware.apu import APUModel
from repro.hardware.config import ConfigSpace
from repro.workloads.app import Application, Category
from repro.workloads.kernel import KernelSpec, ScalingClass

COMPUTE = KernelSpec("c", ScalingClass.COMPUTE, 3.0, 0.1, parallel_fraction=0.99)
MEMORY = KernelSpec("m", ScalingClass.MEMORY, 0.4, 0.8, parallel_fraction=0.9)
UNSCAL = KernelSpec("u", ScalingClass.UNSCALABLE, 0.2, 0.05, serial_time_s=0.01,
                    parallel_fraction=0.7)

SMALL_SPACE = ConfigSpace(
    cpu_states=("P7", "P4", "P1"), nb_states=("NB3", "NB2"),
    gpu_states=("DPM0", "DPM4"), cu_counts=(2, 8),
)


@pytest.fixture(scope="module")
def apu():
    return APUModel()


def _app(*kernels):
    return Application("tiny", "unit", Category.IRREGULAR_NON_REPEATING,
                       kernels=tuple(kernels), pattern="")


def _baseline_target(apu, app, space):
    fastest = space.fastest()
    total_time = sum(apu.execute(k, fastest).time_s for k in app.kernels)
    return app.total_instructions / total_time


def _exhaustive_optimum(apu, app, space, budget):
    """Brute-force reference: all config assignments per unique kernel."""
    configs = space.all_configs()
    unique = app.unique_kernels
    counts = {k.key: sum(1 for s in app.kernels if s.key == k.key) for k in unique}
    best = None
    for assignment in itertools.product(configs, repeat=len(unique)):
        time_s = energy = 0.0
        for spec, config in zip(unique, assignment):
            m = apu.execute(spec, config)
            time_s += m.time_s * counts[spec.key]
            energy += m.energy_j * counts[spec.key]
        if time_s <= budget and (best is None or energy < best):
            best = energy
    return best


class TestSolver:
    def test_plan_covers_all_launches(self, apu):
        app = _app(COMPUTE, MEMORY, COMPUTE)
        target = _baseline_target(apu, app, SMALL_SPACE)
        plan = solve_theoretically_optimal(app, apu, target, SMALL_SPACE)
        assert len(plan.configs) == 3
        assert plan.feasible

    def test_identical_launches_share_config(self, apu):
        app = _app(COMPUTE, MEMORY, COMPUTE)
        target = _baseline_target(apu, app, SMALL_SPACE)
        plan = solve_theoretically_optimal(app, apu, target, SMALL_SPACE)
        assert plan.configs[0] == plan.configs[2]

    def test_matches_exhaustive_on_tiny_instance(self, apu):
        app = _app(COMPUTE, MEMORY, UNSCAL, COMPUTE)
        target = _baseline_target(apu, app, SMALL_SPACE)
        plan = solve_theoretically_optimal(app, apu, target, SMALL_SPACE)
        budget = app.total_instructions / target
        reference = _exhaustive_optimum(apu, app, SMALL_SPACE, budget)
        assert plan.total_energy_j == pytest.approx(reference, rel=0.02)

    def test_beats_all_fastest_energy(self, apu):
        app = _app(COMPUTE, MEMORY)
        target = _baseline_target(apu, app, SMALL_SPACE)
        plan = solve_theoretically_optimal(app, apu, target, SMALL_SPACE)
        fastest = SMALL_SPACE.fastest()
        baseline_energy = sum(apu.execute(k, fastest).energy_j for k in app.kernels)
        assert plan.total_energy_j < baseline_energy

    def test_relaxed_target_saves_more_energy(self, apu):
        app = _app(COMPUTE, MEMORY)
        tight = _baseline_target(apu, app, SMALL_SPACE)
        tight_plan = solve_theoretically_optimal(app, apu, tight, SMALL_SPACE)
        relaxed_plan = solve_theoretically_optimal(app, apu, tight / 2, SMALL_SPACE)
        assert relaxed_plan.total_energy_j <= tight_plan.total_energy_j + 1e-9

    def test_plan_totals_consistent(self, apu):
        app = _app(COMPUTE, MEMORY, UNSCAL)
        target = _baseline_target(apu, app, SMALL_SPACE)
        plan = solve_theoretically_optimal(app, apu, target, SMALL_SPACE)
        time_s = sum(
            apu.execute(k, c).time_s for k, c in zip(app.kernels, plan.configs)
        )
        energy = sum(
            apu.execute(k, c).energy_j for k, c in zip(app.kernels, plan.configs)
        )
        assert plan.total_time_s == pytest.approx(time_s)
        assert plan.total_energy_j == pytest.approx(energy)

    def test_unreachable_budget_falls_back_to_fastest(self, apu):
        app = _app(UNSCAL)
        # Demand 10x the best achievable throughput.
        best_time = min(
            apu.execute(UNSCAL, c).time_s for c in SMALL_SPACE.all_configs()
        )
        target = 10 * UNSCAL.instructions / best_time
        plan = solve_theoretically_optimal(app, apu, target, SMALL_SPACE)
        assert plan.total_time_s == pytest.approx(best_time, rel=0.01)
        assert not plan.feasible
