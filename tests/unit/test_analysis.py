"""Unit tests for the run-trace analysis utilities."""

import pytest

from repro.hardware.config import ConfigSpace, HardwareConfig
from repro.sim.analysis import (
    compare_runs,
    config_occupancy,
    energy_breakdown,
    kernel_summaries,
    knob_occupancy,
    throughput_phases,
)
from repro.sim.trace import LaunchRecord, RunResult

FAST = ConfigSpace().fastest()
SLOW = HardwareConfig(cpu="P7", nb="NB2", gpu="DPM0", cu=2)


def _run(records, name="app", policy="p"):
    run = RunResult(app_name=name, policy_name=policy)
    for record in records:
        run.append(record)
    return run


def _record(index, key="k", config=FAST, time_s=1.0, gpu=10.0, cpu=5.0,
            insts=1e9, **kw):
    return LaunchRecord(
        index=index, kernel_key=key, config=config, time_s=time_s,
        gpu_energy_j=gpu, cpu_energy_j=cpu, instructions=insts, **kw,
    )


@pytest.fixture
def mixed_run():
    return _run([
        _record(0, "a", FAST, time_s=1.0, insts=4e9),
        _record(1, "b", SLOW, time_s=3.0, insts=1e9, fail_safe=True,
                overhead_time_s=0.1, overhead_cpu_energy_j=1.0),
        _record(2, "a", FAST, time_s=1.0, insts=4e9),
    ])


class TestOccupancy:
    def test_config_occupancy_time_weighted(self, mixed_run):
        occupancy = config_occupancy(mixed_run)
        assert occupancy[str(FAST)] == pytest.approx(2 / 5)
        assert occupancy[str(SLOW)] == pytest.approx(3 / 5)
        assert sum(occupancy.values()) == pytest.approx(1.0)

    def test_config_occupancy_count_weighted(self, mixed_run):
        occupancy = config_occupancy(mixed_run, weight_by_time=False)
        assert occupancy[str(FAST)] == pytest.approx(2 / 3)

    def test_knob_occupancy(self, mixed_run):
        knobs = knob_occupancy(mixed_run)
        assert knobs["cpu"]["P1"] == pytest.approx(2 / 5)
        assert knobs["cpu"]["P7"] == pytest.approx(3 / 5)
        assert knobs["cu"]["8"] == pytest.approx(2 / 5)
        for shares in knobs.values():
            assert sum(shares.values()) == pytest.approx(1.0)

    def test_empty_run(self):
        run = RunResult(app_name="a", policy_name="p")
        assert config_occupancy(run) == {}


class TestSummaries:
    def test_kernel_summaries(self, mixed_run):
        summaries = {s.kernel_key: s for s in kernel_summaries(mixed_run)}
        assert summaries["a"].launches == 2
        assert summaries["a"].total_time_s == pytest.approx(2.0)
        assert summaries["b"].fail_safe_launches == 1
        assert summaries["b"].configs == {str(SLOW): 1}

    def test_ordered_by_energy(self, mixed_run):
        summaries = kernel_summaries(mixed_run)
        energies = [s.total_energy_j for s in summaries]
        assert energies == sorted(energies, reverse=True)


class TestEnergyBreakdown:
    def test_components(self, mixed_run):
        breakdown = energy_breakdown(mixed_run)
        assert breakdown.gpu_kernel_j == pytest.approx(30.0)
        assert breakdown.cpu_kernel_j == pytest.approx(15.0)
        assert breakdown.overhead_j == pytest.approx(1.0)
        assert breakdown.total_j == pytest.approx(mixed_run.energy_j)

    def test_shares_sum_to_one(self, mixed_run):
        assert sum(energy_breakdown(mixed_run).shares().values()) == pytest.approx(1.0)


class TestPhases:
    def test_high_low_segmentation(self, mixed_run):
        # a-kernels: 4e9/1s; b: 1e9/3s; overall: 9e9/5s = 1.8e9.
        phases = throughput_phases(mixed_run, threshold=1.3)
        assert phases == [(0, 1, "high"), (1, 2, "low"), (2, 3, "high")]

    def test_threshold_validation(self, mixed_run):
        with pytest.raises(ValueError):
            throughput_phases(mixed_run, threshold=1.0)

    def test_empty_run(self):
        assert throughput_phases(RunResult(app_name="a", policy_name="p")) == []


class TestCompareRuns:
    def test_reference_relative_metrics(self, mixed_run):
        other = _run([
            _record(0, "a", FAST, time_s=0.5, gpu=5.0, cpu=2.5, insts=4e9),
            _record(1, "b", FAST, time_s=1.5, gpu=15.0, cpu=7.5, insts=1e9),
            _record(2, "a", FAST, time_s=0.5, gpu=5.0, cpu=2.5, insts=4e9),
        ], policy="q")
        rows = compare_runs([mixed_run, other])
        assert rows[0]["speedup_vs_ref"] == pytest.approx(1.0)
        assert rows[1]["speedup_vs_ref"] == pytest.approx(5.1 / 2.5)
        assert rows[1]["policy"] == "q"

    def test_mismatched_apps_rejected(self, mixed_run):
        other = _run([_record(0)], name="different")
        with pytest.raises(ValueError):
            compare_runs([mixed_run, other])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            compare_runs([])
