"""Unit tests for the characterization dataset and predictor facades."""

import numpy as np
import pytest

from repro.hardware.apu import APUModel
from repro.hardware.config import ConfigSpace, HardwareConfig
from repro.ml.dataset import FEATURE_NAMES, build_dataset, build_features
from repro.ml.errors import SyntheticErrorPredictor, half_normal_sigma
from repro.ml.predictors import (
    CpuPowerModel,
    KernelEstimate,
    OraclePredictor,
    train_predictor,
)
from repro.workloads.counters import CounterSynthesizer
from repro.workloads.kernel import KernelSpec, ScalingClass

KERNELS = [
    KernelSpec("a", ScalingClass.COMPUTE, 5.0, 0.1, parallel_fraction=0.99),
    KernelSpec("b", ScalingClass.MEMORY, 0.5, 1.0, parallel_fraction=0.9),
]

SMALL_SPACE = ConfigSpace(
    cpu_states=("P7", "P1"), nb_states=("NB3", "NB0"),
    gpu_states=("DPM0", "DPM4"), cu_counts=(2, 8),
)


@pytest.fixture(scope="module")
def apu():
    return APUModel()


class TestFeatures:
    def test_feature_vector_length(self):
        counters = CounterSynthesizer(noise=0.0).nominal(KERNELS[0])
        config = HardwareConfig(cpu="P1", nb="NB0", gpu="DPM4", cu=8)
        features = build_features(counters, config)
        assert features.shape == (len(FEATURE_NAMES),)

    def test_config_features_tail(self):
        counters = CounterSynthesizer(noise=0.0).nominal(KERNELS[0])
        config = HardwareConfig(cpu="P5", nb="NB2", gpu="DPM2", cu=4)
        features = build_features(counters, config)
        assert features[-1] == 4.0  # cu_count
        assert features[-3] == pytest.approx(0.553)  # gpu freq


class TestDataset:
    def test_shapes(self, apu):
        dataset = build_dataset(KERNELS, apu=apu, space=SMALL_SPACE, seed=1)
        expected = len(KERNELS) * len(SMALL_SPACE)
        assert len(dataset) == expected
        assert dataset.X.shape == (expected, len(FEATURE_NAMES))
        assert dataset.log_time.shape == (expected,)
        assert dataset.kernel_keys.count("a") == len(SMALL_SPACE)

    def test_empty_kernels_rejected(self, apu):
        with pytest.raises(ValueError):
            build_dataset([], apu=apu, space=SMALL_SPACE)

    def test_time_property_inverts_log(self, apu):
        dataset = build_dataset(KERNELS, apu=apu, space=SMALL_SPACE, seed=1)
        assert np.allclose(np.log(dataset.time_s), dataset.log_time)

    def test_noise_free_targets_match_ground_truth(self, apu):
        dataset = build_dataset(
            KERNELS, apu=apu, space=SMALL_SPACE, time_noise=0.0,
            power_noise=0.0, seed=1,
        )
        config = SMALL_SPACE.all_configs()[0]
        truth = apu.execute(KERNELS[0], config)
        assert dataset.time_s[0] == pytest.approx(truth.time_s)
        assert dataset.gpu_power[0] == pytest.approx(truth.gpu_power_w)


class TestCpuPowerModel:
    def test_calibration_accuracy(self, apu):
        model = CpuPowerModel.calibrate(apu)
        for pstate in ("P1", "P4", "P7"):
            config = HardwareConfig(cpu=pstate, nb="NB0", gpu="DPM4", cu=8)
            truth = apu.power.cpu_power(config, busy_cores=1)
            assert model.predict(config) == pytest.approx(truth, rel=0.05)

    def test_monotone_in_pstate(self, apu):
        model = CpuPowerModel.calibrate(apu)
        base = HardwareConfig(cpu="P1", nb="NB0", gpu="DPM4", cu=8)
        assert model.predict(base) > model.predict(base.replace(cpu="P7"))


class TestKernelEstimate:
    def test_energy(self):
        estimate = KernelEstimate(time_s=2.0, gpu_power_w=10.0, cpu_power_w=5.0)
        assert estimate.energy_j == pytest.approx(30.0)
        assert estimate.gpu_energy_j == pytest.approx(20.0)


class TestOraclePredictor:
    def test_exact_prediction(self, apu):
        oracle = OraclePredictor(apu, KERNELS)
        counters = CounterSynthesizer(noise=0.0).nominal(KERNELS[1])
        config = HardwareConfig(cpu="P3", nb="NB1", gpu="DPM2", cu=6)
        estimate = oracle.estimate(counters, config)
        truth = apu.execute(KERNELS[1], config)
        assert estimate.time_s == pytest.approx(truth.time_s)
        assert estimate.gpu_power_w == pytest.approx(truth.gpu_power_w)

    def test_resolves_despite_noise(self, apu):
        oracle = OraclePredictor(apu, KERNELS)
        noisy = CounterSynthesizer(noise=0.05, seed=2).observe(KERNELS[0])
        assert oracle.resolve(noisy).key == "a"

    def test_requires_population(self, apu):
        with pytest.raises(ValueError):
            OraclePredictor(apu, [])


class TestTrainPredictor:
    def test_small_training_run(self, apu, tmp_path):
        predictor = train_predictor(
            apu=apu, kernels=KERNELS, space=SMALL_SPACE,
            n_estimators=4, max_depth=6, cache_dir=str(tmp_path),
        )
        counters = CounterSynthesizer(noise=0.0).nominal(KERNELS[0])
        config = HardwareConfig(cpu="P1", nb="NB0", gpu="DPM4", cu=8)
        estimate = predictor.estimate(counters, config)
        assert estimate.time_s > 0
        assert estimate.gpu_power_w > 0

    def test_cache_roundtrip(self, apu, tmp_path):
        kwargs = dict(
            apu=apu, kernels=KERNELS, space=SMALL_SPACE,
            n_estimators=3, max_depth=5, cache_dir=str(tmp_path),
        )
        first = train_predictor(**kwargs)
        second = train_predictor(**kwargs)
        counters = CounterSynthesizer(noise=0.0).nominal(KERNELS[0])
        config = HardwareConfig(cpu="P1", nb="NB0", gpu="DPM4", cu=8)
        assert first.estimate(counters, config) == second.estimate(counters, config)
        assert any(tmp_path.iterdir())

    def test_batch_matches_single(self, apu, tmp_path):
        predictor = train_predictor(
            apu=apu, kernels=KERNELS, space=SMALL_SPACE,
            n_estimators=3, max_depth=5, cache_dir=str(tmp_path),
        )
        counters = CounterSynthesizer(noise=0.0).nominal(KERNELS[1])
        configs = SMALL_SPACE.all_configs()[:4]
        batch = predictor.estimate_batch(counters, configs)
        singles = [predictor.estimate(counters, c) for c in configs]
        for b, s in zip(batch, singles):
            assert b.time_s == pytest.approx(s.time_s)
            assert b.gpu_power_w == pytest.approx(s.gpu_power_w)


class TestSyntheticErrors:
    def test_half_normal_sigma(self):
        assert half_normal_sigma(0.0) == 0.0
        assert half_normal_sigma(0.1) == pytest.approx(0.1 * np.sqrt(np.pi / 2))
        with pytest.raises(ValueError):
            half_normal_sigma(-0.1)

    def test_zero_error_is_transparent(self, apu):
        oracle = OraclePredictor(apu, KERNELS)
        wrapped = SyntheticErrorPredictor(oracle, 0.0, 0.0)
        counters = CounterSynthesizer(noise=0.0).nominal(KERNELS[0])
        config = HardwareConfig(cpu="P1", nb="NB0", gpu="DPM4", cu=8)
        assert wrapped.estimate(counters, config) == oracle.estimate(counters, config)

    def test_errors_deterministic_per_query(self, apu):
        oracle = OraclePredictor(apu, KERNELS)
        wrapped = SyntheticErrorPredictor(oracle, 0.15, 0.10, seed=7)
        counters = CounterSynthesizer(noise=0.0).nominal(KERNELS[0])
        config = HardwareConfig(cpu="P1", nb="NB0", gpu="DPM4", cu=8)
        assert wrapped.estimate(counters, config) == wrapped.estimate(counters, config)

    def test_mean_error_near_requested(self, apu):
        oracle = OraclePredictor(apu, KERNELS)
        wrapped = SyntheticErrorPredictor(oracle, 0.15, 0.10, seed=3)
        counters = CounterSynthesizer(noise=0.0).nominal(KERNELS[0])
        errors = []
        for config in ConfigSpace().all_configs():
            true = oracle.estimate(counters, config).time_s
            noisy = wrapped.estimate(counters, config).time_s
            errors.append(abs(noisy - true) / true)
        assert 0.10 < float(np.mean(errors)) < 0.20

    def test_different_configs_different_errors(self, apu):
        oracle = OraclePredictor(apu, KERNELS)
        wrapped = SyntheticErrorPredictor(oracle, 0.15, 0.10, seed=7)
        counters = CounterSynthesizer(noise=0.0).nominal(KERNELS[0])
        c1 = HardwareConfig(cpu="P1", nb="NB0", gpu="DPM4", cu=8)
        c2 = HardwareConfig(cpu="P1", nb="NB0", gpu="DPM4", cu=6)
        f1 = wrapped._factors(counters, c1)
        f2 = wrapped._factors(counters, c2)
        assert f1 != f2
