"""Validate the greedy window heuristic against exact backtracking.

The paper replaces exponential backtracking with its polynomial
search-order heuristic; these tests confirm, on instances small enough
to enumerate, that the heuristic's decisions stay near the jointly
optimal assignment while costing orders of magnitude fewer evaluations.
"""

import pytest

from repro.core.optimizer import GreedyHillClimbOptimizer
from repro.core.pattern import KernelRecord
from repro.core.tracker import PerformanceTracker
from repro.hardware.apu import APUModel
from repro.hardware.config import ConfigSpace
from repro.ml.predictors import OraclePredictor
from repro.workloads.counters import CounterSynthesizer
from repro.workloads.kernel import KernelSpec, ScalingClass

COMPUTE = KernelSpec("c", ScalingClass.COMPUTE, 3.0, 0.1, parallel_fraction=0.99)
MEMORY = KernelSpec("m", ScalingClass.MEMORY, 0.4, 0.8, parallel_fraction=0.9)
UNSCAL = KernelSpec("u", ScalingClass.UNSCALABLE, 0.2, 0.05, serial_time_s=0.01,
                    parallel_fraction=0.7)
SYNTH = CounterSynthesizer(noise=0.0)

TINY_SPACE = ConfigSpace(
    cpu_states=("P7", "P1"), nb_states=("NB3", "NB2"),
    gpu_states=("DPM0", "DPM4"), cu_counts=(2, 8),
)  # 16 configurations


@pytest.fixture(scope="module")
def apu():
    return APUModel()


def _record(spec):
    counters = SYNTH.nominal(spec)
    return KernelRecord(signature=counters.signature(), counters=counters,
                        instructions=spec.instructions)


def _setup(apu, kernels, slack):
    oracle = OraclePredictor(apu, list({k.key: k for k in kernels}.values()))
    optimizer = GreedyHillClimbOptimizer(TINY_SPACE, oracle)
    fastest = TINY_SPACE.fastest()
    baseline = sum(apu.execute(k, fastest).time_s for k in kernels)
    total_insts = sum(k.instructions for k in kernels)
    tracker = PerformanceTracker(total_insts / (slack * baseline))
    return optimizer, tracker


class TestBacktracking:
    def test_empty_window_rejected(self, apu):
        optimizer, tracker = _setup(apu, [COMPUTE], 1.5)
        with pytest.raises(ValueError):
            optimizer.optimize_window_backtracking([], tracker)

    def test_combination_bound(self, apu):
        optimizer, tracker = _setup(apu, [COMPUTE], 1.5)
        window = [_record(COMPUTE)] * 6  # 16^6 = 16.7M combinations
        with pytest.raises(ValueError, match="safety bound"):
            optimizer.optimize_window_backtracking(window, tracker)

    def test_single_kernel_matches_exhaustive(self, apu):
        optimizer, tracker = _setup(apu, [COMPUTE], 1.5)
        record = _record(COMPUTE)
        joint = optimizer.optimize_window_backtracking([record], tracker)
        single = optimizer.exhaustive_kernel_search(record, tracker)
        assert joint.config == single.config

    @pytest.mark.parametrize("slack", [1.1, 1.5, 2.0])
    def test_greedy_near_joint_optimum(self, apu, slack):
        kernels = [COMPUTE, MEMORY, UNSCAL]
        optimizer, tracker = _setup(apu, kernels, slack)
        window = [_record(k) for k in kernels]

        joint = optimizer.optimize_window_backtracking(window, tracker)
        # Greedy decides the first kernel with the others reserved, in
        # the same execution order (a worst case for the heuristic: no
        # search-order reordering).
        greedy = optimizer.optimize_window(
            [window[0]], tracker, reserved=window[1:]
        )

        assert not greedy.fail_safe and not joint.fail_safe
        # The greedy first-kernel choice costs at most a few percent
        # more energy than the joint optimum's first-kernel choice
        # under the same constraint.
        greedy_energy = apu.kernel_energy(COMPUTE, greedy.config)
        joint_energy = apu.kernel_energy(COMPUTE, joint.config)
        assert greedy_energy <= joint_energy * 1.15

    def test_cost_reduction_order_of_magnitude(self, apu):
        # On the real 336-configuration space a 2-kernel window already
        # shows the paper's gap: 2 x 336 pre-evaluations (plus the
        # 336^2 joint enumeration) versus ~2 x 21 for the heuristic.
        kernels = [COMPUTE, MEMORY]
        oracle = OraclePredictor(apu, kernels)
        full_space = ConfigSpace()
        optimizer = GreedyHillClimbOptimizer(full_space, oracle)
        fastest = full_space.fastest()
        baseline = sum(apu.execute(k, fastest).time_s for k in kernels)
        total_insts = sum(k.instructions for k in kernels)
        tracker = PerformanceTracker(total_insts / (1.5 * baseline))
        window = [_record(k) for k in kernels]

        joint = optimizer.optimize_window_backtracking(window, tracker)
        greedy = optimizer.optimize_window(window, tracker)
        assert joint.evaluations == 2 * 336
        assert greedy.evaluations * 5 < joint.evaluations

    def test_infeasible_target_falls_back(self, apu):
        optimizer, _ = _setup(apu, [UNSCAL], 1.5)
        record = _record(UNSCAL)
        fastest_time = apu.execute(UNSCAL, TINY_SPACE.fastest()).time_s
        impossible = PerformanceTracker(10 * UNSCAL.instructions / fastest_time)
        result = optimizer.optimize_window_backtracking([record], impossible)
        assert result.fail_safe
