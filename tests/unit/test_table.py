"""Unit tests for the columnar configuration table."""

import pickle

import numpy as np
import pytest

from repro.hardware.config import KNOBS, ConfigSpace, HardwareConfig
from repro.hardware.table import ConfigTable
from repro.ml.predictors import CpuPowerModel

SPACE = ConfigSpace()


@pytest.fixture(scope="module")
def table():
    return ConfigTable(SPACE)


class TestColumns:
    def test_columns_mirror_config_attributes(self, table):
        i = len(table) // 3
        config = table.config_at(i)
        assert table.cpu_freq_ghz[i] == config.cpu_state.freq_ghz
        assert table.nb_freq_ghz[i] == config.nb_state.freq_ghz
        assert table.gpu_freq_ghz[i] == config.gpu_state.freq_ghz
        assert table.rail_voltage[i] == config.rail_voltage
        assert table.cu_count[i] == float(config.cu)

    def test_feature_block_shape(self, table):
        assert table.feature_block.shape == (len(SPACE), 7)

    def test_cpu_power_column_matches_scalar_model(self, table):
        model = CpuPowerModel(coef_w_per_v2ghz=3.1, static_w=0.4)
        column = table.cpu_power_column(model)
        for i in (0, 17, len(table) - 1):
            assert column[i] == model.predict(table.config_at(i))

    def test_cpu_power_column_memo_is_per_model_coefficients(self, table):
        a = table.cpu_power_column(CpuPowerModel(2.0, 0.5))
        b = table.cpu_power_column(CpuPowerModel(4.0, 0.5))
        assert not np.array_equal(a, b)


class TestLatticeArithmetic:
    def test_set_knob_rejects_off_axis_positions(self, table):
        with pytest.raises(ValueError):
            table.set_knob(0, "cpu", table.axis_length("cpu"))
        with pytest.raises(ValueError):
            table.set_knob(0, "cpu", -1)

    def test_step_index_requires_unit_direction(self, table):
        with pytest.raises(ValueError):
            table.step_index(0, "cpu", 2)

    def test_step_index_returns_none_off_axis_ends(self, table):
        first = table.set_knob(0, "gpu", 0)
        last = table.set_knob(0, "gpu", table.axis_length("gpu") - 1)
        assert table.step_index(first, "gpu", -1) is None
        assert table.step_index(last, "gpu", +1) is None

    def test_axis_position_tracks_set_knob(self, table):
        moved = table.set_knob(5, "nb", 2)
        assert table.axis_position(moved, "nb") == 2


class TestAdHocTables:
    def test_from_configs_preserves_order(self):
        configs = SPACE.all_configs()[10:14]
        sub = ConfigTable.from_configs(configs)
        assert sub.configs == tuple(configs)
        assert len(sub) == 4
        assert sub.feature_block.shape == (4, 7)

    def test_from_configs_rejects_empty(self):
        with pytest.raises(ValueError):
            ConfigTable.from_configs([])

    def test_from_configs_has_no_lattice_structure(self):
        sub = ConfigTable.from_configs(SPACE.all_configs()[:2])
        with pytest.raises(ValueError):
            sub.index_of_config(sub.config_at(0))
        with pytest.raises(ValueError):
            sub.step_index(0, "cpu", +1)

    def test_index_of_config_rejects_off_lattice(self):
        narrow = ConfigTable(
            ConfigSpace(
                cpu_states=("P7", "P1"), nb_states=("NB3", "NB0"),
                gpu_states=("DPM0", "DPM4"), cu_counts=(2, 8),
            )
        )
        off = HardwareConfig(cpu="P3", nb="NB0", gpu="DPM0", cu=2)
        with pytest.raises(ValueError):
            narrow.index_of_config(off)


class TestStability:
    def test_pickle_roundtrip(self, table):
        clone = pickle.loads(pickle.dumps(table))
        assert clone.configs == table.configs
        assert np.array_equal(clone.feature_block, table.feature_block)
        assert clone.index_of_config(clone.config_at(7)) == 7

    def test_cpu_power_column_never_touches_instance_state(self, table):
        before = set(vars(table))
        table.cpu_power_column(CpuPowerModel(2.9, 0.3))
        assert set(vars(table)) == before

    def test_pickle_payload_unchanged_by_power_column_use(self):
        fresh = ConfigTable(SPACE)
        baseline = pickle.dumps(fresh)
        fresh.cpu_power_column(CpuPowerModel(2.9, 0.3))
        assert pickle.dumps(fresh) == baseline
