"""Unit tests for the from-scratch CART regression tree."""

import numpy as np
import pytest

from repro.ml.tree import DecisionTreeRegressor


def _xor_like(n=400, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(0, 1, size=(n, 2))
    y = np.where((X[:, 0] > 0.5) ^ (X[:, 1] > 0.5), 1.0, 0.0)
    return X, y


class TestValidation:
    def test_bad_depth(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor(max_depth=0)

    def test_bad_leaf_size(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor(min_samples_leaf=0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(np.ones((3, 2)), np.ones(4))

    def test_empty_dataset(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(np.ones((0, 2)), np.ones(0))

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            DecisionTreeRegressor().predict(np.ones((1, 2)))


class TestFitting:
    def test_constant_target_single_leaf(self):
        X = np.arange(20.0).reshape(-1, 1)
        y = np.full(20, 7.0)
        tree = DecisionTreeRegressor().fit(X, y)
        assert tree.node_count == 1
        assert np.allclose(tree.predict(X), 7.0)

    def test_step_function_exact(self):
        X = np.arange(100.0).reshape(-1, 1)
        y = np.where(X[:, 0] < 50, 1.0, 5.0)
        tree = DecisionTreeRegressor(max_depth=2, min_samples_leaf=1).fit(X, y)
        assert np.allclose(tree.predict(X), y)

    def test_xor_needs_depth_two(self):
        X, y = _xor_like()
        shallow = DecisionTreeRegressor(max_depth=1, min_samples_leaf=1).fit(X, y)
        deep = DecisionTreeRegressor(max_depth=4, min_samples_leaf=1).fit(X, y)
        mse_shallow = np.mean((shallow.predict(X) - y) ** 2)
        mse_deep = np.mean((deep.predict(X) - y) ** 2)
        assert mse_deep < 0.05 < mse_shallow

    def test_max_depth_respected(self):
        X, y = _xor_like()
        tree = DecisionTreeRegressor(max_depth=3, min_samples_leaf=1).fit(X, y)
        assert tree.depth <= 3

    def test_min_samples_leaf_respected(self):
        X = np.arange(10.0).reshape(-1, 1)
        y = X[:, 0]
        tree = DecisionTreeRegressor(max_depth=10, min_samples_leaf=4).fit(X, y)
        # With a 4-sample minimum there can be at most 2 leaves.
        assert tree.node_count <= 3

    def test_deep_tree_memorizes(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(0, 1, size=(64, 3))
        y = rng.uniform(0, 1, size=64)
        tree = DecisionTreeRegressor(max_depth=30, min_samples_leaf=1,
                                     min_samples_split=2).fit(X, y)
        assert np.allclose(tree.predict(X), y)

    def test_prediction_is_leaf_mean(self):
        X = np.array([[0.0], [0.0], [1.0], [1.0]])
        y = np.array([1.0, 3.0, 10.0, 20.0])
        tree = DecisionTreeRegressor(max_depth=1, min_samples_leaf=2).fit(X, y)
        preds = tree.predict(np.array([[0.0], [1.0]]))
        assert preds[0] == pytest.approx(2.0)
        assert preds[1] == pytest.approx(15.0)

    def test_feature_subset_limits_candidates(self):
        X, y = _xor_like()
        rng = np.random.default_rng(0)
        tree = DecisionTreeRegressor(max_features=1, rng=rng).fit(X, y)
        assert tree.is_fitted

    def test_single_sample_prediction_shape(self):
        X, y = _xor_like(50)
        tree = DecisionTreeRegressor().fit(X, y)
        out = tree.predict(X[0])
        assert out.shape == (1,)
