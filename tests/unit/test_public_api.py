"""The public API surface: everything advertised must resolve."""

import importlib

import pytest

import repro


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    def test_version(self):
        assert repro.__version__.count(".") == 2

    @pytest.mark.parametrize(
        "module",
        [
            "repro.hardware",
            "repro.workloads",
            "repro.ml",
            "repro.core",
            "repro.sim",
            "repro.experiments",
            "repro.cli",
        ],
    )
    def test_subpackage_alls_resolve(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.{name} missing"

    def test_headline_types_constructible(self):
        # The objects a user touches first must build with defaults.
        assert repro.APUModel() is not None
        assert repro.Simulator() is not None
        assert len(repro.ConfigSpace()) == 336
        assert repro.benchmark("kmeans").name == "kmeans"

    def test_quickstart_docstring_flow(self):
        # The package docstring's flow, with an oracle standing in for
        # the trained forest (keeps the test fast).
        from repro import (
            MPCPowerManager,
            OraclePredictor,
            Simulator,
            TurboCorePolicy,
            benchmark,
        )

        sim = Simulator()
        app = benchmark("kmeans")
        turbo = sim.run(app, TurboCorePolicy())
        mpc = MPCPowerManager(
            turbo.instructions / turbo.kernel_time_s,
            OraclePredictor(sim.apu, app.unique_kernels),
        )
        sim.run(app, mpc)
        result = sim.run(app, mpc)
        assert result.energy_j < turbo.energy_j
