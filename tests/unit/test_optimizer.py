"""Unit tests for greedy hill climbing and the MPC window optimization."""

import pytest

from repro.core.optimizer import GreedyHillClimbOptimizer
from repro.core.pattern import KernelRecord
from repro.core.tracker import PerformanceTracker
from repro.hardware.apu import APUModel
from repro.hardware.config import ConfigSpace
from repro.ml.predictors import OraclePredictor
from repro.workloads.counters import CounterSynthesizer
from repro.workloads.kernel import KernelSpec, ScalingClass

COMPUTE = KernelSpec("c", ScalingClass.COMPUTE, 5.0, 0.1, parallel_fraction=0.99)
MEMORY = KernelSpec("m", ScalingClass.MEMORY, 0.5, 1.0, parallel_fraction=0.9)
SYNTH = CounterSynthesizer(noise=0.0)


@pytest.fixture(scope="module")
def apu():
    return APUModel()


@pytest.fixture(scope="module")
def space():
    return ConfigSpace()


def _record(spec) -> KernelRecord:
    counters = SYNTH.nominal(spec)
    return KernelRecord(
        signature=counters.signature(),
        counters=counters,
        instructions=spec.instructions,
    )


def _optimizer(apu, space, kernels):
    return GreedyHillClimbOptimizer(space, OraclePredictor(apu, kernels))


def _baseline_time(apu, spec, space):
    return apu.execute(spec, space.fastest()).time_s


class TestHillClimb:
    def test_saves_energy_with_generous_headroom(self, apu, space):
        optimizer = _optimizer(apu, space, [COMPUTE])
        baseline = _baseline_time(apu, COMPUTE, space)
        # Target set so the kernel may run 2x slower than baseline.
        target = COMPUTE.instructions / (2 * baseline)
        result = optimizer.optimize_kernel(_record(COMPUTE), PerformanceTracker(target))
        assert not result.fail_safe
        baseline_energy = apu.kernel_energy(COMPUTE, space.fastest())
        assert apu.kernel_energy(COMPUTE, result.config) < 0.8 * baseline_energy

    def test_respects_tight_target(self, apu, space):
        optimizer = _optimizer(apu, space, [COMPUTE])
        baseline = _baseline_time(apu, COMPUTE, space)
        target = COMPUTE.instructions / (1.02 * baseline)
        result = optimizer.optimize_kernel(_record(COMPUTE), PerformanceTracker(target))
        actual = apu.execute(COMPUTE, result.config).time_s
        assert actual <= 1.02 * baseline * 1.0001

    def test_fail_safe_when_infeasible(self, apu, space):
        optimizer = _optimizer(apu, space, [COMPUTE])
        baseline = _baseline_time(apu, COMPUTE, space)
        # Demand twice the best achievable throughput.
        target = 2 * COMPUTE.instructions / baseline
        result = optimizer.optimize_kernel(_record(COMPUTE), PerformanceTracker(target))
        assert result.fail_safe
        assert result.config == optimizer.fail_safe

    def test_evaluation_count_far_below_exhaustive(self, apu, space):
        optimizer = _optimizer(apu, space, [COMPUTE])
        baseline = _baseline_time(apu, COMPUTE, space)
        target = COMPUTE.instructions / (2 * baseline)
        result = optimizer.optimize_kernel(_record(COMPUTE), PerformanceTracker(target))
        # The paper's point: ~|cpu|+|nb|+|gpu|+|cu| evaluations, not 336.
        assert result.evaluations < 60

    def test_memory_kernel_keeps_bandwidth(self, apu, space):
        optimizer = _optimizer(apu, space, [MEMORY])
        baseline = _baseline_time(apu, MEMORY, space)
        target = MEMORY.instructions / (1.05 * baseline)
        result = optimizer.optimize_kernel(_record(MEMORY), PerformanceTracker(target))
        assert not result.fail_safe
        assert result.config.nb != "NB3"  # NB3 would halve the bandwidth

    def test_cpu_knob_always_lowered(self, apu, space):
        # Kernel time ignores the CPU state, so the CPU should end at P7.
        optimizer = _optimizer(apu, space, [COMPUTE])
        baseline = _baseline_time(apu, COMPUTE, space)
        target = COMPUTE.instructions / (1.5 * baseline)
        result = optimizer.optimize_kernel(_record(COMPUTE), PerformanceTracker(target))
        assert result.config.cpu == "P7"

    def test_estimate_matches_chosen_config(self, apu, space):
        optimizer = _optimizer(apu, space, [COMPUTE])
        baseline = _baseline_time(apu, COMPUTE, space)
        target = COMPUTE.instructions / (1.5 * baseline)
        result = optimizer.optimize_kernel(_record(COMPUTE), PerformanceTracker(target))
        truth = apu.execute(COMPUTE, result.config)
        assert result.estimate.time_s == pytest.approx(truth.time_s)


class TestWindow:
    def test_empty_window_rejected(self, apu, space):
        optimizer = _optimizer(apu, space, [COMPUTE])
        with pytest.raises(ValueError):
            optimizer.optimize_window([], PerformanceTracker(1.0))

    def test_window_returns_last_kernel_choice(self, apu, space):
        optimizer = _optimizer(apu, space, [COMPUTE, MEMORY])
        baseline = (
            _baseline_time(apu, COMPUTE, space) + _baseline_time(apu, MEMORY, space)
        )
        target = (COMPUTE.instructions + MEMORY.instructions) / (1.3 * baseline)
        window = [_record(MEMORY), _record(COMPUTE)]
        result = optimizer.optimize_window(window, PerformanceTracker(target))
        # The result must be a sensible configuration for the *compute*
        # kernel (last in window): it needs CUs, not NB bandwidth.
        truth = apu.execute(COMPUTE, result.config)
        assert truth.time_s <= 1.5 * _baseline_time(apu, COMPUTE, space)

    def test_window_does_not_mutate_tracker(self, apu, space):
        optimizer = _optimizer(apu, space, [COMPUTE])
        tracker = PerformanceTracker(1.0)
        optimizer.optimize_window([_record(COMPUTE)], tracker)
        assert tracker.instructions == 0.0

    def test_window_evaluations_accumulate(self, apu, space):
        optimizer = _optimizer(apu, space, [COMPUTE, MEMORY])
        tracker = PerformanceTracker(1.0)  # trivially satisfied target
        single = optimizer.optimize_window([_record(COMPUTE)], tracker)
        double = optimizer.optimize_window(
            [_record(MEMORY), _record(COMPUTE)], tracker
        )
        assert double.evaluations > single.evaluations

    def test_earlier_window_kernels_consume_headroom(self, apu, space):
        optimizer = _optimizer(apu, space, [COMPUTE, MEMORY])
        base_c = _baseline_time(apu, COMPUTE, space)
        base_m = _baseline_time(apu, MEMORY, space)
        total_insts = COMPUTE.instructions + MEMORY.instructions
        # Budget fits both kernels at baseline pace plus 10%.
        target = total_insts / (1.1 * (base_c + base_m))
        alone = optimizer.optimize_window(
            [_record(COMPUTE)], PerformanceTracker(target)
        )
        with_memory_first = optimizer.optimize_window(
            [_record(MEMORY), _record(COMPUTE)], PerformanceTracker(target)
        )
        # Committing the memory kernel first leaves less headroom, so
        # the compute kernel's chosen config cannot be slower.
        t_alone = apu.execute(COMPUTE, alone.config).time_s
        t_with = apu.execute(COMPUTE, with_memory_first.config).time_s
        assert t_with <= t_alone + 1e-9
