"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.workloads.suites import BENCHMARK_NAMES


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "kmeans"])
        assert args.policy == "all"
        assert args.alpha == 0.05
        assert not args.full_horizon

    def test_run_rejects_unknown_benchmark(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "doom"])

    def test_run_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "kmeans", "--policy", "magic"])

    def test_experiments_keys(self):
        args = build_parser().parse_args(["experiments", "fig8", "fig9"])
        assert args.keys == ["fig8", "fig9"]

    def test_report_output(self):
        args = build_parser().parse_args(["report", "-o", "out.md"])
        assert args.output == "out.md"

    def test_bench_decide_flags(self):
        args = build_parser().parse_args(
            ["bench", "decide", "--quick", "--output", "b.json", "--label", "x"]
        )
        assert args.command == "bench"
        assert args.bench_command == "decide"
        assert args.quick and args.output == "b.json" and args.label == "x"
        assert args.max_health_overhead is None

    def test_bench_decide_health_budget_flag(self):
        args = build_parser().parse_args(
            ["bench", "decide", "--max-health-overhead", "5"]
        )
        assert args.max_health_overhead == 5.0

    def test_bench_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench"])


class TestCommands:
    def test_list_prints_all_benchmarks(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in BENCHMARK_NAMES:
            assert name in out

    def test_run_turbo_only(self, capsys):
        assert main(["run", "NBody", "--policy", "turbo"]) == 0
        out = capsys.readouterr().out
        assert "turbo" in out
        assert "NBody" in out

    def test_run_theoretically_optimal(self, capsys):
        assert main(["run", "NBody", "--policy", "to"]) == 0
        out = capsys.readouterr().out
        assert "to" in out

    def test_experiments_static_tables(self, capsys):
        assert main(["experiments", "table1", "fig7"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "Figure 7" in out

    def test_analyze_with_oracle(self, capsys):
        assert main(["analyze", "NBody", "--oracle"]) == 0
        out = capsys.readouterr().out
        assert "energy split" in out
        assert "configuration occupancy" in out
        assert "throughput phases" in out
