"""Unit tests for the adaptive horizon generator (Section IV-A4)."""

import pytest

from repro.core.horizon import AdaptiveHorizonGenerator


def _generator(**kw):
    defaults = dict(
        num_kernels=10,
        mean_prefix_length=5.0,
        ppk_overhead_s=0.001,
        baseline_total_time_s=1.0,
        alpha=0.05,
    )
    defaults.update(kw)
    return AdaptiveHorizonGenerator(**defaults)


class TestValidation:
    def test_zero_kernels(self):
        with pytest.raises(ValueError):
            _generator(num_kernels=0)

    def test_bad_prefix(self):
        with pytest.raises(ValueError):
            _generator(mean_prefix_length=0.0)

    def test_bad_alpha(self):
        with pytest.raises(ValueError):
            _generator(alpha=-0.1)

    def test_profile_length_mismatch(self):
        with pytest.raises(ValueError):
            _generator(time_profile=[1.0] * 3)

    def test_profile_zero_total(self):
        with pytest.raises(ValueError):
            _generator(time_profile=[0.0] * 10)

    def test_negative_record(self):
        gen = _generator()
        with pytest.raises(ValueError):
            gen.record(-1.0, 0.0)


class TestUniformFormula:
    def test_paper_formula_first_kernel(self):
        # H_1 <= (N/N̄) * alpha * (T_total/N) / T_PPK
        gen = _generator()
        expected = (10 / 5.0) * 0.05 * 0.1 / 0.001
        assert gen.horizon(0) == int(expected)

    def test_clamped_to_n(self):
        gen = _generator(ppk_overhead_s=1e-9)
        assert gen.horizon(0) == 10

    def test_clamped_to_zero(self):
        gen = _generator()
        gen.record(5.0, 0.0)  # way over baseline pace
        assert gen.horizon(1) == 0

    def test_zero_overhead_gives_full_horizon(self):
        gen = _generator(ppk_overhead_s=0.0)
        assert gen.horizon(0) == 10
        assert gen.horizon(7) == 10

    def test_budget_grows_when_on_pace(self):
        gen = _generator(ppk_overhead_s=0.01)  # costly enough not to clamp at N
        horizons = []
        for i in range(10):
            horizons.append(gen.horizon(i))
            gen.record(0.1, 0.0)  # exactly baseline pace
        assert horizons == sorted(horizons)
        assert horizons[-1] > horizons[0]

    def test_reset(self):
        gen = _generator()
        gen.record(0.5, 0.001)
        gen.reset()
        assert gen.elapsed_s == 0.0


class TestLaunchWeighted:
    def test_uniform_profile_matches_uniform_formula_at_start(self):
        uniform = _generator()
        weighted = _generator(time_profile=[1.0] * 10)
        assert weighted.horizon(0) == uniform.horizon(0)

    def test_long_kernel_earns_budget(self):
        # Launch 0 carries half the baseline time: spending that long
        # on it must not read as overhead debt.
        gen = _generator(time_profile=[9.0] + [1.0] * 9)
        gen.record(0.5, 0.0)  # kernel 0 took half the app's baseline time
        assert gen.horizon(1) > 0

    def test_uniform_formula_would_choke_on_same_history(self):
        gen = _generator()  # uniform baseline
        gen.record(0.5, 0.0)
        assert gen.horizon(1) == 0

    def test_index_beyond_profile_falls_back(self):
        gen = _generator(time_profile=[1.0] * 10)
        assert gen.horizon(15) >= 0  # no crash

    def test_record_accumulates_overheads(self):
        gen = _generator()
        gen.record(0.1, 0.002)
        assert gen.elapsed_s == pytest.approx(0.102)
