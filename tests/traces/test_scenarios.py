"""Tests for the adversarial scenario generator families."""

import pytest

from repro.workloads.kernel import ScalingClass
from repro.workloads.traces import (
    FAMILIES,
    ScenarioGenerator,
    Trace,
    TraceReplayer,
)

pytestmark = pytest.mark.traces


@pytest.fixture(scope="module")
def corpus():
    """One generated trace per family (seed 0), keyed by family."""
    generator = ScenarioGenerator(seed=0)
    return {family: generator.generate(family) for family in FAMILIES}


@pytest.mark.parametrize("family", FAMILIES)
def test_family_is_semantically_valid(corpus, family):
    trace = corpus[family]
    assert trace.validate() == []
    assert trace.header.name == family
    assert trace.header.seed == 0
    assert trace.header.assertions  # never a vacuous scenario


@pytest.mark.parametrize("family", FAMILIES)
def test_family_provokes_its_coverage_assertions(corpus, family):
    report = TraceReplayer(corpus[family], check=False).replay()
    assert [str(r) for r in report.assertion_results if not r.passed] == []
    assert report.passed


def test_unknown_family_raises():
    with pytest.raises(KeyError, match="unknown family"):
        ScenarioGenerator().generate("quiet-day")


def test_phase_shift_mutates_after_profile(corpus):
    trace = corpus["phase-shift"]
    assert len(trace.events) == 36
    invocations = trace.applications("phase-shift")
    assert len(invocations) == 3
    profile, shifted = invocations[0], invocations[1]
    assert all(
        spec.scaling_class is not ScalingClass.UNSCALABLE
        for spec in profile.kernels
    )
    # The back half of the shifted invocations goes serial-dominated.
    assert all(
        spec.scaling_class is ScalingClass.UNSCALABLE
        for spec in shifted.kernels[6:]
    )


def test_input_storm_overflows_the_profile(corpus):
    trace = corpus["input-storm"]
    invocations = trace.applications("input-storm")
    assert [len(app.kernels) for app in invocations] == [8, 12]
    # Storm inputs are all previously unseen.
    profile_ids = {spec.input_id for spec in invocations[0].kernels}
    storm_ids = {spec.input_id for spec in invocations[1].kernels}
    assert profile_ids.isdisjoint(storm_ids)


def test_mispredict_cascade_drifts_monotonically(corpus):
    trace = corpus["mispredict-cascade"]
    invocations = trace.applications("mispredict-cascade")
    profile, drifted = invocations
    # Same kernel names, progressively heavier and less parallel.
    for before, after in zip(profile.kernels, drifted.kernels):
        assert after.name == before.name
        assert after.compute_work > before.compute_work
        assert after.parallel_fraction <= before.parallel_fraction
    works = [spec.compute_work for spec in drifted.kernels[::2]]
    assert works == sorted(works)


def test_bursty_preserves_per_session_order(corpus):
    trace = corpus["bursty"]
    assert sorted(trace.session_ids()) == ["svc-0", "svc-1", "svc-2"]
    kinds = {
        spec.session_id: spec.policy.kind for spec in trace.header.sessions
    }
    assert kinds == {"svc-0": "mpc", "svc-1": "ppk", "svc-2": "turbo"}
    for session in trace.session_ids():
        indices = [e.index for e in trace.events_for(session)]
        assert indices == [0, 1, 2, 3, 4, 5] * 2
    # The interleaving genuinely mixes sessions (not three back-to-back
    # blocks).
    order = [e.session for e in trace.events]
    switches = sum(1 for a, b in zip(order, order[1:]) if a != b)
    assert switches > 2


def test_tdp_storm_enforces_tdp(corpus):
    trace = corpus["tdp-storm"]
    assert trace.header.enforce_tdp
    assert trace.header.sessions[0].policy.kind == "fixed"
    assert {e.spec.name for e in trace.events} == {"inferno"}
    assert all(spec.activity_factor >= 3.0 for spec in
               (e.spec for e in trace.events))


def test_corpus_and_dump_corpus(tmp_path):
    generator = ScenarioGenerator(seed=1)
    families = ("tdp-storm",)
    traces = generator.corpus(families)
    assert [t.header.name for t in traces] == ["tdp-storm"]
    paths = generator.dump_corpus(str(tmp_path), families)
    assert paths == [str(tmp_path / "tdp-storm-seed1.jsonl")]
    assert Trace.load(paths[0]) == traces[0]
