"""Seeded-RNG regression tests for the scenario generator (RL002).

Two generations from the same seed must be byte-identical, per-family
streams must not depend on which other families are generated, and the
generator sources must stay clean under the unseeded-RNG lint rule.
"""

import pytest

from repro.workloads.traces import FAMILIES, ScenarioGenerator

pytestmark = pytest.mark.traces


@pytest.mark.parametrize("family", FAMILIES)
def test_same_seed_generations_are_byte_identical(family):
    first = ScenarioGenerator(seed=42).generate(family)
    second = ScenarioGenerator(seed=42).generate(family)
    assert first.dumps() == second.dumps()


def test_different_seeds_differ():
    family = "input-storm"
    assert (
        ScenarioGenerator(seed=0).generate(family).dumps()
        != ScenarioGenerator(seed=1).generate(family).dumps()
    )


def test_family_stream_is_order_independent():
    """Generating one family alone equals generating it mid-corpus."""
    alone = ScenarioGenerator(seed=3).generate("tdp-storm")
    generator = ScenarioGenerator(seed=3)
    generator.generate("input-storm")  # consume an unrelated stream first
    assert generator.generate("tdp-storm").dumps() == alone.dumps()


def test_trace_sources_pass_unseeded_rng_lint():
    """RL002 audit: all trace/scenario randomness flows through seeds."""
    from pathlib import Path

    from repro.analysis import run_lint

    root = Path(__file__).resolve().parents[2]
    result = run_lint(
        [str(root / "src" / "repro" / "workloads" / "traces")],
        select=["RL002"],
        root=str(root),
    )
    assert result.findings == []
