"""Tests for TraceReplayer: float-exact checking, metrics, spans."""

import dataclasses

import pytest

from repro.core.manager import MPCPowerManager
from repro.core.policies import FixedConfigPolicy, PPKPolicy
from repro.hardware.apu import APUModel
from repro.hardware.config import FAILSAFE_CONFIG
from repro.sim.simulator import OverheadModel
from repro.sim.turbocore import TurboCorePolicy
from repro.workloads.traces import (
    CoverageAssertion,
    PolicySpec,
    Trace,
    TraceHeader,
    TraceReplayer,
    build_policy,
    stamp_decisions,
    trace_from_benchmark,
)

from .conftest import KERNELS, small_trace

pytestmark = pytest.mark.traces


def _with_assertions(trace, *assertions):
    header = TraceHeader(
        name=trace.header.name,
        source=trace.header.source,
        seed=trace.header.seed,
        enforce_tdp=trace.header.enforce_tdp,
        sessions=trace.header.sessions,
        assertions=tuple(assertions),
    )
    return Trace(header=header, events=trace.events)


# ----- checking replays -------------------------------------------------------


def test_stamped_replay_is_float_exact(small_stamped):
    report = TraceReplayer(small_stamped).replay()
    assert report.checked == len(small_stamped.events)
    assert report.mismatches == []
    assert report.passed


def test_serialized_stamped_replay_is_float_exact(small_stamped, tmp_path):
    """record -> serialize -> parse -> replay reproduces every decision."""
    path = small_stamped.dump(str(tmp_path / "t.jsonl"))
    report = TraceReplayer(Trace.load(path)).replay()
    assert report.checked == len(small_stamped.events)
    assert report.mismatches == []


def test_tampered_float_is_detected(small_stamped):
    decisions = [e.decision for e in small_stamped.events]
    decisions[5] = dataclasses.replace(
        decisions[5], time_s=decisions[5].time_s * (1.0 + 1e-12)
    )
    report = TraceReplayer(small_stamped.with_decisions(decisions)).replay()
    assert len(report.mismatches) == 1
    assert "time_s" in report.mismatches[0]
    assert not report.passed


def test_tampered_config_is_detected(small_stamped):
    decisions = [e.decision for e in small_stamped.events]
    victim = next(
        i for i, d in enumerate(decisions) if d.config != FAILSAFE_CONFIG
    )
    decisions[victim] = dataclasses.replace(
        decisions[victim], config=FAILSAFE_CONFIG
    )
    report = TraceReplayer(small_stamped.with_decisions(decisions)).replay()
    assert any("config" in m for m in report.mismatches)


def test_check_false_skips_comparison(small_stamped):
    report = TraceReplayer(small_stamped, check=False).replay()
    assert report.checked == 0
    assert report.mismatches == []


def test_unstamped_trace_checks_nothing():
    report = TraceReplayer(small_trace()).replay()
    assert report.checked == 0
    assert len(report.outcomes) == len(small_trace().events)


# ----- report metrics ---------------------------------------------------------


def test_report_metrics(small_stamped):
    report = TraceReplayer(small_stamped).replay()
    assert report.metric("sessions") == 1.0
    assert report.metric("launches") == 16.0
    assert report.metric("launches", "alt") == 16.0
    assert report.metric("runs") == 2.0
    assert report.metric("distinct_configs") >= 1.0
    assert report.metric("fail_safe_total") == (
        report.metric("fail_safe_decisions") + report.metric("fail_safe_fallbacks")
    )
    # The MPC mode counters account for every decision of the replay.
    decided = (
        report.metric("ppk_decisions")
        + report.metric("mpc_decisions")
        + report.metric("skip_decisions")
    )
    assert decided == 16.0


def test_report_decisions_filter_by_session(small_stamped):
    report = TraceReplayer(small_stamped).replay()
    assert report.decisions() == report.decisions("alt")
    assert report.decisions("ghost") == []


def test_failing_assertion_reported(small_stamped):
    trace = _with_assertions(
        small_stamped,
        CoverageAssertion("launches", "==", 16.0),
        CoverageAssertion("tdp_throttles", ">=", 1.0),
    )
    report = TraceReplayer(trace).replay()
    results = {str(r.assertion): r for r in report.assertion_results}
    assert results["launches == 16"].passed
    failed = results["tdp_throttles >= 1"]
    assert not failed.passed
    assert failed.measured == 0.0
    assert str(failed).startswith("FAIL")
    assert not report.passed


# ----- observability ----------------------------------------------------------


def test_replay_emits_summary_span(small_stamped):
    report = TraceReplayer(small_stamped).replay()
    names = {span["name"] for span in report.spans}
    assert names == {"launch", "replay"}
    summary = [s for s in report.spans if s["name"] == "replay"]
    assert len(summary) == 1
    attrs = summary[0]["attributes"]
    assert attrs["trace"] == "small"
    assert attrs["sessions"] == 1
    assert attrs["launches"] == 16
    assert attrs["checked"] == 16
    assert attrs["mismatches"] == 0
    assert attrs["assertions_failed"] == 0


def test_replay_span_validates_against_schema(small_stamped):
    import json

    from repro.obs.exporters import validate_span

    with open("docs/trace.schema.json", encoding="utf-8") as handle:
        schema = json.load(handle)
    report = TraceReplayer(small_stamped).replay()
    for span in report.spans:
        assert validate_span(span, schema) == []


# ----- policy construction ----------------------------------------------------


def test_build_policy_kinds():
    apu, overhead = APUModel(), OverheadModel()
    kernels = list(KERNELS)

    def build(spec):
        return build_policy(spec, kernels, apu=apu, overhead=overhead)

    assert isinstance(build(PolicySpec(kind="turbo")), TurboCorePolicy)
    fixed = build(PolicySpec(kind="fixed", config=FAILSAFE_CONFIG))
    assert isinstance(fixed, FixedConfigPolicy)
    assert isinstance(
        build(PolicySpec(kind="ppk", target_throughput=1e9)), PPKPolicy
    )
    mpc = build(PolicySpec(kind="mpc", target_throughput=1e9, alpha=0.1))
    assert isinstance(mpc, MPCPowerManager)
    with pytest.raises(ValueError, match="unknown policy kind"):
        build(PolicySpec(kind="greedy", target_throughput=1e9))


def test_replayer_rejects_invalid_trace():
    trace = small_trace()
    broken = Trace(header=trace.header, events=trace.events[1:])
    with pytest.raises(ValueError, match="invalid trace"):
        TraceReplayer(broken)


# ----- recording --------------------------------------------------------------


def test_trace_from_benchmark_shape():
    trace = trace_from_benchmark("XSBench", invocations=3)
    assert trace.header.name == "XSBench-mpc"
    assert trace.header.source == "record:XSBench"
    assert trace.session_ids() == ["XSBench"]
    assert len(trace.events) == 3 * 6
    assert trace.header.sessions[0].policy.kind == "mpc"
    assert trace.header.sessions[0].policy.target_throughput > 0.0


def test_trace_from_benchmark_rejects_bad_invocations():
    with pytest.raises(ValueError, match="invocations must be positive"):
        trace_from_benchmark("XSBench", invocations=0)


def test_recorded_benchmark_replays_exactly():
    """The acceptance criterion: a recorded suite run reproduces its
    decision sequence float-for-float through serialization."""
    stamped = stamp_decisions(trace_from_benchmark("XSBench"))
    reloaded = Trace.loads(stamped.dumps())
    report = TraceReplayer(reloaded).replay()
    assert report.checked == len(stamped.events)
    assert report.mismatches == []
    assert report.passed
