"""Tests for the versioned JSONL kernel-launch trace format."""

import pytest

from repro.hardware.config import FAILSAFE_CONFIG
from repro.runtime.events import KernelLaunch
from repro.workloads.suites import all_benchmarks
from repro.workloads.traces import (
    ASSERTION_METRICS,
    ASSERTION_OPS,
    GLOBAL_ONLY_METRICS,
    TRACE_SCHEMA,
    CoverageAssertion,
    PolicySpec,
    RecordedDecision,
    SessionSpec,
    Trace,
    TraceEvent,
    TraceHeader,
    kernel_from_dict,
    kernel_to_dict,
)

from .conftest import COMPUTE, KERNELS, MEMORY, small_trace

pytestmark = pytest.mark.traces


# ----- kernel serialization ---------------------------------------------------


def test_kernel_round_trip_covers_every_suite_kernel():
    """Every Table-IV kernel spec survives dict round-trip exactly."""
    for app in all_benchmarks():
        for spec in app.unique_kernels:
            assert kernel_from_dict(kernel_to_dict(spec)) == spec


def test_kernel_dict_is_json_scalar_only():
    payload = kernel_to_dict(COMPUTE)
    assert payload["name"] == "c"
    assert payload["scaling_class"] == COMPUTE.scaling_class.value
    assert isinstance(payload["scaling_class"], str)
    assert len(payload) == 12


def test_kernel_from_dict_rejects_unknown_fields():
    payload = kernel_to_dict(COMPUTE)
    payload["warp_occupancy"] = 1.0
    with pytest.raises(ValueError, match="unknown kernel fields"):
        kernel_from_dict(payload)


def test_recorded_decision_round_trip():
    decision = RecordedDecision(
        config=FAILSAFE_CONFIG,
        time_s=1.25e-3,
        gpu_energy_j=0.375,
        cpu_energy_j=0.0625,
        horizon=3,
        fail_safe=True,
        fallback=True,
    )
    assert RecordedDecision.from_dict(decision.as_dict()) == decision


# ----- events and header ------------------------------------------------------


def test_event_as_launch_matches_protocol():
    event = TraceEvent(index=3, session="s", spec=MEMORY)
    launch = event.as_launch()
    assert isinstance(launch, KernelLaunch)
    assert (launch.index, launch.session_id, launch.spec) == (3, "s", MEMORY)


def test_event_dict_omits_absent_decision():
    payload = TraceEvent(index=0, session="s", spec=COMPUTE).as_dict()
    assert payload["record"] == "launch"
    assert "decision" not in payload


def test_policy_spec_validation():
    assert PolicySpec(kind="turbo").validate() == []
    assert PolicySpec(kind="fixed", config=FAILSAFE_CONFIG).validate() == []
    assert any("target" in p for p in PolicySpec(kind="mpc").validate())
    assert any("target" in p for p in PolicySpec(kind="ppk").validate())
    assert any("config" in p for p in PolicySpec(kind="fixed").validate())
    assert PolicySpec(kind="greedy", target_throughput=1.0).validate() != []


@pytest.mark.parametrize(
    "op,expected",
    [(">=", True), ("<=", False), ("==", False), ("!=", True),
     (">", True), ("<", False)],
)
def test_assertion_ops(op, expected):
    assert op in ASSERTION_OPS
    assert CoverageAssertion("launches", op, 2.0).check(5.0) is expected


def test_assertion_str_scopes_sessions():
    assert str(CoverageAssertion("runs", "==", 2.0)) == "runs == 2"
    scoped = CoverageAssertion("launches", ">=", 1.0, session="svc-0")
    assert str(scoped) == "launches[svc-0] >= 1"


def test_header_round_trip():
    trace = small_trace(
        seed=7,
        enforce_tdp=True,
        assertions=(CoverageAssertion("launches", "==", 16.0),),
    )
    rebuilt = TraceHeader.from_dict(trace.header.as_dict())
    assert rebuilt == trace.header


# ----- trace serialization ----------------------------------------------------


def test_dumps_loads_byte_identity():
    trace = small_trace()
    text = trace.dumps()
    assert Trace.loads(text) == trace
    assert Trace.loads(text).dumps() == text


def test_dump_load_file_round_trip(tmp_path):
    trace = small_trace()
    path = trace.dump(str(tmp_path / "t.jsonl"))
    assert Trace.load(path) == trace


def test_loads_requires_leading_header():
    trace = small_trace()
    body = "\n".join(trace.dumps().splitlines()[1:]) + "\n"
    with pytest.raises(ValueError, match="first record must be the header"):
        Trace.loads(body)


def test_loads_rejects_unknown_record_kind():
    text = small_trace().dumps() + '{"record": "checkpoint"}\n'
    with pytest.raises(ValueError, match="unknown record kind"):
        Trace.loads(text)


def test_loads_rejects_garbage_and_empty():
    with pytest.raises(ValueError, match="invalid JSON"):
        Trace.loads("{nope}\n")
    with pytest.raises(ValueError, match="empty trace"):
        Trace.loads("\n\n")


# ----- queries ----------------------------------------------------------------


def test_applications_split_on_index_zero():
    trace = small_trace(invocations=3)
    apps = trace.applications("alt")
    assert len(apps) == 3
    assert all(app.kernels == KERNELS for app in apps)
    assert all(app.name == "alt" for app in apps)


def test_unique_kernels_dedup_by_key():
    trace = small_trace(invocations=2)
    assert trace.unique_kernels("alt") == [COMPUTE, MEMORY]


def test_with_decisions_requires_one_per_event():
    trace = small_trace()
    with pytest.raises(ValueError, match="decisions for"):
        trace.with_decisions([None])


# ----- semantic validation ----------------------------------------------------


def _problems(trace):
    return "\n".join(trace.validate())


def test_validate_accepts_small_trace():
    assert small_trace().validate() == []


def test_validate_rejects_wrong_schema():
    trace = small_trace()
    header = TraceHeader.from_dict(
        dict(trace.header.as_dict(), schema=TRACE_SCHEMA + 1)
    )
    assert "unsupported trace schema" in _problems(
        Trace(header=header, events=trace.events)
    )


def test_validate_rejects_undeclared_session():
    trace = small_trace()
    rogue = trace.events + (TraceEvent(index=0, session="ghost", spec=COMPUTE),)
    assert "session not declared" in _problems(
        Trace(header=trace.header, events=rogue)
    )


def test_validate_rejects_out_of_order_indices():
    trace = small_trace()
    skipped = trace.events[:1] + trace.events[2:]
    assert "out-of-order index" in _problems(
        Trace(header=trace.header, events=skipped)
    )


def test_validate_rejects_nonzero_first_index():
    trace = small_trace()
    assert "expected 0" in _problems(
        Trace(header=trace.header, events=trace.events[1:])
    )


def test_validate_rejects_same_key_different_spec():
    trace = small_trace()
    imposter = TraceEvent(
        index=len(KERNELS) - 1,
        session="alt",
        spec=KERNELS[-1].with_input(KERNELS[-1].input_id, work_scale=2.0),
    )
    assert "bound to two different specs" in _problems(
        Trace(header=trace.header, events=trace.events[:-1] + (imposter,))
    )


def test_validate_rejects_session_without_events():
    trace = small_trace()
    extra = trace.header.sessions + (
        SessionSpec(
            session_id="idle", app_name="idle", policy=PolicySpec(kind="turbo")
        ),
    )
    header = TraceHeader(
        name=trace.header.name,
        source=trace.header.source,
        sessions=extra,
    )
    assert "has no launch events" in _problems(
        Trace(header=header, events=trace.events)
    )


@pytest.mark.parametrize(
    "assertion,message",
    [
        (CoverageAssertion("warp_stalls", ">=", 1.0), "unknown metric"),
        (CoverageAssertion("launches", "~=", 1.0), "unknown op"),
        (CoverageAssertion("launches", ">=", 1.0, session="ghost"),
         "unknown session"),
        (CoverageAssertion("mpc_decisions", ">=", 1.0, session="alt"),
         "no per-session counter"),
    ],
)
def test_validate_rejects_malformed_assertions(assertion, message):
    trace = small_trace()
    header = TraceHeader(
        name=trace.header.name,
        source=trace.header.source,
        sessions=trace.header.sessions,
        assertions=(assertion,),
    )
    assert message in _problems(Trace(header=header, events=trace.events))


def test_global_only_metrics_are_registry_backed():
    assert GLOBAL_ONLY_METRICS <= set(ASSERTION_METRICS)


def test_ensure_valid_raises_with_trace_name():
    trace = small_trace()
    broken = Trace(header=trace.header, events=trace.events[1:])
    with pytest.raises(ValueError, match="invalid trace 'small'"):
        broken.ensure_valid()
