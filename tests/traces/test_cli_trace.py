"""Tests for the ``repro trace`` CLI surface."""

import dataclasses
import json

import pytest

from repro.cli import main
from repro.workloads.traces import Trace, stamp_decisions

from .conftest import small_trace

pytestmark = pytest.mark.traces


@pytest.fixture(scope="module")
def stamped_file(tmp_path_factory):
    """A stamped small trace on disk (stamped once per module)."""
    path = tmp_path_factory.mktemp("cli") / "small.jsonl"
    stamp_decisions(small_trace()).dump(str(path))
    return str(path)


def test_record_writes_a_stamped_trace(tmp_path, capsys):
    out = str(tmp_path / "xs.jsonl")
    assert main(["trace", "record", "XSBench", "-o", out]) == 0
    trace = Trace.load(out)
    assert trace.header.source == "record:XSBench"
    assert all(event.decision is not None for event in trace.events)
    assert out in capsys.readouterr().out


def test_replay_faithful_trace_exits_zero(stamped_file, capsys):
    assert main(["trace", "replay", stamped_file]) == 0
    out = capsys.readouterr().out
    assert "16 launches" in out
    assert "0 mismatches" not in out  # faithful replays don't warn


def test_replay_scalar_path_exits_zero(stamped_file):
    assert main(["trace", "replay", stamped_file, "--scalar"]) == 0


def test_replay_tampered_trace_exits_one(stamped_file, tmp_path, capsys):
    trace = Trace.load(stamped_file)
    decisions = [e.decision for e in trace.events]
    decisions[0] = dataclasses.replace(
        decisions[0], gpu_energy_j=decisions[0].gpu_energy_j + 1e-9
    )
    bad = str(tmp_path / "tampered.jsonl")
    trace.with_decisions(decisions).dump(bad)
    assert main(["trace", "replay", bad]) == 1
    assert "MISMATCH" in capsys.readouterr().out


def test_replay_writes_obs_artifacts(stamped_file, tmp_path):
    spans = str(tmp_path / "spans.jsonl")
    metrics = str(tmp_path / "metrics.prom")
    code = main(
        ["trace", "replay", stamped_file,
         "--trace-out", spans, "--metrics-out", metrics]
    )
    assert code == 0
    names = {json.loads(line)["name"] for line in open(spans, encoding="utf-8")}
    assert names == {"launch", "replay"}
    assert "repro_mpc_decisions_total" in open(metrics, encoding="utf-8").read()


def test_replay_rejects_structurally_broken_file(tmp_path, capsys):
    text = small_trace().dumps()
    broken = str(tmp_path / "broken.jsonl")
    with open(broken, "w", encoding="utf-8") as handle:
        # Drop the header: the file starts with a bare launch record.
        handle.write("\n".join(text.splitlines()[1:]) + "\n")
    assert main(["trace", "replay", broken]) == 2
    assert "header" in capsys.readouterr().err


def test_validate_accepts_good_trace(stamped_file, capsys):
    assert main(["trace", "validate", stamped_file]) == 0
    assert "valid" in capsys.readouterr().out


def test_validate_flags_semantic_problems(tmp_path, capsys):
    trace = small_trace()
    lines = trace.dumps().splitlines()
    del lines[1]  # first launch gone: session now starts at index 1
    bad = str(tmp_path / "bad.jsonl")
    with open(bad, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines) + "\n")
    assert main(["trace", "validate", bad]) == 1
    assert "expected 0" in capsys.readouterr().out


def test_generate_writes_validating_corpus(tmp_path, capsys):
    out = str(tmp_path / "corpus")
    assert main(["trace", "generate", "tdp-storm", "--seed", "5",
                 "--output-dir", out]) == 0
    path = f"{out}/tdp-storm-seed5.jsonl"
    assert path in capsys.readouterr().out
    assert main(["trace", "validate", path]) == 0


def test_generate_unknown_family_exits_two(tmp_path, capsys):
    code = main(
        ["trace", "generate", "quiet-day", "--output-dir", str(tmp_path)]
    )
    assert code == 2
    assert "unknown family" in capsys.readouterr().err
