"""Property tests for trace round-trips (seeded stdlib random).

Each property runs over a batch of randomly built traces: serialization
must be byte-stable, parsing must invert dumping exactly, and a stamped
trace must replay to identical event streams and session statistics no
matter how many times it passes through the serializer.
"""

import random

import pytest

from repro.hardware.config import FAILSAFE_CONFIG
from repro.workloads.kernel import KernelSpec, ScalingClass
from repro.workloads.traces import (
    PolicySpec,
    SessionSpec,
    Trace,
    TraceEvent,
    TraceHeader,
    TraceReplayer,
    stamp_decisions,
)

pytestmark = pytest.mark.traces

#: How many random traces each property sweeps.
CASES = 12


def _random_kernel(rng, name, input_id):
    scaling = rng.choice([ScalingClass.COMPUTE, ScalingClass.MEMORY])
    return KernelSpec(
        name,
        scaling,
        compute_work=rng.uniform(0.1, 8.0),
        memory_traffic=rng.uniform(0.05, 1.5),
        parallel_fraction=rng.uniform(0.6, 0.999),
        serial_time_s=rng.uniform(0.0, 1e-4),
        cache_interference=rng.uniform(0.0, 0.3),
        compute_efficiency=rng.uniform(0.5, 1.0),
        activity_factor=rng.uniform(0.8, 1.5),
        input_id=input_id,
    )


def _random_trace(seed):
    """A random multi-session trace under cheap (stateless) policies."""
    rng = random.Random(seed)
    sessions = []
    streams = {}
    for ordinal in range(rng.randint(1, 3)):
        session = f"s{ordinal}"
        if rng.random() < 0.5:
            policy = PolicySpec(kind="turbo")
        else:
            policy = PolicySpec(kind="fixed", config=FAILSAFE_CONFIG)
        sessions.append(
            SessionSpec(session_id=session, app_name=session, policy=policy)
        )
        kernels = [
            _random_kernel(rng, f"k{ordinal}-{i}", i + 1)
            for i in range(rng.randint(1, 5))
        ]
        streams[session] = [
            TraceEvent(index=index, session=session, spec=spec)
            for _ in range(rng.randint(1, 3))
            for index, spec in enumerate(kernels)
        ]
    # Random arrival interleaving; per-session order preserved.
    interleaved = []
    pending = {sid: list(events) for sid, events in streams.items()}
    while any(pending.values()):
        alive = sorted(sid for sid, queue in pending.items() if queue)
        interleaved.append(pending[rng.choice(alive)].pop(0))
    header = TraceHeader(
        name=f"prop-{seed}",
        source=f"property:{seed}",
        seed=seed,
        enforce_tdp=rng.random() < 0.3,
        sessions=tuple(sessions),
    )
    return Trace(header=header, events=tuple(interleaved)).ensure_valid()


def test_random_traces_dump_byte_stably():
    for seed in range(CASES):
        trace = _random_trace(seed)
        text = trace.dumps()
        assert Trace.loads(text).dumps() == text, f"seed {seed}"


def test_random_traces_parse_losslessly():
    for seed in range(CASES):
        trace = _random_trace(seed)
        assert Trace.loads(trace.dumps()) == trace, f"seed {seed}"


def test_stamped_random_traces_round_trip_and_replay_exactly():
    """record -> serialize -> parse -> replay: identical event streams
    and identical per-session statistics."""
    for seed in range(0, CASES, 3):
        stamped = stamp_decisions(_random_trace(seed))
        reloaded = Trace.loads(stamped.dumps())
        assert reloaded == stamped, f"seed {seed}"
        first = TraceReplayer(stamped).replay()
        second = TraceReplayer(reloaded).replay()
        assert first.mismatches == [], f"seed {seed}"
        assert second.mismatches == [], f"seed {seed}"
        assert first.stats == second.stats, f"seed {seed}"
        assert first.decisions() == second.decisions(), f"seed {seed}"


def test_stamping_is_idempotent():
    for seed in (1, 5):
        trace = _random_trace(seed)
        once = stamp_decisions(trace)
        twice = stamp_decisions(once)
        assert once == twice, f"seed {seed}"
