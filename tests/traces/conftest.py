"""Shared fixtures for the trace-format/replay test suite.

Everything runs on a tiny two-kernel alternating stream (the same
shape as the runtime suite), so stamping and replaying stays well
inside tier-1 time budgets.
"""

import functools

import pytest

from repro.sim.simulator import Simulator
from repro.sim.turbocore import TurboCorePolicy
from repro.workloads.app import Application, Category
from repro.workloads.kernel import KernelSpec, ScalingClass
from repro.workloads.traces import (
    PolicySpec,
    SessionSpec,
    Trace,
    TraceEvent,
    TraceHeader,
    stamp_decisions,
)

COMPUTE = KernelSpec("c", ScalingClass.COMPUTE, 4.0, 0.1, parallel_fraction=0.99)
MEMORY = KernelSpec("m", ScalingClass.MEMORY, 0.5, 0.9, parallel_fraction=0.9)

#: One invocation of the alternating compute/memory stream.
KERNELS = (COMPUTE, MEMORY) * 4


@functools.lru_cache(maxsize=1)
def turbo_target():
    """Turbo Core throughput of the small stream (computed once)."""
    app = Application(
        "alt", "trace", Category.IRREGULAR_NON_REPEATING, kernels=KERNELS
    )
    sim = Simulator()
    turbo = sim.run(app, TurboCorePolicy(tdp_w=sim.apu.tdp_w))
    return turbo.instructions / turbo.kernel_time_s


def small_trace(policy_kind="mpc", invocations=2, session="alt", **header_kw):
    """A hand-built single-session trace over the small stream."""
    policy = PolicySpec(kind=policy_kind, target_throughput=turbo_target())
    events = [
        TraceEvent(index=index, session=session, spec=spec)
        for _ in range(invocations)
        for index, spec in enumerate(KERNELS)
    ]
    header = TraceHeader(
        name=header_kw.pop("name", "small"),
        source="test:small",
        sessions=(
            SessionSpec(session_id=session, app_name="alt", policy=policy),
        ),
        **header_kw,
    )
    return Trace(header=header, events=tuple(events)).ensure_valid()


@pytest.fixture(scope="session")
def small_stamped():
    """The small MPC trace with its decisions recorded."""
    return stamp_decisions(small_trace())
