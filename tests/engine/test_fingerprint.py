"""Cache-key determinism and sensitivity of the engine fingerprints.

The contract under test (ISSUE acceptance): the same inputs always
produce the same key, and perturbing anything that could change a run's
outcome — the app's kernel specs, the policy variant, the DVFS tables,
the adaptive-horizon alpha, the predictor — produces a different key.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import ExperimentEngine, RunRequest
from repro.engine.fingerprint import describe, fingerprint

from .conftest import small_context

pytestmark = pytest.mark.engine

# Finite doubles round-trip exactly through the canonical JSON.
finite_floats = st.floats(allow_nan=False, allow_infinity=False)

json_scalars = st.none() | st.booleans() | st.integers() | finite_floats | st.text()

json_values = st.recursive(
    json_scalars,
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=16,
)


class TestDescribe:
    @given(json_values)
    @settings(max_examples=100, deadline=None)
    def test_fingerprint_is_deterministic(self, value):
        assert fingerprint(value) == fingerprint(value)

    def test_equal_arrays_same_identity_free_description(self):
        a = np.arange(12.0).reshape(3, 4)
        b = np.arange(12.0).reshape(3, 4)
        assert describe(a) == describe(b)
        assert fingerprint(a) == fingerprint(b)

    def test_array_content_matters(self):
        a = np.arange(12.0)
        b = np.arange(12.0)
        b[5] += 1e-12
        assert fingerprint(a) != fingerprint(b)

    def test_array_shape_matters(self):
        a = np.arange(12.0).reshape(3, 4)
        assert fingerprint(a) != fingerprint(a.reshape(4, 3))

    def test_dict_order_is_canonical(self):
        assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})

    def test_negative_zero_is_normalized(self):
        assert fingerprint(-0.0) == fingerprint(0.0)

    def test_dataclass_fields_described(self):
        @dataclasses.dataclass
        class Point:
            x: float
            y: float

        assert fingerprint(Point(1.0, 2.0)) == fingerprint(Point(1.0, 2.0))
        assert fingerprint(Point(1.0, 2.0)) != fingerprint(Point(1.0, 3.0))

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            describe(object())


class TestRunKeys:
    """Key sensitivity over real contexts (no simulation executed)."""

    @pytest.fixture
    def pair(self, cache_dir, engine):
        ctx = small_context(cache_dir, engine)
        return engine, ctx

    def key(self, engine, ctx, request, run_key=None):
        run_key = run_key if run_key is not None else (request.benchmark, request.variant)
        return engine.key_for(ctx, request, run_key)

    def test_same_inputs_same_key(self, cache_dir, tmp_path):
        eng_a = ExperimentEngine(jobs=1, cache_dir=str(cache_dir))
        eng_b = ExperimentEngine(jobs=4, cache_dir=str(tmp_path / "other"))
        ctx_a = small_context(cache_dir, eng_a)
        ctx_b = small_context(cache_dir, eng_b)
        request = RunRequest("NBody", "turbo")
        assert self.key(eng_a, ctx_a, request) == self.key(eng_b, ctx_b, request)

    def test_benchmark_changes_key(self, pair):
        engine, ctx = pair
        assert self.key(engine, ctx, RunRequest("NBody", "turbo")) != self.key(
            engine, ctx, RunRequest("kmeans", "turbo")
        )

    def test_variant_changes_key(self, pair):
        engine, ctx = pair
        a = engine.key_for(ctx, RunRequest("NBody", "mpc_ideal"), ("NBody", "mpc_ideal"))
        b = engine.key_for(ctx, RunRequest("NBody", "to"), ("NBody", "mpc_ideal"))
        assert a != b

    def test_run_key_changes_key(self, pair):
        engine, ctx = pair
        request = RunRequest("NBody", "mpc_pair", (("alpha", 0.05),))
        a = engine.key_for(ctx, request, ("NBody", "mpc"))
        b = engine.key_for(ctx, request, ("NBody", "mpc_first"))
        assert a != b

    def test_alpha_changes_key(self, pair):
        engine, ctx = pair
        a = engine.key_for(
            ctx, RunRequest("NBody", "mpc_pair", (("alpha", 0.05),)), ("NBody", "mpc")
        )
        b = engine.key_for(
            ctx, RunRequest("NBody", "mpc_pair", (("alpha", 0.10),)), ("NBody", "mpc")
        )
        assert a != b

    def test_dvfs_table_changes_key(self, pair, monkeypatch):
        from repro.hardware import dvfs

        engine, ctx = pair
        request = RunRequest("NBody", "turbo")
        before = self.key(engine, ctx, request)
        perturbed = dict(dvfs.CPU_PSTATES)
        name, state = next(iter(perturbed.items()))
        perturbed[name] = dataclasses.replace(state, voltage=state.voltage + 0.01)
        monkeypatch.setattr(dvfs, "CPU_PSTATES", perturbed)
        assert self.key(engine, ctx, request) != before

    def test_app_spec_changes_key(self, pair):
        engine, ctx = pair
        request = RunRequest("NBody", "turbo")
        before = self.key(engine, ctx, request)
        app = ctx.app("NBody")
        target = app.kernels[0].key
        ctx._apps["NBody"] = dataclasses.replace(
            app,
            kernels=tuple(
                dataclasses.replace(k, compute_work=k.compute_work * 1.0001)
                if k.key == target else k
                for k in app.kernels
            ),
        )
        assert self.key(engine, ctx, request) != before

    def test_predictor_changes_key_when_needed(self, pair, cache_dir):
        engine, ctx = pair
        # turbo ignores the predictor; ppk depends on it.
        other = small_context(cache_dir, engine, names=("NBody",))
        turbo = RunRequest("NBody", "turbo")
        ppk = RunRequest("NBody", "ppk")
        assert self.key(engine, ctx, turbo) == self.key(engine, other, turbo)
        assert self.key(engine, ctx, ppk) != self.key(engine, other, ppk)

    def test_default_rf_fingerprint_needs_no_training(self, cache_dir, engine):
        from repro.experiments.common import ExperimentContext

        ctx = ExperimentContext(
            benchmark_names=["NBody"], cache_dir=str(cache_dir), engine=engine
        )
        engine.key_for(ctx, RunRequest("NBody", "ppk"), ("NBody", "ppk"))
        assert ctx._predictor is None  # fingerprinting did not train
