"""Golden-result regression suite (ISSUE satellite 1).

Asserts that the reduced canonical matrix still reproduces the numbers
snapshotted in ``tests/golden/small_canonical.json``, and that the
serial, parallel, and cache-hit execution paths all yield *identical*
results.  Regenerate the snapshot with
``PYTHONPATH=src python tests/golden/generate.py`` after intentional
model changes.
"""

import json
import os

import pytest

from repro.engine import ExperimentEngine, canonical_requests
from tests.golden.common import GOLDEN_FILE, headline_summary, run_summary

from .conftest import small_context

pytestmark = pytest.mark.engine

#: Tolerance against libm/numpy build differences across machines; the
#: path-identity assertions below remain exact.
REL = 1e-9


@pytest.fixture(scope="module")
def golden():
    path = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "golden",
        GOLDEN_FILE,
    )
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


@pytest.fixture(scope="module")
def serial(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("golden-cache")
    engine = ExperimentEngine(jobs=1, cache_dir=str(cache_dir))
    ctx = small_context(cache_dir, engine)
    engine.prefetch(ctx, canonical_requests(ctx))
    return cache_dir, ctx


def assert_close(measured, snapshot, label):
    assert set(measured) == set(snapshot), label
    for key, value in snapshot.items():
        if isinstance(value, float):
            assert measured[key] == pytest.approx(value, rel=REL), (
                f"{label}[{key}]: measured {measured[key]!r} != "
                f"golden {value!r}"
            )
        else:
            assert measured[key] == value, f"{label}[{key}]"


class TestGoldenNumbers:
    def test_benchmark_set_matches(self, golden, serial):
        _, ctx = serial
        assert ctx.benchmark_names == golden["benchmarks"]

    def test_canonical_runs_match_snapshot(self, golden, serial):
        _, ctx = serial
        measured = run_summary(ctx)
        assert set(measured) == set(golden["runs"])
        for run_key, snapshot in golden["runs"].items():
            assert_close(measured[run_key], snapshot, run_key)

    def test_headline_matches_snapshot(self, golden, serial):
        _, ctx = serial
        assert_close(headline_summary(ctx), golden["headline"], "headline")


class TestPathIdentity:
    """Serial, parallel, and cache-hit results must be identical."""

    def test_parallel_path_identical(self, serial, tmp_path):
        _, serial_ctx = serial
        cache_dir = tmp_path / "par"
        engine = ExperimentEngine(jobs=4, cache_dir=str(cache_dir))
        ctx = small_context(cache_dir, engine)
        engine.prefetch(ctx, canonical_requests(ctx))
        assert engine.stats.parallel_computed > 0
        assert run_summary(ctx) == run_summary(serial_ctx)  # exact
        assert {k: r.__dict__ for k, r in ctx._runs.items()} == {
            k: r.__dict__ for k, r in serial_ctx._runs.items()
        }

    def test_cache_hit_path_identical(self, serial):
        cache_dir, serial_ctx = serial
        engine = ExperimentEngine(jobs=1, cache_dir=str(cache_dir))
        ctx = small_context(cache_dir, engine)
        engine.prefetch(ctx, canonical_requests(ctx))
        assert engine.stats.computed == 0  # pure cache hits
        assert {k: r.__dict__ for k, r in ctx._runs.items()} == {
            k: r.__dict__ for k, r in serial_ctx._runs.items()
        }
