"""Tests for the shared-memory feature-block transport (engine/shm).

Covers the segment lifecycle (export, attach, owner-only unlink), the
zero-copy adoption path in ``ConfigTable``, and the invariant the
engine relies on: adoption changes no observable table state — floats,
pickles — only where the bytes live.
"""

import os
import pickle

import numpy as np
import pytest

from repro.engine.shm import (
    SHM_PREFIX,
    attach_block,
    detach_all,
    export_block,
)
from repro.hardware.config import ConfigSpace
from repro.hardware.table import (
    ConfigTable,
    clear_shared_feature_blocks,
    lattice_feature_key,
    register_shared_feature_block,
    shared_feature_block,
)

pytestmark = pytest.mark.engine


def _segments():
    return sorted(
        name for name in os.listdir("/dev/shm") if name.startswith(SHM_PREFIX)
    )


@pytest.fixture(autouse=True)
def _clean_shared_state():
    try:
        yield
    finally:
        clear_shared_feature_blocks()
        detach_all()


class TestSegmentLifecycle:
    def test_export_attach_round_trip(self):
        block = np.arange(21.0).reshape(3, 7)
        export = export_block(block)
        try:
            view = attach_block(export.handle)
            assert np.array_equal(view, block)
            assert not view.flags.writeable
        finally:
            detach_all()
            export.close()

    def test_handle_survives_pickling(self):
        export = export_block(np.ones((2, 7)))
        try:
            handle = pickle.loads(pickle.dumps(export.handle))
            assert np.array_equal(attach_block(handle), np.ones((2, 7)))
        finally:
            detach_all()
            export.close()

    def test_attach_is_cached_per_process(self):
        export = export_block(np.zeros((2, 7)))
        try:
            assert attach_block(export.handle) is attach_block(export.handle)
        finally:
            detach_all()
            export.close()

    def test_close_unlinks_and_is_idempotent(self):
        export = export_block(np.zeros((2, 7)))
        name = export.handle.name
        assert name in _segments()
        export.close()
        assert name not in _segments()
        export.close()  # second close is a no-op

    def test_no_orphaned_segments_after_lifecycle(self):
        before = _segments()
        export = export_block(np.arange(14.0).reshape(2, 7))
        attach_block(export.handle)
        detach_all()
        export.close()
        assert _segments() == before


class TestConfigTableAdoption:
    def test_adopted_table_is_zero_copy_and_float_identical(self):
        space = ConfigSpace()
        plain = ConfigTable(space)
        export = export_block(plain.feature_block)
        try:
            key = lattice_feature_key(space)
            register_shared_feature_block(key, attach_block(export.handle))
            adopted = ConfigTable(space)
            assert np.shares_memory(
                adopted.feature_block, shared_feature_block(key)
            )
            assert np.array_equal(adopted.feature_block, plain.feature_block)
            for name in (
                "cpu_freq_ghz", "cpu_voltage", "nb_freq_ghz",
                "memory_bw_gbps", "gpu_freq_ghz", "rail_voltage", "cu_count",
            ):
                assert np.array_equal(
                    getattr(adopted, name), getattr(plain, name)
                ), name
        finally:
            clear_shared_feature_blocks()
            detach_all()
            export.close()

    def test_adoption_does_not_change_pickles(self):
        space = ConfigSpace()
        plain = ConfigTable(space)
        register_shared_feature_block(
            lattice_feature_key(space), plain.feature_block.copy()
        )
        adopted = ConfigTable(space)
        assert pickle.dumps(adopted) == pickle.dumps(plain)

    def test_wrong_shape_registration_rejected(self):
        space = ConfigSpace()
        with pytest.raises(ValueError):
            register_shared_feature_block(
                lattice_feature_key(space), np.zeros((3, 6))
            )

    def test_cleared_registry_restores_private_blocks(self):
        space = ConfigSpace()
        plain = ConfigTable(space)
        register_shared_feature_block(
            lattice_feature_key(space), plain.feature_block.copy()
        )
        clear_shared_feature_blocks()
        rebuilt = ConfigTable(space)
        assert not np.shares_memory(rebuilt.feature_block, plain.feature_block)
        assert np.array_equal(rebuilt.feature_block, plain.feature_block)
