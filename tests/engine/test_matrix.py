"""The experiment->request matrix must cover what experiments consume.

For each mapped experiment key: prefetch its requests, then run the
experiment and assert the engine computed nothing *after* the prefetch —
i.e. the matrix predicted every policy run the module pulls.
"""

import pytest

from repro.engine.matrix import requests_for
from repro.experiments.runner import ALL_EXPERIMENTS, run_all

from .conftest import small_context

pytestmark = pytest.mark.engine

#: Experiments whose request sets the reduced context can exercise
#: quickly.  fig3 iterates its own three benchmarks and the design
#: ablations their five, so they are covered by test_full_matrix_runs
#: only through their request lists, not executed here.
FAST_KEYS = ("fig4", "fig8", "fig9", "fig10", "fig12", "fig14", "fig15",
             "headline", "ablation")


class TestRequestCoverage:
    @pytest.mark.parametrize("key", FAST_KEYS)
    def test_prefetch_covers_experiment(self, key, cache_dir, engine):
        ctx = small_context(cache_dir, engine)
        engine.prefetch(ctx, requests_for([key], ctx))
        computed_after_prefetch = engine.stats.computed
        ALL_EXPERIMENTS[key](ctx)
        assert engine.stats.computed == computed_after_prefetch, (
            f"{key} needed runs the matrix did not prefetch"
        )

    def test_fig13_coverage(self, cache_dir, engine):
        ctx = small_context(cache_dir, engine)
        engine.prefetch(ctx, requests_for(["fig13"], ctx))
        computed_after_prefetch = engine.stats.computed
        ALL_EXPERIMENTS["fig13"](ctx)
        assert engine.stats.computed == computed_after_prefetch

    def test_static_experiments_request_nothing(self, cache_dir, engine):
        ctx = small_context(cache_dir, engine)
        for key in ("table1", "table2", "table3", "table4", "fig2", "fig7"):
            assert requests_for([key], ctx) == []

    def test_unknown_keys_request_nothing(self, cache_dir, engine):
        ctx = small_context(cache_dir, engine)
        assert requests_for(["not_an_experiment"], ctx) == []

    def test_requests_deduplicated(self, cache_dir, engine):
        ctx = small_context(cache_dir, engine)
        requests = requests_for(["fig8", "fig9", "fig10", "headline"], ctx)
        markers = [(r.benchmark, r.variant, r.params) for r in requests]
        assert len(markers) == len(set(markers))
        # Four experiments, identical needs: turbo + ppk + mpc_pair each.
        assert len(requests) == 3 * len(ctx.benchmark_names)

    def test_turbo_requests_ordered_first(self, cache_dir, engine):
        ctx = small_context(cache_dir, engine)
        requests = requests_for(list(ALL_EXPERIMENTS), ctx)
        variants = [r.variant for r in requests]
        first_non_turbo = next(
            i for i, v in enumerate(variants) if v != "turbo"
        )
        assert all(v != "turbo" for v in variants[first_non_turbo:])

    def test_run_all_prefetches_through_engine(self, cache_dir, engine):
        ctx = small_context(cache_dir, engine)
        tables = run_all(ctx, only=["fig8"], echo=False)
        assert len(tables) == 1
        assert engine.stats.requests > 0

    def test_run_all_rejects_unknown_key(self, cache_dir, engine):
        ctx = small_context(cache_dir, engine)
        with pytest.raises(KeyError):
            run_all(ctx, only=["figure_of_doom"], echo=False)
