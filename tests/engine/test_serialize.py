"""Lossless round-trip guarantees of the engine's JSON serializers.

The cache and the worker protocol both rely on ``to_dict -> json ->
from_dict`` reproducing the original object *exactly* — including every
float bit — which is what makes cached and parallel results
indistinguishable from in-process computation.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.serialize import (
    run_result_from_dict,
    run_result_to_dict,
    table_from_dict,
    table_to_dict,
)
from repro.experiments.common import ExperimentTable
from repro.hardware.config import ConfigSpace
from repro.sim.trace import LaunchRecord, RunResult

pytestmark = pytest.mark.engine

CONFIGS = ConfigSpace().all_configs()

finite = st.floats(allow_nan=False, allow_infinity=False)
positive = st.floats(min_value=1e-9, max_value=1e9, allow_nan=False)

record_st = st.builds(
    lambda i, cfg, t, ge, ce, n, ot, oge, oce, h, fs: dict(
        kernel_key=f"k{i}", config=cfg, time_s=t, gpu_energy_j=ge,
        cpu_energy_j=ce, instructions=n, overhead_time_s=ot,
        overhead_gpu_energy_j=oge, overhead_cpu_energy_j=oce,
        horizon=h, fail_safe=fs,
    ),
    st.integers(0, 3),
    st.sampled_from(CONFIGS),
    positive, positive, positive, positive,
    finite, finite, finite,
    st.integers(0, 32),
    st.booleans(),
)


def build_run(records):
    run = RunResult(app_name="app", policy_name="policy")
    for index, fields in enumerate(records):
        run.append(LaunchRecord(index=index, **fields))
    return run


def roundtrip(payload):
    """Push a payload through real JSON text, as the cache does."""
    return json.loads(json.dumps(payload))


class TestRunResultRoundTrip:
    @given(st.lists(record_st, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_exact(self, records):
        run = build_run(records)
        restored = run_result_from_dict(roundtrip(run_result_to_dict(run)))
        assert restored.app_name == run.app_name
        assert restored.policy_name == run.policy_name
        assert restored.launches == run.launches  # frozen dataclass ==

    def test_schema_mismatch_raises(self):
        payload = run_result_to_dict(build_run([]))
        payload["schema"] = 999
        with pytest.raises(ValueError):
            run_result_from_dict(payload)


cell_st = st.none() | st.booleans() | st.integers() | finite | st.text(max_size=20)


class TestTableRoundTrip:
    @given(
        st.integers(1, 5).flatmap(
            lambda width: st.tuples(
                st.lists(st.text(min_size=1, max_size=10),
                         min_size=width, max_size=width),
                st.lists(st.lists(cell_st, min_size=width, max_size=width),
                         max_size=6),
            )
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_exact(self, headers_rows):
        headers, rows = headers_rows
        table = ExperimentTable(
            experiment_id="X", title="t", headers=list(headers)
        )
        for row in rows:
            table.add_row(*row)
        restored = table_from_dict(roundtrip(table_to_dict(table)))
        assert restored.experiment_id == table.experiment_id
        assert restored.title == table.title
        assert restored.headers == table.headers
        assert restored.rows == table.rows

    def test_non_json_cell_rejected(self):
        table = ExperimentTable(experiment_id="X", title="t", headers=["a"])
        table.add_row(object())
        with pytest.raises(TypeError):
            table_to_dict(table)

    def test_schema_mismatch_raises(self):
        payload = table_to_dict(
            ExperimentTable(experiment_id="X", title="t", headers=["a"])
        )
        payload["schema"] = 0
        with pytest.raises(ValueError):
            table_from_dict(payload)
