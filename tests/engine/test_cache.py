"""Failure-mode behaviour of the on-disk result cache.

Corrupt, truncated, or schema-mismatched entries must read as misses —
never as crashes or wrong results — and ``--no-cache`` must bypass both
reads and writes.
"""

import json
import os

import pytest

from repro.engine import ResultCache

pytestmark = pytest.mark.engine

KEY = "a" * 64
PAYLOAD = {"schema": 1, "value": [1.5, "x"]}


@pytest.fixture
def cache(tmp_path):
    return ResultCache(cache_dir=str(tmp_path))


class TestRoundTrip:
    def test_store_then_load(self, cache):
        cache.store(KEY, PAYLOAD, summary={"why": "test"})
        assert cache.load(KEY) == PAYLOAD
        assert cache.stats.hits == 1
        assert cache.stats.stores == 1

    def test_missing_entry_is_miss(self, cache):
        assert cache.load(KEY) is None
        assert cache.stats.misses == 1
        assert cache.stats.corrupt == 0

    def test_store_overwrites(self, cache):
        cache.store(KEY, PAYLOAD)
        cache.store(KEY, {"schema": 1, "value": "new"})
        assert cache.load(KEY) == {"schema": 1, "value": "new"}

    def test_no_stray_temp_files(self, cache):
        cache.store(KEY, PAYLOAD)
        assert sorted(os.listdir(cache.root)) == [f"{KEY}.json"]


class TestCorruption:
    def test_truncated_entry_is_miss(self, cache):
        cache.store(KEY, PAYLOAD)
        path = cache.path_for(KEY)
        with open(path, "r+", encoding="utf-8") as handle:
            handle.truncate(os.path.getsize(path) // 2)
        assert cache.load(KEY) is None
        assert cache.stats.corrupt == 1
        assert cache.stats.misses == 1

    def test_garbage_entry_is_miss(self, cache):
        os.makedirs(cache.root, exist_ok=True)
        with open(cache.path_for(KEY), "w", encoding="utf-8") as handle:
            handle.write("not json at all {{{")
        assert cache.load(KEY) is None
        assert cache.stats.corrupt == 1

    def test_wrong_envelope_version_is_miss(self, cache):
        cache.store(KEY, PAYLOAD)
        path = cache.path_for(KEY)
        with open(path, encoding="utf-8") as handle:
            envelope = json.load(handle)
        envelope["envelope"] = -1
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(envelope, handle)
        assert cache.load(KEY) is None
        assert cache.stats.corrupt == 1

    def test_non_dict_entry_is_miss(self, cache):
        os.makedirs(cache.root, exist_ok=True)
        with open(cache.path_for(KEY), "w", encoding="utf-8") as handle:
            json.dump([1, 2, 3], handle)
        assert cache.load(KEY) is None
        assert cache.stats.corrupt == 1

    def test_corrupt_entry_recovers_after_rewrite(self, cache):
        os.makedirs(cache.root, exist_ok=True)
        with open(cache.path_for(KEY), "w", encoding="utf-8") as handle:
            handle.write("garbage")
        assert cache.load(KEY) is None
        cache.store(KEY, PAYLOAD)
        assert cache.load(KEY) == PAYLOAD


class TestDisabled:
    def test_no_cache_never_writes(self, tmp_path):
        cache = ResultCache(cache_dir=str(tmp_path), enabled=False)
        cache.store(KEY, PAYLOAD)
        assert not os.path.isdir(cache.root) or not os.listdir(cache.root)
        assert cache.stats.stores == 0

    def test_no_cache_never_reads(self, tmp_path):
        # Populate with an enabled cache, then reopen disabled.
        ResultCache(cache_dir=str(tmp_path)).store(KEY, PAYLOAD)
        disabled = ResultCache(cache_dir=str(tmp_path), enabled=False)
        assert disabled.load(KEY) is None
        assert disabled.stats.misses == 1


class TestClear:
    def test_clear_removes_entries(self, cache):
        cache.store(KEY, PAYLOAD)
        cache.store("b" * 64, PAYLOAD)
        assert cache.clear() == 2
        assert cache.load(KEY) is None

    def test_clear_empty_dir(self, cache):
        assert cache.clear() == 0


class TestStatsFormat:
    def test_format_mentions_counts(self, cache):
        cache.store(KEY, PAYLOAD)
        cache.load(KEY)
        cache.load("c" * 64)
        text = cache.stats.format()
        assert "1 hits" in text
        assert "1 misses" in text
        assert "1 stored" in text
