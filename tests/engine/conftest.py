"""Shared fixtures for the experiment-engine test suite.

Everything here runs on a reduced two-benchmark context with an oracle
predictor, so no Random Forest training happens and the whole suite
stays in tier-1 time budgets.
"""

import pytest

from repro.engine import ExperimentEngine
from repro.experiments.common import ExperimentContext
from repro.ml.predictors import OraclePredictor
from repro.workloads.suites import benchmark

#: Benchmarks the engine tests simulate.
NAMES = ("NBody", "kmeans")


def small_context(cache_dir, engine=None, names=NAMES):
    """An oracle-backed context over a reduced benchmark set.

    Built the same way every time so that two contexts pointed at the
    same cache directory produce identical cache keys.
    """
    kernels = {
        spec.key: spec for name in names
        for spec in benchmark(name).unique_kernels
    }
    ctx = ExperimentContext(
        benchmark_names=list(names),
        cache_dir=str(cache_dir) if cache_dir is not None else None,
        engine=engine,
    )
    ctx.predictor = OraclePredictor(
        ctx.apu, [kernels[key] for key in sorted(kernels)]
    )
    return ctx


@pytest.fixture
def cache_dir(tmp_path):
    return tmp_path / "cache"


@pytest.fixture
def engine(cache_dir):
    return ExperimentEngine(jobs=1, cache_dir=str(cache_dir))


@pytest.fixture
def ctx(cache_dir, engine):
    return small_context(cache_dir, engine)
