"""End-to-end behaviour of the ExperimentEngine.

Covers the ISSUE acceptance bars directly:

* ``jobs=4`` produces results identical to ``jobs=1``,
* a warm-cache rerun is at least 5x faster than the cold run,
* a worker exception surfaces the original traceback in the parent,
* ``use_cache=False`` computes without touching the disk.
"""

import os
import time

import pytest

from repro.engine import (
    EngineWorkerError,
    ExperimentEngine,
    RunRequest,
    canonical_requests,
)

from .conftest import NAMES, small_context

pytestmark = pytest.mark.engine


def run_dicts(ctx):
    return {key: run.__dict__ for key, run in ctx._runs.items()}


class TestSerialEngine:
    def test_prefetch_computes_and_stores(self, cache_dir, engine, ctx):
        stats = engine.prefetch(ctx, canonical_requests(ctx))
        assert stats.computed > 0
        assert stats.cache.stores > 0
        assert os.path.isdir(engine.cache.root)
        # Every canonical run key materialized in memory.
        for name in NAMES:
            for suffix in ("turbo", "ppk", "ppk_oracle", "mpc", "mpc_first",
                           "mpc_full", "mpc_first_full", "mpc_ideal", "to"):
                assert (name, suffix) in ctx._runs

    def test_context_methods_hit_prefetched_memory(self, engine, ctx):
        engine.prefetch(ctx, canonical_requests(ctx))
        computed = engine.stats.computed
        ctx.mpc("NBody")
        ctx.theoretically_optimal("kmeans")
        assert engine.stats.computed == computed  # nothing recomputed

    def test_warm_cache_loads_identical_results(self, cache_dir, engine, ctx):
        engine.prefetch(ctx, canonical_requests(ctx))
        cold = run_dicts(ctx)

        warm_engine = ExperimentEngine(jobs=1, cache_dir=str(cache_dir))
        warm_ctx = small_context(cache_dir, warm_engine)
        warm_engine.prefetch(warm_ctx, canonical_requests(warm_ctx))
        assert warm_engine.stats.computed == 0
        assert warm_engine.stats.cache.hits > 0
        assert run_dicts(warm_ctx) == cold

    def test_warm_rerun_is_5x_faster(self, cache_dir):
        cold_engine = ExperimentEngine(jobs=1, cache_dir=str(cache_dir))
        cold_ctx = small_context(cache_dir, cold_engine)
        start = time.perf_counter()
        cold_engine.prefetch(cold_ctx, canonical_requests(cold_ctx))
        cold_s = time.perf_counter() - start

        warm_engine = ExperimentEngine(jobs=1, cache_dir=str(cache_dir))
        warm_ctx = small_context(cache_dir, warm_engine)
        start = time.perf_counter()
        warm_engine.prefetch(warm_ctx, canonical_requests(warm_ctx))
        warm_s = time.perf_counter() - start

        assert warm_engine.stats.computed == 0
        assert warm_s * 5 <= cold_s, (
            f"warm rerun {warm_s:.3f}s not 5x faster than cold {cold_s:.3f}s"
        )

    def test_no_cache_engine_computes_without_disk(self, cache_dir):
        engine = ExperimentEngine(
            jobs=1, cache_dir=str(cache_dir), use_cache=False
        )
        ctx = small_context(cache_dir, engine)
        engine.prefetch(ctx, [RunRequest("NBody", "turbo")])
        assert ("NBody", "turbo") in ctx._runs
        assert not os.path.isdir(engine.cache.root) or not os.listdir(
            engine.cache.root
        )

    def test_jobs_must_be_positive(self, cache_dir):
        with pytest.raises(ValueError):
            ExperimentEngine(jobs=0, cache_dir=str(cache_dir))

    def test_stats_format_is_readable(self, engine, ctx):
        engine.prefetch(ctx, [RunRequest("NBody", "turbo")])
        text = engine.stats.format()
        assert "engine:" in text
        assert "cache:" in text


class TestParallelEngine:
    def test_jobs4_identical_to_jobs1(self, cache_dir, tmp_path):
        serial_engine = ExperimentEngine(jobs=1, cache_dir=str(cache_dir))
        serial_ctx = small_context(cache_dir, serial_engine)
        serial_engine.prefetch(serial_ctx, canonical_requests(serial_ctx))

        par_dir = tmp_path / "par-cache"
        par_engine = ExperimentEngine(jobs=4, cache_dir=str(par_dir))
        par_ctx = small_context(par_dir, par_engine)
        par_engine.prefetch(par_ctx, canonical_requests(par_ctx))

        assert par_engine.stats.parallel_computed > 0
        assert run_dicts(par_ctx) == run_dicts(serial_ctx)

    def test_worker_exception_surfaces_original_traceback(self, cache_dir):
        engine = ExperimentEngine(jobs=2, cache_dir=str(cache_dir))
        ctx = small_context(cache_dir, engine)
        bad = RunRequest(
            "NBody",
            "mpc_variant",
            (
                ("kwargs", (("no_such_manager_option", True),)),
                ("simulator", None),
                ("tag", "boom"),
            ),
        )
        with pytest.raises(EngineWorkerError) as excinfo:
            engine.prefetch(ctx, [RunRequest("NBody", "turbo"), bad])
        message = str(excinfo.value)
        assert "no_such_manager_option" in message  # the original error
        assert "Traceback" in message  # the worker's formatted traceback
        assert excinfo.value.request == bad


class TestPrefetchDedup:
    def test_duplicate_requests_computed_once(self, engine, ctx):
        request = RunRequest("NBody", "turbo")
        engine.prefetch(ctx, [request, request, RunRequest("NBody", "turbo")])
        assert engine.stats.computed == 1

    def test_unknown_variant_raises(self, engine, ctx):
        with pytest.raises(KeyError):
            engine.prefetch(ctx, [RunRequest("NBody", "warp_drive")])
