"""Shared fixtures for the observability test suite.

Instrumented runs use the same tiny oracle-backed setup as the runtime
suite (no Random Forest training), so the lane stays in tier-1 time
budgets.
"""

import pytest

from repro.core.manager import MPCPowerManager
from repro.ml.predictors import OraclePredictor
from repro.obs import make_instrumentation
from repro.sim.simulator import Simulator
from repro.sim.turbocore import TurboCorePolicy
from repro.workloads.app import Application, Category
from repro.workloads.kernel import KernelSpec, ScalingClass

COMPUTE = KernelSpec("c", ScalingClass.COMPUTE, 4.0, 0.1, parallel_fraction=0.99)
MEMORY = KernelSpec("m", ScalingClass.MEMORY, 0.5, 0.9, parallel_fraction=0.9)

#: Alternating compute/memory app used across the obs tests.
APP = Application(
    "alt", "obs", Category.IRREGULAR_REPEATING,
    kernels=(COMPUTE, MEMORY) * 4, pattern="(AB)4",
)


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def obs():
    return make_instrumentation()


def turbo_target(sim, app=APP):
    """The Turbo Core kernel throughput of ``app`` on ``sim``."""
    turbo = sim.run(app, TurboCorePolicy())
    return turbo.instructions / turbo.kernel_time_s


def make_manager(sim, app=APP, target=None, **kw):
    """An oracle-backed MPC manager targeting Turbo Core throughput."""
    if target is None:
        target = turbo_target(sim, app)
    return MPCPowerManager(
        target, OraclePredictor(sim.apu, app.unique_kernels),
        overhead_model=sim.overhead, **kw,
    )
