"""Exporter round-trips: JSONL, Prometheus text, summary, validation."""

import json

import pytest

from repro.obs.exporters import (
    JsonlTraceSink,
    format_summary,
    prometheus_text,
    read_jsonl,
    summarize_spans,
    validate_span,
    validate_trace_file,
    write_jsonl,
    write_prometheus,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer

pytestmark = pytest.mark.obs


def launch(app, policy, *, session="", time_s=1.0, overhead_s=0.0, **attrs):
    """A minimal launch-span dict in the exported shape."""
    attributes = {
        "session": session, "app": app, "policy": policy, "index": 0,
        "kernel": "k", "config": "[P5, NB0, DPM0, 2 CUs]",
        "fail_safe": False, "fallback": False,
        "time_s": time_s, "energy_j": 1.0,
        "overhead_time_s": overhead_s, "overhead_energy_j": 0.0,
        "observed_ips": 1e9, "observed_power_w": 40.0,
    }
    attributes.update(attrs)
    return {
        "schema": 1, "name": "launch", "start_s": 0.0,
        "end_s": time_s + overhead_s, "attributes": attributes,
    }


class TestJsonlRoundTrip:
    def test_write_then_read(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        spans = [launch("a", "MPC"), launch("a", "TurboCore")]
        assert write_jsonl(spans, path) == 2
        assert read_jsonl(path) == spans

    def test_write_accepts_span_objects(self, tmp_path):
        tracer = Tracer()
        tracer.end_span(tracer.start_span("launch", at=0.0), at=1.0)
        path = str(tmp_path / "trace.jsonl")
        write_jsonl(tracer.spans, path)
        assert read_jsonl(path)[0]["name"] == "launch"

    def test_lines_have_sorted_keys(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        write_jsonl([launch("a", "MPC")], path)
        line = open(path, encoding="utf-8").readline()
        parsed = json.loads(line)
        assert line == json.dumps(parsed, sort_keys=True) + "\n"

    def test_read_skips_blank_lines_and_raises_on_garbage(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"name": "launch"}\n\n', encoding="utf-8")
        assert len(read_jsonl(str(path))) == 1
        path.write_text("not json\n", encoding="utf-8")
        with pytest.raises(ValueError, match="invalid trace line"):
            read_jsonl(str(path))

    def test_streaming_sink(self, tmp_path):
        path = str(tmp_path / "stream.jsonl")
        with JsonlTraceSink(path) as sink:
            tracer = Tracer(sink=sink, keep=False)
            tracer.end_span(tracer.start_span("launch", at=0.0), at=1.0)
        assert read_jsonl(path)[0]["name"] == "launch"
        with pytest.raises(ValueError, match="already closed"):
            sink({"name": "late"})


class TestPrometheusText:
    def test_counter_gauge_exposition(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "help text").inc(2, mode="x")
        registry.gauge("g").set(1.5)
        text = prometheus_text(registry)
        assert "# HELP c_total help text" in text
        assert "# TYPE c_total counter" in text
        assert 'c_total{mode="x"} 2' in text
        assert "# TYPE g gauge" in text
        assert "g 1.5" in text

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h_seconds", buckets=(1.0, 2.0))
        for value in (0.5, 0.7, 1.5, 99.0):
            hist.observe(value)
        text = prometheus_text(registry)
        assert 'h_seconds_bucket{le="1"} 2' in text
        assert 'h_seconds_bucket{le="2"} 3' in text
        assert 'h_seconds_bucket{le="+Inf"} 4' in text
        assert "h_seconds_count 4" in text

    def test_label_escaping(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc(app='we"ird\\x')
        text = prometheus_text(registry)
        assert 'app="we\\"ird\\\\x"' in text

    def test_write_prometheus(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("c_total").inc()
        path = str(tmp_path / "metrics.prom")
        assert write_prometheus(registry, path) == path
        assert "c_total 1" in open(path, encoding="utf-8").read()


class TestPrometheusFormatLock:
    """The ``promtool check metrics`` exposition contract, pinned.

    Every family gets exactly one ``# HELP``/``# TYPE`` pair with HELP
    first, histograms always close with a cumulative ``+Inf`` bucket
    equal to ``_count``, and help text is escaped — so the output can
    be scraped verbatim.
    """

    def _registry(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "counter help").inc(mode="a")
        registry.counter("c_total", "counter help").inc(mode="b")
        registry.gauge("g")  # no help: HELP must fall back to the name
        hist = registry.histogram("h_seconds", "hist help", buckets=(1.0,))
        hist.observe(0.5, op="x")
        hist.observe(9.0, op="x")
        return registry

    def test_one_help_and_type_per_family_help_first(self):
        lines = prometheus_text(self._registry()).splitlines()
        for family in ("c_total", "g", "h_seconds"):
            help_lines = [i for i, l in enumerate(lines)
                          if l.startswith(f"# HELP {family} ")]
            type_lines = [i for i, l in enumerate(lines)
                          if l.startswith(f"# TYPE {family} ")]
            assert len(help_lines) == len(type_lines) == 1
            assert help_lines[0] + 1 == type_lines[0]

    def test_help_falls_back_to_metric_name(self):
        assert "# HELP g g" in prometheus_text(self._registry())

    def test_inf_bucket_equals_count(self):
        text = prometheus_text(self._registry())
        assert 'h_seconds_bucket{op="x",le="+Inf"} 2' in text
        assert 'h_seconds_count{op="x"} 2' in text

    def test_help_newlines_and_backslashes_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "line one\nline \\two").inc()
        text = prometheus_text(registry)
        assert "# HELP c_total line one\\nline \\\\two" in text

    def test_duplicate_family_in_snapshot_rejected(self):
        snapshot = MetricsRegistry().snapshot()
        entry = {"name": "dup_total", "kind": "counter",
                 "help": "", "series": []}
        snapshot["metrics"] = [entry, dict(entry)]
        with pytest.raises(ValueError, match="duplicate metric family"):
            prometheus_text(snapshot)

    def test_health_families_export_cleanly(self):
        from repro.obs.health import HealthMonitor

        registry = MetricsRegistry()
        monitor = HealthMonitor(registry)
        monitor.observe_launch({
            "session": "s", "index": 0, "kernel": "k", "mode": "mpc",
            "fail_safe": False, "fallback": False,
            "predicted_ips": 110.0, "observed_ips": 100.0,
            "predicted_power_w": 50.0, "observed_power_w": 50.0,
        })
        text = prometheus_text(registry)
        assert "# TYPE repro_health_rel_error histogram" in text
        assert ('repro_health_rel_error_bucket{kernel="k",quantity="ips",'
                'session="s",le="+Inf"} 1') in text
        assert "# HELP repro_health_state " in text


class TestSummarize:
    def test_overhead_fraction_and_vs_turbo(self):
        spans = (
            [launch("a", "TurboCore", time_s=1.0)] * 4
            + [launch("a", "MPC", time_s=0.9, overhead_s=0.1,
                      model_evaluations=10, horizon=4)] * 4
        )
        summary = summarize_spans(spans)
        by_policy = {g["policy"]: g for g in summary["groups"]}
        mpc = by_policy["MPC"]
        # fig14 alpha accounting: overhead over its own total ...
        assert mpc["overhead_fraction"] == pytest.approx(0.4 / 4.0)
        # ... and overhead charged against the Turbo baseline's time.
        assert mpc["overhead_vs_turbo_pct"] == pytest.approx(100 * 0.4 / 4.0)
        # The baseline is charged against itself: exactly zero.
        assert by_policy["TurboCore"]["overhead_vs_turbo_pct"] == pytest.approx(0.0)
        assert mpc["mean_horizon"] == pytest.approx(4.0)
        assert mpc["model_evaluations"] == 40
        assert summary["launches"] == 8

    def test_quality_counters(self):
        spans = [
            launch("a", "MPC", fail_safe=True, pattern_hit=False),
            launch("a", "MPC", fallback=True, error="ValueError('x')"),
            launch("a", "MPC", tdp_throttled=True, hill_climb_steps=3.0),
        ]
        (group,) = summarize_spans(spans)["groups"]
        assert group["fail_safe"] == 1
        assert group["fallbacks"] == 1
        assert group["pattern_misses"] == 1
        assert group["tdp_throttled"] == 1
        assert group["hill_climb_steps"] == 3
        assert group["errors"] == ["ValueError('x')"]

    def test_non_launch_spans_ignored(self):
        spans = [launch("a", "MPC"), {"name": "other", "attributes": {}}]
        assert summarize_spans(spans)["launches"] == 1

    def test_energy_includes_overhead_energy(self):
        spans = [launch("a", "MPC", overhead_energy_j=0.5)]
        (group,) = summarize_spans(spans)["groups"]
        assert group["energy_j"] == pytest.approx(1.5)

    def test_format_summary_renders_groups_and_faults(self):
        spans = [
            launch("a", "TurboCore"),
            launch("a", "MPC", error="RuntimeError('boom')"),
        ]
        text = format_summary(summarize_spans(spans))
        assert "trace summary: 2 launch span(s)" in text
        assert "TurboCore" in text and "MPC" in text
        assert "RuntimeError('boom')" in text

    def test_roundtrip_through_jsonl(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        spans = [launch("a", "TurboCore"), launch("a", "MPC", overhead_s=0.25)]
        write_jsonl(spans, path)
        summary = summarize_spans(read_jsonl(path))
        assert summary == summarize_spans(spans)


SCHEMA = {
    "type": "object",
    "required": ["name", "attributes"],
    "properties": {
        "name": {"type": "string"},
        "attributes": {
            "type": "object",
            "required": ["app"],
            "properties": {"app": {"type": "string"},
                           "index": {"type": "integer"}},
        },
    },
}


class TestValidation:
    def test_valid_span(self):
        assert validate_span(launch("a", "MPC"), SCHEMA) == []

    def test_missing_required_key(self):
        span = launch("a", "MPC")
        del span["attributes"]["app"]
        problems = validate_span(span, SCHEMA)
        assert problems == ["$.attributes: missing required key 'app'"]

    def test_type_mismatch_reports_path(self):
        span = launch("a", "MPC", index="not-an-int")
        problems = validate_span(span, SCHEMA)
        assert problems == [
            "$.attributes.index: expected integer, got str"
        ]

    def test_bool_is_not_an_integer(self):
        span = launch("a", "MPC", index=True)
        assert validate_span(span, SCHEMA)

    def test_validate_trace_file(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        good, bad = launch("a", "MPC"), launch("b", "MPC")
        del bad["attributes"]["app"]
        write_jsonl([good, bad], path)
        problems = validate_trace_file(path, SCHEMA)
        assert problems == ["span[1].attributes: missing required key 'app'"]

    def test_checked_in_schema_accepts_real_trace(self, tmp_path, sim):
        import pathlib

        from repro.obs import make_instrumentation
        from repro.sim.turbocore import TurboCorePolicy
        from tests.obs.conftest import APP

        obs = make_instrumentation()
        sim.run(APP, TurboCorePolicy(), obs=obs)
        path = str(tmp_path / "trace.jsonl")
        write_jsonl(obs.tracer.spans, path)
        schema_path = (
            pathlib.Path(__file__).resolve().parents[2]
            / "docs" / "trace.schema.json"
        )
        schema = json.loads(schema_path.read_text(encoding="utf-8"))
        assert validate_trace_file(path, schema) == []
