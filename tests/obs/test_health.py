"""Model-health monitoring: detectors, gating, state machine, wiring.

Unit tests drive :class:`HealthMonitor` with synthetic launch
attributes; the end-to-end tests replay generated adversarial scenarios
and assert the documented drift contracts (mispredict-cascade and
input-storm trip within K decisions, phase-shift stays HEALTHY because
the fail-safe contains it — docs/TRACES.md).
"""

import pytest

from repro.obs import make_instrumentation
from repro.obs.health import (
    DEFAULT_HEALTH_CONFIG,
    ERROR_BUCKETS,
    HealthConfig,
    HealthMonitor,
    HealthState,
    MeanShift,
    NULL_HEALTH,
    NullHealthMonitor,
    PageHinkley,
    format_health_report,
    relative_errors,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer
from repro.runtime.session import invocation_pair
from repro.workloads.traces.replay import TraceReplayer
from repro.workloads.traces.scenarios import ScenarioGenerator

from .conftest import APP, make_manager

pytestmark = pytest.mark.obs


def launch(index=0, mode="mpc", fail_safe=False, fallback=False,
           session="s", kernel="k", error=0.0, **extra):
    """Launch-span attributes with a chosen relative IPS/power error."""
    observed = 100.0
    attrs = {
        "session": session, "app": "a", "policy": "MPC", "index": index,
        "kernel": kernel, "config": "c", "fail_safe": fail_safe,
        "fallback": fallback, "mode": mode,
        "predicted_ips": observed * (1.0 + error),
        "observed_ips": observed,
        "predicted_power_w": observed * (1.0 + error),
        "observed_power_w": observed,
    }
    attrs.update(extra)
    return attrs


class TestDetectors:
    def test_page_hinkley_fires_on_upward_shift(self):
        ph = PageHinkley(delta=0.05, threshold=2.0)
        assert not any(ph.update(0.05) for _ in range(50))
        fired = [ph.update(1.5) for _ in range(10)]
        assert any(fired)

    def test_page_hinkley_stationary_stream_never_fires(self):
        ph = PageHinkley(delta=0.05, threshold=2.0)
        assert not any(ph.update(0.3) for _ in range(500))

    def test_page_hinkley_rearms_after_firing(self):
        ph = PageHinkley(delta=0.05, threshold=2.0)
        for _ in range(20):
            ph.update(0.02)
        assert any(ph.update(2.0) for _ in range(5))
        # Reset on fire: a second drift fires again from scratch.
        for _ in range(20):
            ph.update(0.02)
        assert any(ph.update(2.0) for _ in range(5))

    def test_mean_shift_needs_a_full_double_window(self):
        shift = MeanShift(window=4, threshold=0.35)
        values = [0.0] * 4 + [1.0] * 4
        fired = [shift.update(v) for v in values]
        assert fired == [False] * 7 + [True]

    def test_mean_shift_stationary_stream_never_fires(self):
        shift = MeanShift(window=4, threshold=0.35)
        assert not any(shift.update(0.5) for _ in range(100))

    def test_mean_shift_clears_after_firing(self):
        shift = MeanShift(window=2, threshold=0.35)
        for v in (0.0, 0.0, 1.0, 1.0):
            last = shift.update(v)
        assert last and not shift.values


class TestConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        {"window": 0},
        {"ewma_alpha": 0.0},
        {"ewma_alpha": 1.5},
        {"degraded_error": 0.0},
        {"degraded_error": 2.0, "untrusted_error": 1.0},
        {"recovery_samples": 0},
        {"warmup_samples": 0},
        {"ph_delta": -0.1},
        {"ph_threshold": 0.0},
        {"shift_window": 0},
        {"shift_threshold": 0.0},
        {"skip_cascade": 0},
    ])
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            HealthConfig(**kwargs)

    def test_default_config_is_shared_and_frozen(self):
        assert HealthMonitor().config is DEFAULT_HEALTH_CONFIG
        with pytest.raises(AttributeError):
            DEFAULT_HEALTH_CONFIG.window = 1


class TestRelativeErrors:
    def test_both_quantities(self):
        errors = relative_errors(launch(error=0.5))
        assert errors["ips"] == pytest.approx(0.5)
        assert errors["power"] == pytest.approx(0.5)

    def test_missing_prediction_gives_none(self):
        attrs = launch()
        del attrs["predicted_ips"], attrs["predicted_power_w"]
        assert relative_errors(attrs) is None

    def test_zero_observed_is_skipped(self):
        attrs = launch(observed_ips=0.0)
        assert set(relative_errors(attrs)) == {"power"}


class TestSampleGating:
    def test_profiling_ppk_is_excluded_entirely(self):
        monitor = HealthMonitor()
        monitor.observe_launch(launch(mode="ppk", error=5.0))
        health = monitor.sessions["s"]
        assert (health.decisions, health.samples) == (1, 0)

    def test_overflow_ppk_feeds_ledger_but_not_detectors(self):
        monitor = HealthMonitor()
        monitor.observe_launch(
            launch(mode="ppk", error=5.0, pattern_hit=False)
        )
        health = monitor.sessions["s"]
        assert (health.samples, health.trusted_samples) == (1, 0)
        assert health.events["pattern_miss"] == 1

    def test_fail_safe_and_fallback_are_untrusted(self):
        monitor = HealthMonitor()
        monitor.observe_launch(launch(fail_safe=True, error=5.0))
        monitor.observe_launch(launch(fallback=True, error=5.0))
        health = monitor.sessions["s"]
        assert (health.samples, health.trusted_samples) == (2, 0)
        assert health.events == {"fail_safe": 1, "fallback": 1}

    def test_clean_mpc_sample_is_trusted(self):
        monitor = HealthMonitor()
        monitor.observe_launch(launch(error=0.1))
        health = monitor.sessions["s"]
        assert (health.samples, health.trusted_samples) == (1, 1)
        assert health.ewma["ips"] == pytest.approx(0.1)


class TestBudgetCollapse:
    def _skip(self, index):
        return launch(index=index, mode="skip", fail_safe=True,
                      budget_exhausted=True)

    def test_cascade_of_skips_is_drift(self):
        monitor = HealthMonitor()
        for index in range(1, 4):
            monitor.observe_launch(self._skip(index))
        health = monitor.sessions["s"]
        assert health.drift_events == 1
        assert health.first_drift_decision == 3
        assert health.state is HealthState.DEGRADED

    def test_streak_broken_by_non_skip_decision(self):
        monitor = HealthMonitor()
        monitor.observe_launch(self._skip(1))
        monitor.observe_launch(self._skip(2))
        monitor.observe_launch(launch(index=3))
        monitor.observe_launch(self._skip(4))
        assert monitor.sessions["s"].drift_events == 0

    def test_streak_resets_at_run_boundary(self):
        monitor = HealthMonitor()
        monitor.observe_launch(self._skip(5))
        monitor.observe_launch(self._skip(6))
        monitor.observe_launch(self._skip(0))  # new invocation
        assert monitor.sessions["s"].drift_events == 0

    def test_second_cascade_escalates_to_untrusted(self):
        monitor = HealthMonitor()
        for index in range(1, 7):
            monitor.observe_launch(self._skip(index))
        health = monitor.sessions["s"]
        assert health.drift_events == 2
        assert health.state is HealthState.UNTRUSTED
        assert [t["detector"] for t in health.transitions] == (
            ["budget-collapse", "budget-collapse"]
        )


class TestWarmupAndStateMachine:
    CONFIG = HealthConfig(warmup_samples=4, recovery_samples=2)

    def test_alarms_disarmed_during_warmup(self):
        monitor = HealthMonitor(config=self.CONFIG)
        for _ in range(3):
            monitor.observe_launch(launch(error=5.0))
        health = monitor.sessions["s"]
        assert health.state is HealthState.HEALTHY
        assert health.drift_events == 0

    def test_ewma_floor_escalates_after_warmup(self):
        monitor = HealthMonitor(config=self.CONFIG)
        for _ in range(4):
            monitor.observe_launch(launch(error=5.0))
        health = monitor.sessions["s"]
        assert health.state is HealthState.UNTRUSTED
        assert any(t["reason"] == "ewma" for t in health.transitions)

    def test_recovery_de_escalates_one_level_per_streak(self):
        monitor = HealthMonitor(config=self.CONFIG)
        for _ in range(4):
            monitor.observe_launch(launch(error=5.0))
        for _ in range(2 * self.CONFIG.recovery_samples + 8):
            monitor.observe_launch(launch(error=0.0))
        health = monitor.sessions["s"]
        assert health.state is HealthState.HEALTHY
        reasons = [t["reason"] for t in health.transitions]
        assert reasons.count("recovery") == 2

    def test_page_hinkley_drift_after_warmup(self):
        monitor = HealthMonitor(config=self.CONFIG)
        for _ in range(10):
            monitor.observe_launch(launch(error=0.01))
        for _ in range(10):
            monitor.observe_launch(launch(error=1.2))
        health = monitor.sessions["s"]
        assert health.drift_events >= 1
        detectors = {
            t.get("detector") for t in health.transitions if "detector" in t
        }
        assert any(d.startswith(("page-hinkley", "mean-shift"))
                   for d in detectors)


class TestMetricsAndSpans:
    def test_registry_series_for_one_trusted_sample(self):
        registry = MetricsRegistry()
        monitor = HealthMonitor(registry)
        monitor.observe_launch(launch(error=0.1))
        assert registry.counter("repro_health_decisions_total").value(
            session="s") == 1.0
        assert registry.counter("repro_health_samples_total").value(
            session="s", trusted="yes") == 1.0
        assert registry.gauge("repro_health_state").value(session="s") == 0.0
        assert registry.gauge("repro_health_ewma").value(
            session="s", quantity="ips") == pytest.approx(0.1)

    def test_transition_emits_health_span(self):
        tracer = Tracer()
        config = HealthConfig(skip_cascade=2)
        monitor = HealthMonitor(tracer=tracer, config=config)
        for index in (1, 2):
            monitor.observe_launch(
                launch(index=index, mode="skip", fail_safe=True), at=3.5
            )
        assert len(tracer.spans) == 1
        span = tracer.spans[0]
        assert span["name"] == "health"
        assert span["start_s"] == span["end_s"] == 3.5
        attrs = span["attributes"]
        assert attrs["from_state"] == "healthy"
        assert attrs["to_state"] == "degraded"
        assert attrs["detector"] == "budget-collapse"
        assert attrs["drift_events"] == 1

    def test_observe_span_filters_non_launch_payloads(self):
        monitor = HealthMonitor()
        monitor.observe_span({"name": "health", "attributes": {"x": 1}})
        monitor.observe_span({"name": "launch"})
        assert monitor.sessions == {}
        monitor.observe_span(
            {"name": "launch", "end_s": 1.0, "attributes": launch()}
        )
        assert monitor.sessions["s"].decisions == 1


class TestNullMonitor:
    def test_null_monitor_is_inert(self):
        assert NULL_HEALTH.enabled is False
        assert isinstance(NULL_HEALTH, NullHealthMonitor)
        NULL_HEALTH.observe_launch(launch(error=9.0))
        NULL_HEALTH.observe_span({"name": "launch"})
        assert NULL_HEALTH.drift_events() == 0
        assert NULL_HEALTH.first_drift_decision() == float("inf")
        assert NULL_HEALTH.final_state() == 0
        assert NULL_HEALTH.transitions_count() == 0
        assert NULL_HEALTH.report()["sessions"] == {}

    def test_noop_instrumentation_has_null_health(self):
        from repro.obs import NOOP

        assert NOOP.health is NULL_HEALTH
        assert NOOP.enabled is False
        # Default instrumentation keeps health off unless asked for.
        assert make_instrumentation().health is NULL_HEALTH
        assert make_instrumentation(health=True).health.enabled


class TestLiveSession:
    def test_healthy_session_stays_healthy(self, sim):
        obs = make_instrumentation(health=True)
        manager = make_manager(sim, obs=obs)
        invocation_pair(sim.session(manager, obs=obs), APP)
        report = obs.health.report()["sessions"]
        (health,) = report.values()
        assert health["state"] == "HEALTHY"
        assert health["drift_events"] == 0
        assert health["decisions"] == 2 * len(APP)
        # The oracle predictor is exact: every trusted error is ~0.
        assert health["ewma"]["ips"] == pytest.approx(0.0, abs=1e-9)

    def test_health_report_formats(self, sim):
        obs = make_instrumentation(health=True)
        manager = make_manager(sim, obs=obs)
        invocation_pair(sim.session(manager, obs=obs), APP)
        text = format_health_report(obs.health.report())
        assert "model health" in text and "HEALTHY" in text


def _health_worker_snapshot(worker_id):
    """One engine worker's health registry (module-level: picklable)."""
    registry = MetricsRegistry()
    monitor = HealthMonitor(registry)
    for index in range(worker_id + 1):
        monitor.observe_launch(
            launch(index=index, session=f"w{worker_id}", error=0.1)
        )
    return registry.snapshot()


class TestWorkerMerge:
    """Health series survive the worker→parent snapshot/merge path."""

    def test_process_pool_merge_accumulates_health_series(self):
        import concurrent.futures

        parent = MetricsRegistry()
        HealthMonitor(parent)  # parent-side families pre-registered
        with concurrent.futures.ProcessPoolExecutor(max_workers=2) as pool:
            for snap in pool.map(_health_worker_snapshot, range(3)):
                parent.merge(snap)
        assert parent.counter("repro_health_decisions_total").total() == 6.0
        error = parent.histogram(
            "repro_health_rel_error", buckets=ERROR_BUCKETS
        )
        observations = sum(s["count"] for s in error.series().values())
        assert observations == 12  # 6 samples x 2 quantities
        assert parent.sources == 4  # parent + 3 workers

    def test_merged_histogram_equals_serial_ingestion(self):
        serial = MetricsRegistry()
        monitor = HealthMonitor(serial)
        merged = MetricsRegistry()
        HealthMonitor(merged)
        for worker_id in range(3):
            merged.merge(_health_worker_snapshot(worker_id))
            for index in range(worker_id + 1):
                monitor.observe_launch(
                    launch(index=index, session=f"w{worker_id}", error=0.1)
                )
        assert (
            serial.snapshot()["metrics"] == merged.snapshot()["metrics"]
        )

    def test_batched_step_groups_match_streaming_health(self):
        # step_batch groups many sessions per sweep; its transparency
        # contract extends to the health layer byte-for-byte.
        trace = ScenarioGenerator(seed=0).generate("mispredict-cascade")
        streaming = TraceReplayer(trace, check=False).replay()
        batched = TraceReplayer(trace, check=False, batched=True).replay()
        assert (
            batched.health.report() == streaming.health.report()
        )


class TestScenarioContracts:
    """The documented end-to-end drift contracts (K in docs/TRACES.md)."""

    @pytest.fixture(scope="class")
    def replays(self):
        generator = ScenarioGenerator(seed=0)
        return {
            family: TraceReplayer(generator.generate(family)).replay()
            for family in (
                "mispredict-cascade", "input-storm", "phase-shift"
            )
        }

    def test_mispredict_cascade_trips_within_k(self, replays):
        health = replays["mispredict-cascade"].health
        assert health.drift_events("mispredict-cascade") >= 1
        assert health.first_drift_decision("mispredict-cascade") <= 15
        assert health.final_state("mispredict-cascade") >= 1

    def test_input_storm_trips_within_k(self, replays):
        health = replays["input-storm"].health
        assert health.drift_events("input-storm") >= 1
        assert health.first_drift_decision("input-storm") <= 12

    def test_phase_shift_is_contained_by_the_fail_safe(self, replays):
        health = replays["phase-shift"].health
        assert health.drift_events("phase-shift") == 0
        assert health.final_state("phase-shift") == 0

    def test_drift_counter_metric_exported(self, replays):
        registry = replays["mispredict-cascade"].registry
        total = registry.counter("repro_health_drift_events_total").total()
        assert total >= 1
