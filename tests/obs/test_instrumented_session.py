"""Instrumented runs: span content, counters, the fault ring buffer.

These tests drive real sessions (oracle predictor, tiny app) and assert
on what the observability layer reports about them — including that
enabling it changes no simulated number.
"""

import pytest

from repro.core.policies import FixedConfigPolicy
from repro.hardware.config import FAILSAFE_CONFIG
from repro.obs import (
    make_instrumentation,
    publish_cache_stats,
    publish_session_stats,
)
from repro.runtime.session import (
    RECENT_ERRORS_LIMIT,
    SessionStats,
    invocation_pair,
)
from repro.sim.turbocore import TurboCorePolicy

from .conftest import APP, make_manager

pytestmark = pytest.mark.obs


class _RaisingObserver(FixedConfigPolicy):
    """A policy whose telemetry path always fails."""

    def observe(self, observation):
        raise RuntimeError("telemetry lost")


class TestLaunchSpans:
    def test_one_span_per_launch_with_identity(self, sim, obs):
        run = sim.run(APP, TurboCorePolicy(), obs=obs)
        spans = obs.tracer.spans
        assert len(spans) == len(run.launches) == len(APP)
        for index, span in enumerate(spans):
            attrs = span["attributes"]
            assert span["name"] == "launch"
            assert attrs["app"] == APP.name
            assert attrs["policy"] == "TurboCore"
            assert attrs["index"] == index
            assert attrs["kernel"] in ("c", "m")
            assert attrs["observed_ips"] > 0
            assert attrs["observed_power_w"] > 0

    def test_spans_are_stamped_with_simulated_time(self, sim, obs):
        run = sim.run(APP, TurboCorePolicy(), obs=obs)
        spans = obs.tracer.spans
        # End of the last span == the session's total simulated time,
        # and starts/ends are monotone — no wall clock involved.
        total = run.kernel_time_s + run.overhead_time_s
        assert spans[-1]["end_s"] == pytest.approx(total)
        ends = [span["end_s"] for span in spans]
        assert ends == sorted(ends)
        for span in spans:
            assert span["start_s"] <= span["end_s"]

    def test_mpc_decision_internals_on_span(self, sim, obs):
        manager = make_manager(sim, obs=obs)
        _, steady = invocation_pair(sim.session(manager, obs=obs), APP)
        spans = obs.tracer.spans
        mpc_spans = [s for s in spans if s["attributes"].get("mode") == "mpc"]
        assert mpc_spans, "steady-state invocation produced no MPC spans"
        for span in mpc_spans:
            attrs = span["attributes"]
            assert attrs["policy"] == "MPC"
            assert attrs["predicted_ips"] > 0
            assert attrs["predicted_power_w"] > 0
            assert attrs["horizon"] >= 1
            assert attrs["horizon_cap"] >= attrs["horizon"]
            assert "horizon_budget_s" in attrs
            assert "pattern_hit" in attrs
            assert "hill_climb_steps" in attrs
            assert attrs["model_evaluations"] > 0
        # The profiling invocation decides through the PPK path.
        assert any(s["attributes"].get("mode") == "ppk" for s in spans)

    def test_predictions_close_to_observations_with_oracle(self, sim, obs):
        manager = make_manager(sim, obs=obs)
        invocation_pair(sim.session(manager, obs=obs), APP)
        # Only MPC-mode decisions predict the *upcoming* kernel (PPK
        # optimizes from the previous kernel's counters, so on an
        # alternating app its predictions lag a launch — exactly the
        # mispredict the trace is meant to expose).
        checked = 0
        for span in obs.tracer.spans:
            attrs = span["attributes"]
            if attrs.get("mode") != "mpc" or "predicted_ips" not in attrs:
                continue
            # Oracle predictor: the prediction is the ground truth.
            assert attrs["predicted_ips"] == pytest.approx(
                attrs["observed_ips"], rel=1e-6
            )
            checked += 1
        assert checked > 0

    def test_enabling_obs_does_not_change_results(self, sim):
        plain = sim.run(APP, TurboCorePolicy())
        traced = sim.run(APP, TurboCorePolicy(), obs=make_instrumentation())
        assert traced.kernel_time_s == plain.kernel_time_s
        assert traced.energy_j == plain.energy_j
        assert traced.launches == plain.launches


class TestRuntimeCounters:
    def test_launch_and_run_counters(self, sim, obs):
        sim.run(APP, TurboCorePolicy(), obs=obs)
        registry = obs.registry
        assert registry.counter("repro_runtime_launches_total").total() == len(APP)
        assert registry.counter("repro_runtime_runs_total").total() == 1
        hist = registry.histogram("repro_runtime_kernel_seconds")
        assert hist.count(session="") == len(APP)

    def test_mpc_and_optimizer_counters(self, sim, obs):
        manager = make_manager(sim, obs=obs)
        invocation_pair(sim.session(manager, obs=obs), APP)
        registry = obs.registry
        decisions = registry.counter("repro_mpc_decisions_total")
        assert decisions.value(mode="ppk") > 0
        assert decisions.value(mode="mpc") > 0
        assert registry.counter("repro_mpc_model_evaluations_total").total() > 0
        assert registry.counter("repro_optimizer_searches_total").total() > 0
        assert registry.counter("repro_optimizer_evaluations_total").total() > 0
        transitions = registry.counter("repro_mpc_lifecycle_transitions_total")
        assert transitions.value(to="frozen") == 1
        assert transitions.value(to="mpc") == 1
        assert registry.counter("repro_horizon_requests_total").total() > 0
        assert registry.histogram(
            "repro_horizon_length",
            buckets=(0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0),
        ).count() > 0


class TestFaultRingBuffer:
    def test_observe_faults_recorded_and_traced(self, sim, obs):
        policy = _RaisingObserver(FAILSAFE_CONFIG)
        session = sim.session(policy, isolate_faults=True, obs=obs)
        session.run(APP)
        stats = session.stats
        assert stats.observe_failures == len(APP)
        assert len(stats.recent_errors) == min(len(APP), RECENT_ERRORS_LIMIT)
        assert all("telemetry lost" in err for err in stats.recent_errors)
        assert "telemetry lost" in stats.format()
        faults = obs.registry.counter("repro_runtime_faults_total")
        assert faults.value(session="", phase="observe") == len(APP)
        errored = [
            s for s in obs.tracer.spans if "error" in s["attributes"]
        ]
        assert len(errored) == len(APP)
        assert "telemetry lost" in errored[0]["attributes"]["error"]

    def test_ring_buffer_is_bounded(self):
        stats = SessionStats()
        for i in range(RECENT_ERRORS_LIMIT + 5):
            stats.record_error(ValueError(f"e{i}"))
        assert len(stats.recent_errors) == RECENT_ERRORS_LIMIT
        assert stats.recent_errors[-1] == repr(
            ValueError(f"e{RECENT_ERRORS_LIMIT + 4}")
        )

    def test_ring_buffer_limit_is_configurable(self):
        stats = SessionStats(recent_errors_limit=3)
        for i in range(10):
            stats.record_error(ValueError(f"e{i}"))
        assert stats.recent_errors == [
            repr(ValueError(f"e{i}")) for i in (7, 8, 9)
        ]
        assert "recent faults (last 3)" in stats.format()

    def test_merge_respects_target_limit(self):
        a = SessionStats(recent_errors_limit=2)
        b = SessionStats()
        for i in range(5):
            b.record_error(ValueError(f"e{i}"))
        a.merge(b)
        assert a.recent_errors == [
            repr(ValueError("e3")), repr(ValueError("e4"))
        ]

    def test_session_runtime_forwards_limit(self, sim, obs):
        policy = _RaisingObserver(FAILSAFE_CONFIG)
        session = sim.session(
            policy, isolate_faults=True, obs=obs, recent_errors_limit=2
        )
        session.run(APP)
        assert session.stats.recent_errors_limit == 2
        assert len(session.stats.recent_errors) == 2
        assert "recent faults (last 2)" in session.stats.format()

    def test_session_runtime_rejects_non_positive_limit(self, sim):
        with pytest.raises(ValueError):
            sim.session(TurboCorePolicy(), recent_errors_limit=0)


class TestStatsProvenance:
    def test_session_stats_merge_tracks_sources(self):
        a = SessionStats(runs=1, launches=4, sources=1)
        a.record_error(ValueError("a"))
        b = SessionStats(runs=2, launches=6, sources=1)
        b.record_error(ValueError("b"))
        a.merge(b)
        assert a.runs == 3 and a.launches == 10
        assert a.sources == 2
        assert a.recent_errors == [repr(ValueError("a")), repr(ValueError("b"))]
        assert "[merged from 2 session(s)]" in a.format()

    def test_cache_stats_merge_tracks_sources(self):
        from repro.engine.cache import CacheStats

        a = CacheStats(hits=1)
        b = CacheStats(misses=2)
        a.merge(b)
        assert a.sources == 2
        assert "merged from 2 caches" in a.format()

    def test_publish_bridges_export_gauges(self, obs):
        from repro.engine.cache import CacheStats

        publish_session_stats(
            obs.registry, SessionStats(runs=2, launches=8), session="s1"
        )
        publish_cache_stats(obs.registry, CacheStats(hits=3), scope="engine")
        assert obs.registry.gauge("repro_session_launches").value(session="s1") == 8
        assert obs.registry.gauge("repro_session_sources").value(session="s1") == 1
        assert obs.registry.gauge("repro_cache_hits").value(scope="engine") == 3


class TestSessionManagerAggregation:
    def test_aggregate_and_publish(self, obs):
        from repro.runtime.manager import SessionManager

        manager = SessionManager(obs=obs)
        manager.add_session("s1", TurboCorePolicy())
        manager.add_session("s2", TurboCorePolicy())
        from repro.runtime.events import launch_events

        for sid in ("s1", "s2"):
            for event in launch_events(APP, sid):
                manager.dispatch(event)
        total = manager.aggregate_stats()
        assert total.launches == 2 * len(APP)
        assert total.sources == 2
        manager.publish_stats()
        gauge = obs.registry.gauge("repro_session_launches")
        assert gauge.value(session="s1") == len(APP)
        assert gauge.value(session="_aggregate") == 2 * len(APP)
