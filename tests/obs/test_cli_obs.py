"""CLI surface: --trace-out/--metrics-out, repro obs, logging setup."""

import logging

import pytest

from repro.cli import build_parser, main

pytestmark = pytest.mark.obs


class TestParser:
    def test_run_accepts_obs_flags(self):
        args = build_parser().parse_args(
            ["run", "kmeans", "--trace-out", "t.jsonl",
             "--metrics-out", "m.prom"]
        )
        assert args.trace_out == "t.jsonl"
        assert args.metrics_out == "m.prom"

    def test_experiments_accepts_obs_flags(self):
        args = build_parser().parse_args(
            ["experiments", "fig14", "--trace-out", "t.jsonl"]
        )
        assert args.trace_out == "t.jsonl"
        assert args.metrics_out is None

    def test_obs_subcommands(self):
        args = build_parser().parse_args(["obs", "summarize", "t.jsonl"])
        assert (args.obs_command, args.trace) == ("summarize", "t.jsonl")
        args = build_parser().parse_args(["obs", "validate", "t.jsonl"])
        assert args.schema == "docs/trace.schema.json"

    def test_global_log_level(self):
        args = build_parser().parse_args(["--log-level", "debug", "list"])
        assert args.log_level == "debug"


class TestObsCommands:
    def _trace(self, tmp_path, spans):
        from repro.obs.exporters import write_jsonl

        path = str(tmp_path / "trace.jsonl")
        write_jsonl(spans, path)
        return path

    def _span(self, **attrs):
        attributes = {
            "session": "", "app": "a", "policy": "MPC", "index": 0,
            "kernel": "k", "config": "c", "fail_safe": False,
            "fallback": False, "time_s": 1.0, "energy_j": 1.0,
            "overhead_time_s": 0.0, "overhead_energy_j": 0.0,
            "observed_ips": 1.0, "observed_power_w": 1.0,
        }
        attributes.update(attrs)
        return {"schema": 1, "name": "launch", "start_s": 0.0,
                "end_s": 1.0, "attributes": attributes}

    def test_summarize(self, tmp_path, capsys):
        path = self._trace(tmp_path, [self._span()])
        assert main(["obs", "summarize", path]) == 0
        out = capsys.readouterr().out
        assert "trace summary: 1 launch span(s)" in out
        assert "MPC" in out

    def test_validate_ok(self, tmp_path, capsys):
        path = self._trace(tmp_path, [self._span()])
        assert main(["obs", "validate", path]) == 0
        assert "all spans valid" in capsys.readouterr().out

    def test_validate_failure_exits_nonzero(self, tmp_path, capsys):
        bad = self._span()
        del bad["attributes"]["config"]
        path = self._trace(tmp_path, [bad])
        assert main(["obs", "validate", path]) == 1
        out = capsys.readouterr().out
        assert "missing required key 'config'" in out
        assert "1 invalid spans" in out


class TestRunWithTracing:
    def test_run_writes_trace_and_metrics(self, tmp_path, capsys):
        from repro.obs.exporters import read_jsonl

        trace = str(tmp_path / "t.jsonl")
        metrics = str(tmp_path / "m.prom")
        code = main(
            ["run", "kmeans", "--policy", "turbo",
             "--trace-out", trace, "--metrics-out", metrics]
        )
        assert code == 0
        spans = read_jsonl(trace)
        assert spans and all(s["name"] == "launch" for s in spans)
        text = open(metrics, encoding="utf-8").read()
        assert "repro_runtime_launches_total" in text
        out = capsys.readouterr().out
        assert f"wrote {len(spans)} spans to {trace}" in out

    def test_run_then_summarize_round_trip(self, tmp_path, capsys):
        trace = str(tmp_path / "t.jsonl")
        assert main(["run", "kmeans", "--policy", "turbo",
                     "--trace-out", trace]) == 0
        capsys.readouterr()
        assert main(["obs", "summarize", trace]) == 0
        assert "TurboCore" in capsys.readouterr().out


class TestLogging:
    def test_library_installs_null_handler(self):
        import repro  # noqa: F401

        handlers = logging.getLogger("repro").handlers
        assert any(isinstance(h, logging.NullHandler) for h in handlers)

    def test_runner_has_library_logger(self):
        from repro.experiments.runner import logger

        assert logger.name == "repro.experiments.runner"
