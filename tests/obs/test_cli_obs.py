"""CLI surface: --trace-out/--metrics-out, repro obs, logging setup."""

import logging

import pytest

from repro.cli import build_parser, main

pytestmark = pytest.mark.obs


class TestParser:
    def test_run_accepts_obs_flags(self):
        args = build_parser().parse_args(
            ["run", "kmeans", "--trace-out", "t.jsonl",
             "--metrics-out", "m.prom"]
        )
        assert args.trace_out == "t.jsonl"
        assert args.metrics_out == "m.prom"

    def test_experiments_accepts_obs_flags(self):
        args = build_parser().parse_args(
            ["experiments", "fig14", "--trace-out", "t.jsonl"]
        )
        assert args.trace_out == "t.jsonl"
        assert args.metrics_out is None

    def test_obs_subcommands(self):
        args = build_parser().parse_args(["obs", "summarize", "t.jsonl"])
        assert (args.obs_command, args.trace) == ("summarize", "t.jsonl")
        args = build_parser().parse_args(["obs", "validate", "t.jsonl"])
        assert args.schema == "docs/trace.schema.json"

    def test_global_log_level(self):
        args = build_parser().parse_args(["--log-level", "debug", "list"])
        assert args.log_level == "debug"


class TestObsCommands:
    def _trace(self, tmp_path, spans):
        from repro.obs.exporters import write_jsonl

        path = str(tmp_path / "trace.jsonl")
        write_jsonl(spans, path)
        return path

    def _span(self, **attrs):
        attributes = {
            "session": "", "app": "a", "policy": "MPC", "index": 0,
            "kernel": "k", "config": "c", "fail_safe": False,
            "fallback": False, "time_s": 1.0, "energy_j": 1.0,
            "overhead_time_s": 0.0, "overhead_energy_j": 0.0,
            "observed_ips": 1.0, "observed_power_w": 1.0,
        }
        attributes.update(attrs)
        return {"schema": 1, "name": "launch", "start_s": 0.0,
                "end_s": 1.0, "attributes": attributes}

    def test_summarize(self, tmp_path, capsys):
        path = self._trace(tmp_path, [self._span()])
        assert main(["obs", "summarize", path]) == 0
        out = capsys.readouterr().out
        assert "trace summary: 1 launch span(s)" in out
        assert "MPC" in out

    def test_validate_ok(self, tmp_path, capsys):
        path = self._trace(tmp_path, [self._span()])
        assert main(["obs", "validate", path]) == 0
        assert "all spans valid" in capsys.readouterr().out

    def test_validate_failure_exits_nonzero(self, tmp_path, capsys):
        bad = self._span()
        del bad["attributes"]["config"]
        path = self._trace(tmp_path, [bad])
        assert main(["obs", "validate", path]) == 1
        out = capsys.readouterr().out
        assert "missing required key 'config'" in out
        assert "1 invalid spans" in out

    def _skip_span(self, index):
        return self._span(
            session="s", index=index, mode="skip", fail_safe=True,
            budget_exhausted=True,
        )

    def test_health_report_and_drift_gates(self, tmp_path, capsys):
        # Three consecutive exhausted-budget fail-safe skips are one
        # budget-collapse drift event (skip_cascade default).
        path = self._trace(
            tmp_path, [self._skip_span(i) for i in (1, 2, 3)]
        )
        assert main(["obs", "health", path]) == 0
        out = capsys.readouterr().out
        assert "model health: 1 session(s)" in out
        assert "DEGRADED" in out and "budget-collapse" in out
        assert main(["obs", "health", path, "--min-drift", "1"]) == 0
        capsys.readouterr()
        assert main(["obs", "health", path, "--max-drift", "0"]) == 1
        assert "> allowed 0" in capsys.readouterr().err

    def test_health_min_drift_failure_exits_nonzero(self, tmp_path, capsys):
        path = self._trace(tmp_path, [self._span(session="s", mode="mpc")])
        assert main(["obs", "health", path, "--min-drift", "1"]) == 1
        captured = capsys.readouterr()
        assert "0 drift event(s) < required 1" in captured.err
        assert "HEALTHY" in captured.out

    def test_health_json_report(self, tmp_path, capsys):
        import json

        path = self._trace(tmp_path, [self._skip_span(i) for i in (1, 2, 3)])
        assert main(["obs", "health", path, "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        session = report["sessions"]["s"]
        assert session["state"] == "DEGRADED"
        assert session["drift_events"] == 1
        assert session["first_drift_decision"] == 3

    def test_offline_health_matches_live_monitor(self, tmp_path, capsys):
        # `repro run --health --trace-out` then `repro obs health` on
        # the written trace: identical deterministic computation.
        import json

        trace = str(tmp_path / "t.jsonl")
        assert main(["run", "kmeans", "--policy", "turbo", "--health",
                     "--trace-out", trace]) == 0
        live = capsys.readouterr().out
        assert "model health" in live
        assert main(["obs", "health", trace, "--json"]) == 0
        offline = json.loads(capsys.readouterr().out)
        (session,) = offline["sessions"].values()
        assert session["state"] == "HEALTHY"
        assert session["drift_events"] == 0


class TestRunWithTracing:
    def test_run_writes_trace_and_metrics(self, tmp_path, capsys):
        from repro.obs.exporters import read_jsonl

        trace = str(tmp_path / "t.jsonl")
        metrics = str(tmp_path / "m.prom")
        code = main(
            ["run", "kmeans", "--policy", "turbo",
             "--trace-out", trace, "--metrics-out", metrics]
        )
        assert code == 0
        spans = read_jsonl(trace)
        assert spans and all(s["name"] == "launch" for s in spans)
        text = open(metrics, encoding="utf-8").read()
        assert "repro_runtime_launches_total" in text
        out = capsys.readouterr().out
        assert f"wrote {len(spans)} spans to {trace}" in out

    def test_run_then_summarize_round_trip(self, tmp_path, capsys):
        trace = str(tmp_path / "t.jsonl")
        assert main(["run", "kmeans", "--policy", "turbo",
                     "--trace-out", trace]) == 0
        capsys.readouterr()
        assert main(["obs", "summarize", trace]) == 0
        assert "TurboCore" in capsys.readouterr().out


class TestLogging:
    def test_library_installs_null_handler(self):
        import repro  # noqa: F401

        handlers = logging.getLogger("repro").handlers
        assert any(isinstance(h, logging.NullHandler) for h in handlers)

    def test_runner_has_library_logger(self):
        from repro.experiments.runner import logger

        assert logger.name == "repro.experiments.runner"
