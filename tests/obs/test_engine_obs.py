"""Engine-level observability: worker merge, trace determinism.

The headline guarantee: a traced matrix run produces byte-identical
spans whether it executes serially or on worker processes —
submission-order emission, per-request worker registries, and span
filtering make ``--jobs 4`` equal ``--jobs 1``.  Merged metrics match
for the decision-making families (mpc/optimizer/horizon); runtime
series may additionally count dependency recomputation in workers.
"""

import json

import pytest

from repro.engine import ExperimentEngine
from repro.engine.variants import RunRequest
from repro.experiments.common import ExperimentContext
from repro.ml.predictors import OraclePredictor
from repro.obs import make_instrumentation
from repro.workloads.suites import benchmark

pytestmark = pytest.mark.obs

NAMES = ("NBody", "kmeans")

REQUESTS = [
    RunRequest(name, variant)
    for name in NAMES
    for variant in ("turbo", "ppk_oracle", "mpc_ideal")
]


def traced_context(cache_dir, jobs):
    obs = make_instrumentation()
    engine = ExperimentEngine(
        jobs=jobs, cache_dir=str(cache_dir), use_cache=False, obs=obs
    )
    kernels = {
        spec.key: spec for name in NAMES
        for spec in benchmark(name).unique_kernels
    }
    ctx = ExperimentContext(
        benchmark_names=list(NAMES), cache_dir=str(cache_dir),
        engine=engine, obs=obs,
    )
    ctx.predictor = OraclePredictor(
        ctx.apu, [kernels[key] for key in sorted(kernels)]
    )
    return ctx, obs


def canonical(spans):
    return [json.dumps(span, sort_keys=True) for span in spans]


class TestTraceDeterminism:
    def test_serial_and_parallel_traces_identical(self, tmp_path):
        ctx1, obs1 = traced_context(tmp_path / "c1", jobs=1)
        ctx1.engine.prefetch(ctx1, REQUESTS)
        ctx4, obs4 = traced_context(tmp_path / "c4", jobs=4)
        ctx4.engine.prefetch(ctx4, REQUESTS)

        serial, parallel = obs1.tracer.spans, obs4.tracer.spans
        assert len(serial) > 0
        assert canonical(serial) == canonical(parallel)

    def test_serial_and_parallel_counters_identical(self, tmp_path):
        ctx1, obs1 = traced_context(tmp_path / "c1", jobs=1)
        ctx1.engine.prefetch(ctx1, REQUESTS)
        ctx4, obs4 = traced_context(tmp_path / "c4", jobs=4)
        ctx4.engine.prefetch(ctx4, REQUESTS)

        # Spans are filtered to each request's own runs, but merged
        # worker metrics are not: workers recompute context dependencies
        # (the Turbo baseline behind a target throughput), and which
        # worker process recomputes what depends on task assignment.  The
        # decision-making families are per-request and never recomputed
        # as a dependency, so those must match exactly across job counts.
        deterministic = ("repro_mpc_", "repro_optimizer_", "repro_horizon_")

        def counters(registry):
            return {
                metric.name: sorted(metric.series().items())
                for metric in registry.metrics()
                if metric.kind == "counter"
                and metric.name.startswith(deterministic)
            }

        picked = counters(obs1.registry)
        assert picked, "no decision counters recorded"
        assert picked == counters(obs4.registry)


class TestWorkerMerge:
    def test_parallel_run_merges_worker_registries(self, tmp_path):
        ctx, obs = traced_context(tmp_path / "c", jobs=4)
        ctx.engine.prefetch(ctx, REQUESTS)
        registry = obs.registry
        # Worker metrics arrived in the parent: launches were counted
        # even though every simulation ran out-of-process.
        assert registry.counter("repro_runtime_launches_total").total() > 0
        assert registry.counter("repro_engine_tasks_total").value(mode="worker") > 0
        # One merged source per computed request plus the parent.
        assert registry.sources > 1

    def test_cache_stats_published_after_prefetch(self, tmp_path):
        ctx, obs = traced_context(tmp_path / "c", jobs=1)
        ctx.engine.prefetch(ctx, REQUESTS)
        gauge = obs.registry.gauge("repro_cache_misses")
        assert gauge.value(scope="engine") == len(REQUESTS)


class TestDisabledDefault:
    def test_engine_without_obs_produces_no_spans(self, tmp_path):
        engine = ExperimentEngine(
            jobs=1, cache_dir=str(tmp_path / "c"), use_cache=False
        )
        kernels = {
            spec.key: spec for name in NAMES
            for spec in benchmark(name).unique_kernels
        }
        ctx = ExperimentContext(
            benchmark_names=list(NAMES),
            cache_dir=str(tmp_path / "c"), engine=engine,
        )
        ctx.predictor = OraclePredictor(
            ctx.apu, [kernels[key] for key in sorted(kernels)]
        )
        engine.prefetch(ctx, [RunRequest("NBody", "turbo")])
        assert not ctx.obs.enabled
        assert not engine.obs.enabled
        assert ctx.obs.tracer.spans == []
