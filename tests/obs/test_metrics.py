"""Registry semantics: labels, bucket edges, snapshot/merge, no-op cost.

The merge contract is what lets engine workers ship their metrics back
to the parent process, so it is exercised both in-process and across a
real ``ProcessPoolExecutor`` boundary.
"""

import concurrent.futures

import pytest

from repro.obs import NOOP, Instrumentation, or_noop
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    NULL_REGISTRY,
    _NULL_METRIC,
    registry_or_null,
)

pytestmark = pytest.mark.obs


class TestCounter:
    def test_inc_and_value(self):
        counter = MetricsRegistry().counter("c_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5

    def test_labels_are_independent_series(self):
        counter = MetricsRegistry().counter("c_total")
        counter.inc(mode="a")
        counter.inc(3, mode="b")
        assert counter.value(mode="a") == 1.0
        assert counter.value(mode="b") == 3.0
        assert counter.value(mode="missing") == 0.0
        assert counter.total() == 4.0

    def test_label_order_is_irrelevant(self):
        counter = MetricsRegistry().counter("c_total")
        counter.inc(a="1", b="2")
        assert counter.value(b="2", a="1") == 1.0

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("c_total")
        with pytest.raises(ValueError):
            counter.inc(-1)


class TestGauge:
    def test_set_inc_value(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(5)
        gauge.inc(-2)
        assert gauge.value() == 3.0


class TestHistogramBucketEdges:
    def test_value_on_bound_lands_in_that_bucket(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(1.0, 2.0, 4.0))
        hist.observe(1.0)   # on the first bound -> bucket le=1.0
        hist.observe(1.5)   # -> le=2.0
        hist.observe(4.0)   # on the last bound -> le=4.0
        hist.observe(9.0)   # overflow -> +Inf
        (state,) = hist.series().values()
        assert state["counts"] == [1, 1, 1, 1]
        assert state["count"] == 4
        assert state["sum"] == pytest.approx(15.5)

    def test_bounds_must_be_strictly_ascending(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("bad", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            registry.histogram("dup", buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            registry.histogram("empty", buckets=())


class TestRegistryFactories:
    def test_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_bucket_conflict_raises(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ValueError):
            registry.histogram("h", buckets=(1.0, 3.0))
        # Same buckets are fine.
        registry.histogram("h", buckets=(1.0, 2.0))


class TestSnapshotMerge:
    def _populated(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc(2, mode="x")
        registry.gauge("g").set(7)
        registry.histogram("h", buckets=(1.0, 10.0)).observe(0.5)
        return registry

    def test_merge_accumulates_counters_and_histograms(self):
        a, b = self._populated(), self._populated()
        a.merge(b.snapshot())
        assert a.counter("c_total").value(mode="x") == 4.0
        (state,) = a.histogram("h", buckets=(1.0, 10.0)).series().values()
        assert state["count"] == 2
        assert state["counts"] == [2, 0, 0]

    def test_merge_gauges_last_writer_wins(self):
        a = self._populated()
        b = MetricsRegistry()
        b.gauge("g").set(99)
        a.merge(b.snapshot())
        assert a.gauge("g").value() == 99.0

    def test_merge_accumulates_sources(self):
        a, b, c = self._populated(), self._populated(), self._populated()
        b.merge(c.snapshot())
        a.merge(b.snapshot())
        assert a.sources == 3

    def test_snapshot_is_json_able(self):
        import json

        payload = json.loads(json.dumps(self._populated().snapshot()))
        fresh = MetricsRegistry()
        fresh.merge(payload)
        assert fresh.counter("c_total").value(mode="x") == 2.0

    def test_schema_mismatch_raises(self):
        with pytest.raises(ValueError):
            MetricsRegistry().merge({"schema": 999, "metrics": []})

    def test_snapshot_and_reset_prevents_double_count(self):
        registry = self._populated()
        first = registry.snapshot_and_reset()
        assert registry.counter("c_total").value(mode="x") == 0.0
        assert registry.sources == 1
        second = registry.snapshot()
        target = MetricsRegistry()
        target.merge(first)
        target.merge(second)
        assert target.counter("c_total").value(mode="x") == 2.0


def _worker_snapshot(worker_id):
    registry = MetricsRegistry()
    registry.counter("work_total", "tasks done").inc(worker_id + 1)
    registry.histogram("work_seconds", buckets=(1.0,)).observe(0.5)
    return registry.snapshot()


class TestProcessPoolMerge:
    def test_merge_across_process_boundary(self):
        parent = MetricsRegistry()
        with concurrent.futures.ProcessPoolExecutor(max_workers=2) as pool:
            for snap in pool.map(_worker_snapshot, range(3)):
                parent.merge(snap)
        assert parent.counter("work_total").value() == 6.0  # 1 + 2 + 3
        assert parent.histogram("work_seconds", buckets=(1.0,)).count() == 3
        assert parent.sources == 4  # parent + 3 workers


class TestNoOpZeroCost:
    def test_factories_return_shared_singleton(self):
        assert NULL_REGISTRY.counter("a") is _NULL_METRIC
        assert NULL_REGISTRY.gauge("b") is _NULL_METRIC
        assert NULL_REGISTRY.histogram("c") is _NULL_METRIC

    def test_mutations_retain_nothing(self):
        NULL_REGISTRY.counter("a").inc(5)
        NULL_REGISTRY.histogram("c").observe(1.0)
        assert NULL_REGISTRY.metrics() == []
        assert NULL_REGISTRY.snapshot()["metrics"] == []

    def test_registry_or_null(self):
        assert registry_or_null(None) is NULL_REGISTRY
        registry = MetricsRegistry()
        assert registry_or_null(registry) is registry

    def test_noop_instrumentation_is_shared_and_disabled(self):
        assert or_noop(None) is NOOP
        assert not NOOP.enabled
        live = Instrumentation(MetricsRegistry())
        assert or_noop(live) is live
        assert live.enabled

    def test_default_buckets_ascending(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
