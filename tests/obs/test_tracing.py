"""Tracer lifecycle: explicit clocks, current-span annotation, sinks."""

import threading

import pytest

from repro.obs.tracing import NULL_TRACER, SPAN_SCHEMA, Tracer

pytestmark = pytest.mark.obs


class TestSpanLifecycle:
    def test_start_end_with_explicit_times(self):
        tracer = Tracer()
        span = tracer.start_span("launch", at=1.5, app="x")
        span.annotate("config", "c")
        span.inc("steps")
        span.inc("steps", 2)
        payload = tracer.end_span(span, at=2.0)
        assert payload == {
            "schema": SPAN_SCHEMA,
            "name": "launch",
            "start_s": 1.5,
            "end_s": 2.0,
            "attributes": {"app": "x", "config": "c", "steps": 3.0},
        }
        assert tracer.spans == [payload]

    def test_default_clock_is_frozen_zero(self):
        tracer = Tracer()
        span = tracer.start_span("launch")
        payload = tracer.end_span(span)
        assert payload["start_s"] == 0.0
        assert payload["end_s"] == 0.0

    def test_injected_clock(self):
        ticks = iter([10.0, 20.0])
        tracer = Tracer(clock=lambda: next(ticks))
        span = tracer.start_span("launch")
        payload = tracer.end_span(span)
        assert (payload["start_s"], payload["end_s"]) == (10.0, 20.0)

    def test_context_manager(self):
        tracer = Tracer()
        with tracer.span("launch", at=3.0) as span:
            span.annotate("k", "v")
        assert tracer.spans[0]["attributes"] == {"k": "v"}


class TestCurrentSpan:
    def test_annotate_lands_on_innermost(self):
        tracer = Tracer()
        outer = tracer.start_span("outer")
        inner = tracer.start_span("inner")
        tracer.annotate("key", "inner-value")
        tracer.inc("n")
        tracer.end_span(inner)
        tracer.annotate("key", "outer-value")
        tracer.end_span(outer)
        by_name = {s["name"]: s["attributes"] for s in tracer.spans}
        assert by_name["inner"] == {"key": "inner-value", "n": 1.0}
        assert by_name["outer"] == {"key": "outer-value"}

    def test_annotate_without_open_span_is_noop(self):
        tracer = Tracer()
        tracer.annotate("key", "value")
        tracer.inc("n")
        assert tracer.current() is None
        assert tracer.spans == []

    def test_stacks_are_thread_local(self):
        tracer = Tracer()
        tracer.start_span("main-thread")
        seen = {}

        def other():
            seen["current"] = tracer.current()

        thread = threading.Thread(target=other)
        thread.start()
        thread.join()
        assert seen["current"] is None


class TestSinkAndBuffer:
    def test_sink_receives_each_span(self):
        received = []
        tracer = Tracer(sink=received.append, keep=False)
        tracer.end_span(tracer.start_span("a"))
        tracer.emit({"name": "b"})
        assert [p["name"] for p in received] == ["a", "b"]
        assert tracer.spans == []

    def test_drain_returns_and_clears(self):
        tracer = Tracer()
        tracer.end_span(tracer.start_span("a"))
        drained = tracer.drain()
        assert [p["name"] for p in drained] == ["a"]
        assert tracer.spans == []
        assert tracer.drain() == []


class TestNullTracer:
    def test_shared_noop_span(self):
        span_a = NULL_TRACER.start_span("a", at=1.0, x=1)
        span_b = NULL_TRACER.start_span("b")
        assert span_a is span_b
        span_a.annotate("k", "v")
        span_a.inc("n")
        assert span_a.attributes == {}
        assert NULL_TRACER.end_span(span_a) == {}
        assert NULL_TRACER.spans == []
        assert NULL_TRACER.drain() == []
        assert NULL_TRACER.current() is None
        assert not NULL_TRACER.enabled

    def test_context_manager_yields_noop(self):
        with NULL_TRACER.span("launch") as span:
            span.annotate("k", "v")
        assert span.attributes == {}
