"""Scalar vs. columnar decision core, differentially, per family.

The vectorization contract (PR 5, see docs/VECTORIZATION.md) promises
the columnar hill-climb is float-identical to the scalar original.  The
unit suite checks that promise on curated inputs; here every
adversarial scenario family is stamped under the matrix path and then
replayed — with checking on — under the scalar path.  Any drift in any
decision, measurement, or provenance flag is a hard failure.
"""

import pytest

from repro.workloads.traces import FAMILIES, TraceReplayer, stamp_decisions

pytestmark = pytest.mark.traces


@pytest.mark.parametrize("family", FAMILIES)
def test_scalar_path_reproduces_matrix_decisions(corpus, family):
    stamped = stamp_decisions(corpus[family], use_matrix=True)
    scalar = TraceReplayer(stamped, use_matrix=False).replay()
    assert scalar.checked == len(stamped.events)
    assert scalar.mismatches == []
    assert scalar.passed


@pytest.mark.parametrize("family", FAMILIES)
def test_scalar_and_matrix_stats_agree(corpus, family):
    matrix = TraceReplayer(corpus[family], use_matrix=True).replay()
    scalar = TraceReplayer(corpus[family], use_matrix=False).replay()
    assert matrix.stats == scalar.stats
    assert matrix.decisions() == scalar.decisions()
