"""Golden-trace regression pins for the decision core.

Each checked-in trace under ``golden/`` carries the exact decision
sequence (configurations, times, energies, horizons, fail-safe
provenance) a seed-0 adversarial scenario produced when it was
committed.  Replaying must reproduce every decision float-for-float;
the traces double as expected-decision-sequence documentation.

Regenerate with ``python tests/differential/golden/generate.py`` when a
numeric change is intentional.
"""

import os

import pytest

from repro.workloads.traces import (
    ScenarioGenerator,
    Trace,
    TraceReplayer,
    stamp_decisions,
)

from .conftest import SEED
from .golden.generate import GOLDEN_DIR, GOLDEN_FAMILIES

pytestmark = pytest.mark.traces


def _golden_path(family):
    return os.path.join(GOLDEN_DIR, f"{family}.jsonl")


@pytest.mark.parametrize("family", GOLDEN_FAMILIES)
def test_golden_trace_replays_float_exactly(family):
    trace = Trace.load(_golden_path(family))
    assert trace.validate() == []
    report = TraceReplayer(trace).replay()
    assert report.checked == len(trace.events)
    assert report.mismatches == []
    assert all(r.passed for r in report.assertion_results)
    assert report.passed


@pytest.mark.parametrize("family", GOLDEN_FAMILIES)
def test_golden_trace_is_regenerable_byte_for_byte(corpus, family):
    """The committed bytes equal a fresh seed-0 generation + stamping."""
    with open(_golden_path(family), encoding="utf-8") as handle:
        committed = handle.read()
    assert stamp_decisions(corpus[family]).dumps() == committed


def test_golden_corpus_matches_harness_seed():
    """The golden traces pin the same seed the live corpus runs at."""
    generator = ScenarioGenerator(seed=SEED)
    for family in GOLDEN_FAMILIES:
        trace = Trace.load(_golden_path(family))
        assert trace.header.seed == SEED
        fresh = generator.generate(family)
        assert [e.spec for e in fresh.events] == [
            e.spec for e in trace.events
        ]
