"""Batched stepping vs. streaming dispatch, differentially, per family.

``SessionManager.step_batch`` stacks the lattice sweeps of many
sessions' pending decisions into shared ``estimate_matrix_many`` calls,
then dispatches normally from the preloaded estimates.  Its contract is
*exact* transparency: decisions, per-session statistics, evaluation
charges, and per-decision telemetry must be float-for-float what
one-at-a-time streaming produces — the preloaded rows are the same
floats each session's own lazy sweep would have computed.

Checked here on every adversarial scenario family and on the stamped
golden traces (which replay through the batched driver against their
recorded decision sequences).
"""

import os

import pytest

from repro.workloads.traces import FAMILIES, Trace, TraceReplayer, outcome_decision

from .golden.generate import GOLDEN_DIR, GOLDEN_FAMILIES

pytestmark = pytest.mark.traces


def _metric_lines(registry):
    """Registry snapshot rows, minus step_batch's own bookkeeping.

    The four ``repro_runtime_batched_*`` counters exist only on the
    batched driver by design; everything else must match streaming.
    """
    return sorted(
        (
            metric
            for metric in registry.snapshot()["metrics"]
            if "batched" not in metric["name"]
        ),
        key=lambda metric: str(metric["name"]),
    )


@pytest.mark.parametrize("family", FAMILIES)
def test_batched_replay_matches_streaming(corpus, family):
    trace = corpus[family]
    streaming = TraceReplayer(trace, check=False).replay()
    batched = TraceReplayer(trace, check=False, batched=True).replay()

    assert len(batched.outcomes) == len(streaming.outcomes)
    for ours, theirs in zip(batched.outcomes, streaming.outcomes):
        assert ours.session_id == theirs.session_id
        assert ours.record == theirs.record
        assert outcome_decision(ours) == outcome_decision(theirs)

    assert batched.stats.keys() == streaming.stats.keys()
    for session_id in streaming.stats:
        assert (
            batched.stats[session_id].as_dict()
            == streaming.stats[session_id].as_dict()
        ), session_id


@pytest.mark.parametrize("family", FAMILIES)
def test_batched_replay_telemetry_matches_streaming(corpus, family):
    # Eval charging parity: sweeps served from a preload must charge
    # batches/rows — and every other counter — exactly as the lazy path.
    trace = corpus[family]
    streaming = TraceReplayer(trace, check=False).replay()
    batched = TraceReplayer(trace, check=False, batched=True).replay()
    assert _metric_lines(batched.registry) == _metric_lines(streaming.registry)


@pytest.mark.parametrize("family", GOLDEN_FAMILIES)
def test_golden_traces_replay_batched_float_exactly(family):
    trace = Trace.load(os.path.join(GOLDEN_DIR, f"{family}.jsonl"))
    report = TraceReplayer(trace, batched=True).replay()
    assert report.checked == len(trace.events)
    assert report.mismatches == []
    assert report.passed
