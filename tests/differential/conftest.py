"""Shared fixtures for the differential test harness.

The quick corpus — one generated trace per adversarial family at seed
0 — is built once per test session and shared by every differential
module; generation already coverage-checks each trace once.
"""

import pytest

from repro.workloads.traces import FAMILIES, ScenarioGenerator

#: The seed the whole differential harness (and the checked-in golden
#: traces, see ``golden/generate.py``) runs at.
SEED = 0


@pytest.fixture(scope="session")
def corpus():
    """Every adversarial family's trace at the harness seed."""
    generator = ScenarioGenerator(seed=SEED)
    return {family: generator.generate(family) for family in FAMILIES}
