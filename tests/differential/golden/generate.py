"""Regenerate the checked-in golden adversarial traces.

Each golden file is a seed-0 scenario trace with its full decision
sequence stamped in.  ``test_golden_traces.py`` replays them with
checking on: any change to the decision core, predictor, hardware
model, or runtime that moves a single float shows up as a mismatch.

When such a change is *intentional*, regenerate and commit:

    PYTHONPATH=src python tests/differential/golden/generate.py
"""

import os

from repro.workloads.traces import ScenarioGenerator, stamp_decisions

#: Families pinned as golden traces (seed 0).
GOLDEN_FAMILIES = (
    "phase-shift",
    "input-storm",
    "mispredict-cascade",
    "serverless",
)

GOLDEN_DIR = os.path.dirname(os.path.abspath(__file__))


def main() -> None:
    generator = ScenarioGenerator(seed=0)
    for family in GOLDEN_FAMILIES:
        stamped = stamp_decisions(generator.generate(family))
        path = os.path.join(GOLDEN_DIR, f"{family}.jsonl")
        stamped.dump(path)
        print(f"wrote {path} ({len(stamped.events)} stamped launches)")


if __name__ == "__main__":
    main()
