"""Streaming replayer vs. batch simulator, differentially, per family.

The runtime layer promises driver transparency: feeding launches one
event at a time through a session produces exactly the trace a batch
``Simulator.run`` produces.  Here that promise is checked on every
adversarial scenario — including multi-session interleavings, where
each session's stream must be unaffected by the others' arrivals.
"""

import pytest

from repro.sim.simulator import Simulator
from repro.workloads.traces import FAMILIES, TraceReplayer, build_policy

pytestmark = pytest.mark.traces


def _batch_records(trace, session_id):
    """The session replayed invocation-by-invocation on the batch driver."""
    spec = trace.session(session_id)
    sim = Simulator(enforce_tdp=trace.header.enforce_tdp)
    policy = build_policy(
        spec.policy,
        trace.unique_kernels(session_id),
        apu=sim.apu,
        overhead=sim.overhead,
    )
    records = []
    for app in trace.applications(session_id):
        records.extend(sim.run(app, policy).launches)
    return records


@pytest.mark.parametrize("family", FAMILIES)
def test_streaming_replay_matches_batch_runs(corpus, family):
    trace = corpus[family]
    report = TraceReplayer(trace, check=False).replay()
    for session_id in trace.session_ids():
        streamed = [
            o.record for o in report.outcomes if o.session_id == session_id
        ]
        assert streamed == _batch_records(trace, session_id), session_id


def test_bursty_interleaving_is_transparent(corpus):
    """Arrival interleaving must not leak between sessions: replaying
    the multi-session burst schedule equals replaying each session's
    stream in isolation."""
    trace = corpus["bursty"]
    together = TraceReplayer(trace, check=False).replay()
    for session_id in trace.session_ids():
        alone = _batch_records(trace, session_id)
        streamed = [
            o.record for o in together.outcomes if o.session_id == session_id
        ]
        assert streamed == alone
