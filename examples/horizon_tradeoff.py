#!/usr/bin/env python
"""Explore the adaptive-horizon tradeoff (Sections IV-A4 and VI-E).

Sweeps the performance-penalty bound alpha for two benchmarks with very
different kernel lengths — Spmv (short kernels, overhead-critical) and
EigenValue (long kernels) — and compares against the always-full-horizon
ablation.  A tighter alpha shrinks the horizon and the overhead; the
full horizon maximizes look-ahead but pays for it on short kernels.

Run from the repository root:

    python examples/horizon_tradeoff.py
"""

from repro import (
    MPCPowerManager,
    OraclePredictor,
    Simulator,
    TurboCorePolicy,
    benchmark,
    energy_savings_pct,
    speedup,
)


def run_variant(sim, app, target, *, alpha=0.05, adaptive=True):
    manager = MPCPowerManager(
        target,
        OraclePredictor(sim.apu, app.unique_kernels),
        alpha=alpha,
        adaptive_horizon=adaptive,
        overhead_model=sim.overhead,
    )
    sim.run(app, manager)          # profiling invocation
    return sim.run(app, manager)   # steady state


def main() -> None:
    sim = Simulator()
    for name in ("Spmv", "EigenValue"):
        app = benchmark(name)
        turbo = sim.run(app, TurboCorePolicy(tdp_w=sim.apu.tdp_w))
        target = turbo.instructions / turbo.kernel_time_s

        print(f"\n=== {name} (N={len(app)}) ===")
        print("variant          energy%   speedup   mean H (% of N)   overhead%")
        for alpha in (0.01, 0.05, 0.20):
            run = run_variant(sim, app, target, alpha=alpha)
            print(
                f"alpha={alpha:<4}    {energy_savings_pct(run, turbo):9.1f} "
                f"{speedup(run, turbo):9.3f} "
                f"{100 * run.mean_horizon / len(app):12.1f}     "
                f"{100 * run.overhead_time_s / turbo.total_time_s:8.2f}"
            )
        full = run_variant(sim, app, target, adaptive=False)
        print(
            f"full horizon {energy_savings_pct(full, turbo):9.1f} "
            f"{speedup(full, turbo):9.3f} "
            f"{100 * full.mean_horizon / len(app):12.1f}     "
            f"{100 * full.overhead_time_s / turbo.total_time_s:8.2f}"
        )


if __name__ == "__main__":
    main()
