#!/usr/bin/env python
"""Instrument a managed run with power-controller telemetry + analysis.

Reproduces the measurement side of the paper's methodology: sample the
chip's power at 1 ms like the APU's power-management controller, then
break a run down the way an engineer would — energy by component,
configuration occupancy, per-kernel summaries, and throughput phases.

Run from the repository root:

    python examples/power_trace_analysis.py
"""

from repro import (
    MPCPowerManager,
    OraclePredictor,
    Simulator,
    TurboCorePolicy,
    benchmark,
)
from repro.hardware.telemetry import PowerTelemetry
from repro.sim.analysis import (
    config_occupancy,
    energy_breakdown,
    kernel_summaries,
    knob_occupancy,
    throughput_phases,
)


def main() -> None:
    sim = Simulator()
    app = benchmark("hybridsort")

    turbo = sim.run(app, TurboCorePolicy(tdp_w=sim.apu.tdp_w))
    target = turbo.instructions / turbo.kernel_time_s
    manager = MPCPowerManager(
        target, OraclePredictor(sim.apu, app.unique_kernels),
        overhead_model=sim.overhead,
    )
    sim.run(app, manager)          # profiling invocation
    steady = sim.run(app, manager)

    # --- 1 ms power-controller trace -----------------------------------
    telemetry = PowerTelemetry(apu=sim.apu, period_s=1e-3, noise=0.01)
    trace = telemetry.sample(steady)
    print(f"{app.name}: {len(trace)} power samples over {trace.duration_s * 1e3:.0f} ms")
    print(
        f"  mean {trace.mean_power_w():.1f} W, peak {trace.peak_power_w():.1f} W, "
        f"sampled energy {trace.energy_j():.2f} J "
        f"(accounted {steady.energy_j:.2f} J)"
    )

    # --- energy decomposition -------------------------------------------
    breakdown = energy_breakdown(steady)
    shares = breakdown.shares()
    print(
        f"\nenergy: GPU {100 * shares['gpu_kernel']:.1f}% | "
        f"CPU {100 * shares['cpu_kernel']:.1f}% | "
        f"optimizer {100 * shares['overhead']:.2f}%"
    )

    # --- configuration occupancy ----------------------------------------
    print("\ntop configurations by time:")
    for config, share in sorted(config_occupancy(steady).items(),
                                key=lambda kv: -kv[1])[:4]:
        print(f"  {config:<26} {100 * share:5.1f}%")
    print("CPU knob occupancy:", knob_occupancy(steady)["cpu"])

    # --- per-kernel summaries ---------------------------------------------
    print("\nkernels by energy:")
    for summary in kernel_summaries(steady)[:5]:
        print(
            f"  {summary.kernel_key:<20} x{summary.launches}  "
            f"{summary.total_energy_j:6.2f} J  "
            f"{summary.total_time_s * 1e3:7.1f} ms  "
            f"failsafe {summary.fail_safe_launches}"
        )

    # --- throughput phases --------------------------------------------------
    print("\nthroughput phases (Figure-3 view):")
    for start, end, label in throughput_phases(steady):
        keys = {steady.launches[i].kernel_key for i in range(start, end)}
        print(f"  launches {start:>2}-{end - 1:>2}: {label:<4} ({', '.join(sorted(keys))})")


if __name__ == "__main__":
    main()
