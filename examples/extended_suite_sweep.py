#!/usr/bin/env python
"""Sweep MPC over the extended (held-out) benchmark collection.

The 16 benchmarks in ``repro.workloads.extended`` rebuild a further
slice of the paper's 73-app corpus and were never used to calibrate
anything in this repository.  This sweep is the "does it generalize?"
check: MPC should save double-digit energy on every one of them with
bounded performance loss.

Run from the repository root:

    python examples/extended_suite_sweep.py
"""

from repro import (
    MPCPowerManager,
    OraclePredictor,
    Simulator,
    TurboCorePolicy,
    energy_savings_pct,
    speedup,
)
from repro.sim.metrics import geomean, mean
from repro.workloads import corpus_stats, extended_benchmarks


def main() -> None:
    sim = Simulator()
    apps = extended_benchmarks()

    stats = corpus_stats(apps)
    print(
        f"extended corpus: {stats.num_benchmarks} benchmarks, "
        f"{100 * stats.irregular_fraction:.0f}% irregular, "
        f"{100 * stats.input_varying_fraction:.0f}% input-varying "
        f"(paper corpus: 75% / 44%)"
    )

    savings = []
    speeds = []
    print(f"\n{'benchmark':14s} {'suite':12s} {'E%':>7s} {'speedup':>8s} {'H% of N':>8s}")
    for app in apps:
        turbo = sim.run(app, TurboCorePolicy(tdp_w=sim.apu.tdp_w))
        target = turbo.instructions / turbo.kernel_time_s
        manager = MPCPowerManager(
            target, OraclePredictor(sim.apu, app.unique_kernels),
            overhead_model=sim.overhead,
        )
        sim.run(app, manager)
        steady = sim.run(app, manager)
        e = energy_savings_pct(steady, turbo)
        s = speedup(steady, turbo)
        savings.append(e)
        speeds.append(s)
        print(
            f"{app.name:14s} {app.suite:12s} {e:7.1f} {s:8.3f} "
            f"{100 * steady.mean_horizon / len(app):8.1f}"
        )

    print(
        f"\nmean energy savings {mean(savings):.1f}% | "
        f"geomean speedup {geomean(speeds):.3f}"
    )


if __name__ == "__main__":
    main()
