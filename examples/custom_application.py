#!/usr/bin/env python
"""Manage a user-defined GPGPU application with MPC.

Shows the full public API surface for bringing your own workload:
defining kernels with ground-truth characteristics, assembling an
application from a launch pattern, and inspecting MPC's per-launch
decisions (configurations, horizons, fail-safes).

The example app is an irregular pipeline: a heavy compute stage, a
bandwidth-bound shuffle whose input shrinks every iteration, and a
latency-bound reduction — the kind of mixed-phase workload where
history-based managers mispredict every transition.

Run from the repository root:

    python examples/custom_application.py
"""

from repro import (
    Application,
    KernelSpec,
    MPCPowerManager,
    OraclePredictor,
    ScalingClass,
    Simulator,
    TurboCorePolicy,
    energy_savings_pct,
    speedup,
)
from repro.workloads.app import Category


def build_app() -> Application:
    stage = KernelSpec(
        name="feature_extract",
        scaling_class=ScalingClass.COMPUTE,
        compute_work=8.0,       # giga-lane-ops
        memory_traffic=0.2,     # GB
        parallel_fraction=0.99,
    )
    shuffle = KernelSpec(
        name="bucket_shuffle",
        scaling_class=ScalingClass.MEMORY,
        compute_work=0.6,
        memory_traffic=1.2,
        parallel_fraction=0.9,
    )
    reduce_ = KernelSpec(
        name="tree_reduce",
        scaling_class=ScalingClass.UNSCALABLE,
        compute_work=0.3,
        memory_traffic=0.1,
        serial_time_s=0.008,
        parallel_fraction=0.7,
    )

    launches = []
    for iteration in range(4):
        launches.append(stage)
        # The shuffle's input halves every iteration (input-varying).
        launches.append(shuffle.with_input(iteration + 1, work_scale=0.5**iteration))
        launches.append(reduce_)
    return Application(
        name="custom-pipeline",
        suite="example",
        category=Category.IRREGULAR_INPUT_VARYING,
        kernels=tuple(launches),
        pattern="(AB_iC)4",
    )


def main() -> None:
    sim = Simulator()
    app = build_app()

    turbo = sim.run(app, TurboCorePolicy(tdp_w=sim.apu.tdp_w))
    target = turbo.instructions / turbo.kernel_time_s

    # The oracle predictor keeps the example fast and deterministic; use
    # repro.train_predictor() for the realistic Random-Forest setup.
    manager = MPCPowerManager(
        target, OraclePredictor(sim.apu, app.unique_kernels),
        overhead_model=sim.overhead,
    )
    sim.run(app, manager)          # profiling invocation
    steady = sim.run(app, manager)

    print(f"{app.name}: {len(app)} launches, {len(app.unique_kernels)} distinct kernels")
    print(f"search order (0-based): {manager.search_order.order}\n")

    print("launch  kernel               config                    time    H   failsafe")
    for record in steady.launches:
        print(
            f"{record.index:>5}   {record.kernel_key:<18} "
            f"{str(record.config):<24} {record.time_s * 1e3:6.1f}ms "
            f"{record.horizon:>3}   {record.fail_safe}"
        )

    print(
        f"\nvs Turbo Core: {energy_savings_pct(steady, turbo):.1f}% energy saved "
        f"at {speedup(steady, turbo):.3f}x speed "
        f"(optimizer overhead {steady.overhead_time_s * 1e3:.2f} ms)"
    )


if __name__ == "__main__":
    main()
