#!/usr/bin/env python
"""Offline-train the Random Forest predictor and audit its accuracy.

Reproduces the paper's Section VI-D methodology: characterize a
synthetic kernel population over the 336-configuration space, fit the
two forests (log-time and GPU power), then measure out-of-sample MAPE
on the 15 evaluation benchmarks' kernels (paper: 25% performance /
12% power).

Run from the repository root:

    python examples/train_and_evaluate_model.py
"""

from repro import (
    APUModel,
    HardwareConfig,
    all_benchmarks,
    evaluate_predictor,
    train_predictor,
)
from repro.workloads.counters import CounterSynthesizer


def main() -> None:
    apu = APUModel()
    print("training Random Forest predictor (cached under .cache/)...")
    predictor = train_predictor(apu=apu, cache_dir=".cache")

    eval_kernels = [k for app in all_benchmarks() for k in app.unique_kernels]
    time_mape, power_mape = evaluate_predictor(predictor, eval_kernels, apu=apu)
    print(
        f"out-of-sample accuracy over {len(eval_kernels)} kernels x 336 configs: "
        f"time MAPE {time_mape:.1f}% | GPU power MAPE {power_mape:.1f}% "
        f"(paper: 25% / 12%)"
    )

    # Spot-check a few predictions against ground truth.
    synthesizer = CounterSynthesizer(noise=0.0)
    configs = [
        HardwareConfig(cpu="P1", nb="NB0", gpu="DPM4", cu=8),
        HardwareConfig(cpu="P7", nb="NB2", gpu="DPM2", cu=4),
        HardwareConfig(cpu="P7", nb="NB3", gpu="DPM0", cu=2),
    ]
    spec = eval_kernels[0]
    counters = synthesizer.nominal(spec)
    print(f"\nspot check: kernel {spec.key}")
    print("config                      predicted time  actual time  predicted W  actual W")
    for config in configs:
        estimate = predictor.estimate(counters, config)
        truth = apu.execute(spec, config)
        print(
            f"{str(config):<26} {estimate.time_s * 1e3:11.2f}ms "
            f"{truth.time_s * 1e3:10.2f}ms {estimate.gpu_power_w:10.1f}W "
            f"{truth.gpu_power_w:8.1f}W"
        )


if __name__ == "__main__":
    main()
