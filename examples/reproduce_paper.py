#!/usr/bin/env python
"""Regenerate every table and figure of the paper in one pass.

Equivalent to ``python -m repro.experiments.runner``; runs the shared
experiment context over all 15 benchmarks and prints each reproduced
table.  Expect several minutes on the first run (the Random Forest
trains once and is cached under ``.cache/``).

Run from the repository root:

    python examples/reproduce_paper.py            # everything
    python examples/reproduce_paper.py fig8 fig9  # selected figures
"""

import sys

from repro.experiments.runner import run_all


def main() -> None:
    only = sys.argv[1:] or None
    run_all(only=only)


if __name__ == "__main__":
    main()
