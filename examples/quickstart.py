#!/usr/bin/env python
"""Quickstart: manage one benchmark's power with MPC.

Runs the paper's kmeans benchmark under three managers — the AMD Turbo
Core baseline, the history-based PPK scheme, and the MPC manager — and
prints their energy/performance against each other.

Run from the repository root:

    python examples/quickstart.py
"""

from repro import (
    MPCPowerManager,
    PPKPolicy,
    Simulator,
    TurboCorePolicy,
    benchmark,
    energy_savings_pct,
    speedup,
    train_predictor,
)


def main() -> None:
    sim = Simulator()
    app = benchmark("kmeans")
    print(f"Application: {app} ({app.pattern})")

    # 1. The baseline: AMD Turbo Core boosts everything within the TDP.
    turbo = sim.run(app, TurboCorePolicy(tdp_w=sim.apu.tdp_w))
    target = turbo.instructions / turbo.kernel_time_s
    print(
        f"Turbo Core: {turbo.kernel_time_s * 1e3:.1f} ms, "
        f"{turbo.energy_j:.2f} J (throughput target "
        f"{target / 1e9:.1f} Ginst/s)"
    )

    # 2. The offline-trained Random Forest predictor (cached on disk;
    #    the first call trains it and takes about a minute).
    predictor = train_predictor(apu=sim.apu, cache_dir=".cache")

    # 3. PPK: the state-of-the-art history-based scheme.
    ppk = sim.run(app, PPKPolicy(target, predictor))

    # 4. MPC: first invocation profiles (running PPK), later invocations
    #    plan over the extracted kernel pattern.
    manager = MPCPowerManager(target, predictor, overhead_model=sim.overhead)
    sim.run(app, manager)        # profiling invocation
    mpc = sim.run(app, manager)  # steady state

    print("\n      energy savings   speedup   (vs Turbo Core)")
    for label, run in (("PPK", ppk), ("MPC", mpc)):
        print(
            f"{label:4s}  {energy_savings_pct(run, turbo):13.1f}%  "
            f"{speedup(run, turbo):8.3f}"
        )
    print(
        f"\nMPC vs PPK: {energy_savings_pct(mpc, ppk):+.1f}% energy, "
        f"{speedup(mpc, ppk):.3f}x speed"
    )


if __name__ == "__main__":
    main()
