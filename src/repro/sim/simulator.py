"""The execution simulator: replays applications under a policy.

This is the harness the paper builds from its captured hardware data
("In order to simulate our approach as well as competing schemes, we
captured performance and power data ... for 336 APU hardware
configurations", Section V): every kernel launch is executed on the
ground-truth APU model at the configuration the policy chose, and the
policy is charged for its own decision-making.

Overhead accounting follows the paper's worst-case assumption: kernels
arrive back-to-back, so optimizer time is never hidden by CPU phases.
The optimizer runs on the host CPU at the framework's configuration
([P5, NB0, DPM0, 2 CUs] in the paper) while the GPU idles and leaks;
both costs are charged to the run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.hardware.apu import APUModel
from repro.hardware.config import HardwareConfig
from repro.sim.policy import Decision, Observation, PowerPolicy
from repro.sim.trace import LaunchRecord, RunResult
from repro.workloads.app import Application
from repro.workloads.counters import CounterSynthesizer

__all__ = ["OverheadModel", "Simulator"]

#: Hardware configuration the MPC framework itself runs at (Section V).
MANAGER_CONFIG = HardwareConfig(cpu="P5", nb="NB0", gpu="DPM0", cu=2)


@dataclass(frozen=True)
class OverheadModel:
    """Converts a policy's work into host-CPU wall-clock time.

    Attributes:
        seconds_per_evaluation: Cost of one performance/power-model
            query (a Random Forest inference plus bookkeeping).
        fixed_seconds: Fixed per-decision cost (sampling counters,
            updating the pattern store, applying DVFS states).
    """

    seconds_per_evaluation: float = 2e-6
    fixed_seconds: float = 1e-5

    def decision_time_s(self, decision: Decision) -> float:
        """Wall-clock seconds consumed by one decision."""
        if decision.model_evaluations < 0:
            raise ValueError("model_evaluations must be non-negative")
        if decision.model_evaluations == 0:
            return 0.0
        return self.fixed_seconds + self.seconds_per_evaluation * decision.model_evaluations


class Simulator:
    """Replays an application's kernel launches under a policy.

    Args:
        apu: Ground-truth hardware model.
        counters: Synthesizer producing each launch's Table-III
            counters for the policy.
        overhead: Model converting decisions into optimizer overhead;
            pass ``None`` (or use ``charge_overhead=False`` per run) for
            idealized studies that exclude overheads.
        manager_config: Hardware configuration the optimizer runs at.
        cpu_phase_s: Duration of the CPU phase preceding each kernel
            launch during which an idle CPU can run the optimizer
            (Section VI-E: "GPGPU application kernels may be separated
            by CPU phases with an available CPU, which can hide the MPC
            overheads").  Optimizer time up to this amount is hidden
            from the wall clock; its energy is still charged.  The
            paper's default (and ours) is the worst case: zero.
        enforce_tdp: When set, the hardware throttles configurations
            whose chip power would exceed the TDP — CPU states shed
            first, then the GPU DPM state — before executing, the way
            the real part's power controller would.  Off by default:
            the modelled workloads stay inside the 95 W envelope, as on
            the paper's testbed.
    """

    def __init__(
        self,
        apu: Optional[APUModel] = None,
        counters: Optional[CounterSynthesizer] = None,
        overhead: Optional[OverheadModel] = None,
        manager_config: HardwareConfig = MANAGER_CONFIG,
        cpu_phase_s: float = 0.0,
        enforce_tdp: bool = False,
    ) -> None:
        if cpu_phase_s < 0:
            raise ValueError("cpu_phase_s must be non-negative")
        self.apu = apu if apu is not None else APUModel()
        self.counters = counters if counters is not None else CounterSynthesizer()
        self.overhead = overhead if overhead is not None else OverheadModel()
        self.manager_config = manager_config
        self.cpu_phase_s = cpu_phase_s
        self.enforce_tdp = enforce_tdp

    def run(self, app: Application, policy: PowerPolicy, *,
            charge_overhead: bool = True) -> RunResult:
        """Run one invocation of ``app`` under ``policy``.

        Args:
            app: The application to execute.
            policy: The power-management policy; its state persists
                across calls, modelling repeated application
                invocations under one resident framework.
            charge_overhead: Whether to convert the policy's model
                evaluations into time/energy overheads (the paper's
                idealized studies switch this off).

        Returns:
            The per-launch trace and aggregates for this invocation.
        """
        policy.begin_run()
        result = RunResult(app_name=app.name, policy_name=policy.name)

        for index, spec in enumerate(app.kernels):
            decision = policy.decide(index)
            if self.enforce_tdp:
                throttled = self._throttle_to_tdp(spec, decision.config)
                if throttled != decision.config:
                    decision = Decision(
                        config=throttled,
                        model_evaluations=decision.model_evaluations,
                        horizon=decision.horizon,
                        fail_safe=decision.fail_safe,
                    )

            overhead_time = 0.0
            overhead_gpu_j = 0.0
            overhead_cpu_j = 0.0
            if charge_overhead:
                compute_time = self.overhead.decision_time_s(decision)
                overhead_time = max(0.0, compute_time - self.cpu_phase_s)
                if compute_time > 0.0:
                    # Energy is charged for the full optimizer runtime
                    # even when a CPU phase hides it from the wall
                    # clock.
                    manager = self.apu.manager_measurement(
                        compute_time, self.manager_config
                    )
                    overhead_gpu_j = manager.gpu_energy_j
                    overhead_cpu_j = manager.cpu_energy_j

            measurement = self.apu.execute(spec, decision.config)
            counters = self.counters.observe(spec, sequence=index)

            policy.observe(
                Observation(
                    index=index,
                    config=decision.config,
                    counters=counters,
                    measurement=measurement,
                    instructions=spec.instructions,
                )
            )

            result.append(
                LaunchRecord(
                    index=index,
                    kernel_key=spec.key,
                    config=decision.config,
                    time_s=measurement.time_s,
                    gpu_energy_j=measurement.gpu_energy_j,
                    cpu_energy_j=measurement.cpu_energy_j,
                    instructions=spec.instructions,
                    overhead_time_s=overhead_time,
                    overhead_gpu_energy_j=overhead_gpu_j,
                    overhead_cpu_energy_j=overhead_cpu_j,
                    horizon=decision.horizon,
                    fail_safe=decision.fail_safe,
                )
            )

        return result

    def _throttle_to_tdp(self, spec, config: HardwareConfig) -> HardwareConfig:
        """Clamp a configuration into the TDP the way the part would.

        Mirrors Turbo Core's shedding order: CPU P-states first, then
        the GPU DPM state.  Returns the first configuration along that
        path whose chip power fits; if none fits, the lowest one.
        """
        from repro.hardware.config import ConfigSpace, Knob
        from repro.hardware.dvfs import GPU_DPM_STATES

        # Throttling hardware sees every DPM state, not just the
        # software-searched subset.
        space = ConfigSpace(gpu_states=tuple(GPU_DPM_STATES))
        current = config
        while not self.apu.within_tdp(spec, current):
            lowered = space.step(current, Knob.CPU, -1)
            if lowered is None:
                lowered = space.step(current, Knob.GPU, -1)
            if lowered is None:
                break
            current = lowered
        return current

    def run_many(self, app: Application, policy: PowerPolicy, runs: int, *,
                 charge_overhead: bool = True) -> list:
        """Run ``runs`` consecutive invocations, returning all results."""
        if runs <= 0:
            raise ValueError("runs must be positive")
        return [
            self.run(app, policy, charge_overhead=charge_overhead)
            for _ in range(runs)
        ]
