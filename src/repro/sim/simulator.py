"""The execution simulator: replays applications under a policy.

This is the harness the paper builds from its captured hardware data
("In order to simulate our approach as well as competing schemes, we
captured performance and power data ... for 336 APU hardware
configurations", Section V): every kernel launch is executed on the
ground-truth APU model at the configuration the policy chose, and the
policy is charged for its own decision-making.

Overhead accounting follows the paper's worst-case assumption: kernels
arrive back-to-back, so optimizer time is never hidden by CPU phases.
The optimizer runs on the host CPU at the framework's configuration
([P5, NB0, DPM0, 2 CUs] in the paper) while the GPU idles and leaks;
both costs are charged to the run.

Since the streaming-runtime refactor the simulator is a thin *offline
driver* over :class:`~repro.runtime.session.SessionRuntime`: each
``run`` hosts the policy in a fresh session built from this simulator's
hardware components and replays the application's launch-event stream
through it.  The decide / throttle / charge-overhead / observe sequence
lives in the runtime layer, so offline replay, streaming, and
multi-session hosting are numerically identical by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.hardware.apu import APUModel
from repro.hardware.config import HardwareConfig
from repro.sim.policy import Decision, PowerPolicy
from repro.sim.trace import RunResult
from repro.workloads.app import Application
from repro.workloads.counters import CounterSynthesizer

if TYPE_CHECKING:
    from repro.obs import Instrumentation
    from repro.runtime.session import SessionRuntime

__all__ = ["OverheadModel", "Simulator"]

#: Hardware configuration the MPC framework itself runs at (Section V).
MANAGER_CONFIG = HardwareConfig(cpu="P5", nb="NB0", gpu="DPM0", cu=2)


@dataclass(frozen=True)
class OverheadModel:
    """Converts a policy's work into host-CPU wall-clock time.

    Attributes:
        seconds_per_evaluation: Cost of one performance/power-model
            query (a Random Forest inference plus bookkeeping).
        fixed_seconds: Fixed per-decision cost (sampling counters,
            updating the pattern store, applying DVFS states).
    """

    seconds_per_evaluation: float = 2e-6
    fixed_seconds: float = 1e-5

    def decision_time_s(self, decision: Decision) -> float:
        """Wall-clock seconds consumed by one decision."""
        if decision.model_evaluations < 0:
            raise ValueError("model_evaluations must be non-negative")
        if decision.model_evaluations == 0:
            return 0.0
        return self.fixed_seconds + self.seconds_per_evaluation * decision.model_evaluations


class Simulator:
    """Replays an application's kernel launches under a policy.

    Args:
        apu: Ground-truth hardware model.
        counters: Synthesizer producing each launch's Table-III
            counters for the policy.
        overhead: Model converting decisions into optimizer overhead;
            pass ``None`` (or use ``charge_overhead=False`` per run) for
            idealized studies that exclude overheads.
        manager_config: Hardware configuration the optimizer runs at.
        cpu_phase_s: Duration of the CPU phase preceding each kernel
            launch during which an idle CPU can run the optimizer
            (Section VI-E: "GPGPU application kernels may be separated
            by CPU phases with an available CPU, which can hide the MPC
            overheads").  Optimizer time up to this amount is hidden
            from the wall clock; its energy is still charged.  The
            paper's default (and ours) is the worst case: zero.
        enforce_tdp: When set, the hardware throttles configurations
            whose chip power would exceed the TDP — CPU states shed
            first, then the GPU DPM state — before executing, the way
            the real part's power controller would.  Off by default:
            the modelled workloads stay inside the 95 W envelope, as on
            the paper's testbed.
    """

    def __init__(
        self,
        apu: Optional[APUModel] = None,
        counters: Optional[CounterSynthesizer] = None,
        overhead: Optional[OverheadModel] = None,
        manager_config: HardwareConfig = MANAGER_CONFIG,
        cpu_phase_s: float = 0.0,
        enforce_tdp: bool = False,
    ) -> None:
        if cpu_phase_s < 0:
            raise ValueError("cpu_phase_s must be non-negative")
        self.apu = apu if apu is not None else APUModel()
        self.counters = counters if counters is not None else CounterSynthesizer()
        self.overhead = overhead if overhead is not None else OverheadModel()
        self.manager_config = manager_config
        self.cpu_phase_s = cpu_phase_s
        self.enforce_tdp = enforce_tdp

    def session(self, policy: PowerPolicy, *,
                isolate_faults: bool = False,
                session_id: str = "",
                app_name: str = "",
                charge_overhead: bool = True,
                recent_errors_limit: Optional[int] = None,
                obs: Optional["Instrumentation"] = None) -> "SessionRuntime":
        """A session runtime hosting ``policy`` on this simulator's models.

        Fault isolation is *off* by default so the offline harness
        keeps its fail-fast semantics (a buggy policy raises instead of
        silently degrading to fail-safe); streaming drivers pass
        ``isolate_faults=True``.

        ``obs`` is deliberately a per-call argument rather than
        simulator state: the simulator is part of the experiment
        engine's fingerprinted cache-key material, so instrumentation
        must never live on it.
        """
        # Imported lazily: the runtime layer is built on this module's
        # primitives (OverheadModel, the policy/trace protocol), so a
        # module-level import here would be circular.
        from repro.runtime.session import RECENT_ERRORS_LIMIT, SessionRuntime

        if recent_errors_limit is None:
            recent_errors_limit = RECENT_ERRORS_LIMIT
        return SessionRuntime(
            policy=policy,
            apu=self.apu,
            counters=self.counters,
            overhead=self.overhead,
            manager_config=self.manager_config,
            cpu_phase_s=self.cpu_phase_s,
            enforce_tdp=self.enforce_tdp,
            isolate_faults=isolate_faults,
            session_id=session_id,
            app_name=app_name,
            charge_overhead=charge_overhead,
            recent_errors_limit=recent_errors_limit,
            obs=obs,
        )

    def run(self, app: Application, policy: PowerPolicy, *,
            charge_overhead: bool = True,
            obs: Optional["Instrumentation"] = None) -> RunResult:
        """Run one invocation of ``app`` under ``policy``.

        Args:
            app: The application to execute.
            policy: The power-management policy; its state persists
                across calls, modelling repeated application
                invocations under one resident framework.
            charge_overhead: Whether to convert the policy's model
                evaluations into time/energy overheads (the paper's
                idealized studies switch this off).
            obs: Optional instrumentation for the hosting session
                (per-call; see :meth:`session`).

        Returns:
            The per-launch trace and aggregates for this invocation.
        """
        return self.session(policy, obs=obs).run(
            app, charge_overhead=charge_overhead
        )

    def _throttle_to_tdp(self, spec, config: HardwareConfig) -> HardwareConfig:
        """Clamp a configuration into the TDP the way the part would.

        Delegates to :func:`repro.runtime.session.throttle_to_tdp`,
        which owns the shedding-order logic (and caches the full-DPM
        throttling space instead of rebuilding it per launch).
        """
        from repro.runtime.session import throttle_to_tdp

        return throttle_to_tdp(self.apu, spec, config)

    def run_many(self, app: Application, policy: PowerPolicy, runs: int, *,
                 charge_overhead: bool = True) -> list:
        """Run ``runs`` consecutive invocations, returning all results."""
        if runs <= 0:
            raise ValueError("runs must be positive")
        return [
            self.run(app, policy, charge_overhead=charge_overhead)
            for _ in range(runs)
        ]
