"""Execution simulation: policies, traces, metrics, and the simulator.

The simulator replays an application's kernel launches on the modelled
APU under a pluggable :class:`~repro.sim.policy.PowerPolicy`, charging
software policies for their decision overheads, and produces
:class:`~repro.sim.trace.RunResult` traces that
:mod:`~repro.sim.metrics` compares the way the paper's figures do.
"""

from repro.sim.analysis import (
    EnergyBreakdown,
    KernelSummary,
    compare_runs,
    config_occupancy,
    energy_breakdown,
    kernel_summaries,
    knob_occupancy,
    throughput_phases,
)
from repro.sim.metrics import (
    cpu_energy_savings_pct,
    energy_savings_pct,
    geomean,
    gpu_energy_savings_pct,
    mean,
    performance_loss_pct,
    speedup,
)
from repro.sim.policy import Decision, Observation, PowerPolicy
from repro.sim.simulator import MANAGER_CONFIG, OverheadModel, Simulator
from repro.sim.trace import LaunchRecord, RunResult
from repro.sim.turbocore import TurboCorePolicy

__all__ = [
    "Decision",
    "Observation",
    "PowerPolicy",
    "LaunchRecord",
    "RunResult",
    "Simulator",
    "OverheadModel",
    "MANAGER_CONFIG",
    "TurboCorePolicy",
    "energy_savings_pct",
    "gpu_energy_savings_pct",
    "cpu_energy_savings_pct",
    "speedup",
    "performance_loss_pct",
    "geomean",
    "mean",
    "EnergyBreakdown",
    "KernelSummary",
    "compare_runs",
    "config_occupancy",
    "energy_breakdown",
    "kernel_summaries",
    "knob_occupancy",
    "throughput_phases",
]
