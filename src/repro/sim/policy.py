"""The interface between the simulator and power-management policies.

A policy is asked, before each kernel launch, which hardware
configuration to run it at (:meth:`PowerPolicy.decide`).  After the
launch it receives an :class:`Observation` — the telemetry the real
framework would see: the kernel's performance counters, the measured
time and power, and the hardware instruction count.  Policies never see
:class:`~repro.workloads.kernel.KernelSpec` ground truth.

A decision also reports how many predictor evaluations the policy spent
making it; the simulator converts that to wall-clock time and energy on
the host CPU (the paper's "MPC overheads", charged at the framework's
own hardware configuration).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Dict, Sequence

from repro.hardware.apu import Measurement
from repro.hardware.config import HardwareConfig
from repro.workloads.counters import CounterVector

__all__ = ["Decision", "Observation", "PowerPolicy"]


@dataclass(frozen=True)
class Decision:
    """A policy's choice for the next kernel launch.

    Attributes:
        config: Hardware configuration to apply.
        model_evaluations: Number of performance/power-model queries the
            policy made; the simulator charges optimizer overhead
            proportional to this count.
        horizon: Prediction-horizon length used (for reporting; 0 for
            policies without a horizon).
        fail_safe: Whether the policy fell back to the fail-safe
            configuration because no configuration met the target.
    """

    config: HardwareConfig
    model_evaluations: int = 0
    horizon: int = 0
    fail_safe: bool = False


@dataclass(frozen=True)
class Observation:
    """Post-launch telemetry delivered to the policy.

    Attributes:
        index: Zero-based launch index within the application run.
        config: Configuration the kernel actually ran at.
        counters: The kernel's Table-III performance counters, as
            sampled this launch (with measurement noise).
        measurement: Wall-clock time and component powers.
        instructions: Hardware-counted instructions executed.
    """

    index: int
    config: HardwareConfig
    counters: CounterVector
    measurement: Measurement
    instructions: float

    @property
    def throughput(self) -> float:
        """Instructions per second achieved by this launch."""
        return self.instructions / self.measurement.time_s


class PowerPolicy(abc.ABC):
    """Base class for kernel-granularity power-management policies."""

    #: Human-readable policy name for traces and reports.
    name: str = "policy"

    @abc.abstractmethod
    def decide(self, index: int) -> Decision:
        """Choose the configuration for the ``index``-th kernel launch."""

    @abc.abstractmethod
    def observe(self, observation: Observation) -> None:
        """Receive telemetry for the launch just completed."""

    def begin_run(self) -> None:
        """Hook called when a new run (application invocation) starts.

        Policies carry state *across* runs of the same application (the
        paper's framework keeps its pattern store between invocations);
        this hook only resets per-run cursors.
        """

    def prefetch_counters(self, index: int) -> Sequence[CounterVector]:
        """Counter vectors :meth:`decide` is expected to sweep next.

        The batched runtime path (``SessionManager.step_batch``) asks
        each ready session which kernels its upcoming decision will
        query, stacks the answers of all sessions into one predictor
        call, and preloads the shared results.  The hook must be
        **side-effect free** — no lifecycle transitions, no telemetry,
        no mutation — because :meth:`decide` still runs in full
        afterwards.  A wrong or empty answer is always safe: decisions
        simply fall back to their own lazy sweep.  The default predicts
        nothing (model-free policies).
        """
        return ()

    # ----- migration (the runtime's session snapshot protocol) -------------------

    def snapshot(self) -> Dict[str, Any]:
        """The policy's mutable state as a JSON-able dict.

        Everything a :class:`~repro.runtime.session.SessionRuntime`
        needs to reproduce this policy's future decisions on another
        host, given a policy constructed with the same arguments.
        Stateful policies override this together with :meth:`restore`.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support session snapshots"
        )

    def restore(self, payload: Dict[str, Any]) -> None:
        """Rebuild mutable state from a :meth:`snapshot` payload.

        Must be called on a policy constructed with the same arguments
        as the snapshotted one.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support session snapshots"
        )
