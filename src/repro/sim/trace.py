"""Run traces: per-launch records and whole-run aggregates.

The simulator produces one :class:`LaunchRecord` per kernel launch and
collects them into a :class:`RunResult`.  Aggregates follow the paper's
accounting: *performance* is total kernel time plus optimizer overhead
time; *energy* is total chip energy including the optimizer's CPU energy
and the GPU's idle leakage while the optimizer runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.hardware.config import HardwareConfig

__all__ = ["LaunchRecord", "RunResult"]


@dataclass(frozen=True)
class LaunchRecord:
    """Everything measured about one kernel launch.

    Attributes:
        index: Zero-based launch index.
        kernel_key: Identity of the launched kernel (name + input tag).
        config: Configuration the kernel ran at.
        time_s: Kernel wall-clock time.
        gpu_energy_j: GPU-rail energy (GPU + NB) during the kernel.
        cpu_energy_j: CPU-plane energy during the kernel.
        instructions: Hardware instruction count of the launch.
        overhead_time_s: Optimizer time spent before this launch.
        overhead_gpu_energy_j: GPU idle-leakage energy during that time.
        overhead_cpu_energy_j: CPU energy spent running the optimizer.
        horizon: Prediction-horizon allowance H_i the policy used for
            this launch (0 if the policy has no horizon concept).
        fail_safe: Whether the policy fell back to fail-safe.
    """

    index: int
    kernel_key: str
    config: HardwareConfig
    time_s: float
    gpu_energy_j: float
    cpu_energy_j: float
    instructions: float
    overhead_time_s: float = 0.0
    overhead_gpu_energy_j: float = 0.0
    overhead_cpu_energy_j: float = 0.0
    horizon: int = 0
    fail_safe: bool = False

    @property
    def energy_j(self) -> float:
        """Total chip energy for the launch, excluding overhead."""
        return self.gpu_energy_j + self.cpu_energy_j

    @property
    def overhead_energy_j(self) -> float:
        """Total optimizer-overhead energy attributed to this launch."""
        return self.overhead_gpu_energy_j + self.overhead_cpu_energy_j

    @property
    def throughput(self) -> float:
        """Instructions per second of the kernel itself."""
        return self.instructions / self.time_s


@dataclass
class RunResult:
    """Aggregate result of running one application under one policy.

    Attributes:
        app_name: Application that was run.
        policy_name: Policy that managed it.
        launches: Per-launch records, in execution order.
        base_index: Launch index of the first record this trace covers.
            ``0`` for a complete run; a session resumed mid-run from a
            snapshot traces only its post-resume launches, keeping
            their original indices.
    """

    app_name: str
    policy_name: str
    launches: List[LaunchRecord] = field(default_factory=list)
    base_index: int = 0

    def append(self, record: LaunchRecord) -> None:
        """Add the next launch record."""
        expected = self.base_index + len(self.launches)
        if record.index != expected:
            raise ValueError(
                f"out-of-order record: got index {record.index}, "
                f"expected {expected}"
            )
        self.launches.append(record)

    # ----- time ------------------------------------------------------------

    @property
    def kernel_time_s(self) -> float:
        """Total kernel execution time (no overheads)."""
        return sum(r.time_s for r in self.launches)

    @property
    def overhead_time_s(self) -> float:
        """Total optimizer overhead time."""
        return sum(r.overhead_time_s for r in self.launches)

    @property
    def total_time_s(self) -> float:
        """Kernel time plus optimizer overhead (the paper's performance)."""
        return self.kernel_time_s + self.overhead_time_s

    # ----- energy ----------------------------------------------------------

    @property
    def gpu_energy_j(self) -> float:
        """GPU-rail energy including idle leakage during optimization."""
        return sum(r.gpu_energy_j + r.overhead_gpu_energy_j for r in self.launches)

    @property
    def cpu_energy_j(self) -> float:
        """CPU-plane energy including optimizer compute."""
        return sum(r.cpu_energy_j + r.overhead_cpu_energy_j for r in self.launches)

    @property
    def overhead_energy_j(self) -> float:
        """Total optimizer-overhead energy (CPU + GPU idle leakage)."""
        return sum(r.overhead_energy_j for r in self.launches)

    @property
    def energy_j(self) -> float:
        """Total chip energy including all overheads."""
        return self.gpu_energy_j + self.cpu_energy_j

    # ----- work ------------------------------------------------------------

    @property
    def instructions(self) -> float:
        """Total instructions executed."""
        return sum(r.instructions for r in self.launches)

    @property
    def throughput(self) -> float:
        """Overall kernel throughput: instructions per total time."""
        return self.instructions / self.total_time_s

    @property
    def mean_horizon(self) -> float:
        """Average prediction-horizon length across launches."""
        if not self.launches:
            return 0.0
        return sum(r.horizon for r in self.launches) / len(self.launches)

    def cumulative_throughputs(self) -> List[float]:
        """Running ΣI/ΣT after each launch (kernel time only)."""
        out = []
        insts = 0.0
        time = 0.0
        for record in self.launches:
            insts += record.instructions
            time += record.time_s
            out.append(insts / time)
        return out

    def __len__(self) -> int:
        return len(self.launches)
