"""Comparison metrics between policy runs.

All of the paper's evaluation numbers are relative: energy savings and
speedup of one policy's run over another's (usually over AMD Turbo
Core).  Performance comparisons include optimizer overheads; energy
comparisons are reported chip-wide and GPU-only, matching Figures 8-10.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.sim.trace import RunResult

__all__ = [
    "energy_savings_pct",
    "gpu_energy_savings_pct",
    "cpu_energy_savings_pct",
    "speedup",
    "performance_loss_pct",
    "geomean",
    "mean",
]


def _check_comparable(run: RunResult, reference: RunResult) -> None:
    if run.app_name != reference.app_name:
        raise ValueError(
            f"comparing different applications: {run.app_name!r} vs "
            f"{reference.app_name!r}"
        )


def energy_savings_pct(run: RunResult, reference: RunResult) -> float:
    """Chip-wide energy saved by ``run`` relative to ``reference`` (%)."""
    _check_comparable(run, reference)
    return 100.0 * (1.0 - run.energy_j / reference.energy_j)


def gpu_energy_savings_pct(run: RunResult, reference: RunResult) -> float:
    """GPU-rail energy saved (%), including idle leakage overheads."""
    _check_comparable(run, reference)
    return 100.0 * (1.0 - run.gpu_energy_j / reference.gpu_energy_j)


def cpu_energy_savings_pct(run: RunResult, reference: RunResult) -> float:
    """CPU-plane energy saved (%)."""
    _check_comparable(run, reference)
    return 100.0 * (1.0 - run.cpu_energy_j / reference.cpu_energy_j)


def speedup(run: RunResult, reference: RunResult) -> float:
    """Speedup of ``run`` over ``reference`` including overheads.

    Values below 1.0 are a performance loss.
    """
    _check_comparable(run, reference)
    return reference.total_time_s / run.total_time_s


def performance_loss_pct(run: RunResult, reference: RunResult) -> float:
    """Performance lost by ``run`` vs ``reference`` (%); negative = gain."""
    return 100.0 * (1.0 - speedup(run, reference))


def geomean(values: Iterable[float]) -> float:
    """Geometric mean; appropriate for speedup ratios."""
    values = list(values)
    if not values:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean; appropriate for savings percentages."""
    values = list(values)
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)
