"""Run-trace analysis utilities for downstream users.

Aggregations one wants when studying a power-management run:
configuration occupancy (how often each DVFS state was used), per-kernel
summaries, energy decomposition, phase detection over the throughput
series, and side-by-side policy comparisons.  Everything returns plain
Python containers so results drop straight into tables or notebooks.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.sim.trace import RunResult

__all__ = [
    "KernelSummary",
    "EnergyBreakdown",
    "config_occupancy",
    "knob_occupancy",
    "kernel_summaries",
    "energy_breakdown",
    "throughput_phases",
    "compare_runs",
]


@dataclass(frozen=True)
class KernelSummary:
    """Aggregate statistics for one kernel identity within a run.

    Attributes:
        kernel_key: The kernel's identity.
        launches: Number of launches.
        total_time_s: Total kernel time across launches.
        total_energy_j: Total chip energy across launches.
        mean_throughput: Mean per-launch instruction throughput.
        configs: Distinct configurations used, with launch counts.
        fail_safe_launches: Launches that ran at the fail-safe.
    """

    kernel_key: str
    launches: int
    total_time_s: float
    total_energy_j: float
    mean_throughput: float
    configs: Dict[str, int]
    fail_safe_launches: int


@dataclass(frozen=True)
class EnergyBreakdown:
    """Where a run's energy went.

    Attributes:
        gpu_kernel_j: GPU-rail energy during kernels.
        cpu_kernel_j: CPU-plane energy during kernels.
        overhead_j: Optimizer energy (CPU compute + GPU idle leakage).
    """

    gpu_kernel_j: float
    cpu_kernel_j: float
    overhead_j: float

    @property
    def total_j(self) -> float:
        """Total run energy."""
        return self.gpu_kernel_j + self.cpu_kernel_j + self.overhead_j

    def shares(self) -> Dict[str, float]:
        """Fractions of total energy per component."""
        total = self.total_j
        if total == 0:
            return {"gpu_kernel": 0.0, "cpu_kernel": 0.0, "overhead": 0.0}
        return {
            "gpu_kernel": self.gpu_kernel_j / total,
            "cpu_kernel": self.cpu_kernel_j / total,
            "overhead": self.overhead_j / total,
        }


def config_occupancy(run: RunResult, weight_by_time: bool = True) -> Dict[str, float]:
    """Share of the run spent at each hardware configuration.

    Args:
        run: The run to analyse.
        weight_by_time: Weight by kernel time (default) or launch count.

    Returns:
        Mapping from configuration string to its share (sums to 1).
    """
    weights: Counter = Counter()
    for record in run.launches:
        weights[str(record.config)] += record.time_s if weight_by_time else 1.0
    total = sum(weights.values())
    if total == 0:
        return {}
    return {config: w / total for config, w in weights.items()}


def knob_occupancy(run: RunResult) -> Dict[str, Dict[str, float]]:
    """Time-weighted occupancy of each knob's values.

    Returns:
        ``{"cpu": {"P7": 0.9, ...}, "nb": {...}, "gpu": {...}, "cu": {...}}``
    """
    knobs: Dict[str, Counter] = {
        "cpu": Counter(), "nb": Counter(), "gpu": Counter(), "cu": Counter()
    }
    total = 0.0
    for record in run.launches:
        total += record.time_s
        knobs["cpu"][record.config.cpu] += record.time_s
        knobs["nb"][record.config.nb] += record.time_s
        knobs["gpu"][record.config.gpu] += record.time_s
        knobs["cu"][str(record.config.cu)] += record.time_s
    if total == 0:
        return {knob: {} for knob in knobs}
    return {
        knob: {value: w / total for value, w in counter.items()}
        for knob, counter in knobs.items()
    }


def kernel_summaries(run: RunResult) -> List[KernelSummary]:
    """Per-kernel-identity aggregates, ordered by total energy."""
    grouped: Dict[str, List] = {}
    for record in run.launches:
        grouped.setdefault(record.kernel_key, []).append(record)
    out = []
    for key, records in grouped.items():
        configs: Counter = Counter(str(r.config) for r in records)
        out.append(
            KernelSummary(
                kernel_key=key,
                launches=len(records),
                total_time_s=sum(r.time_s for r in records),
                total_energy_j=sum(r.energy_j for r in records),
                mean_throughput=sum(r.throughput for r in records) / len(records),
                configs=dict(configs),
                fail_safe_launches=sum(1 for r in records if r.fail_safe),
            )
        )
    out.sort(key=lambda s: -s.total_energy_j)
    return out


def energy_breakdown(run: RunResult) -> EnergyBreakdown:
    """Decompose a run's energy into GPU / CPU / overhead."""
    return EnergyBreakdown(
        gpu_kernel_j=sum(r.gpu_energy_j for r in run.launches),
        cpu_kernel_j=sum(r.cpu_energy_j for r in run.launches),
        overhead_j=run.overhead_energy_j,
    )


def throughput_phases(run: RunResult, threshold: float = 1.3) -> List[Tuple[int, int, str]]:
    """Segment a run into high/low-throughput phases.

    A launch is "high" when its throughput exceeds the run's overall
    throughput by ``threshold`` (and symmetrically "low" below
    ``1/threshold``); consecutive launches of the same class form a
    phase.  This is the Figure-3 view of a run.

    Args:
        run: The run to segment.
        threshold: Ratio defining high/low relative to overall.

    Returns:
        ``(start_index, end_index_exclusive, label)`` triples with
        labels in {"high", "mid", "low"}.
    """
    if threshold <= 1.0:
        raise ValueError("threshold must exceed 1")
    if not run.launches:
        return []
    overall = run.instructions / run.kernel_time_s

    def classify(record) -> str:
        ratio = record.throughput / overall
        if ratio >= threshold:
            return "high"
        if ratio <= 1.0 / threshold:
            return "low"
        return "mid"

    phases: List[Tuple[int, int, str]] = []
    start = 0
    label = classify(run.launches[0])
    for i, record in enumerate(run.launches[1:], start=1):
        current = classify(record)
        if current != label:
            phases.append((start, i, label))
            start, label = i, current
    phases.append((start, len(run.launches), label))
    return phases


def compare_runs(runs: Sequence[RunResult]) -> List[Dict[str, object]]:
    """Side-by-side comparison rows for several runs of one application.

    Args:
        runs: Runs of the *same* application under different policies;
            the first is treated as the reference.

    Returns:
        One dict per run with absolute and reference-relative metrics.
    """
    if not runs:
        raise ValueError("need at least one run")
    reference = runs[0]
    rows = []
    for run in runs:
        if run.app_name != reference.app_name:
            raise ValueError("runs must be of the same application")
        rows.append(
            {
                "policy": run.policy_name,
                "time_s": run.total_time_s,
                "energy_j": run.energy_j,
                "gpu_energy_j": run.gpu_energy_j,
                "cpu_energy_j": run.cpu_energy_j,
                "overhead_time_s": run.overhead_time_s,
                "speedup_vs_ref": reference.total_time_s / run.total_time_s,
                "energy_savings_vs_ref_pct": 100.0 * (1 - run.energy_j / reference.energy_j),
            }
        )
    return rows
