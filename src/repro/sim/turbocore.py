"""The AMD Turbo Core baseline policy (state of the practice).

Turbo Core, as the paper describes it (Section V-B), "controls the DVFS
states based on the recent resource utilization, and shifts power
between the GPU and CPU based on their recent load.  For these GPGPU
applications, the CPU busy waits while the GPU is executing the kernel.
Therefore, Turbo Core does not drop the CPU DVFS states as long as the
system stays within its TDP."

The policy therefore boosts everything — highest CPU P-state, NB0, the
fastest GPU DPM state, all compute units — and only backs the CPU off
(then the GPU) reactively when the *measured* chip power of the previous
interval exceeded the TDP.  It is a hardware power controller: it incurs
no software optimization overhead.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.hardware.config import ConfigSpace, HardwareConfig, Knob
from repro.sim.policy import Decision, Observation, PowerPolicy

__all__ = ["TurboCorePolicy"]


class TurboCorePolicy(PowerPolicy):
    """Reactive boost-to-TDP controller modelled on AMD Turbo Core.

    Args:
        tdp_w: Chip TDP the controller regulates to.
        space: Configuration space whose CPU/GPU axes are used for
            backoff steps; defaults to the full space.
        headroom_w: Power margin below TDP required before boosting a
            previously lowered state back up.
    """

    name = "TurboCore"

    def __init__(self, tdp_w: float = 95.0,
                 space: Optional[ConfigSpace] = None,
                 headroom_w: float = 5.0) -> None:
        self.tdp_w = tdp_w
        self.space = space if space is not None else ConfigSpace()
        self.headroom_w = headroom_w
        self._config = self._boost_config()
        self._last_power_w: Optional[float] = None

    def _boost_config(self) -> HardwareConfig:
        return self.space.fastest()

    def begin_run(self) -> None:
        self._config = self._boost_config()
        self._last_power_w = None

    def decide(self, index: int) -> Decision:
        return Decision(config=self._config, model_evaluations=0)

    def observe(self, observation: Observation) -> None:
        power = observation.measurement.total_power_w
        self._last_power_w = power
        if power > self.tdp_w:
            self._back_off()
        elif power < self.tdp_w - self.headroom_w:
            self._boost()

    def _back_off(self) -> None:
        """Shed power: drop CPU states first, then the GPU DPM state."""
        lowered = self.space.step(self._config, Knob.CPU, -1)
        if lowered is None:
            lowered = self.space.step(self._config, Knob.GPU, -1)
        if lowered is not None:
            self._config = lowered

    def _boost(self) -> None:
        """Recover performance states while comfortably inside the TDP."""
        raised = self.space.step(self._config, Knob.GPU, +1)
        if raised is None:
            raised = self.space.step(self._config, Knob.CPU, +1)
        if raised is not None:
            self._config = raised

    # ----- migration -----------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        return {
            "config": self._config.as_dict(),
            "last_power_w": self._last_power_w,
        }

    def restore(self, payload: Dict[str, Any]) -> None:
        self._config = HardwareConfig.from_dict(payload["config"])
        last = payload["last_power_w"]
        self._last_power_w = None if last is None else float(last)
