"""Power-controller telemetry: sampled power traces.

The paper measures "CPU and GPU power from the APU's power management
controller at 1 ms intervals" (Section V).  This module reproduces that
instrument: given a run trace, it renders the piecewise-constant power
timeline (kernels at their measured powers, optimizer phases at the
manager configuration's power) and samples it on a fixed period, adding
optional sensor noise — the same kind of data the authors' captures
contain.

Downstream uses: validating that sampled energy integrates back to the
accounted energy, visualizing phase structure, and feeding any analysis
that expects controller-style traces rather than per-kernel aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Tuple

import numpy as np

from repro.hardware.apu import APUModel
from repro.hardware.config import HardwareConfig

if TYPE_CHECKING:  # imported lazily to avoid a hardware <-> sim cycle
    from repro.sim.trace import RunResult

__all__ = ["PowerSample", "PowerTrace", "PowerTelemetry"]


@dataclass(frozen=True)
class PowerSample:
    """One controller sample.

    Attributes:
        time_s: Sample timestamp from run start.
        gpu_power_w: GPU-rail power (GPU + NB) at the sample.
        cpu_power_w: CPU-plane power at the sample.
        phase: ``"kernel"`` or ``"manager"``.
        kernel_key: Identity of the running kernel (empty for manager
            phases).
    """

    time_s: float
    gpu_power_w: float
    cpu_power_w: float
    phase: str
    kernel_key: str = ""

    @property
    def total_power_w(self) -> float:
        """Total chip power at the sample."""
        return self.gpu_power_w + self.cpu_power_w


@dataclass
class PowerTrace:
    """A sampled power timeline for one run.

    Attributes:
        samples: Samples in time order.
        period_s: Sampling period.
    """

    samples: List[PowerSample]
    period_s: float

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def duration_s(self) -> float:
        """Trace duration (last sample time plus one period)."""
        if not self.samples:
            return 0.0
        return self.samples[-1].time_s + self.period_s

    def energy_j(self) -> float:
        """Riemann-sum energy of the sampled trace."""
        return sum(s.total_power_w for s in self.samples) * self.period_s

    def gpu_energy_j(self) -> float:
        """Riemann-sum GPU-rail energy."""
        return sum(s.gpu_power_w for s in self.samples) * self.period_s

    def mean_power_w(self) -> float:
        """Average total power over the trace."""
        if not self.samples:
            return 0.0
        return sum(s.total_power_w for s in self.samples) / len(self.samples)

    def peak_power_w(self) -> float:
        """Maximum sampled total power."""
        if not self.samples:
            return 0.0
        return max(s.total_power_w for s in self.samples)

    def phase_fraction(self, phase: str) -> float:
        """Fraction of samples in a phase (``"kernel"``/``"manager"``)."""
        if not self.samples:
            return 0.0
        return sum(1 for s in self.samples if s.phase == phase) / len(self.samples)

    def as_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(times, gpu_power, cpu_power) as numpy arrays."""
        times = np.array([s.time_s for s in self.samples])
        gpu = np.array([s.gpu_power_w for s in self.samples])
        cpu = np.array([s.cpu_power_w for s in self.samples])
        return times, gpu, cpu


class PowerTelemetry:
    """Samples a run's power timeline like the APU's power controller.

    Args:
        apu: The hardware model (for manager-phase power levels).
        period_s: Sampling period; the paper's controller reports at
            1 ms.
        noise: Relative standard deviation of multiplicative sensor
            noise per sample (0 disables).
        seed: Seed of the sensor-noise stream.
        manager_config: Configuration the optimizer runs at between
            kernels.
    """

    def __init__(self, apu: Optional[APUModel] = None, period_s: float = 1e-3,
                 noise: float = 0.0, seed: int = 0,
                 manager_config: Optional[HardwareConfig] = None) -> None:
        if period_s <= 0:
            raise ValueError("period must be positive")
        if noise < 0:
            raise ValueError("noise must be non-negative")
        self.apu = apu if apu is not None else APUModel()
        self.period_s = period_s
        self.noise = noise
        self.seed = seed
        if manager_config is None:
            from repro.sim.simulator import MANAGER_CONFIG

            manager_config = MANAGER_CONFIG
        self.manager_config = manager_config

    def _segments(self, run: RunResult) -> List[Tuple[float, float, float, str, str]]:
        """(duration, gpu_w, cpu_w, phase, kernel) segments in order."""
        manager = self.apu.manager_measurement(1.0, self.manager_config)
        segments = []
        for record in run.launches:
            if record.overhead_time_s > 0:
                segments.append(
                    (record.overhead_time_s, manager.gpu_power_w,
                     manager.cpu_power_w, "manager", "")
                )
            gpu_w = record.gpu_energy_j / record.time_s
            cpu_w = record.cpu_energy_j / record.time_s
            segments.append(
                (record.time_s, gpu_w, cpu_w, "kernel", record.kernel_key)
            )
        return segments

    def sample(self, run: RunResult) -> PowerTrace:
        """Sample a run's power timeline.

        Args:
            run: The run to instrument.

        Returns:
            The sampled trace; its integrated energy approaches the
            run's accounted energy as the period shrinks.
        """
        rng = np.random.default_rng(self.seed)
        segments = self._segments(run)
        if not segments:
            return PowerTrace(samples=[], period_s=self.period_s)

        ends = np.cumsum([seg[0] for seg in segments])
        times = np.arange(0.0, ends[-1], self.period_s)
        owners = np.searchsorted(ends, times, side="right")

        samples: List[PowerSample] = []
        for t, owner in zip(times, owners):
            _, gpu_w, cpu_w, phase, kernel = segments[int(owner)]
            factor = 1.0
            if self.noise:
                factor = max(0.0, 1.0 + rng.normal(0.0, self.noise))
            samples.append(
                PowerSample(
                    time_s=float(t),
                    gpu_power_w=gpu_w * factor,
                    cpu_power_w=cpu_w * factor,
                    phase=phase,
                    kernel_key=kernel,
                )
            )
        return PowerTrace(samples=samples, period_s=self.period_s)
