"""Hardware substrate: the modelled AMD A10-7850K APU.

This package replaces the paper's physical testbed with an analytical
model: Table-I DVFS tables (:mod:`~repro.hardware.dvfs`), the 336-point
configuration space (:mod:`~repro.hardware.config`), a roofline timing
model (:mod:`~repro.hardware.perf`), a CV²f + leakage power model
(:mod:`~repro.hardware.power`), a thermal coupling model
(:mod:`~repro.hardware.thermal`), and the :class:`~repro.hardware.apu.APUModel`
facade that policies "execute" kernels on.
"""

from repro.hardware.apu import APUModel, Measurement
from repro.hardware.config import FAILSAFE_CONFIG, ConfigSpace, HardwareConfig, Knob
from repro.hardware.dvfs import (
    CPU_PSTATES,
    CU_COUNTS,
    GPU_DPM_STATES,
    NB_MEMORY_FREQ_MHZ,
    NB_PSTATES,
    SEARCHED_GPU_STATES,
    DvfsState,
    memory_bus_bandwidth_gbps,
    rail_voltage,
)
from repro.hardware.perf import KernelTiming, TimingModel
from repro.hardware.power import PowerBreakdown, PowerModel, PowerModelParams
from repro.hardware.table import ConfigTable
from repro.hardware.telemetry import PowerSample, PowerTelemetry, PowerTrace
from repro.hardware.thermal import ThermalModel

__all__ = [
    "APUModel",
    "Measurement",
    "ConfigSpace",
    "ConfigTable",
    "HardwareConfig",
    "Knob",
    "FAILSAFE_CONFIG",
    "DvfsState",
    "CPU_PSTATES",
    "NB_PSTATES",
    "GPU_DPM_STATES",
    "NB_MEMORY_FREQ_MHZ",
    "SEARCHED_GPU_STATES",
    "CU_COUNTS",
    "rail_voltage",
    "memory_bus_bandwidth_gbps",
    "KernelTiming",
    "TimingModel",
    "PowerBreakdown",
    "PowerModel",
    "PowerModelParams",
    "PowerSample",
    "PowerTelemetry",
    "PowerTrace",
    "ThermalModel",
]
