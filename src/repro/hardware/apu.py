"""The modelled APU: one facade over timing, power, and thermal models.

:class:`APUModel` is the stand-in for the paper's AMD A10-7850K testbed.
Executing a kernel on it returns a :class:`Measurement` — wall-clock
time, GPU-rail power (GPU + NB, as the real power controller reports),
and CPU power — exactly the telemetry the paper's framework captures
with CodeXL and the power-management controller.

The model is deterministic: the same (kernel, configuration) pair always
produces the same measurement.  Policies that want realistic *estimates*
must go through :mod:`repro.ml` predictors; the theoretically-optimal
baseline queries this model directly (it is defined as having perfect
knowledge).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.hardware.config import HardwareConfig
from repro.hardware.perf import KernelTiming, TimingModel
from repro.hardware.power import PowerBreakdown, PowerModel, PowerModelParams
from repro.hardware.table import ConfigTable
from repro.hardware.thermal import ThermalModel

if TYPE_CHECKING:  # imported lazily to avoid a hardware <-> workloads cycle
    from repro.workloads.kernel import KernelSpec

__all__ = ["Measurement", "MeasurementMatrix", "APUModel"]


@dataclass(frozen=True)
class Measurement:
    """Telemetry from one kernel launch (or one manager phase).

    Attributes:
        time_s: Wall-clock duration in seconds.
        gpu_power_w: Average GPU-rail power (GPU cores + NB + DRAM
            interface), matching how the testbed reports it.
        cpu_power_w: Average CPU-plane power.
        temperature_c: Steady-state die temperature.
    """

    time_s: float
    gpu_power_w: float
    cpu_power_w: float
    temperature_c: float

    @property
    def total_power_w(self) -> float:
        """Total chip power."""
        return self.gpu_power_w + self.cpu_power_w

    @property
    def gpu_energy_j(self) -> float:
        """GPU-rail energy for the measured interval."""
        return self.gpu_power_w * self.time_s

    @property
    def cpu_energy_j(self) -> float:
        """CPU-plane energy for the measured interval."""
        return self.cpu_power_w * self.time_s

    @property
    def energy_j(self) -> float:
        """Total chip energy for the measured interval."""
        return self.total_power_w * self.time_s


@dataclass(frozen=True)
class MeasurementMatrix:
    """Telemetry columns for one kernel over many configurations.

    The struct-of-arrays twin of :class:`Measurement`, indexed like the
    source :class:`ConfigTable` rows; elements are float-for-float equal
    to the scalar :meth:`APUModel.execute` results.
    """

    times_s: np.ndarray
    gpu_power_w: np.ndarray
    cpu_power_w: np.ndarray
    temperature_c: np.ndarray

    def __len__(self) -> int:
        return self.times_s.shape[0]

    @property
    def energy_j(self) -> np.ndarray:
        """Total chip energy column."""
        return (self.gpu_power_w + self.cpu_power_w) * self.times_s

    def measurement(self, i: int) -> Measurement:
        """The scalar :class:`Measurement` of one row."""
        return Measurement(
            time_s=float(self.times_s[i]),
            gpu_power_w=float(self.gpu_power_w[i]),
            cpu_power_w=float(self.cpu_power_w[i]),
            temperature_c=float(self.temperature_c[i]),
        )


class APUModel:
    """Ground-truth model of the heterogeneous processor.

    Args:
        timing: Kernel timing model; defaults to the calibrated
            :class:`~repro.hardware.perf.TimingModel`.
        power: Chip power model; defaults to the calibrated
            :class:`~repro.hardware.power.PowerModel`.
    """

    def __init__(self, timing: Optional[TimingModel] = None,
                 power: Optional[PowerModel] = None) -> None:
        self.timing = timing if timing is not None else TimingModel()
        self.power = power if power is not None else PowerModel()

    @classmethod
    def with_params(cls, params: PowerModelParams,
                    thermal: Optional[ThermalModel] = None) -> "APUModel":
        """Build an APU model with custom power calibration constants."""
        return cls(power=PowerModel(params, thermal or ThermalModel()))

    @property
    def tdp_w(self) -> float:
        """Chip thermal design power in watts."""
        return self.power.params.tdp_w

    # ----- kernel execution ------------------------------------------------

    def kernel_timing(self, spec: KernelSpec, config: HardwareConfig) -> KernelTiming:
        """Timing breakdown of one launch of ``spec`` at ``config``."""
        return self.timing.kernel_timing(spec, config)

    def kernel_power(self, spec: KernelSpec, config: HardwareConfig) -> PowerBreakdown:
        """Average power while ``spec`` runs at ``config``."""
        timing = self.timing.kernel_timing(spec, config)
        return self.power.kernel_power(config, timing, spec.activity_factor)

    def execute(self, spec: KernelSpec, config: HardwareConfig) -> Measurement:
        """Run one kernel launch and return its telemetry."""
        timing = self.timing.kernel_timing(spec, config)
        breakdown = self.power.kernel_power(config, timing, spec.activity_factor)
        return Measurement(
            time_s=timing.total_time_s,
            gpu_power_w=breakdown.gpu_w,
            cpu_power_w=breakdown.cpu_w,
            temperature_c=breakdown.temperature_c,
        )

    def execute_matrix(self, spec: KernelSpec, table: ConfigTable,
                       indices: Optional[np.ndarray] = None) -> MeasurementMatrix:
        """Telemetry for one kernel over many configurations at once.

        Columnar counterpart of :meth:`execute` against a
        :class:`ConfigTable`: one vectorized timing + power evaluation
        instead of a per-config Python loop, with rows float-for-float
        identical to the scalar path.  This is what the oracle
        predictor, the TO menu construction, and the exhaustive search
        paths run on.

        Args:
            spec: The kernel.
            table: Columnar configuration set.
            indices: Optional flat row indices; all rows when ``None``.
        """
        timing = self.timing.kernel_timing_matrix(spec, table, indices)
        breakdown = self.power.kernel_power_matrix(
            table, timing, spec.activity_factor, indices
        )
        return MeasurementMatrix(
            times_s=timing.total_time_s,
            gpu_power_w=breakdown.gpu_w,
            cpu_power_w=breakdown.cpu_w,
            temperature_c=breakdown.temperature_c,
        )

    def kernel_energy(self, spec: KernelSpec, config: HardwareConfig) -> float:
        """Total chip energy (J) for one launch of ``spec`` at ``config``."""
        return self.execute(spec, config).energy_j

    # ----- manager (between-kernel) phases ----------------------------------

    def manager_measurement(self, time_s: float,
                            config: HardwareConfig) -> Measurement:
        """Telemetry for a power-management phase on the host CPU.

        The GPU idles (leaking) while one CPU core runs the optimizer at
        ``config``; this is how MPC/PPK overheads are charged.
        """
        if time_s < 0:
            raise ValueError("time must be non-negative")
        breakdown = self.power.manager_power(config)
        return Measurement(
            time_s=time_s,
            gpu_power_w=breakdown.gpu_w,
            cpu_power_w=breakdown.cpu_w,
            temperature_c=breakdown.temperature_c,
        )

    def within_tdp(self, spec: KernelSpec, config: HardwareConfig) -> bool:
        """Whether running ``spec`` at ``config`` respects the TDP."""
        return self.kernel_power(spec, config).total_w <= self.tdp_w
