"""Hardware configurations and the searchable configuration space.

A :class:`HardwareConfig` is one point in the four-knob control space the
paper optimizes over: CPU P-state, NB state, GPU DPM state, and the
number of active GPU compute units.  :class:`ConfigSpace` enumerates the
336 configurations characterized by the paper (7 CPU x 4 NB x 3 GPU
DPM x 4 CU counts) and provides the knob-stepping primitives that the
greedy hill-climbing optimizer uses.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.hardware import dvfs

__all__ = ["Knob", "HardwareConfig", "ConfigSpace", "FAILSAFE_CONFIG"]

#: The four hardware knobs, in the canonical order used throughout.
KNOBS: Tuple[str, ...] = ("cpu", "nb", "gpu", "cu")


class Knob:
    """Names of the four hardware knobs."""

    CPU = "cpu"
    NB = "nb"
    GPU = "gpu"
    CU = "cu"

    ALL: Tuple[str, ...] = KNOBS


@dataclass(frozen=True, order=True)
class HardwareConfig:
    """One hardware configuration: (CPU state, NB state, GPU state, CUs).

    Attributes:
        cpu: CPU P-state name (``"P1"`` fastest ... ``"P7"`` slowest).
        nb: NB state name (``"NB0"`` fastest ... ``"NB3"`` slowest).
        gpu: GPU DPM state name (``"DPM4"`` fastest ... ``"DPM0"``).
        cu: Number of active GPU compute units (2, 4, 6, or 8).
    """

    cpu: str
    nb: str
    gpu: str
    cu: int

    def __post_init__(self) -> None:
        if self.cpu not in dvfs.CPU_PSTATES:
            raise ValueError(f"unknown CPU P-state: {self.cpu!r}")
        if self.nb not in dvfs.NB_PSTATES:
            raise ValueError(f"unknown NB state: {self.nb!r}")
        if self.gpu not in dvfs.GPU_DPM_STATES:
            raise ValueError(f"unknown GPU DPM state: {self.gpu!r}")
        if self.cu not in dvfs.CU_COUNTS:
            raise ValueError(f"unsupported CU count: {self.cu!r}")

    @property
    def cpu_state(self) -> dvfs.DvfsState:
        """The CPU DVFS operating point."""
        return dvfs.CPU_PSTATES[self.cpu]

    @property
    def nb_state(self) -> dvfs.DvfsState:
        """The NB DVFS operating point."""
        return dvfs.NB_PSTATES[self.nb]

    @property
    def gpu_state(self) -> dvfs.DvfsState:
        """The GPU DVFS operating point."""
        return dvfs.GPU_DPM_STATES[self.gpu]

    @property
    def rail_voltage(self) -> float:
        """Voltage of the shared GPU/NB rail for this configuration."""
        return dvfs.rail_voltage(self.gpu, self.nb)

    @property
    def memory_bandwidth_gbps(self) -> float:
        """Peak DRAM bandwidth available in this configuration (GB/s)."""
        return dvfs.memory_bus_bandwidth_gbps(self.nb)

    def knob(self, name: str):
        """Return the value of the named knob (state name or CU count)."""
        if name not in KNOBS:
            raise ValueError(f"unknown knob: {name!r}")
        return getattr(self, name)

    def replace(self, **changes) -> "HardwareConfig":
        """Return a copy of this config with some knobs changed."""
        fields = {k: getattr(self, k) for k in KNOBS}
        fields.update(changes)
        return HardwareConfig(**fields)

    def as_dict(self) -> dict:
        """JSON-able knob mapping (used by session snapshots)."""
        return {"cpu": self.cpu, "nb": self.nb, "gpu": self.gpu, "cu": self.cu}

    @classmethod
    def from_dict(cls, payload: dict) -> "HardwareConfig":
        """Rebuild a configuration from :meth:`as_dict` output."""
        return cls(
            cpu=payload["cpu"],
            nb=payload["nb"],
            gpu=payload["gpu"],
            cu=int(payload["cu"]),
        )

    def __str__(self) -> str:
        return f"[{self.cpu}, {self.nb}, {self.gpu}, {self.cu} CUs]"


#: The empirically determined fail-safe configuration from the paper:
#: lowest CPU state, NB2, fastest GPU state, all compute units.
FAILSAFE_CONFIG = HardwareConfig(cpu="P7", nb="NB2", gpu="DPM4", cu=8)


class ConfigSpace:
    """The discrete space of hardware configurations searched at runtime.

    The default space matches the paper's characterization: all 7 CPU
    P-states, all 4 NB states, 3 of the 5 GPU DPM states, and CU counts
    2/4/6/8, i.e. 336 configurations.  Knob axes are ordered from the
    *slowest* (most power-frugal) value to the fastest, so "stepping a
    knob up" always means spending more power for more performance.
    """

    def __init__(
        self,
        cpu_states: Optional[Sequence[str]] = None,
        nb_states: Optional[Sequence[str]] = None,
        gpu_states: Optional[Sequence[str]] = None,
        cu_counts: Optional[Sequence[int]] = None,
    ) -> None:
        # Axes run slow -> fast.  CPU "P7" is the slowest P-state and
        # NB3 the slowest NB state, hence the reversed name ordering.
        self.cpu_axis: Tuple[str, ...] = tuple(
            cpu_states if cpu_states is not None else reversed(list(dvfs.CPU_PSTATES))
        )
        self.nb_axis: Tuple[str, ...] = tuple(
            nb_states if nb_states is not None else reversed(list(dvfs.NB_PSTATES))
        )
        self.gpu_axis: Tuple[str, ...] = tuple(
            gpu_states if gpu_states is not None else dvfs.SEARCHED_GPU_STATES
        )
        self.cu_axis: Tuple[int, ...] = tuple(
            cu_counts if cu_counts is not None else dvfs.CU_COUNTS
        )
        self._axes = {
            Knob.CPU: self.cpu_axis,
            Knob.NB: self.nb_axis,
            Knob.GPU: self.gpu_axis,
            Knob.CU: self.cu_axis,
        }
        for knob, axis in self._axes.items():
            if not axis:
                raise ValueError(f"empty axis for knob {knob!r}")
            if len(set(axis)) != len(axis):
                raise ValueError(f"duplicate values on axis {knob!r}: {axis}")
        # Eager per-knob value -> axis-index maps and the enumerated
        # lattice, so index_of/step/all_configs are O(1) lookups instead
        # of linear scans / re-enumeration.  Built in __init__ (never
        # lazily) so instances have deterministic state for their whole
        # lifetime regardless of call history.
        self._value_index = {
            knob: {value: i for i, value in enumerate(axis)}
            for knob, axis in self._axes.items()
        }
        self._configs: Tuple[HardwareConfig, ...] = tuple(
            HardwareConfig(cpu=cpu, nb=nb, gpu=gpu, cu=cu)
            for cpu, nb, gpu, cu in itertools.product(
                self.cpu_axis, self.nb_axis, self.gpu_axis, self.cu_axis
            )
        )

    def axis(self, knob: str) -> Tuple:
        """Return the (slow -> fast) axis of values for a knob."""
        try:
            return self._axes[knob]
        except KeyError:
            raise ValueError(f"unknown knob: {knob!r}") from None

    def __len__(self) -> int:
        return (
            len(self.cpu_axis)
            * len(self.nb_axis)
            * len(self.gpu_axis)
            * len(self.cu_axis)
        )

    def __iter__(self) -> Iterator[HardwareConfig]:
        return iter(self._configs)

    def __contains__(self, config: HardwareConfig) -> bool:
        return (
            config.cpu in self._value_index[Knob.CPU]
            and config.nb in self._value_index[Knob.NB]
            and config.gpu in self._value_index[Knob.GPU]
            and config.cu in self._value_index[Knob.CU]
        )

    def all_configs(self) -> List[HardwareConfig]:
        """All configurations in the space, as a list.

        Enumeration order is ``itertools.product`` over the axes with
        CPU slowest-varying and CU fastest-varying — the same flat order
        :class:`~repro.hardware.table.ConfigTable` encodes.  A fresh
        list is returned each call (the enumeration itself is cached).
        """
        return list(self._configs)

    def knob_cardinality_sum(self) -> int:
        """Sum of the knob axis lengths.

        This is the number of energy evaluations a full greedy pass over
        all knobs can require, the paper's
        ``|cpu| + |nb| + |gpu| + |cu|`` term (18 for the default space,
        a factor of ~19x fewer evaluations than the 336-point product).
        """
        return sum(len(a) for a in self._axes.values())

    def index_of(self, knob: str, value) -> int:
        """Index of a knob value along its (slow -> fast) axis."""
        try:
            return self._value_index[knob][value]
        except KeyError:
            axis = self.axis(knob)  # raises for an unknown knob
            raise ValueError(f"{value!r} not on axis {knob!r}: {axis}") from None

    def step(self, config: HardwareConfig, knob: str, direction: int) -> Optional[HardwareConfig]:
        """Step one knob of a config along its axis.

        Args:
            config: The starting configuration.
            knob: Which knob to move.
            direction: +1 to move toward the faster end of the axis,
                -1 toward the slower end.

        Returns:
            The neighbouring configuration, or ``None`` if the step
            would leave the axis.
        """
        if direction not in (-1, 1):
            raise ValueError("direction must be +1 or -1")
        axis = self.axis(knob)
        idx = self.index_of(knob, config.knob(knob)) + direction
        if idx < 0 or idx >= len(axis):
            return None
        return config.replace(**{knob: axis[idx]})

    def fastest(self) -> HardwareConfig:
        """The all-knobs-maxed configuration (top of every axis)."""
        return HardwareConfig(
            cpu=self.cpu_axis[-1],
            nb=self.nb_axis[-1],
            gpu=self.gpu_axis[-1],
            cu=self.cu_axis[-1],
        )

    def slowest(self) -> HardwareConfig:
        """The all-knobs-minimum configuration (bottom of every axis)."""
        return HardwareConfig(
            cpu=self.cpu_axis[0],
            nb=self.nb_axis[0],
            gpu=self.gpu_axis[0],
            cu=self.cu_axis[0],
        )

    def clamp(self, config: HardwareConfig) -> HardwareConfig:
        """Snap a configuration onto this space.

        Each knob value not on its axis is replaced by the nearest axis
        value at or above it in performance order, falling back to the
        fastest axis value.  Used to map the fail-safe configuration
        into reduced spaces in tests.
        """
        changes = {}
        for knob in KNOBS:
            value = config.knob(knob)
            if value in self._value_index[knob]:
                continue
            axis = self.axis(knob)
            rank = _FULL_AXIS_RANK[knob][value]
            candidates = [v for v in axis if _FULL_AXIS_RANK[knob][v] >= rank]
            changes[knob] = candidates[0] if candidates else axis[-1]
        return config.replace(**changes) if changes else config


#: Slow -> fast performance rank of every legal knob value over the
#: *full* hardware tables (all 5 GPU DPM states, not just the searched
#: subset).  ``clamp()`` ranks off-axis values against this instead of
#: building a throwaway full ConfigSpace per call.
_FULL_AXIS_RANK = {
    Knob.CPU: {name: i for i, name in enumerate(reversed(list(dvfs.CPU_PSTATES)))},
    Knob.NB: {name: i for i, name in enumerate(reversed(list(dvfs.NB_PSTATES)))},
    Knob.GPU: {name: i for i, name in enumerate(dvfs.GPU_DPM_STATES)},
    Knob.CU: {count: i for i, count in enumerate(dvfs.CU_COUNTS)},
}
