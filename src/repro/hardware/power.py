"""Ground-truth power model of the modelled APU.

Power is split the way the paper's testbed reports it:

* **GPU power** includes the northbridge, because GPU and NB share a
  voltage rail on the A10-7850K and the power-management controller
  reports them together ("The NB power is included in the GPU
  measurement, since they share the same voltage rail", Section V).
* **CPU power** covers all CPU cores on their own power plane.  During
  GPU kernels the host CPU busy-waits: one core spins at full activity
  while the remaining cores sit clock-gated, which is why dropping the
  CPU P-state saves substantial energy at no kernel-performance cost —
  the effect behind the paper's "75% of MPC's savings come from the
  CPU".

Dynamic power follows the classic ``C · V² · f`` form per domain, scaled
by how busy the domain actually is during the kernel (from the timing
model's utilization figures).  Leakage scales with voltage and die
temperature through :class:`repro.hardware.thermal.ThermalModel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.hardware.config import HardwareConfig
from repro.hardware.perf import KernelTiming, KernelTimingMatrix
from repro.hardware.table import ConfigTable
from repro.hardware.thermal import ThermalModel

__all__ = [
    "PowerBreakdown",
    "PowerBreakdownMatrix",
    "PowerModel",
    "PowerModelParams",
]


@dataclass(frozen=True)
class PowerBreakdown:
    """Average power draw during one kernel launch, by component.

    Attributes:
        gpu_dynamic_w: GPU core switching power.
        gpu_leakage_w: GPU leakage (active CUs only; gated CUs leak ~0).
        nb_w: Northbridge + DRAM interface power (shares the GPU rail).
        cpu_w: Total CPU-plane power (busy-wait or manager workload).
        temperature_c: Steady-state die temperature.
    """

    gpu_dynamic_w: float
    gpu_leakage_w: float
    nb_w: float
    cpu_w: float
    temperature_c: float

    @property
    def gpu_w(self) -> float:
        """GPU-rail power as the testbed reports it (GPU + NB)."""
        return self.gpu_dynamic_w + self.gpu_leakage_w + self.nb_w

    @property
    def total_w(self) -> float:
        """Total chip power."""
        return self.gpu_w + self.cpu_w


@dataclass(frozen=True)
class PowerBreakdownMatrix:
    """Per-config power columns: struct-of-arrays :class:`PowerBreakdown`.

    Each field is a float64 array over a :class:`ConfigTable` row set;
    every element equals the scalar breakdown's field float for float.
    """

    gpu_dynamic_w: np.ndarray
    gpu_leakage_w: np.ndarray
    nb_w: np.ndarray
    cpu_w: np.ndarray
    temperature_c: np.ndarray

    @property
    def gpu_w(self) -> np.ndarray:
        """GPU-rail power column (GPU + NB)."""
        return self.gpu_dynamic_w + self.gpu_leakage_w + self.nb_w

    @property
    def total_w(self) -> np.ndarray:
        """Total chip power column."""
        return self.gpu_w + self.cpu_w


@dataclass(frozen=True)
class PowerModelParams:
    """Calibration constants of the power model.

    The defaults are chosen so the modelled part lands in the envelope
    of the real 95 W-TDP A10-7850K: ~25 W CPU plane at P1 busy-wait,
    ~6 W at P7; ~35 W GPU rail flat-out, ~4 W at the smallest
    configuration.

    Attributes:
        gpu_dyn_w_per_cu_v2ghz: GPU dynamic power per CU per V²·GHz.
        gpu_leak_base_w_per_v: Voltage-proportional GPU leakage floor.
        gpu_leak_w_per_cu_v: Additional leakage per *active* (ungated) CU.
        nb_dyn_w_per_v2ghz: NB dynamic power per V²·GHz of NB clock.
        nb_leak_w_per_v: NB leakage per volt of rail voltage.
        dram_w_per_gbps: DRAM interface power per GB/s actually moved.
        dram_base_w: DRAM interface standby power.
        cpu_busy_w_per_v2ghz: Dynamic power of one spinning CPU core.
        cpu_idle_w_per_v2ghz: Dynamic power of one clock-gated core.
        cpu_leak_w_per_v: CPU-plane leakage per volt.
        cpu_cores: Number of CPU cores on the plane.
        gpu_idle_leak_w: GPU rail leakage when the GPU is idle (between
            kernels, e.g. while the MPC optimizer runs on the CPU).
        tdp_w: Chip thermal design power (used by Turbo Core).
    """

    gpu_dyn_w_per_cu_v2ghz: float = 3.2
    gpu_leak_base_w_per_v: float = 1.2
    gpu_leak_w_per_cu_v: float = 0.55
    nb_dyn_w_per_v2ghz: float = 1.4
    nb_leak_w_per_v: float = 0.8
    dram_w_per_gbps: float = 0.12
    dram_base_w: float = 1.5
    cpu_busy_w_per_v2ghz: float = 2.2
    cpu_idle_w_per_v2ghz: float = 0.3
    cpu_leak_w_per_v: float = 3.0
    cpu_cores: int = 4
    gpu_idle_leak_w: float = 1.6
    tdp_w: float = 95.0


class PowerModel:
    """Computes component powers for kernels and manager phases."""

    def __init__(self, params: PowerModelParams = PowerModelParams(),
                 thermal: ThermalModel = ThermalModel()) -> None:
        self.params = params
        self.thermal = thermal

    # ----- component building blocks -------------------------------------

    def cpu_power(self, config: HardwareConfig, busy_cores: int = 1,
                  leak_factor: float = 1.0) -> float:
        """CPU-plane power with ``busy_cores`` spinning, rest gated."""
        p = self.params
        if not 0 <= busy_cores <= p.cpu_cores:
            raise ValueError("busy_cores out of range")
        state = config.cpu_state
        v2f = state.voltage**2 * state.freq_ghz
        dynamic = (
            busy_cores * p.cpu_busy_w_per_v2ghz
            + (p.cpu_cores - busy_cores) * p.cpu_idle_w_per_v2ghz
        ) * v2f
        leakage = p.cpu_leak_w_per_v * state.voltage * leak_factor
        return dynamic + leakage

    def gpu_dynamic_power(self, config: HardwareConfig, compute_util: float,
                          activity: float = 1.0) -> float:
        """GPU core switching power at a utilization/activity level."""
        p = self.params
        v_rail = config.rail_voltage
        return (
            p.gpu_dyn_w_per_cu_v2ghz
            * config.cu
            * v_rail**2
            * config.gpu_state.freq_ghz
            * compute_util
            * activity
        )

    def gpu_leakage_power(self, config: HardwareConfig,
                          leak_factor: float = 1.0) -> float:
        """GPU leakage: inactive CUs are power-gated and leak nothing."""
        p = self.params
        v_rail = config.rail_voltage
        nominal = (p.gpu_leak_base_w_per_v + p.gpu_leak_w_per_cu_v * config.cu) * v_rail
        return nominal * leak_factor

    def nb_power(self, config: HardwareConfig, achieved_bw_gbps: float,
                 leak_factor: float = 1.0) -> float:
        """Northbridge + DRAM interface power."""
        p = self.params
        v_rail = config.rail_voltage
        dynamic = p.nb_dyn_w_per_v2ghz * v_rail**2 * config.nb_state.freq_ghz
        leakage = p.nb_leak_w_per_v * v_rail * leak_factor
        dram = p.dram_base_w + p.dram_w_per_gbps * achieved_bw_gbps
        return dynamic + leakage + dram

    # ----- whole-chip scenarios -------------------------------------------

    def kernel_power(self, config: HardwareConfig, timing: KernelTiming,
                     activity: float = 1.0) -> PowerBreakdown:
        """Average chip power while a kernel runs at ``config``.

        The CPU busy-waits (one spinning core).  Leakage and temperature
        are solved self-consistently through the thermal model.
        """
        gpu_dyn = self.gpu_dynamic_power(config, timing.compute_utilization, activity)
        nb_base = self.nb_power(config, timing.achieved_bandwidth_gbps, leak_factor=1.0)
        cpu_dyn_only = self.cpu_power(config, busy_cores=1, leak_factor=0.0)

        nominal_leak = (
            self.gpu_leakage_power(config, 1.0)
            + self.params.cpu_leak_w_per_v * config.cpu_state.voltage
        )
        dynamic = gpu_dyn + nb_base + cpu_dyn_only
        temp, factor = self.thermal.solve(dynamic, nominal_leak)

        return PowerBreakdown(
            gpu_dynamic_w=gpu_dyn,
            gpu_leakage_w=self.gpu_leakage_power(config, factor),
            nb_w=nb_base,
            cpu_w=self.cpu_power(config, busy_cores=1, leak_factor=factor),
            temperature_c=temp,
        )

    def kernel_power_matrix(
        self, table: ConfigTable, timing: KernelTimingMatrix,
        activity: float = 1.0, indices: Optional[np.ndarray] = None,
    ) -> PowerBreakdownMatrix:
        """Columnar :meth:`kernel_power` over a :class:`ConfigTable`.

        Elementwise float64 with the same operation order as the scalar
        path (including the coefficient groupings and the thermal
        fixed-point), so each row is float-for-float identical to
        ``kernel_power(configs[i], timing_i, activity)``.

        Args:
            table: Columnar configuration set.
            timing: Timing columns for the same rows (from
                :meth:`TimingModel.kernel_timing_matrix`).
            activity: The kernel's switching activity factor.
            indices: Optional flat row indices; all rows when ``None``.
        """
        p = self.params
        if indices is None:
            v_rail = table.rail_voltage
            cu = table.cu_count
            f_gpu = table.gpu_freq_ghz
            nb_freq = table.nb_freq_ghz
            cpu_voltage = table.cpu_voltage
            cpu_freq = table.cpu_freq_ghz
        else:
            v_rail = table.rail_voltage[indices]
            cu = table.cu_count[indices]
            f_gpu = table.gpu_freq_ghz[indices]
            nb_freq = table.nb_freq_ghz[indices]
            cpu_voltage = table.cpu_voltage[indices]
            cpu_freq = table.cpu_freq_ghz[indices]

        gpu_dyn = (
            p.gpu_dyn_w_per_cu_v2ghz
            * cu
            * v_rail**2
            * f_gpu
            * timing.compute_utilization
            * activity
        )

        nb_dynamic = p.nb_dyn_w_per_v2ghz * v_rail**2 * nb_freq
        nb_leakage = p.nb_leak_w_per_v * v_rail * 1.0
        dram = p.dram_base_w + p.dram_w_per_gbps * timing.achieved_bandwidth_gbps
        nb_base = nb_dynamic + nb_leakage + dram

        # cpu_power(config, busy_cores=1, leak_factor=...): the same
        # coefficient grouping as the scalar path, leakage split out so
        # the leak factor applies per element.
        cpu_coef = (
            1 * p.cpu_busy_w_per_v2ghz
            + (p.cpu_cores - 1) * p.cpu_idle_w_per_v2ghz
        )
        v2f = cpu_voltage**2 * cpu_freq
        cpu_dynamic = cpu_coef * v2f
        cpu_dyn_only = cpu_dynamic + p.cpu_leak_w_per_v * cpu_voltage * 0.0

        gpu_leak_nominal = (
            p.gpu_leak_base_w_per_v + p.gpu_leak_w_per_cu_v * cu
        ) * v_rail
        nominal_leak = gpu_leak_nominal * 1.0 + p.cpu_leak_w_per_v * cpu_voltage
        dynamic = gpu_dyn + nb_base + cpu_dyn_only
        temp, factor = self.thermal.solve_many(dynamic, nominal_leak)

        return PowerBreakdownMatrix(
            gpu_dynamic_w=gpu_dyn,
            gpu_leakage_w=gpu_leak_nominal * factor,
            nb_w=nb_base,
            cpu_w=cpu_dynamic + p.cpu_leak_w_per_v * cpu_voltage * factor,
            temperature_c=temp,
        )

    def manager_power(self, config: HardwareConfig) -> PowerBreakdown:
        """Chip power while the power-management algorithm runs on the CPU.

        The GPU is idle between kernels: no dynamic power, only the idle
        rail leakage (charged to the GPU as the paper's "static energy
        overhead of the GPU during MPC optimization").
        """
        cpu_dyn_only = self.cpu_power(config, busy_cores=1, leak_factor=0.0)
        nominal_leak = (
            self.params.gpu_idle_leak_w
            + self.params.cpu_leak_w_per_v * config.cpu_state.voltage
        )
        temp, factor = self.thermal.solve(cpu_dyn_only, nominal_leak)
        return PowerBreakdown(
            gpu_dynamic_w=0.0,
            gpu_leakage_w=self.params.gpu_idle_leak_w * factor,
            nb_w=0.0,
            cpu_w=self.cpu_power(config, busy_cores=1, leak_factor=factor),
            temperature_c=temp,
        )

    def within_tdp(self, breakdown: PowerBreakdown) -> bool:
        """Whether a power breakdown respects the chip TDP."""
        return breakdown.total_w <= self.params.tdp_w
