"""DVFS state tables for the modelled AMD A10-7850K APU.

This module transcribes Table I of the paper: the software-visible CPU,
northbridge (NB), and GPU DVFS states of the AMD A10-7850K.  Each state
maps to a (voltage, frequency) operating point.  The NB states
additionally map to a memory-bus frequency, because on this part the
memory controller clock is tied to the NB clock domain.

Two details of the real part matter for power management and are modelled
here exactly as the paper describes them:

* The GPU and the NB share a single voltage rail.  The rail must satisfy
  the *maximum* of the two domains' voltage requirements, so a high NB
  state can prevent the GPU voltage from dropping even when the GPU
  frequency is reduced (see :func:`rail_voltage`).
* NB2 through NB0 run the DRAM bus at the same 800 MHz, so memory-bound
  kernels see no bandwidth benefit above NB2; only NB3 (333 MHz bus)
  reduces available bandwidth.

The NB per-state voltages are not published in the paper (the paper only
gives NB frequencies); the values used here are interpolated so that the
shared-rail effects described in Section II-A are reproduced: lowering
the GPU DPM state below the NB requirement stops saving voltage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Tuple

__all__ = [
    "DvfsState",
    "CPU_PSTATES",
    "NB_PSTATES",
    "GPU_DPM_STATES",
    "NB_MEMORY_FREQ_MHZ",
    "NB_RAIL_VOLTAGE",
    "CU_COUNTS",
    "SEARCHED_GPU_STATES",
    "rail_voltage",
    "memory_bus_bandwidth_gbps",
]


@dataclass(frozen=True)
class DvfsState:
    """A single DVFS operating point.

    Attributes:
        name: Human-readable state label, e.g. ``"P1"`` or ``"DPM4"``.
        voltage: Supply voltage in volts for this state.
        freq_ghz: Clock frequency in GHz for this state.
    """

    name: str
    voltage: float
    freq_ghz: float

    def __str__(self) -> str:
        return f"{self.name}({self.voltage:.4g} V, {self.freq_ghz:.4g} GHz)"


def _table(rows) -> Mapping[str, DvfsState]:
    return {name: DvfsState(name, volt, freq) for name, volt, freq in rows}


#: CPU P-states from Table I.  P1 is the fastest software-visible state.
CPU_PSTATES: Mapping[str, DvfsState] = _table(
    [
        ("P1", 1.3250, 3.9),
        ("P2", 1.3125, 3.8),
        ("P3", 1.2625, 3.7),
        ("P4", 1.2250, 3.5),
        ("P5", 1.0625, 3.0),
        ("P6", 0.9750, 2.4),
        ("P7", 0.8875, 1.7),
    ]
)

#: Northbridge states from Table I (frequency only; voltages modelled).
NB_PSTATES: Mapping[str, DvfsState] = _table(
    [
        ("NB0", 1.1500, 1.8),
        ("NB1", 1.0875, 1.6),
        ("NB2", 1.0250, 1.4),
        ("NB3", 0.9125, 1.1),
    ]
)

#: Memory bus frequency in MHz for each NB state (Table I).
NB_MEMORY_FREQ_MHZ: Mapping[str, int] = {
    "NB0": 800,
    "NB1": 800,
    "NB2": 800,
    "NB3": 333,
}

#: Voltage the shared GPU/NB rail must provide for each NB state.
NB_RAIL_VOLTAGE: Mapping[str, float] = {
    name: state.voltage for name, state in NB_PSTATES.items()
}

#: GPU DPM states from Table I.  DPM4 is the fastest.
GPU_DPM_STATES: Mapping[str, DvfsState] = _table(
    [
        ("DPM0", 0.9500, 0.351),
        ("DPM1", 1.0500, 0.450),
        ("DPM2", 1.1250, 0.553),
        ("DPM3", 1.1875, 0.654),
        ("DPM4", 1.2250, 0.720),
    ]
)

#: The paper's characterization sweeps three of the five GPU DPM states
#: (336 = 7 CPU x 4 NB x 3 GPU x 4 CU configurations); we use the same
#: subset: the slowest, the middle, and the fastest DPM state.
SEARCHED_GPU_STATES: Tuple[str, ...] = ("DPM0", "DPM2", "DPM4")

#: Active GPU compute-unit counts explored by the paper (2 to 8, step 2).
CU_COUNTS: Tuple[int, ...] = (2, 4, 6, 8)

#: Peak DRAM bandwidth in GB/s per MHz of memory bus frequency.  A dual
#: channel 128-bit DDR3 interface moves 32 bytes per bus cycle, i.e.
#: 0.032 GB/s per MHz: 800 MHz -> 25.6 GB/s, 333 MHz -> 10.7 GB/s.
_GBPS_PER_MHZ = 0.032


def rail_voltage(gpu_state: str, nb_state: str) -> float:
    """Voltage of the shared GPU/NB rail for a pair of domain states.

    The rail must satisfy whichever domain asks for more, so the rail
    voltage is the maximum of the GPU DPM voltage and the NB state's
    rail requirement.  This reproduces the paper's observation that
    "higher NB states can prevent reducing the GPU's voltage along with
    the frequency".

    Args:
        gpu_state: GPU DPM state name, e.g. ``"DPM2"``.
        nb_state: NB state name, e.g. ``"NB0"``.

    Returns:
        The rail voltage in volts.
    """
    return max(GPU_DPM_STATES[gpu_state].voltage, NB_RAIL_VOLTAGE[nb_state])


def memory_bus_bandwidth_gbps(nb_state: str) -> float:
    """Peak DRAM bandwidth in GB/s available at an NB state.

    NB0 through NB2 share the same 800 MHz DRAM bus and therefore the
    same peak bandwidth; NB3 drops the bus to 333 MHz.

    Args:
        nb_state: NB state name.

    Returns:
        Peak DRAM bandwidth in GB/s.
    """
    return NB_MEMORY_FREQ_MHZ[nb_state] * _GBPS_PER_MHZ
