"""Ground-truth kernel timing model.

This module computes how long a kernel launch takes at a given hardware
configuration.  It stands in for the paper's physical measurements of
336 (kernel, configuration) points on the AMD A10-7850K, using a
roofline-style model that reproduces the four scaling behaviours of the
paper's Figure 2:

* compute time scales with active CUs (Amdahl-limited) and GPU clock;
* memory time scales with achievable DRAM bandwidth, which the NB state
  caps (NB0-NB2 share the same 800 MHz bus, NB3 drops to 333 MHz) and
  which a small GPU configuration may be unable to saturate;
* "peak" kernels generate *extra* memory traffic when too many CUs
  thrash the shared cache, so their throughput peaks mid-axis;
* unscalable kernels carry a fixed serial term no knob can shrink.

All times are seconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.hardware.config import HardwareConfig
from repro.hardware.table import ConfigTable

if TYPE_CHECKING:  # imported lazily to avoid a hardware <-> workloads cycle
    from repro.workloads.kernel import KernelSpec

__all__ = ["KernelTiming", "KernelTimingMatrix", "TimingModel"]

#: Vector lanes per GPU compute unit (GCN-style SIMD width).
LANES_PER_CU = 64

#: GB/s of memory demand one CU can generate per GHz of GPU clock.
#: Memory-level parallelism is limited per CU, so small or slow GPU
#: configurations cannot saturate the DRAM bus: at [8 CU, DPM4] the cap
#: (6 * 8 * 0.72 = 34.6 GB/s) clears the 25.6 GB/s bus, but half the
#: CUs (or DPM0) leave bandwidth on the table.  Calibrated against the
#: paper's Figure 2(b), where the memory-bound kernel speeds up ~2.4x
#: from 2 to 8 CUs at NB0 before saturating.
BW_DEMAND_PER_CU_GHZ = 6.0


@dataclass(frozen=True)
class KernelTiming:
    """Timing breakdown of one kernel launch.

    Attributes:
        compute_time_s: Time the compute pipeline needs, in isolation.
        memory_time_s: Time the memory system needs, in isolation.
        serial_time_s: Fixed serial/launch time.
        total_time_s: Wall-clock kernel time (serial + max of the two
            overlapped components).
        achieved_bandwidth_gbps: DRAM bandwidth actually consumed.
        effective_memory_traffic_gb: Memory traffic after shared-cache
            interference inflation.
    """

    compute_time_s: float
    memory_time_s: float
    serial_time_s: float
    total_time_s: float
    achieved_bandwidth_gbps: float
    effective_memory_traffic_gb: float

    @property
    def compute_utilization(self) -> float:
        """Fraction of the overlapped window the compute pipeline is busy."""
        window = self.total_time_s - self.serial_time_s
        if window <= 0:
            return 0.0
        return min(1.0, self.compute_time_s / window)

    @property
    def memory_utilization(self) -> float:
        """Fraction of the overlapped window the memory system is busy."""
        window = self.total_time_s - self.serial_time_s
        if window <= 0:
            return 0.0
        return min(1.0, self.memory_time_s / window)


@dataclass(frozen=True)
class KernelTimingMatrix:
    """Per-config timing columns for one kernel over many configurations.

    The struct-of-arrays twin of :class:`KernelTiming`: every field is a
    float64 array indexed like the source :class:`ConfigTable` rows, and
    every element equals the corresponding scalar field float for float.
    """

    compute_time_s: np.ndarray
    memory_time_s: np.ndarray
    serial_time_s: float
    total_time_s: np.ndarray
    achieved_bandwidth_gbps: np.ndarray
    effective_memory_traffic_gb: np.ndarray

    @property
    def compute_utilization(self) -> np.ndarray:
        """Elementwise :attr:`KernelTiming.compute_utilization`."""
        window = self.total_time_s - self.serial_time_s
        util = np.zeros_like(window)
        np.divide(self.compute_time_s, window, out=util, where=window > 0)
        return np.minimum(1.0, util)


class TimingModel:
    """Roofline-style ground-truth timing for kernels on the APU.

    Args:
        lanes_per_cu: SIMD lanes per compute unit.
        bw_demand_per_cu_ghz: Memory request-rate cap per CU per GHz.
    """

    def __init__(
        self,
        lanes_per_cu: int = LANES_PER_CU,
        bw_demand_per_cu_ghz: float = BW_DEMAND_PER_CU_GHZ,
    ) -> None:
        if lanes_per_cu <= 0:
            raise ValueError("lanes_per_cu must be positive")
        if bw_demand_per_cu_ghz <= 0:
            raise ValueError("bw_demand_per_cu_ghz must be positive")
        self.lanes_per_cu = lanes_per_cu
        self.bw_demand_per_cu_ghz = bw_demand_per_cu_ghz

    def amdahl_speedup(self, spec: KernelSpec, cu: int) -> float:
        """Compute-side speedup of ``cu`` CUs over a single CU."""
        p = spec.parallel_fraction
        return 1.0 / ((1.0 - p) + p / cu)

    def effective_memory_traffic(self, spec: KernelSpec, cu: int) -> float:
        """Memory traffic in GB including shared-cache interference.

        Beyond ``cache_sweet_spot_cu`` active CUs, each extra CU inflates
        off-chip traffic by ``cache_interference`` of the base amount —
        the destructive interference that makes "peak" kernels fastest
        at a mid-size configuration.
        """
        extra_cus = max(0, cu - spec.cache_sweet_spot_cu)
        return spec.memory_traffic * (1.0 + spec.cache_interference * extra_cus)

    def achievable_bandwidth(self, spec: KernelSpec, config: HardwareConfig) -> float:
        """DRAM bandwidth in GB/s this kernel can pull at this config.

        The bus bandwidth is set by the NB state; a small/slow GPU
        configuration may additionally be request-rate limited.
        """
        bus = config.memory_bandwidth_gbps
        demand = self.bw_demand_per_cu_ghz * config.cu * config.gpu_state.freq_ghz
        return min(bus, demand)

    def kernel_timing(self, spec: KernelSpec, config: HardwareConfig) -> KernelTiming:
        """Full timing breakdown of one kernel launch at one config."""
        f_gpu = config.gpu_state.freq_ghz
        lane_rate = (
            self.lanes_per_cu
            * f_gpu
            * spec.compute_efficiency
            * self.amdahl_speedup(spec, config.cu)
        )  # giga-lane-ops per second

        compute_time = spec.compute_work / lane_rate if spec.compute_work else 0.0

        traffic = self.effective_memory_traffic(spec, config.cu)
        bandwidth = self.achievable_bandwidth(spec, config)
        memory_time = traffic / bandwidth if traffic else 0.0

        overlapped = max(compute_time, memory_time)
        total = spec.serial_time_s + overlapped
        achieved = traffic / overlapped if overlapped > 0 and traffic else 0.0

        return KernelTiming(
            compute_time_s=compute_time,
            memory_time_s=memory_time,
            serial_time_s=spec.serial_time_s,
            total_time_s=total,
            achieved_bandwidth_gbps=achieved,
            effective_memory_traffic_gb=traffic,
        )

    def kernel_time(self, spec: KernelSpec, config: HardwareConfig) -> float:
        """Wall-clock seconds for one launch of ``spec`` at ``config``."""
        return self.kernel_timing(spec, config).total_time_s

    def kernel_timing_matrix(
        self, spec: KernelSpec, table: ConfigTable,
        indices: Optional[np.ndarray] = None,
    ) -> KernelTimingMatrix:
        """Timing breakdowns for one kernel over many configurations.

        Columnar counterpart of :meth:`kernel_timing`, evaluated against
        a :class:`ConfigTable`.  Every operation is elementwise float64
        in the same order as the scalar model, so each row is
        float-for-float identical to ``kernel_timing(spec, configs[i])``
        — the golden-result suite depends on that.

        Args:
            spec: The kernel.
            table: Columnar configuration set.
            indices: Optional flat row indices; all rows when ``None``.
        """
        if indices is None:
            f_gpu = table.gpu_freq_ghz
            cu = table.cu_count
            bus = table.memory_bw_gbps
        else:
            f_gpu = table.gpu_freq_ghz[indices]
            cu = table.cu_count[indices]
            bus = table.memory_bw_gbps[indices]

        p = spec.parallel_fraction
        speedup = 1.0 / ((1.0 - p) + p / cu)
        lane_rate = (
            self.lanes_per_cu * f_gpu * spec.compute_efficiency * speedup
        )

        if spec.compute_work:
            compute_time = spec.compute_work / lane_rate
        else:
            compute_time = np.zeros_like(lane_rate)

        extra_cus = np.maximum(0, cu - spec.cache_sweet_spot_cu)
        traffic = spec.memory_traffic * (1.0 + spec.cache_interference * extra_cus)
        bandwidth = np.minimum(bus, self.bw_demand_per_cu_ghz * cu * f_gpu)
        memory_time = np.zeros_like(traffic)
        np.divide(traffic, bandwidth, out=memory_time, where=traffic != 0.0)

        overlapped = np.maximum(compute_time, memory_time)
        total = spec.serial_time_s + overlapped
        achieved = np.zeros_like(traffic)
        np.divide(
            traffic, overlapped, out=achieved,
            where=(overlapped > 0) & (traffic != 0.0),
        )

        return KernelTimingMatrix(
            compute_time_s=compute_time,
            memory_time_s=memory_time,
            serial_time_s=spec.serial_time_s,
            total_time_s=total,
            achieved_bandwidth_gbps=achieved,
            effective_memory_traffic_gb=traffic,
        )
