"""Thermal model: die temperature and leakage coupling.

The paper notes that lowering CPU DVFS states "can slightly reduce the
GPU power due to a reduction in temperature and leakage" (Section II-A).
This module provides the small fixed-point model that realizes that
coupling: die temperature rises linearly with total chip power through a
thermal resistance, and static (leakage) power grows linearly with
temperature around a reference point.

The coupling is deliberately mild — it produces the second-order effect
the paper describes without dominating the energy landscape.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ThermalModel"]


@dataclass(frozen=True)
class ThermalModel:
    """Linear thermal resistance + linearized leakage-vs-temperature.

    Attributes:
        ambient_c: Ambient (idle die) temperature in Celsius.
        theta_c_per_w: Thermal resistance junction-to-ambient, °C/W.
        leakage_tc_per_c: Fractional leakage increase per °C above the
            reference temperature.
        reference_c: Temperature at which the nominal leakage
            coefficients are specified.
    """

    ambient_c: float = 45.0
    theta_c_per_w: float = 0.35
    leakage_tc_per_c: float = 0.008
    reference_c: float = 65.0

    def temperature(self, total_power_w: float) -> float:
        """Steady-state die temperature at a given total chip power."""
        if total_power_w < 0:
            raise ValueError("power must be non-negative")
        return self.ambient_c + self.theta_c_per_w * total_power_w

    def leakage_factor(self, temperature_c: float) -> float:
        """Multiplier on nominal leakage power at a die temperature."""
        factor = 1.0 + self.leakage_tc_per_c * (temperature_c - self.reference_c)
        return max(0.5, factor)

    def solve(self, dynamic_power_w: float, nominal_leakage_w: float,
              iterations: int = 3) -> tuple:
        """Fixed-point solve for (temperature, leakage factor).

        Leakage depends on temperature and temperature on total power
        (dynamic + leakage); a few fixed-point iterations converge to
        well under 0.1 °C for realistic chip powers.

        Args:
            dynamic_power_w: Temperature-independent power in watts.
            nominal_leakage_w: Leakage at the reference temperature.
            iterations: Fixed-point iterations to run.

        Returns:
            Tuple ``(temperature_c, leakage_factor)``.
        """
        factor = 1.0
        temp = self.temperature(dynamic_power_w + nominal_leakage_w)
        for _ in range(iterations):
            factor = self.leakage_factor(temp)
            temp = self.temperature(dynamic_power_w + nominal_leakage_w * factor)
        return temp, factor

    def solve_many(self, dynamic_power_w: np.ndarray,
                   nominal_leakage_w: np.ndarray,
                   iterations: int = 3) -> tuple:
        """Vectorized :meth:`solve` over arrays of power points.

        Elementwise float64 with the same operation order and iteration
        count as the scalar solve, so results are float-for-float
        identical per element (the columnar decide path depends on
        this).  Inputs are assumed non-negative — the scalar path's
        negative-power guard is the caller's job here.

        Returns:
            Tuple ``(temperature_c, leakage_factor)`` of arrays.
        """
        temp = self.ambient_c + self.theta_c_per_w * (
            dynamic_power_w + nominal_leakage_w
        )
        factor = np.ones_like(temp)
        for _ in range(iterations):
            factor = np.maximum(
                0.5, 1.0 + self.leakage_tc_per_c * (temp - self.reference_c)
            )
            temp = self.ambient_c + self.theta_c_per_w * (
                dynamic_power_w + nominal_leakage_w * factor
            )
        return temp, factor
