"""Columnar (struct-of-arrays) encoding of a configuration space.

The decide hot path evaluates hundreds of candidate configurations per
kernel boundary.  Doing that one :class:`~repro.hardware.config.HardwareConfig`
dataclass at a time — ``replace()`` allocation, ``axis.index()`` scans,
per-row feature assembly — costs more than the model math itself.
:class:`ConfigTable` encodes a :class:`~repro.hardware.config.ConfigSpace`
*once* as numpy columns so the optimizer, the predictors, and the
ground-truth models can work on flat index arrays:

* one float64 column per hardware quantity (clocks, voltages, rail
  voltage, memory bandwidth, CU count),
* the static per-config block of the ML feature matrix (the seven
  hardware columns of :data:`repro.ml.dataset.FEATURE_NAMES`), and
* O(1) flat-index <-> config mapping plus pure-arithmetic knob stepping
  (strides instead of ``replace()``/``axis.index()``).

Flat order is exactly :meth:`ConfigSpace.all_configs` order (CPU
slowest-varying, CU fastest-varying), so ``table.configs[i]`` and
``space.all_configs()[i]`` always agree.

Every column is computed eagerly in ``__init__`` from the same scalar
``HardwareConfig`` properties the scalar path reads, so columnar math
over these columns is float-for-float identical to the scalar path.
Instances are plain data — safe to pickle into engine worker processes
(RL004) and stable under ``engine.fingerprint.describe()`` (RL003): the
only derived state that depends on *usage* (the per-CPU-power-model
column memo) lives in a module-level ``WeakKeyDictionary``, never in
``__dict__``.
"""

from __future__ import annotations

import weakref
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.hardware.config import KNOBS, ConfigSpace, HardwareConfig

__all__ = [
    "ConfigTable",
    "lattice_feature_key",
    "register_shared_feature_block",
    "shared_feature_block",
    "clear_shared_feature_blocks",
]

#: Position of each knob in the canonical (cpu, nb, gpu, cu) order.
_KNOB_POS = {knob: position for position, knob in enumerate(KNOBS)}

#: Process-wide registry of zero-copy feature blocks keyed by
#: :func:`lattice_feature_key`.  Engine workers attach the parent's
#: ``multiprocessing.shared_memory`` export here (see
#: :mod:`repro.engine.shm`) so every lattice table they build maps the
#: one shared block instead of recomputing and re-pickling it per task.
#: Module-level — never table state — so registration can't perturb
#: pickles or fingerprints of existing tables.
_SHARED_FEATURE_BLOCKS: Dict[Tuple, np.ndarray] = {}


def lattice_feature_key(space: ConfigSpace) -> Tuple:
    """Hashable identity of a space's feature block.

    Two spaces with equal keys enumerate identical config lattices and
    therefore identical feature blocks (the block is a deterministic
    pure function of the axes).
    """
    return (
        tuple(space.cpu_axis),
        tuple(space.nb_axis),
        tuple(space.gpu_axis),
        tuple(space.cu_axis),
    )


def register_shared_feature_block(key: Tuple, block: np.ndarray) -> None:
    """Adopt ``block`` for every lattice table built for ``key``'s space.

    The block must be the exact ``(n_configs, 7)`` float64 feature
    block the space would compute itself — callers ship it from a
    process that did (the engine parent).  A read-only view is kept so
    no table can scribble on shared pages.
    """
    block = np.asarray(block, dtype=float)
    if block.ndim != 2 or block.shape[1] != 7:
        raise ValueError(f"feature block must be (n, 7); got {block.shape}")
    view = block.view()
    view.setflags(write=False)
    _SHARED_FEATURE_BLOCKS[key] = view


def shared_feature_block(key: Tuple) -> Optional[np.ndarray]:
    """The registered shared block for a lattice key, if any."""
    return _SHARED_FEATURE_BLOCKS.get(key)


def clear_shared_feature_blocks() -> None:
    """Drop all registered shared blocks (tables already built keep
    their views; the underlying segments outlive this registry)."""
    _SHARED_FEATURE_BLOCKS.clear()

#: Per-table memo of CPU-power columns, keyed by the CPU model's
#: ``(coef, static)`` coefficients.  Module-level (weak-keyed) rather
#: than an instance attribute so a warm table pickles and fingerprints
#: identically to a cold one.  Entries are plain dicts keyed by the
#: coefficient pair, so stale hits are impossible (a changed CPU model
#: is a different key) — hence ``memo-guard=keyed``.
# repro-lint: memo-guard=keyed
_CPU_POWER_COLUMNS: "weakref.WeakKeyDictionary[ConfigTable, Dict[Tuple[float, float], np.ndarray]]" = (
    weakref.WeakKeyDictionary()
)


class ConfigTable:
    """A configuration set encoded as numpy struct-of-arrays.

    Build with :class:`ConfigSpace` for the full lattice (index grids
    and knob stepping included) or :meth:`from_configs` for an ad-hoc
    configuration list (columns only — used by the scalar-API wrappers).

    Attributes:
        space: The source space, or ``None`` for an ad-hoc table.
        configs: The configurations, in flat order.
        cpu_freq_ghz / cpu_voltage / nb_freq_ghz / memory_bw_gbps /
            gpu_freq_ghz / rail_voltage / cu_count: float64 columns.
        feature_block: ``(n, 7)`` static hardware block of the model
            feature matrix, columns in ``FEATURE_NAMES`` order.
        cpu_index / nb_index / gpu_index / cu_index: per-config knob
            axis indices (lattice tables only).
    """

    def __init__(self, space: ConfigSpace) -> None:
        self.space: Optional[ConfigSpace] = space
        self._init_columns(
            tuple(space.all_configs()),
            shared=_SHARED_FEATURE_BLOCKS.get(lattice_feature_key(space)),
        )
        lengths = tuple(len(space.axis(knob)) for knob in KNOBS)
        n_cpu, n_nb, n_gpu, n_cu = lengths
        self._axis_lengths: Optional[Tuple[int, ...]] = lengths
        self._strides: Optional[Tuple[int, ...]] = (
            n_nb * n_gpu * n_cu, n_gpu * n_cu, n_cu, 1,
        )
        flat = np.arange(len(self.configs), dtype=np.intp)
        self.cpu_index = flat // self._strides[0]
        self.nb_index = (flat // self._strides[1]) % n_nb
        self.gpu_index = (flat // self._strides[2]) % n_gpu
        self.cu_index = flat % n_cu

    @classmethod
    def from_configs(cls, configs: Sequence[HardwareConfig]) -> "ConfigTable":
        """Columnar view of an arbitrary configuration list.

        No lattice structure: ``config_at`` and the columns work, the
        index-arithmetic helpers (stepping, ``index_of_config``) do not.
        """
        if not configs:
            raise ValueError("need at least one configuration")
        table = cls.__new__(cls)
        table.space = None
        table._axis_lengths = None
        table._strides = None
        table._init_columns(tuple(configs))
        return table

    def _init_columns(
        self,
        configs: Tuple[HardwareConfig, ...],
        shared: Optional[np.ndarray] = None,
    ) -> None:
        self.configs = configs
        if shared is not None and shared.shape == (len(configs), 7):
            # Zero-copy adoption: the feature block maps the registered
            # shared segment directly (read-only); the per-quantity
            # columns are contiguous copies of its columns.  The block
            # is a deterministic pure function of the config lattice,
            # so these are the exact floats the loops below compute.
            (
                self.cpu_freq_ghz,
                self.cpu_voltage,
                self.nb_freq_ghz,
                self.memory_bw_gbps,
                self.gpu_freq_ghz,
                self.rail_voltage,
                self.cu_count,
            ) = (np.ascontiguousarray(shared[:, i]) for i in range(7))
            # Assigned after the columns, matching the else-branch's
            # attribute order: pickled __dict__ order must not depend
            # on which branch built the table.
            self.feature_block = shared
        else:
            self.cpu_freq_ghz = np.array([c.cpu_state.freq_ghz for c in configs])
            self.cpu_voltage = np.array([c.cpu_state.voltage for c in configs])
            self.nb_freq_ghz = np.array([c.nb_state.freq_ghz for c in configs])
            self.memory_bw_gbps = np.array([c.memory_bandwidth_gbps for c in configs])
            self.gpu_freq_ghz = np.array([c.gpu_state.freq_ghz for c in configs])
            self.rail_voltage = np.array([c.rail_voltage for c in configs])
            self.cu_count = np.array([float(c.cu) for c in configs])
            # Static hardware block of build_features(), FEATURE_NAMES order.
            self.feature_block = np.column_stack(
                [
                    self.cpu_freq_ghz,
                    self.cpu_voltage,
                    self.nb_freq_ghz,
                    self.memory_bw_gbps,
                    self.gpu_freq_ghz,
                    self.rail_voltage,
                    self.cu_count,
                ]
            )
        # CPU power depends on the CPU P-state only; remember one
        # representative config per distinct P-state so a power column
        # is |P-states| scalar model calls plus one gather.
        codes = np.empty(len(configs), dtype=np.intp)
        seen: Dict[str, int] = {}
        representatives = []
        for i, config in enumerate(configs):
            code = seen.get(config.cpu)
            if code is None:
                code = seen[config.cpu] = len(representatives)
                representatives.append(config)
            codes[i] = code
        self._cpu_representatives: Tuple[HardwareConfig, ...] = tuple(representatives)
        self._cpu_state_codes = codes

    # ----- size and index <-> config mapping --------------------------------

    def __len__(self) -> int:
        return len(self.configs)

    def config_at(self, index: int) -> HardwareConfig:
        """The configuration at a flat index (O(1))."""
        return self.configs[index]

    def index_of_config(self, config: HardwareConfig) -> int:
        """Flat index of a configuration (O(1); lattice tables only).

        Raises:
            ValueError: If the config is off the lattice, or the table
                was built with :meth:`from_configs`.
        """
        space = self._require_lattice()
        strides = self._strides
        assert strides is not None
        return (
            strides[0] * space.index_of(KNOBS[0], config.cpu)
            + strides[1] * space.index_of(KNOBS[1], config.nb)
            + strides[2] * space.index_of(KNOBS[2], config.gpu)
            + strides[3] * space.index_of(KNOBS[3], config.cu)
        )

    def _require_lattice(self) -> ConfigSpace:
        if self.space is None:
            raise ValueError("ad-hoc ConfigTable has no lattice structure")
        return self.space

    # ----- index-space knob arithmetic ---------------------------------------

    def axis_length(self, knob: str) -> int:
        """Number of values on a knob's axis (lattice tables only)."""
        self._require_lattice()
        assert self._axis_lengths is not None
        return self._axis_lengths[_KNOB_POS[knob]]

    def axis_position(self, index: int, knob: str) -> int:
        """The knob's axis index at a flat config index."""
        self._require_lattice()
        assert self._strides is not None and self._axis_lengths is not None
        position = _KNOB_POS[knob]
        return (index // self._strides[position]) % self._axis_lengths[position]

    def set_knob(self, index: int, knob: str, axis_index: int) -> int:
        """Flat index with one knob moved to a given axis position."""
        self._require_lattice()
        assert self._strides is not None and self._axis_lengths is not None
        position = _KNOB_POS[knob]
        length = self._axis_lengths[position]
        if not 0 <= axis_index < length:
            raise ValueError(f"axis index {axis_index} off knob {knob!r} (len {length})")
        stride = self._strides[position]
        current = (index // stride) % length
        return index + (axis_index - current) * stride

    def step_index(self, index: int, knob: str, direction: int) -> Optional[int]:
        """Step one knob by +-1 in index space; ``None`` off the axis end.

        The arithmetic twin of :meth:`ConfigSpace.step` — no dataclass
        allocation, no axis scan.
        """
        if direction not in (-1, 1):
            raise ValueError("direction must be +1 or -1")
        self._require_lattice()
        assert self._strides is not None and self._axis_lengths is not None
        position = _KNOB_POS[knob]
        stride = self._strides[position]
        length = self._axis_lengths[position]
        moved = (index // stride) % length + direction
        if moved < 0 or moved >= length:
            return None
        return index + direction * stride

    # ----- derived columns ----------------------------------------------------

    def cpu_power_column(self, cpu_model) -> np.ndarray:
        """Per-config busy-wait CPU power under a calibrated CPU model.

        Computed as one scalar ``cpu_model.predict`` per distinct CPU
        P-state, gathered across the table — the same floats the scalar
        path produces, without the per-config Python loop.  Memoized
        per (table, model coefficients) outside the instance so usage
        never changes pickle/fingerprint state.

        Args:
            cpu_model: A :class:`repro.ml.predictors.CpuPowerModel`
                (duck-typed here to keep ``hardware`` below ``ml`` in
                the layering).
        """
        key = (cpu_model.coef_w_per_v2ghz, cpu_model.static_w)
        memo = _CPU_POWER_COLUMNS.get(self)
        if memo is None:
            memo = {}
            _CPU_POWER_COLUMNS[self] = memo
        column = memo.get(key)
        if column is None:
            per_state = np.array(
                [cpu_model.predict(config) for config in self._cpu_representatives]
            )
            column = per_state[self._cpu_state_codes]
            memo[key] = column
        return column
