"""The pluggable rule registry.

A rule is a plain function registered with the :func:`rule` decorator.
Three shapes exist:

* **module rules** (``scope="module"``) are called once per linted file
  with ``(module, index)`` and yield findings for that file;
* **project rules** (``scope="project"``) are called once per lint run
  with the whole :class:`~repro.analysis.index.ProjectIndex` and may
  relate facts across files (e.g. dataclass fields in one module versus
  the serializer that must cover them in another);
* **flow rules** (``scope="flow"``) share the project-rule calling
  convention but additionally build per-function CFGs and run dataflow
  fixpoints (:mod:`repro.analysis.flow`) — the most expensive tier,
  surfaced as such by ``--list-rules`` and ``--stats``.

Registration is import-time: :mod:`repro.analysis.rules` imports every
rule module, so constructing an engine is enough to see the full
catalogue.  Third-party checks can register the same way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.analysis.findings import Finding, Severity
from repro.analysis.index import ModuleInfo, ProjectIndex

__all__ = ["Rule", "rule", "all_rules", "get_rule", "resolve_selection"]

ModuleCheck = Callable[[ModuleInfo, ProjectIndex], Iterable[Finding]]
ProjectCheck = Callable[[ProjectIndex], Iterable[Finding]]


@dataclass(frozen=True)
class Rule:
    """One registered invariant check.

    Attributes:
        id: Stable identifier (``"RL001"``); used in suppressions and
            ``--select``/``--ignore``.
        name: Short kebab-case name for reports.
        severity: Default severity of the rule's findings.
        description: One-line rationale shown in the catalogue.
        scope: ``"module"``, ``"project"`` or ``"flow"``.
        module_check: Per-file check (module-scope rules).
        project_check: Whole-index check (project- and flow-scope
            rules).
    """

    id: str
    name: str
    severity: Severity
    description: str
    scope: str = "module"
    module_check: Optional[ModuleCheck] = None
    project_check: Optional[ProjectCheck] = None

    @property
    def needs_index(self) -> bool:
        """Whether the rule reads the cross-module ProjectIndex.

        Module rules receive the index but only look at their own
        file; project and flow rules cannot run without it.
        """
        return self.scope in ("project", "flow")


_REGISTRY: Dict[str, Rule] = {}


def rule(
    id: str,
    name: str,
    description: str,
    severity: Severity = Severity.ERROR,
    scope: str = "module",
) -> Callable[[Callable[..., Iterable[Finding]]], Callable[..., Iterable[Finding]]]:
    """Register a check function as a lint rule.

    Args:
        id: Unique rule id; re-registering an id replaces the rule
            (useful for tests), but ids must be unique per run.
        name: Short kebab-case rule name.
        description: One-line rationale.
        severity: Default severity for the rule's findings.
        scope: ``"module"``, ``"project"`` or ``"flow"``.
    """
    if scope not in ("module", "project", "flow"):
        raise ValueError(f"unknown rule scope {scope!r}")

    def decorator(
        check: Callable[..., Iterable[Finding]]
    ) -> Callable[..., Iterable[Finding]]:
        _REGISTRY[id] = Rule(
            id=id,
            name=name,
            severity=severity,
            description=description,
            scope=scope,
            module_check=check if scope == "module" else None,
            project_check=check if scope != "module" else None,
        )
        return check

    return decorator


def all_rules() -> Tuple[Rule, ...]:
    """Every registered rule, ordered by id."""
    return tuple(_REGISTRY[key] for key in sorted(_REGISTRY))


def get_rule(rule_id: str) -> Rule:
    """Look up one rule by id."""
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise KeyError(f"unknown rule {rule_id!r}; known: {known}") from None


def resolve_selection(
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[Rule]:
    """The rules a ``--select``/``--ignore`` pair enables.

    ``select=None`` means every registered rule; unknown ids in either
    list raise ``KeyError`` so typos fail loudly instead of silently
    linting nothing.
    """
    if select is None:
        chosen = list(all_rules())
    else:
        chosen = [get_rule(rule_id) for rule_id in select]
    ignored = {get_rule(rule_id).id for rule_id in (ignore or ())}
    return [r for r in chosen if r.id not in ignored]
