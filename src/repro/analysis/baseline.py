"""JSON finding baselines: adopt new rules without a flag-day.

Turning on a new rule over a mature tree usually surfaces a backlog
of pre-existing findings.  A baseline file lets CI enforce "no *new*
findings" while the backlog is paid down: ``repro lint
--write-baseline lint-baseline.json`` snapshots today's findings, and
``repro lint --baseline lint-baseline.json`` silences exactly those —
anything not in the file still fails the run.

Entries are keyed by ``(path, rule_id, message)`` with a count, not by
line number, so unrelated edits that shift code downward do not
invalidate the baseline; a *new* finding with the same shape in the
same file only slips through while the old one also persists (counts
are consumed one finding per entry).  Baselined findings are reported
in the summary (``N baselined``) so a stale file is visible, and an
entry that no longer matches anything is simply unused — prune by
re-writing the baseline.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from repro.analysis.findings import Finding

__all__ = ["BASELINE_SCHEMA", "Baseline"]

#: Bump when the baseline file layout changes.
BASELINE_SCHEMA = 1

#: (path, rule_id, message) — deliberately line-number free.
_Key = Tuple[str, str, str]


@dataclass
class Baseline:
    """A multiset of accepted findings, keyed by (path, rule, message)."""

    entries: Dict[_Key, int] = field(default_factory=dict)

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        """Snapshot a finding list into a baseline."""
        entries: Dict[_Key, int] = {}
        for finding in findings:
            key = (finding.path, finding.rule_id, finding.message)
            entries[key] = entries.get(key, 0) + 1
        return cls(entries=entries)

    @classmethod
    def parse(cls, text: str) -> "Baseline":
        """Rebuild a baseline from :meth:`render` output.

        Raises:
            ValueError: On an unknown schema or malformed entries, so a
                truncated or hand-mangled file fails the run instead of
                silently accepting nothing.
        """
        payload = json.loads(text)
        if payload.get("schema") != BASELINE_SCHEMA:
            raise ValueError(
                f"unsupported baseline schema: {payload.get('schema')!r}"
            )
        entries: Dict[_Key, int] = {}
        for entry in payload["entries"]:
            key = (
                str(entry["path"]),
                str(entry["rule"]),
                str(entry["message"]),
            )
            count = int(entry["count"])
            if count < 1:
                raise ValueError(f"baseline entry has count {count}: {key!r}")
            entries[key] = entries.get(key, 0) + count
        return cls(entries=entries)

    @classmethod
    def load(cls, path: str) -> "Baseline":
        """Read and parse a baseline file."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.parse(handle.read())

    def render(self) -> str:
        """Stable JSON form (sorted, one entry per distinct finding)."""
        payload = {
            "schema": BASELINE_SCHEMA,
            "tool": "repro-lint-baseline",
            "entries": [
                {
                    "path": path,
                    "rule": rule_id,
                    "message": message,
                    "count": count,
                }
                for (path, rule_id, message), count in sorted(
                    self.entries.items()
                )
            ],
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    def apply(
        self, findings: Iterable[Finding]
    ) -> Tuple[List[Finding], int]:
        """Split findings into (kept, baselined-count).

        Each baseline entry absorbs at most ``count`` matching
        findings; the surplus — a *new* instance of an old shape —
        stays in the kept list and fails the run.
        """
        budget = dict(self.entries)
        kept: List[Finding] = []
        baselined = 0
        for finding in findings:
            key = (finding.path, finding.rule_id, finding.message)
            remaining = budget.get(key, 0)
            if remaining > 0:
                budget[key] = remaining - 1
                baselined += 1
            else:
                kept.append(finding)
        return kept, baselined
