"""The lint engine: discovery, parsing, rule dispatch, suppression.

:func:`run_lint` is the single entry point used by the CLI and the
tests.  It discovers ``*.py`` files under the given paths, parses each
once, builds the cross-module :class:`~repro.analysis.index.ProjectIndex`,
runs the selected rules, filters suppressed findings, and returns a
:class:`LintResult` whose :attr:`~LintResult.exit_code` follows the
usual linter convention (0 clean, 1 findings, 2 unusable input).

Files that fail to parse produce a single :data:`PARSE_ERROR_ID`
finding instead of aborting the run, so one broken fixture cannot hide
findings in the rest of the tree.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.baseline import Baseline
from repro.analysis.findings import Finding, Severity
from repro.analysis.index import ModuleInfo, ProjectIndex, build_module
from repro.analysis.registry import Rule, resolve_selection

# Importing the rules package registers the built-in rule catalogue.
import repro.analysis.rules  # noqa: F401

__all__ = ["LintResult", "discover_files", "run_lint", "PARSE_ERROR_ID"]

#: Rule id attached to files that do not parse.
PARSE_ERROR_ID = "RL000"

#: Directory names never descended into.  ``fixtures`` keeps the
#: intentionally-broken lint fixtures under ``tests/analysis/fixtures/``
#: out of a whole-tree ``repro lint src tests`` run; passing a fixture
#: directory (or file) explicitly on the command line bypasses this
#: filter, which only prunes subdirectories during os.walk discovery.
_EXCLUDED_DIRS = frozenset(
    {".git", "__pycache__", ".cache", ".venv", "build", "dist", ".mypy_cache",
     ".ruff_cache", ".pytest_cache", "node_modules", "fixtures"}
)


@dataclass
class LintResult:
    """Outcome of one lint run.

    Attributes:
        findings: Unsuppressed findings, sorted by (path, line, col, id).
        files_checked: Number of files parsed (or attempted).
        rules_run: Ids of the rules that executed.
        suppressed: Count of findings silenced by directives.
        baselined: Count of findings absorbed by the ``--baseline``
            file (zero when no baseline was given).
        timings: Wall-clock seconds per rule id (``--stats``).
            Excluded from equality and from the JSON report — timing
            jitter must not break report round-trips.
    """

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    rules_run: Tuple[str, ...] = ()
    suppressed: int = 0
    baselined: int = 0
    timings: Dict[str, float] = field(default_factory=dict, compare=False)

    @property
    def errors(self) -> int:
        """Number of error-severity findings."""
        return sum(1 for f in self.findings if f.severity is Severity.ERROR)

    @property
    def warnings(self) -> int:
        """Number of warning-severity findings."""
        return sum(1 for f in self.findings if f.severity is Severity.WARNING)

    @property
    def exit_code(self) -> int:
        """0 when no error findings remain, 1 otherwise."""
        return 1 if self.errors else 0


def discover_files(paths: Sequence[str]) -> List[str]:
    """Every ``*.py`` file under the given files/directories, sorted.

    Missing paths raise ``FileNotFoundError`` so a mistyped CLI path
    fails loudly rather than linting nothing.
    """
    files: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            files.append(path)
        elif os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames if d not in _EXCLUDED_DIRS
                )
                files.extend(
                    os.path.join(dirpath, name)
                    for name in filenames
                    if name.endswith(".py")
                )
        else:
            raise FileNotFoundError(f"no such file or directory: {path!r}")
    return sorted(dict.fromkeys(files))


def _parse_all(
    files: Iterable[str], root: Optional[str]
) -> Tuple[List[ModuleInfo], List[Finding]]:
    modules: List[ModuleInfo] = []
    parse_failures: List[Finding] = []
    for path in files:
        try:
            modules.append(build_module(path, root=root))
        except SyntaxError as exc:
            parse_failures.append(
                Finding(
                    path=path,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    rule_id=PARSE_ERROR_ID,
                    severity=Severity.ERROR,
                    message=f"file does not parse: {exc.msg}",
                )
            )
    return modules, parse_failures


def _run_rules(
    rules: Sequence[Rule], modules: Sequence[ModuleInfo], index: ProjectIndex
) -> Tuple[List[Finding], Dict[str, float]]:
    findings: List[Finding] = []
    timings: Dict[str, float] = {}
    for rule in rules:
        start = time.perf_counter()
        if rule.module_check is not None:
            for module in modules:
                findings.extend(rule.module_check(module, index))
        if rule.project_check is not None:
            findings.extend(rule.project_check(index))
        timings[rule.id] = time.perf_counter() - start
    return findings, timings


def _apply_suppressions(
    findings: Iterable[Finding], modules: Sequence[ModuleInfo]
) -> Tuple[List[Finding], int]:
    by_path = {module.path: module.suppressions for module in modules}
    kept: List[Finding] = []
    suppressed = 0
    for finding in findings:
        directives = by_path.get(finding.path)
        if directives is not None and directives.is_suppressed(finding):
            suppressed += 1
        else:
            kept.append(finding)
    return kept, suppressed


def run_lint(
    paths: Sequence[str],
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    root: Optional[str] = None,
    baseline: Optional[Baseline] = None,
) -> LintResult:
    """Lint a set of paths with the selected rules.

    Args:
        paths: Files and/or directories to lint.
        select: Rule ids to run (default: all registered).
        ignore: Rule ids to skip.
        root: Base directory for path scoping; defaults to the current
            working directory (paths outside it keep their given form).
        baseline: Accepted pre-existing findings to absorb (applied
            after suppressions, before sorting).

    Returns:
        The sorted, suppression-filtered :class:`LintResult`.
    """
    rules = resolve_selection(select, ignore)
    files = discover_files(paths)
    modules, findings = _parse_all(files, root)
    index = ProjectIndex.build(modules)
    rule_findings, timings = _run_rules(rules, modules, index)
    findings.extend(rule_findings)
    kept, suppressed = _apply_suppressions(findings, modules)
    baselined = 0
    if baseline is not None:
        kept, baselined = baseline.apply(kept)
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return LintResult(
        findings=kept,
        files_checked=len(files),
        rules_run=tuple(rule.id for rule in rules),
        suppressed=suppressed,
        baselined=baselined,
        timings=timings,
    )
