"""Intraprocedural control-flow graphs for the flow-sensitive rules.

One :class:`CFG` models one function body as *atoms* — single transfer
units a dataflow analysis steps over — connected by normal and
exceptional edges.  The builder understands the control constructs the
flow rules care about:

* branches (``if``/``elif``/``else``, ``match``),
* loops (``for``/``while`` with ``break``/``continue``/``else`` and
  back-edges, so fixpoint iteration sees loop bodies repeatedly),
* ``with`` frames (explicit ``with-enter``/``with-exit`` atoms on every
  way out of the frame — fall-through, ``return``, ``break``,
  ``continue``, *and* the exceptional unwind — which is what makes
  lock-held tracking sound),
* ``try``/``except``/``else``/``finally`` (``finally`` bodies are
  duplicated per continuation, the classic linearization: the normal,
  exceptional, ``return``, ``break`` and ``continue`` paths each flow
  through their own copy), and
* early exits (``return``/``raise`` route through pending ``finally``
  blocks and ``with`` exits to the function exit nodes).

Exceptional edges are emitted from every atom that *may raise* — any
atom containing a call, plus ``raise``/``assert`` and the implicit
calls of ``with`` enters and ``for`` iteration.  They lead to the
innermost handler (or ``finally``) and ultimately to
:attr:`CFG.raise_exit`, so "does this resource reach its release on
*all* paths" questions see the path where the statement between
acquire and release blew up.

The graph is deliberately intraprocedural and syntactic: no types, no
aliasing beyond what the rules layer on top.  Nested ``def``/``class``
bodies are opaque single atoms (they execute when *called*, not here);
each nested function gets its own CFG.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

__all__ = ["Atom", "Block", "CFG", "build_cfg", "calls_in", "FunctionNode"]

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Statement kinds that never get their own control structure.
_SIMPLE_STMTS = (
    ast.Assign, ast.AnnAssign, ast.AugAssign, ast.Expr, ast.Delete,
    ast.Pass, ast.Import, ast.ImportFrom, ast.Global, ast.Nonlocal,
    ast.Assert, ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef,
)

#: Subtree roots never descended into when scanning for calls: their
#: bodies run when invoked, not at the program point being analyzed.
_OPAQUE = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)


@dataclass(frozen=True)
class Atom:
    """One dataflow transfer unit.

    Attributes:
        kind: ``"stmt"`` (a simple statement), ``"test"`` (a branch or
            loop condition / ``for`` iterable expression),
            ``"with-enter"`` / ``"with-exit"`` (one ``withitem`` each),
            ``"for-bind"`` (the per-iteration target binding of a
            ``for``), or ``"except"`` (an ``ExceptHandler`` entry).
        node: The AST node the atom covers.
    """

    kind: str
    node: ast.AST

    def _positioned(self) -> ast.AST:
        # A ``withitem`` carries no position of its own; report its
        # context expression instead.
        if isinstance(self.node, ast.withitem):
            return self.node.context_expr
        return self.node

    @property
    def line(self) -> int:
        return getattr(self._positioned(), "lineno", 0)

    @property
    def col(self) -> int:
        return getattr(self._positioned(), "col_offset", 0)


@dataclass
class Block:
    """One CFG node holding at most one atom.

    Attributes:
        id: Dense integer id, unique within the CFG.
        atom: The transfer unit, or ``None`` for join/entry/exit nodes.
        succ: Normal-flow successor block ids.
        exc_succ: Exceptional successor block ids (taken when the atom
            raises; the analysis's ``transfer_exc`` produces the state
            that flows along them).
    """

    id: int
    atom: Optional[Atom] = None
    succ: List[int] = field(default_factory=list)
    exc_succ: List[int] = field(default_factory=list)


@dataclass
class CFG:
    """The control-flow graph of one function.

    Attributes:
        func: The function definition the graph models.
        blocks: Every block, keyed by id.
        entry: Entry block (no atom); analysis starts here.
        exit: Normal-return exit block (implicit and explicit returns).
        raise_exit: Exit reached by exceptions that escape the function.
    """

    func: FunctionNode
    blocks: Dict[int, Block] = field(default_factory=dict)
    entry: int = 0
    exit: int = 0
    raise_exit: int = 0

    def atoms(self) -> Iterator[Tuple[Block, Atom]]:
        """Every (block, atom) pair, in block-id order."""
        for block_id in sorted(self.blocks):
            block = self.blocks[block_id]
            if block.atom is not None:
                yield block, block.atom


def calls_in(node: ast.AST) -> Iterator[ast.Call]:
    """Every call executed *at* this program point.

    Nested function/class/lambda bodies are pruned — their calls run
    when the nested object is invoked, not when it is defined.
    """
    stack: List[ast.AST] = [node]
    while stack:
        current = stack.pop()
        if current is not node and isinstance(current, _OPAQUE):
            continue
        if isinstance(current, ast.Call):
            yield current
        stack.extend(ast.iter_child_nodes(current))


def _may_raise(atom: Atom) -> bool:
    """Whether the atom can transfer control to a handler."""
    if atom.kind in ("with-enter", "with-exit", "for-bind", "except"):
        return True
    node = atom.node
    if isinstance(node, (ast.Raise, ast.Assert)):
        return True
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        # Only the decorators/bases evaluate here.
        return any(
            next(calls_in(dec), None) is not None
            for dec in getattr(node, "decorator_list", [])
        )
    return next(calls_in(node), None) is not None


@dataclass(frozen=True)
class _Ctx:
    """Where the non-local exits of the current region lead."""

    exc: int
    ret: int
    brk: Optional[int] = None
    cont: Optional[int] = None


def _is_const_true(test: ast.expr) -> bool:
    return isinstance(test, ast.Constant) and bool(test.value) is True


def _catches_everything(handlers: Sequence[ast.ExceptHandler]) -> bool:
    for handler in handlers:
        if handler.type is None:
            return True
        names = []
        node: ast.AST = handler.type
        if isinstance(node, ast.Tuple):
            names = [_tail_name(e) for e in node.elts]
        else:
            names = [_tail_name(node)]
        if any(name in ("Exception", "BaseException") for name in names):
            return True
    return False


def _tail_name(node: ast.AST) -> str:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


class _Builder:
    def __init__(self, func: FunctionNode) -> None:
        self.cfg = CFG(func=func)
        self._next_id = 0
        self.cfg.entry = self._block()
        self.cfg.exit = self._block()
        self.cfg.raise_exit = self._block()

    # ----- graph primitives ------------------------------------------------------

    def _block(self, atom: Optional[Atom] = None) -> int:
        block = Block(id=self._next_id, atom=atom)
        self._next_id += 1
        self.cfg.blocks[block.id] = block
        return block.id

    def _edge(self, a: Optional[int], b: Optional[int]) -> None:
        if a is None or b is None:
            return
        block = self.cfg.blocks[a]
        if b not in block.succ:
            block.succ.append(b)

    def _exc_edge(self, a: int, b: int) -> None:
        block = self.cfg.blocks[a]
        if b not in block.exc_succ:
            block.exc_succ.append(b)

    def _atom_block(self, atom: Atom, pred: Optional[int], ctx: _Ctx) -> int:
        block_id = self._block(atom)
        self._edge(pred, block_id)
        if _may_raise(atom):
            self._exc_edge(block_id, ctx.exc)
        return block_id

    # ----- statement lowering ----------------------------------------------------

    def build(self) -> CFG:
        ctx = _Ctx(exc=self.cfg.raise_exit, ret=self.cfg.exit)
        end = self._stmts(self.cfg.func.body, self.cfg.entry, ctx)
        self._edge(end, self.cfg.exit)  # implicit `return None`
        return self.cfg

    def _stmts(
        self, body: Sequence[ast.stmt], pred: Optional[int], ctx: _Ctx
    ) -> Optional[int]:
        """Lower a statement list; returns the fall-through block or
        ``None`` when every path left the region early."""
        current = pred
        for stmt in body:
            if current is None:
                break  # unreachable tail
            current = self._stmt(stmt, current, ctx)
        return current

    def _stmt(self, stmt: ast.stmt, pred: int, ctx: _Ctx) -> Optional[int]:
        if isinstance(stmt, _SIMPLE_STMTS):
            return self._atom_block(Atom("stmt", stmt), pred, ctx)
        if isinstance(stmt, ast.Return):
            block = self._atom_block(Atom("stmt", stmt), pred, ctx)
            self._edge(block, ctx.ret)
            return None
        if isinstance(stmt, ast.Raise):
            block_id = self._block(Atom("stmt", stmt))
            self._edge(pred, block_id)
            self._exc_edge(block_id, ctx.exc)
            return None
        if isinstance(stmt, ast.Break):
            self._edge(pred, ctx.brk)
            return None
        if isinstance(stmt, ast.Continue):
            self._edge(pred, ctx.cont)
            return None
        if isinstance(stmt, ast.If):
            return self._if(stmt, pred, ctx)
        if isinstance(stmt, ast.While):
            return self._while(stmt, pred, ctx)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._for(stmt, pred, ctx)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, pred, ctx)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, pred, ctx)
        if _TRY_STAR is not None and isinstance(stmt, _TRY_STAR):
            return self._try(stmt, pred, ctx)
        if _MATCH is not None and isinstance(stmt, _MATCH):
            return self._match(stmt, pred, ctx)
        # Unknown statement kinds degrade to an opaque atom.
        return self._atom_block(Atom("stmt", stmt), pred, ctx)

    def _if(self, stmt: ast.If, pred: int, ctx: _Ctx) -> Optional[int]:
        test = self._atom_block(Atom("test", stmt.test), pred, ctx)
        after = self._block()
        then_end = self._stmts(stmt.body, test, ctx)
        self._edge(then_end, after)
        if stmt.orelse:
            else_end = self._stmts(stmt.orelse, test, ctx)
            self._edge(else_end, after)
            if then_end is None and else_end is None:
                return None
        else:
            self._edge(test, after)
        return after

    def _while(self, stmt: ast.While, pred: int, ctx: _Ctx) -> Optional[int]:
        head = self._atom_block(Atom("test", stmt.test), pred, ctx)
        after = self._block()
        body_ctx = replace(ctx, brk=after, cont=head)
        body_end = self._stmts(stmt.body, head, body_ctx)
        self._edge(body_end, head)  # back-edge
        if not _is_const_true(stmt.test):
            if stmt.orelse:
                else_end = self._stmts(stmt.orelse, head, ctx)
                self._edge(else_end, after)
            else:
                self._edge(head, after)
        return after

    def _for(
        self, stmt: Union[ast.For, ast.AsyncFor], pred: int, ctx: _Ctx
    ) -> Optional[int]:
        iterable = self._atom_block(Atom("test", stmt.iter), pred, ctx)
        head = self._atom_block(Atom("for-bind", stmt), iterable, ctx)
        after = self._block()
        body_ctx = replace(ctx, brk=after, cont=head)
        body_end = self._stmts(stmt.body, head, body_ctx)
        self._edge(body_end, head)  # back-edge
        if stmt.orelse:
            else_end = self._stmts(stmt.orelse, head, ctx)
            self._edge(else_end, after)
        else:
            self._edge(head, after)
        return after

    def _with(
        self, stmt: Union[ast.With, ast.AsyncWith], pred: int, ctx: _Ctx
    ) -> Optional[int]:
        current = pred
        # Acquire items left to right; each acquired item wraps every
        # way out of the remaining region in its own exit atom.
        inner = ctx
        items_entered: List[ast.withitem] = []
        for item in stmt.items:
            current = self._atom_block(Atom("with-enter", item), current, inner)
            items_entered.append(item)
            inner = _Ctx(
                exc=self._exit_chain([item], inner.exc),
                ret=self._exit_chain([item], inner.ret),
                brk=self._exit_chain([item], inner.brk),
                cont=self._exit_chain([item], inner.cont),
            )
        body_end = self._stmts(stmt.body, current, inner)
        if body_end is None:
            return None
        after = self._block()
        chain = self._exit_chain(list(reversed(items_entered)), after)
        self._edge(body_end, chain)
        return after

    def _exit_chain(
        self, items: Sequence[ast.withitem], target: Optional[int]
    ) -> Optional[int]:
        """A chain of ``with-exit`` atoms ending at ``target``."""
        if target is None:
            return None
        for item in reversed(items):
            block_id = self._block(Atom("with-exit", item))
            self._edge(block_id, target)
            target = block_id
        return target

    def _try(self, stmt: ast.Try, pred: int, ctx: _Ctx) -> Optional[int]:
        after = self._block()
        final_ctx = ctx

        def wrap(target: Optional[int]) -> Optional[int]:
            """Route a continuation through a fresh ``finally`` copy."""
            if target is None or not stmt.finalbody:
                return target
            entry = self._block()
            end = self._stmts(stmt.finalbody, entry, final_ctx)
            self._edge(end, target)
            return entry

        exc_w = wrap(ctx.exc)
        assert exc_w is not None  # ctx.exc is never None
        ret_w = wrap(ctx.ret)
        assert ret_w is not None  # ctx.ret is never None
        brk_w = wrap(ctx.brk)
        cont_w = wrap(ctx.cont)
        after_w = wrap(after)

        if stmt.handlers:
            dispatch = self._block()
            body_exc: int = dispatch
        else:
            body_exc = exc_w
        body_ctx = _Ctx(exc=body_exc, ret=ret_w, brk=brk_w, cont=cont_w)
        body_end = self._stmts(stmt.body, pred, body_ctx)
        if stmt.orelse:
            # ``else`` runs after a clean body; its exceptions bypass
            # the handlers.
            else_ctx = _Ctx(exc=exc_w, ret=ret_w, brk=brk_w, cont=cont_w)
            body_end = self._stmts(stmt.orelse, body_end, else_ctx)
        self._edge(body_end, after_w)

        any_live = body_end is not None
        if stmt.handlers:
            handler_ctx = _Ctx(exc=exc_w, ret=ret_w, brk=brk_w, cont=cont_w)
            for handler in stmt.handlers:
                entry = self._atom_block(
                    Atom("except", handler), dispatch, handler_ctx
                )
                handler_end = self._stmts(handler.body, entry, handler_ctx)
                self._edge(handler_end, after_w)
                any_live = any_live or handler_end is not None
            if not _catches_everything(stmt.handlers):
                self._edge(dispatch, exc_w)
        return after if any_live else None

    def _match(self, stmt: ast.stmt, pred: int, ctx: _Ctx) -> Optional[int]:
        subject = self._atom_block(
            Atom("test", stmt.subject), pred, ctx  # type: ignore[attr-defined]
        )
        after = self._block()
        for case in stmt.cases:  # type: ignore[attr-defined]
            entry: int = subject
            if case.guard is not None:
                entry = self._atom_block(Atom("test", case.guard), subject, ctx)
            case_end = self._stmts(case.body, entry, ctx)
            self._edge(case_end, after)
        self._edge(subject, after)  # no case matched
        return after


_TRY_STAR = getattr(ast, "TryStar", None)
_MATCH = getattr(ast, "Match", None)


def build_cfg(func: FunctionNode) -> CFG:
    """Build the control-flow graph of one function definition."""
    return _Builder(func).build()
