"""Flow-sensitive analysis tier: CFGs, dataflow, contracts, call graph.

This package powers RL009–RL012.  Layering, bottom-up:

* :mod:`repro.analysis.flow.cfg` — per-function control-flow graphs
  with normal and exceptional edges.
* :mod:`repro.analysis.flow.dataflow` — the forward worklist fixpoint
  engine analyses plug into.
* :mod:`repro.analysis.flow.annotations` — the ``# repro-lint:``
  contract-comment grammar plus the per-module flow model
  (functions, classes, memo caches) built on it.
* :mod:`repro.analysis.flow.callgraph` — the project-wide contract
  index that lets call sites see callee annotations (one-level
  interprocedural propagation).
* :mod:`repro.analysis.flow.locksets` — the held-locks must-analysis
  shared by the lock-discipline and shared-mutation rules.

See ``docs/ANALYSIS.md`` ("The flow engine") for the model and the
annotation syntax.
"""

from .annotations import (
    ClassFlow,
    FunctionFlow,
    MemoCache,
    ModuleFlow,
    is_lock_name,
    lock_token,
    module_flow,
    scan_annotation_comments,
)
from .callgraph import ProjectFlow, call_name, project_flow
from .cfg import CFG, Atom, Block, build_cfg, calls_in
from .dataflow import ForwardAnalysis, run_forward
from .locksets import HeldLocks, held_lock_states

__all__ = [
    "Atom",
    "Block",
    "CFG",
    "build_cfg",
    "calls_in",
    "ForwardAnalysis",
    "run_forward",
    "scan_annotation_comments",
    "module_flow",
    "ModuleFlow",
    "FunctionFlow",
    "ClassFlow",
    "MemoCache",
    "is_lock_name",
    "lock_token",
    "ProjectFlow",
    "project_flow",
    "call_name",
    "HeldLocks",
    "held_lock_states",
]
