"""Forward dataflow over :mod:`repro.analysis.flow.cfg` graphs.

A tiny worklist fixpoint engine.  Analyses plug in three pieces:

* ``entry_state`` — the abstract state at function entry,
* ``join`` — merge of states at control-flow joins (set intersection
  for *must* facts like "lock held", union for *may* facts like
  "resource still live"), and
* ``transfer`` / ``transfer_exc`` — the effect of one atom on the
  state along its normal and exceptional out-edges.  ``transfer_exc``
  defaults to the *pre*-state (an atom that raised did not complete),
  which is exactly right for acquisitions: a failed ``export_block``
  call never produced a handle, so nothing leaks on that edge.

States must be immutable values with structural equality over a finite
domain (``frozenset`` of tokens in all the shipped analyses), which
guarantees the fixpoint terminates on loops: each block's in-state can
only change a bounded number of times before stabilizing.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Generic, Optional, TypeVar

from .cfg import CFG, Atom

__all__ = ["ForwardAnalysis", "run_forward", "LockSet"]

S = TypeVar("S")

#: Abstract state of the lock analyses: the set of normalized lock
#: tokens (``"self.lock"``-style dotted names) held at a program point.
LockSet = frozenset  # frozenset[str]; bare for py3.9 compatibility


class ForwardAnalysis(Generic[S]):
    """Base class for forward analyses; subclass and override."""

    def entry_state(self, cfg: CFG) -> S:
        raise NotImplementedError

    def join(self, a: S, b: S) -> S:
        raise NotImplementedError

    def transfer(self, atom: Atom, state: S) -> S:
        raise NotImplementedError

    def transfer_exc(self, atom: Atom, state: S) -> S:
        """State along the exceptional out-edge (default: pre-state)."""
        return state


def run_forward(cfg: CFG, analysis: "ForwardAnalysis[S]") -> Dict[int, S]:
    """Iterate to fixpoint; returns the in-state of every reached block.

    Blocks absent from the result are unreachable (e.g. code after a
    ``while True`` with no ``break``) and should not be checked.
    """
    in_states: Dict[int, S] = {cfg.entry: analysis.entry_state(cfg)}
    worklist = deque([cfg.entry])
    pending = {cfg.entry}
    while worklist:
        block_id = worklist.popleft()
        pending.discard(block_id)
        block = cfg.blocks[block_id]
        state = in_states[block_id]
        if block.atom is not None:
            out = analysis.transfer(block.atom, state)
            out_exc = analysis.transfer_exc(block.atom, state)
        else:
            out = out_exc = state
        edges = [(succ, out) for succ in block.succ]
        edges += [(succ, out_exc) for succ in block.exc_succ]
        for succ, flowing in edges:
            old: Optional[S] = in_states.get(succ)
            new = flowing if old is None else analysis.join(old, flowing)
            if old is None or new != old:
                in_states[succ] = new
                if succ not in pending:
                    worklist.append(succ)
                    pending.add(succ)
    return in_states
