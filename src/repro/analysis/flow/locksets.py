"""Held-locks dataflow: the state RL009 and RL012 both consume.

A *must* analysis over lock tokens (see
:func:`repro.analysis.flow.annotations.lock_token`): the in-state of a
block is the set of locks held on **every** path reaching it, so a
lock acquired on only one side of a branch does not count as held
after the join — the "partially-dominated lock frame" shape is
reported, not forgiven.

Lock frames are recognized in two forms:

* ``with <obj>.<lock-like>:`` — the dominant idiom; the ``with-enter``
  atom adds the token on its normal out-edge only (if ``__enter__``
  raised, the lock was never taken) and every ``with-exit`` atom
  removes it, including the copies on ``return``/``break`` and the
  exceptional unwind.
* explicit ``<obj>.<lock-like>.acquire()`` / ``.release()`` statement
  calls, for the rare hand-rolled frame.

Functions carrying ``requires-lock=<attr>`` (explicitly or via the
``*_unlocked`` naming convention) start with the receiver's token
already held — that is the one-level interprocedural propagation: the
*call site* is checked by RL009, the body is analyzed as if the
contract holds.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Optional

from repro.analysis.index import dotted_name

from .annotations import (
    FunctionFlow,
    is_lock_name,
    lock_token,
    normalize_lock_component,
)
from .cfg import CFG, Atom
from .dataflow import ForwardAnalysis, run_forward

__all__ = ["HeldLocks", "held_lock_states", "entry_tokens", "with_item_token"]

LockState = FrozenSet[str]


def with_item_token(item: ast.withitem) -> Optional[str]:
    """The lock token a ``with`` item acquires, if lock-like."""
    name = dotted_name(item.context_expr)
    if name is None:
        return None
    return lock_token(name)


def _explicit_call_token(node: ast.AST, method: str) -> Optional[str]:
    """Token of an ``<obj>.<lock>.{acquire,release}()`` statement."""
    if not isinstance(node, ast.Expr) or not isinstance(node.value, ast.Call):
        return None
    func = node.value.func
    if not isinstance(func, ast.Attribute) or func.attr != method:
        return None
    name = dotted_name(func.value)
    if name is None:
        return None
    return lock_token(name)


def entry_tokens(func: FunctionFlow) -> LockState:
    """Locks held at entry per the function's own contract."""
    attr = func.requires_lock
    if attr is None:
        return frozenset()
    norm = normalize_lock_component(attr)
    if not is_lock_name(norm):
        norm = "lock"
    token = f"self.{norm}" if func.is_method else norm
    return frozenset((token,))


class HeldLocks(ForwardAnalysis[LockState]):
    """Must-held lock tokens per program point."""

    def __init__(self, func: FunctionFlow) -> None:
        self._entry = entry_tokens(func)

    def entry_state(self, cfg: CFG) -> LockState:
        return self._entry

    def join(self, a: LockState, b: LockState) -> LockState:
        return a & b

    def transfer(self, atom: Atom, state: LockState) -> LockState:
        if atom.kind == "with-enter":
            token = with_item_token(atom.node)  # type: ignore[arg-type]
            if token is not None:
                return state | {token}
            return state
        if atom.kind == "with-exit":
            token = with_item_token(atom.node)  # type: ignore[arg-type]
            if token is not None:
                return state - {token}
            return state
        if atom.kind == "stmt":
            acquired = _explicit_call_token(atom.node, "acquire")
            if acquired is not None:
                return state | {acquired}
            released = _explicit_call_token(atom.node, "release")
            if released is not None:
                return state - {released}
        return state

    def transfer_exc(self, atom: Atom, state: LockState) -> LockState:
        # ``__exit__`` raising still released the lock first; flowing
        # the pre-state would wrongly mark handlers as lock-held.
        if atom.kind == "with-exit":
            return self.transfer(atom, state)
        return state


def held_lock_states(func: FunctionFlow) -> Dict[int, LockState]:
    """In-state (held locks) of every reachable block of a function."""
    return run_forward(func.cfg(), HeldLocks(func))
