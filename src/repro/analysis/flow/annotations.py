"""Flow annotations: the comment grammar that feeds RL009–RL012.

The pattern-match rules (RL001–RL008) read code as-is; the flow rules
additionally honor machine-checked *contract comments*, styled after
the existing suppression directives and scanned the same way (via
:mod:`tokenize`, so strings never match)::

    # repro-lint: requires-lock=lock          (on a def, or line above)
    # repro-lint: acquires=close              (def: caller owns result)
    # repro-lint: acquires-on-receiver=clear_preload
    # repro-lint: shared-state=_metrics,sources   (on a class)
    # repro-lint: memo-guard=matches          (on a module-level cache)
    # repro-lint: memo-guard=keyed
    # repro-lint: shm-attach                  (def: worker attach path)

* ``requires-lock=<attr>`` — the function may only run while the
  receiver's ``<attr>`` lock is held; RL009 checks every call site and
  seeds the lock as held inside the body.  Methods named ``*_unlocked``
  get this contract implicitly (attr ``lock``).
* ``acquires=<method>`` — the function returns an owned resource that
  the caller must release via ``<method>`` on every path (RL010).
* ``acquires-on-receiver=<method>`` — calling the function puts its
  *receiver* into an acquired state released by ``<method>`` (the
  ``preload_lattice``/``clear_preload`` pairing).
* ``shared-state=<a>,<b>`` — the named attributes of the class are
  mutated from multiple threads; RL012 requires every write outside
  ``__init__`` to happen under a lock frame.
* ``memo-guard=<method>`` / ``memo-guard=keyed`` — the staleness
  contract of a module-level ``WeakKeyDictionary`` cache (RL011):
  either reads validate payloads via ``payload.<method>(...)``, or the
  cache key itself encodes validity.
* ``shm-attach`` — the function runs in a worker attaching to a
  segment it does not own; RL010 forbids ``unlink`` calls inside it.

Annotations attach to the statement on their own line, or to the
statement directly below when written on a line of their own (above
any decorators).
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.index import ModuleInfo

from .cfg import CFG, FunctionNode, build_cfg

__all__ = [
    "scan_annotation_comments",
    "FunctionFlow",
    "ClassFlow",
    "MemoCache",
    "ModuleFlow",
    "module_flow",
    "normalize_lock_component",
    "is_lock_name",
    "lock_token",
]

#: One ``key`` or ``key=value`` contract inside a comment token.
_ANNOTATION_RE = re.compile(
    r"repro-lint:\s*"
    r"(?P<key>requires-lock|acquires-on-receiver|acquires"
    r"|shared-state|memo-guard|shm-attach)"
    r"(?:\s*=\s*(?P<value>[A-Za-z0-9_.,]+))?"
)

#: Cache key under which :func:`module_flow` memoizes on the module.
_CACHE_KEY = "flow"


def scan_annotation_comments(source: str) -> Dict[int, Dict[str, str]]:
    """Map 1-based line -> ``{key: value}`` for every contract comment."""
    annotations: Dict[int, Dict[str, str]] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return annotations
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        for match in _ANNOTATION_RE.finditer(token.string):
            line = annotations.setdefault(token.start[0], {})
            line[match.group("key")] = match.group("value") or ""
    return annotations


# ----- lock-name heuristics ----------------------------------------------------------


def normalize_lock_component(component: str) -> str:
    """Strip leading underscores from an attribute/variable name."""
    return component.lstrip("_")


def is_lock_name(component: str) -> bool:
    """Whether a name denotes a lock by convention.

    Matches ``lock``, ``mutex``, and any ``*_lock`` after stripping
    leading underscores — so ``_lock``, ``_m_lock`` and
    ``registry.lock`` qualify while ``clock`` does not.
    """
    norm = normalize_lock_component(component)
    return norm in ("lock", "mutex") or norm.endswith("_lock")


def lock_token(dotted: str) -> Optional[str]:
    """Canonical held-lock token for a dotted name, if lock-like.

    ``self._lock`` and ``self.lock`` canonicalize to the same token
    (``self.lock`` — aliased attributes of the same object), while
    ``self._m_lock`` keeps its distinct identity as ``self.m_lock``.
    """
    parts = dotted.split(".")
    if not is_lock_name(parts[-1]):
        return None
    parts[-1] = normalize_lock_component(parts[-1])
    return ".".join(parts)


# ----- per-module flow model ---------------------------------------------------------


@dataclass
class FunctionFlow:
    """One function definition plus its flow contracts.

    Attributes:
        node: The ``def`` AST node.
        name: Bare function name.
        qualname: Dotted name within the module (``Class.method``).
        class_name: Enclosing class when the def is a method.
        annotations: Contract comments attached to the def.
    """

    node: FunctionNode
    name: str
    qualname: str
    class_name: Optional[str] = None
    annotations: Dict[str, str] = field(default_factory=dict)
    _cfg: Optional[CFG] = field(default=None, repr=False, compare=False)

    def cfg(self) -> CFG:
        """The function's control-flow graph (built once, cached)."""
        if self._cfg is None:
            self._cfg = build_cfg(self.node)
        return self._cfg

    @property
    def requires_lock(self) -> Optional[str]:
        """Lock attribute the caller must hold, or ``None``.

        ``*_unlocked`` naming implies ``requires-lock=lock``.
        """
        explicit = self.annotations.get("requires-lock")
        if explicit:
            return explicit
        if self.name.endswith("_unlocked"):
            return "lock"
        return None

    @property
    def is_method(self) -> bool:
        return self.class_name is not None


@dataclass
class ClassFlow:
    """One class definition plus its flow contracts.

    Attributes:
        node: The ``class`` AST node.
        name: Class name.
        shared_state: Attribute names declared mutable-across-threads
            via ``shared-state=``.
    """

    node: ast.ClassDef
    name: str
    shared_state: Tuple[str, ...] = ()


@dataclass
class MemoCache:
    """One module-level ``WeakKeyDictionary`` cache.

    Attributes:
        names: Target names the cache is bound to.
        guard: ``memo-guard`` value — a payload method name,
            ``"keyed"``, or ``None`` when unannotated.
        line: 1-based line of the assignment.
        col: Column offset of the assignment.
    """

    names: Tuple[str, ...]
    guard: Optional[str]
    line: int
    col: int


@dataclass
class ModuleFlow:
    """Flow-level facts of one module.

    Attributes:
        module: The underlying parsed module.
        functions: Every function/method definition, outermost first.
        classes: Every class definition.
        memo_caches: Module-level ``WeakKeyDictionary`` assignments.
        annotations: Raw line -> contract map.
    """

    module: ModuleInfo
    functions: List[FunctionFlow] = field(default_factory=list)
    classes: List[ClassFlow] = field(default_factory=list)
    memo_caches: List[MemoCache] = field(default_factory=list)
    annotations: Dict[int, Dict[str, str]] = field(default_factory=dict)

    def class_flow(self, name: Optional[str]) -> Optional[ClassFlow]:
        for cls in self.classes:
            if cls.name == name:
                return cls
        return None

    def methods_of(self, class_name: str) -> List[FunctionFlow]:
        return [f for f in self.functions if f.class_name == class_name]


def _attached(
    annotations: Dict[int, Dict[str, str]], node: ast.stmt
) -> Dict[str, str]:
    """Contracts on the statement's own line or the line above it.

    For decorated defs "above" means above the first decorator.
    """
    first = node.lineno
    for decorator in getattr(node, "decorator_list", []):
        first = min(first, decorator.lineno)
    merged: Dict[str, str] = {}
    for line in (first - 1, node.lineno):
        merged.update(annotations.get(line, {}))
    return merged


def _is_weakkey_cache(module: ModuleInfo, value: Optional[ast.expr]) -> bool:
    if not isinstance(value, ast.Call):
        return False
    resolved = module.resolve(value.func)
    return resolved in ("weakref.WeakKeyDictionary", "WeakKeyDictionary")


class _FlowVisitor(ast.NodeVisitor):
    def __init__(self, flow: ModuleFlow) -> None:
        self.flow = flow
        self.class_stack: List[str] = []
        self.qual_stack: List[str] = []

    def _visit_def(self, node: FunctionNode) -> None:
        qualname = ".".join(self.qual_stack + [node.name])
        # ``class_name`` is only set for direct methods: a def nested
        # inside a method is a closure, not a method of the class.
        direct_method = bool(self.qual_stack) and (
            self.class_stack and self.qual_stack[-1] == self.class_stack[-1]
        )
        self.flow.functions.append(
            FunctionFlow(
                node=node,
                name=node.name,
                qualname=qualname,
                class_name=self.class_stack[-1] if direct_method else None,
                annotations=_attached(self.flow.annotations, node),
            )
        )
        self.qual_stack.append(node.name)
        self.generic_visit(node)
        self.qual_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_def(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_def(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        attached = _attached(self.flow.annotations, node)
        shared = tuple(
            part.strip()
            for part in attached.get("shared-state", "").split(",")
            if part.strip()
        )
        self.flow.classes.append(
            ClassFlow(node=node, name=node.name, shared_state=shared)
        )
        self.class_stack.append(node.name)
        self.qual_stack.append(node.name)
        self.generic_visit(node)
        self.qual_stack.pop()
        self.class_stack.pop()


def _scan_memo_caches(flow: ModuleFlow) -> None:
    for stmt in flow.module.tree.body:
        targets: List[str] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            value = stmt.value
            targets = [t.id for t in stmt.targets if isinstance(t, ast.Name)]
        elif isinstance(stmt, ast.AnnAssign):
            value = stmt.value
            if isinstance(stmt.target, ast.Name):
                targets = [stmt.target.id]
        if not targets or not _is_weakkey_cache(flow.module, value):
            continue
        attached = _attached(flow.annotations, stmt)
        flow.memo_caches.append(
            MemoCache(
                names=tuple(targets),
                guard=attached.get("memo-guard"),
                line=stmt.lineno,
                col=stmt.col_offset,
            )
        )


def module_flow(module: ModuleInfo) -> ModuleFlow:
    """The flow model of a module (memoized on ``module.caches``)."""
    cached = module.caches.get(_CACHE_KEY)
    if isinstance(cached, ModuleFlow):
        return cached
    flow = ModuleFlow(
        module=module, annotations=scan_annotation_comments(module.source)
    )
    _FlowVisitor(flow).visit(module.tree)
    _scan_memo_caches(flow)
    module.caches[_CACHE_KEY] = flow
    return flow
