"""A one-level call-graph layer over the :class:`ProjectIndex`.

The flow analyses are intraprocedural; this module is what lets facts
cross a function boundary *once*: it indexes every annotated definition
in the project so a rule looking at a call site can ask "does the thing
being called carry a contract?".

Resolution is name-based, matching how the codebase actually calls
things:

* Method calls (``obj.helper(...)``) match annotated defs by attribute
  name — any class, any module.  The annotation grammar is sparse
  enough (``requires-lock``, ``acquires``...) that name collisions
  across unrelated classes would themselves be a smell.
* Plain calls resolve through the module's import-alias map first, so
  ``from repro.engine.shm import export_block`` and
  ``shm.export_block(...)`` both land on the annotated
  ``export_block`` definition; the match is on the final component.

``ProjectFlow`` also records the raw caller -> callee-name edges per
function, which the stats output and the tests use to reason about
propagation without re-walking every AST.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.analysis.index import ModuleInfo, ProjectIndex

from .annotations import FunctionFlow, module_flow
from .cfg import calls_in

__all__ = ["ProjectFlow", "project_flow", "call_name"]

#: Cache key under which :func:`project_flow` memoizes on the index.
_CACHE_KEY = "flow-callgraph"


def call_name(call: ast.Call, module: Optional[ModuleInfo] = None) -> Optional[str]:
    """The name a call dispatches on.

    Attribute calls yield the attribute (``registry.snapshot`` ->
    ``snapshot``); plain calls yield the last component of the
    alias-resolved dotted name (``shm.export_block`` ->
    ``export_block``).  Subscripted or computed callees yield the
    final attribute when there is one (``d[k].close`` -> ``close``),
    else ``None``.
    """
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        resolved = module.resolve(func) if module is not None else func.id
        return (resolved or func.id).rsplit(".", 1)[-1]
    return None


@dataclass
class ProjectFlow:
    """Project-wide contract index plus the function-level call graph.

    Attributes:
        requires_lock: Callee name -> lock attribute its callers must
            hold (explicit annotations only; the implicit
            ``*_unlocked`` convention needs no table).
        acquires: Callee name -> release method of the owned resource
            the call returns.
        acquires_on_receiver: Callee name -> release method that must
            be called on the *receiver* after this call.
        shm_attach: Names of worker-attach functions (no unlink
            allowed inside).
        calls: Function qualname (``rel_path::Class.method``) -> names
            it calls, for one-level propagation queries.
    """

    requires_lock: Dict[str, str] = field(default_factory=dict)
    acquires: Dict[str, str] = field(default_factory=dict)
    acquires_on_receiver: Dict[str, str] = field(default_factory=dict)
    shm_attach: Set[str] = field(default_factory=set)
    calls: Dict[str, List[str]] = field(default_factory=dict)

    def required_lock_for_call(
        self, call: ast.Call, module: Optional[ModuleInfo] = None
    ) -> Optional[str]:
        """Lock attribute a call site must hold, or ``None``.

        ``*_unlocked`` callees require ``lock`` by convention; other
        callees require whatever their annotation declares.
        """
        name = call_name(call, module)
        if name is None:
            return None
        if name.endswith("_unlocked"):
            return "lock"
        return self.requires_lock.get(name)

    def release_for_call(
        self, call: ast.Call, module: Optional[ModuleInfo] = None
    ) -> Optional[str]:
        """Release method of the resource a call returns, or ``None``."""
        name = call_name(call, module)
        if name is None:
            return None
        return self.acquires.get(name)

    def receiver_release_for_call(
        self, call: ast.Call, module: Optional[ModuleInfo] = None
    ) -> Optional[str]:
        """Release method owed on the receiver after a call, or ``None``."""
        name = call_name(call, module)
        if name is None:
            return None
        return self.acquires_on_receiver.get(name)

    def is_shm_attach_call(
        self, call: ast.Call, module: Optional[ModuleInfo] = None
    ) -> bool:
        """Whether a call attaches to a shared segment (not owning)."""
        name = call_name(call, module)
        return name is not None and name in self.shm_attach


def _register(flow: ProjectFlow, func: FunctionFlow) -> None:
    annotations = func.annotations
    required = annotations.get("requires-lock")
    if required:
        flow.requires_lock[func.name] = required
    release = annotations.get("acquires")
    if release:
        flow.acquires[func.name] = release
    receiver_release = annotations.get("acquires-on-receiver")
    if receiver_release:
        flow.acquires_on_receiver[func.name] = receiver_release
    if "shm-attach" in annotations:
        flow.shm_attach.add(func.name)


def project_flow(index: ProjectIndex) -> ProjectFlow:
    """The contract index of a project (memoized on ``index.caches``)."""
    cached = index.caches.get(_CACHE_KEY)
    if isinstance(cached, ProjectFlow):
        return cached
    flow = ProjectFlow()
    for module in index.modules:
        mod_flow = module_flow(module)
        for func in mod_flow.functions:
            _register(flow, func)
            callees: List[str] = []
            for call in calls_in(func.node):
                name = call_name(call, module)
                if name is not None:
                    callees.append(name)
            flow.calls[f"{module.rel_path}::{func.qualname}"] = callees
    index.caches[_CACHE_KEY] = flow
    return flow
