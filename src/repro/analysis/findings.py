"""Finding and severity types shared by every lint rule and reporter.

A :class:`Finding` is one rule violation at one source location.  It is
deliberately a plain, JSON-able value object: reporters serialize it,
tests round-trip it, and the engine sorts and de-duplicates it without
knowing anything about the rule that produced it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict


class Severity(enum.Enum):
    """How a finding affects the lint exit code.

    ``ERROR`` findings fail the build; ``WARNING`` findings are reported
    but do not change the exit code.
    """

    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Attributes:
        path: Path of the offending file, as given to the engine.
        line: 1-based source line of the violation.
        col: 0-based column offset (matches ``ast`` node offsets).
        rule_id: Identifier of the rule that fired, e.g. ``"RL001"``.
        severity: Build impact of the finding.
        message: Human-readable description of the violation.
    """

    path: str
    line: int
    col: int
    rule_id: str
    severity: Severity
    message: str

    def format(self) -> str:
        """The canonical single-line text form."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} {self.severity.value}: {self.message}"
        )

    def as_dict(self) -> Dict[str, Any]:
        """JSON-able form, as written by the JSON reporter."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "severity": self.severity.value,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Finding":
        """Rebuild a finding from :meth:`as_dict` output."""
        return cls(
            path=str(payload["path"]),
            line=int(payload["line"]),
            col=int(payload["col"]),
            rule_id=str(payload["rule"]),
            severity=Severity(payload["severity"]),
            message=str(payload["message"]),
        )
