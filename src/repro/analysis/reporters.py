"""Text and JSON reporters for lint results.

The JSON form is versioned and round-trips losslessly through
:func:`parse_json`, which is what lets CI archive lint output and the
tests assert schema stability.

Schema history:

* **1** — findings + summary (files/findings/errors/warnings/
  suppressed).
* **2** — adds per-rule metadata (``rules``: id/name/scope/severity
  and whether the rule needs the cross-module index) and
  ``summary.baselined`` for ``--baseline`` runs.  Per-rule timings
  are deliberately *not* serialized: reports must be byte-stable for
  identical trees.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.analysis.engine import LintResult
from repro.analysis.findings import Finding
from repro.analysis.registry import all_rules, get_rule

__all__ = [
    "render_text",
    "render_json",
    "parse_json",
    "render_catalogue",
    "render_stats",
    "REPORT_SCHEMA",
]

#: Bump when the JSON report layout changes.
REPORT_SCHEMA = 2


def _summary_line(result: LintResult) -> str:
    line = (
        f"{result.files_checked} files checked, "
        f"{len(result.findings)} findings "
        f"({result.errors} errors, {result.warnings} warnings), "
        f"{result.suppressed} suppressed"
    )
    if result.baselined:
        line += f", {result.baselined} baselined"
    return line


def render_text(result: LintResult) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = [finding.format() for finding in result.findings]
    lines.append(_summary_line(result))
    return "\n".join(lines)


def _rule_meta(rule_id: str) -> Dict[str, Any]:
    try:
        rule = get_rule(rule_id)
    except KeyError:
        # A report parsed from an older run may name rules this build
        # no longer registers; keep the id, degrade the rest.
        return {"id": rule_id, "name": None, "scope": None,
                "severity": None, "needs_index": None}
    return {
        "id": rule.id,
        "name": rule.name,
        "scope": rule.scope,
        "severity": rule.severity.value,
        "needs_index": rule.needs_index,
    }


def render_json(result: LintResult) -> str:
    """Stable machine-readable report (see :data:`REPORT_SCHEMA`)."""
    payload: Dict[str, Any] = {
        "schema": REPORT_SCHEMA,
        "tool": "repro-lint",
        "rules_run": list(result.rules_run),
        "rules": [_rule_meta(rule_id) for rule_id in result.rules_run],
        "findings": [finding.as_dict() for finding in result.findings],
        "summary": {
            "files_checked": result.files_checked,
            "findings": len(result.findings),
            "errors": result.errors,
            "warnings": result.warnings,
            "suppressed": result.suppressed,
            "baselined": result.baselined,
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def parse_json(text: str) -> LintResult:
    """Rebuild a :class:`LintResult` from :func:`render_json` output."""
    payload = json.loads(text)
    if payload.get("schema") != REPORT_SCHEMA:
        raise ValueError(f"unsupported report schema: {payload.get('schema')!r}")
    return LintResult(
        findings=[Finding.from_dict(entry) for entry in payload["findings"]],
        files_checked=int(payload["summary"]["files_checked"]),
        rules_run=tuple(payload["rules_run"]),
        suppressed=int(payload["summary"]["suppressed"]),
        baselined=int(payload["summary"]["baselined"]),
    )


def render_catalogue() -> str:
    """The registered rule catalogue, one line per rule.

    Each line names the rule's scope tier — ``module`` (one file at a
    time), ``project`` (cross-module index), or ``flow`` (CFG +
    dataflow fixpoints, the most expensive) — and marks the tiers
    that cannot run without the cross-module ProjectIndex.
    """
    lines = []
    for rule in all_rules():
        scope = rule.scope
        if rule.needs_index:
            scope += ", needs project index"
        lines.append(
            f"{rule.id} {rule.name} [{rule.severity.value}] "
            f"({scope}): {rule.description}"
        )
    return "\n".join(lines)


def render_stats(result: LintResult) -> str:
    """Per-rule wall-clock and finding counts (``--stats``)."""
    counts: Dict[str, int] = {}
    for finding in result.findings:
        counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
    lines = ["rule     scope     time      findings"]
    for rule_id in result.rules_run:
        meta = _rule_meta(rule_id)
        scope = meta["scope"] or "?"
        seconds = result.timings.get(rule_id)
        timed = f"{seconds * 1000.0:7.1f}ms" if seconds is not None else "       —"
        lines.append(
            f"{rule_id:<8} {scope:<9} {timed}  {counts.get(rule_id, 0):8d}"
        )
    total = sum(result.timings.values())
    lines.append(f"total    {'':<9} {total * 1000.0:7.1f}ms")
    return "\n".join(lines)
