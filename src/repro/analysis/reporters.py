"""Text and JSON reporters for lint results.

The JSON form is versioned and round-trips losslessly through
:func:`parse_json`, which is what lets CI archive lint output and the
tests assert schema stability.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.analysis.engine import LintResult
from repro.analysis.findings import Finding
from repro.analysis.registry import all_rules

__all__ = [
    "render_text",
    "render_json",
    "parse_json",
    "render_catalogue",
    "REPORT_SCHEMA",
]

#: Bump when the JSON report layout changes.
REPORT_SCHEMA = 1


def render_text(result: LintResult) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = [finding.format() for finding in result.findings]
    lines.append(
        f"{result.files_checked} files checked, "
        f"{len(result.findings)} findings "
        f"({result.errors} errors, {result.warnings} warnings), "
        f"{result.suppressed} suppressed"
    )
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Stable machine-readable report (see :data:`REPORT_SCHEMA`)."""
    payload: Dict[str, Any] = {
        "schema": REPORT_SCHEMA,
        "tool": "repro-lint",
        "rules_run": list(result.rules_run),
        "findings": [finding.as_dict() for finding in result.findings],
        "summary": {
            "files_checked": result.files_checked,
            "findings": len(result.findings),
            "errors": result.errors,
            "warnings": result.warnings,
            "suppressed": result.suppressed,
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def parse_json(text: str) -> LintResult:
    """Rebuild a :class:`LintResult` from :func:`render_json` output."""
    payload = json.loads(text)
    if payload.get("schema") != REPORT_SCHEMA:
        raise ValueError(f"unsupported report schema: {payload.get('schema')!r}")
    return LintResult(
        findings=[Finding.from_dict(entry) for entry in payload["findings"]],
        files_checked=int(payload["summary"]["files_checked"]),
        rules_run=tuple(payload["rules_run"]),
        suppressed=int(payload["summary"]["suppressed"]),
    )


def render_catalogue() -> str:
    """The registered rule catalogue, one line per rule."""
    lines = []
    for rule in all_rules():
        lines.append(
            f"{rule.id} {rule.name} [{rule.severity.value}]: {rule.description}"
        )
    return "\n".join(lines)
