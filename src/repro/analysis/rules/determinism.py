"""Determinism rules: RL001 no-wallclock-on-hot-path, RL002 unseeded-rng.

**RL001** — simulated-time discipline.  The simulator, the streaming
runtime, the MPC core, and the tracer all operate in *simulated* time:
two runs of the same workload must produce byte-identical results and
traces regardless of host speed.  Reading the wall clock anywhere on
those paths breaks that (and with it the engine's content-addressed
cache, whose acceptance bar is bit-identical recomputation).  The wall
clock is legitimately read in the engine's timing blocks
(``repro/engine/``) and the experiment runner (``repro/experiments/``)
— those paths are the rule's allowlist and are simply not scoped.

**RL002** — every random draw must come from an explicitly seeded
generator.  Unseeded ``numpy.random.default_rng()`` (or bit
generators), and any use of the process-global numpy/stdlib RNGs, make
results depend on process history and break reproducibility and the
cache-fingerprint contract.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding, Severity
from repro.analysis.index import ModuleInfo, ProjectIndex, path_matches
from repro.analysis.registry import rule

__all__ = ["check_wallclock", "check_unseeded_rng"]

#: Paths where wall-clock reads are banned (simulated-time hot paths).
HOT_PATHS = (
    "repro/sim/",
    "repro/runtime/",
    "repro/core/",
    "repro/obs/tracing.py",
)

#: Paths where wall-clock reads are legitimate (engine timing blocks,
#: experiment wall-time reporting).  Documented allowlist: these are
#: deliberately outside :data:`HOT_PATHS`.
WALLCLOCK_ALLOWED_PATHS = ("repro/engine/", "repro/experiments/")

#: Fully-qualified wall-clock reads banned on hot paths.
WALLCLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.clock_gettime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Legacy process-global numpy RNG entry points (always banned).
_NUMPY_GLOBAL_RNG = frozenset(
    {
        "seed", "rand", "randn", "randint", "random", "random_sample",
        "ranf", "sample", "choice", "shuffle", "permutation", "normal",
        "uniform", "standard_normal", "exponential", "poisson", "bytes",
        "random_integers",
    }
)

#: numpy bit generators that must receive an explicit seed.
_NUMPY_BIT_GENERATORS = frozenset(
    {"PCG64", "PCG64DXSM", "MT19937", "Philox", "SFC64"}
)

#: stdlib ``random`` module-level functions (process-global RNG).
_STDLIB_GLOBAL_RNG = frozenset(
    {
        "seed", "random", "randint", "randrange", "uniform", "choice",
        "choices", "shuffle", "sample", "gauss", "normalvariate",
        "betavariate", "expovariate", "triangular", "getrandbits",
        "randbytes", "vonmisesvariate", "paretovariate", "weibullvariate",
        "lognormvariate",
    }
)


def _has_seed_argument(call: ast.Call) -> bool:
    """Whether a generator construction passes any seed material."""
    return bool(call.args) or bool(call.keywords)


@rule(
    "RL001",
    "no-wallclock-on-hot-path",
    "simulated-time code must never read the wall clock "
    "(inject a clock or pass time explicitly)",
)
def check_wallclock(module: ModuleInfo, index: ProjectIndex) -> Iterator[Finding]:
    """Flag wall-clock reads in simulated-time modules."""
    if not any(path_matches(module.rel_path, hot) for hot in HOT_PATHS):
        return
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        resolved = module.resolve(node.func)
        if resolved in WALLCLOCK_CALLS:
            yield Finding(
                path=module.path,
                line=node.lineno,
                col=node.col_offset,
                rule_id="RL001",
                severity=Severity.ERROR,
                message=(
                    f"wall-clock read {resolved}() on a simulated-time hot "
                    "path; inject a clock (see obs.tracing.Tracer) or pass "
                    "timestamps explicitly"
                ),
            )


@rule(
    "RL002",
    "unseeded-rng",
    "random draws must come from an explicitly seeded generator",
)
def check_unseeded_rng(module: ModuleInfo, index: ProjectIndex) -> Iterator[Finding]:
    """Flag unseeded or process-global random number generation."""
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        resolved = module.resolve(node.func)
        if resolved is None:
            continue
        message = None
        if resolved == "numpy.random.default_rng" and not _has_seed_argument(node):
            message = (
                "numpy.random.default_rng() without an explicit seed; "
                "pass a seed derived from the experiment inputs"
            )
        elif resolved.startswith("numpy.random."):
            tail = resolved.rsplit(".", 1)[1]
            if tail in _NUMPY_GLOBAL_RNG:
                message = (
                    f"process-global numpy RNG numpy.random.{tail}(); use an "
                    "explicitly seeded numpy.random.default_rng(seed) instead"
                )
            elif tail in _NUMPY_BIT_GENERATORS and not _has_seed_argument(node):
                message = (
                    f"numpy.random.{tail}() without an explicit seed"
                )
        elif resolved == "random.Random" and not _has_seed_argument(node):
            message = "random.Random() without an explicit seed"
        elif resolved.startswith("random."):
            tail = resolved.rsplit(".", 1)[1]
            if tail in _STDLIB_GLOBAL_RNG:
                message = (
                    f"process-global stdlib RNG random.{tail}(); use an "
                    "explicitly seeded generator instead"
                )
        if message is not None:
            yield Finding(
                path=module.path,
                line=node.lineno,
                col=node.col_offset,
                rule_id="RL002",
                severity=Severity.ERROR,
                message=message,
            )
