"""RL011 memo-staleness: WeakKeyDictionary payloads need guards.

Two hot-path memos set the pattern this rule enforces:

* ``repro/ml/forest.py`` caches a ``_FlatForest`` per ``RandomForest``
  in a module-level ``WeakKeyDictionary``.  A forest object can be
  retrained in place, so the cached flattening validates itself:
  ``flat is None or not flat.matches(forest.trees)`` — an identity
  check on the payload — before use.  The cache is annotated
  ``# repro-lint: memo-guard=matches``.
* ``repro/hardware/table.py`` caches CPU power columns per
  ``ConfigTable``, keyed so that the *key* encodes validity (the model
  coefficients are part of it).  Keyed caches carry
  ``# repro-lint: memo-guard=keyed`` and are exempt from payload
  checks.

A bare ``if cached is None`` on a weak-keyed payload is the staleness
bug in waiting: the key object survives mutation, so the cache happily
serves a payload built from state that no longer exists.  RL011 runs a
may-analysis per function: binding a payload from a cache read
(``CACHE.get(k)``, ``CACHE[k]``, ``CACHE.setdefault(k, ...)``) creates
an *unvalidated* fact, which dies when a branch test (or ``assert``)
inspects the payload — any ``payload.<attr>`` for unannotated caches,
specifically ``payload.<guard>`` when the cache declares
``memo-guard=<method>`` — or when the name is rebound (the rebuild
path).  Using a still-unvalidated payload (returning it, passing it to
a call, storing it) is flagged, as is reading the cache without
binding it to a name at all (``return CACHE[k]`` has nowhere to hang a
guard).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, Optional, Set, Tuple

from repro.analysis.findings import Finding, Severity
from repro.analysis.flow.annotations import FunctionFlow, MemoCache, module_flow
from repro.analysis.flow.cfg import Atom, calls_in
from repro.analysis.flow.dataflow import ForwardAnalysis, run_forward
from repro.analysis.index import ModuleInfo, ProjectIndex
from repro.analysis.registry import rule
from repro.analysis.rules.flowbase import flow_modules

__all__ = ["check_memo_staleness"]

MemoState = FrozenSet[str]

#: Cache methods whose result is the cached payload.
_READ_METHODS = ("get", "setdefault")


@dataclass(frozen=True)
class _Binding:
    token: str
    var: str
    cache: str
    line: int


def _cache_read(
    value: ast.expr, caches: Dict[str, MemoCache]
) -> Optional[str]:
    """Cache name when the expression reads a payload, else ``None``."""
    if isinstance(value, ast.Subscript):
        base = value.value
        if isinstance(base, ast.Name) and base.id in caches:
            if isinstance(value.ctx, ast.Load):
                return base.id
    if isinstance(value, ast.Call) and isinstance(value.func, ast.Attribute):
        base = value.func.value
        if (
            isinstance(base, ast.Name)
            and base.id in caches
            and value.func.attr in _READ_METHODS
        ):
            return base.id
    return None


def _validates(node: ast.AST, var: str, guard: Optional[str]) -> bool:
    """Whether an expression inspects the payload per the guard."""
    for child in ast.walk(node):
        if (
            isinstance(child, ast.Attribute)
            and isinstance(child.value, ast.Name)
            and child.value.id == var
        ):
            if guard is None or child.attr == guard:
                return True
    return False


def _uses(node: ast.AST, var: str) -> bool:
    """Whether a statement consumes the payload (not just tests it)."""
    if isinstance(node, ast.Return):
        return node.value is not None and _mentions(node.value, var)
    if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
        value = getattr(node, "value", None)
        if value is not None and _mentions(value, var):
            return True
    for call in calls_in(node):
        for arg in call.args:
            if _mentions(arg, var):
                return True
        for keyword in call.keywords:
            if _mentions(keyword.value, var):
                return True
        func = call.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == var
        ):
            return True
    return False


def _mentions(node: ast.AST, var: str) -> bool:
    return any(
        isinstance(child, ast.Name) and child.id == var
        for child in ast.walk(node)
    )


class _UnvalidatedPayloads(ForwardAnalysis[MemoState]):
    """May-unvalidated cache payloads bound to locals."""

    def __init__(self, caches: Dict[str, MemoCache]) -> None:
        self.caches = caches
        self.bindings: Dict[str, _Binding] = {}

    def _tokens_of(self, var: str) -> Set[str]:
        return {
            token for token, b in self.bindings.items() if b.var == var
        }

    def entry_state(self, cfg: object) -> MemoState:
        return frozenset()

    def join(self, a: MemoState, b: MemoState) -> MemoState:
        return a | b

    def transfer(self, atom: Atom, state: MemoState) -> MemoState:
        node = atom.node
        # Validation: a branch test or assert inspecting the payload.
        if atom.kind == "test" or isinstance(node, ast.Assert):
            for token in set(state):
                binding = self.bindings[token]
                guard = self.caches[binding.cache].guard
                if _validates(node, binding.var, guard):
                    state = state - {token}
        # Rebinding (including the rebuild path) clears old facts;
        # a fresh cache read re-arms them.
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    state = state - self._tokens_of(target.id)
                    cache = _cache_read(node.value, self.caches)
                    if cache is not None:
                        binding = _Binding(
                            token=f"{target.id}@{node.lineno}",
                            var=target.id,
                            cache=cache,
                            line=node.lineno,
                        )
                        self.bindings[binding.token] = binding
                        state = state | {binding.token}
        return state


def _direct_reads(
    func: FunctionFlow, caches: Dict[str, MemoCache]
) -> Iterator[ast.expr]:
    """Cache reads not bound to a local (nowhere to hang a guard)."""
    bound_values: Set[int] = set()
    for node in ast.walk(func.node):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    bound_values.add(id(node.value))
    for node in ast.walk(func.node):
        if id(node) in bound_values:
            continue
        if isinstance(node, (ast.Subscript, ast.Call)):
            if _cache_read(node, caches) is not None:
                yield node


def _check_function(
    func: FunctionFlow, module: ModuleInfo, caches: Dict[str, MemoCache]
) -> Iterator[Finding]:
    analysis = _UnvalidatedPayloads(caches)
    cfg = func.cfg()
    states = run_forward(cfg, analysis)
    for read in _direct_reads(func, caches):
        yield Finding(
            path=module.path,
            line=read.lineno,
            col=read.col_offset,
            rule_id="RL011",
            severity=Severity.ERROR,
            message=(
                "WeakKeyDictionary payload used directly from the "
                "cache; bind it to a local and validate staleness "
                "before use (or declare memo-guard=keyed)"
            ),
        )
    if not analysis.bindings:
        return
    reported: Set[Tuple[int, int]] = set()
    for block, atom in cfg.atoms():
        state = states.get(block.id)
        if not state:
            continue
        node = atom.node
        if atom.kind == "test" or isinstance(node, ast.Assert):
            continue  # tests are where validation happens
        for token in sorted(state):
            binding = analysis.bindings[token]
            if isinstance(node, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == binding.var
                for t in node.targets
            ):
                continue  # the rebuild/rebind itself
            if not _uses(node, binding.var):
                continue
            key = (atom.line, atom.col)
            if key in reported:
                continue
            reported.add(key)
            guard = caches[binding.cache].guard
            hint = (
                f"check 'payload.{guard}(...)'"
                if guard
                else "add an identity/staleness check on the payload"
            )
            yield Finding(
                path=module.path,
                line=atom.line,
                col=atom.col,
                rule_id="RL011",
                severity=Severity.ERROR,
                message=(
                    f"cached payload '{binding.var}' from "
                    f"WeakKeyDictionary '{binding.cache}' (line "
                    f"{binding.line}) used without a staleness guard; "
                    f"{hint} before use, or annotate the cache "
                    "memo-guard=keyed if the key encodes validity"
                ),
            )


@rule(
    "RL011",
    "memo-staleness",
    "module-level WeakKeyDictionary caches must guard payload reads "
    "with an identity/staleness check (memo-guard=<method>) or key "
    "validity into the cache key (memo-guard=keyed)",
    scope="flow",
)
def check_memo_staleness(index: ProjectIndex) -> Iterator[Finding]:
    """Flag unguarded reads of weak-keyed memo caches."""
    for module in flow_modules(index):
        flow = module_flow(module)
        caches: Dict[str, MemoCache] = {}
        for cache in flow.memo_caches:
            if cache.guard == "keyed":
                continue
            for name in cache.names:
                caches[name] = cache
        if not caches:
            continue
        for func in flow.functions:
            yield from _check_function(func, module, caches)
