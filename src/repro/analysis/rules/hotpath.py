"""RL007 scalar-path-drift: the decide hot path must stay columnar.

The decision core (``repro/core/``) was refactored onto the columnar
predictor interface: candidate sweeps hand a
:class:`~repro.hardware.table.ConfigTable` plus flat index arrays to
``estimate_matrix`` and get struct-of-arrays estimates back in one
call.  The slow pattern that refactor removed — one scalar
``predictor.estimate(...)`` per candidate configuration inside a Python
loop — tends to creep back in piecemeal, because each individual call
site is correct and only the aggregate is slow.  RL007 flags exactly
that drift: a call to ``<something named *predictor*>.estimate(...)``
lexically inside a ``for``/``while`` body (or a comprehension) in
``repro/core/``.

Deliberate scalar fallbacks (duck-typed predictors without
``estimate_matrix``) stay legal: wrap the call in a helper function —
a nested ``def`` is a new execution context, not a per-iteration call
site — exactly what ``GreedyHillClimbOptimizer`` does.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.analysis.findings import Finding, Severity
from repro.analysis.index import ModuleInfo, ProjectIndex, path_matches
from repro.analysis.registry import rule

__all__ = ["check_scalar_path_drift"]

#: Paths holding the decision core, where the columnar predictor
#: interface is the hot-path contract.
CORE_PATHS = ("repro/core/",)

#: Execution-context boundaries: code inside these runs when *called*,
#: not once per loop iteration, so a loop outside them is irrelevant.
_CONTEXT_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)

_COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)


def _receiver_tail(expr: ast.expr) -> str:
    """Last component of a ``Name``/``Attribute`` receiver chain."""
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return ""


def _is_scalar_estimate_call(node: ast.Call) -> bool:
    func = node.func
    return (
        isinstance(func, ast.Attribute)
        and func.attr == "estimate"
        and "predictor" in _receiver_tail(func.value).lower()
    )


def _per_iteration_calls(tree: ast.Module) -> List[ast.Call]:
    """Scalar-estimate calls whose subtree executes once per iteration."""
    flagged: List[ast.Call] = []

    def visit(node: ast.AST, in_loop: bool) -> None:
        if isinstance(node, _CONTEXT_NODES):
            for child in ast.iter_child_nodes(node):
                visit(child, False)
            return
        if in_loop and isinstance(node, ast.Call) and _is_scalar_estimate_call(node):
            flagged.append(node)
        if isinstance(node, (ast.For, ast.AsyncFor)):
            # The iterable expression evaluates once; body/orelse repeat.
            visit(node.iter, in_loop)
            visit(node.target, True)
            for stmt in node.body + node.orelse:
                visit(stmt, True)
            return
        if isinstance(node, ast.While):
            # The test re-evaluates every iteration, like the body.
            visit(node.test, True)
            for stmt in node.body + node.orelse:
                visit(stmt, True)
            return
        if isinstance(node, _COMPREHENSIONS):
            # The first generator's source evaluates once; the element
            # expression, conditions, and later generators repeat.
            for position, generator in enumerate(node.generators):
                visit(generator.iter, in_loop if position == 0 else True)
                visit(generator.target, True)
                for condition in generator.ifs:
                    visit(condition, True)
            if isinstance(node, ast.DictComp):
                visit(node.key, True)
                visit(node.value, True)
            else:
                visit(node.elt, True)
            return
        for child in ast.iter_child_nodes(node):
            visit(child, in_loop)

    visit(tree, False)
    return flagged


@rule(
    "RL007",
    "scalar-path-drift",
    "repro/core/ loops must use the columnar estimate_matrix API, not "
    "per-config predictor.estimate() calls",
)
def check_scalar_path_drift(
    module: ModuleInfo, index: ProjectIndex
) -> Iterator[Finding]:
    """Flag per-config scalar predictor calls in decision-core loops."""
    if not any(path_matches(module.rel_path, core) for core in CORE_PATHS):
        return
    for node in _per_iteration_calls(module.tree):
        yield Finding(
            path=module.path,
            line=node.lineno,
            col=node.col_offset,
            rule_id="RL007",
            severity=Severity.ERROR,
            message=(
                "per-config predictor.estimate() inside a loop on the "
                "decision core; batch the candidates through "
                "estimate_matrix(counters, table, indices) (or move the "
                "deliberate scalar fallback into a helper function)"
            ),
        )
