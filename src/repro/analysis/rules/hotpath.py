"""RL007 scalar-path-drift: the decide hot path must stay columnar.

The decision core (``repro/core/``) was refactored onto the columnar
predictor interface: candidate sweeps hand a
:class:`~repro.hardware.table.ConfigTable` plus flat index arrays to
``estimate_matrix`` and get struct-of-arrays estimates back in one
call.  The slow pattern that refactor removed — one scalar
``predictor.estimate(...)`` per candidate configuration inside a Python
loop — tends to creep back in piecemeal, because each individual call
site is correct and only the aggregate is slow.  RL007 flags exactly
that drift: a call to ``<something named *predictor*>.estimate(...)``
lexically inside a ``for``/``while`` body (or a comprehension) in
``repro/core/``.

Deliberate scalar fallbacks (duck-typed predictors without
``estimate_matrix``) stay legal: wrap the call in a helper function —
a nested ``def`` is a new execution context, not a per-iteration call
site — exactly what ``GreedyHillClimbOptimizer`` does.

A second facet guards the forest flattening: ``RandomForest.predict``
descends every tree of the ensemble in one iterative vectorized pass
over contiguous node arrays, so decision-path code must never reach
past the forest to individual trees.  Any ``<something named
*tree*>.predict(...)`` call in ``repro/core/`` or ``repro/runtime/`` —
looped or not, including subscripted receivers like
``forest.trees[i].predict(X)`` — reintroduces the per-tree Python loop
the flattening removed and is flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.analysis.findings import Finding, Severity
from repro.analysis.index import ModuleInfo, ProjectIndex, path_matches
from repro.analysis.registry import rule

__all__ = ["check_scalar_path_drift"]

#: Paths holding the decision core, where the columnar predictor
#: interface is the hot-path contract.
CORE_PATHS = ("repro/core/",)

#: Paths where the flattened-forest contract applies: predictions go
#: through ``RandomForest.predict``, never per-tree ``tree.predict``.
TREE_PATHS = ("repro/core/", "repro/runtime/")

#: Execution-context boundaries: code inside these runs when *called*,
#: not once per loop iteration, so a loop outside them is irrelevant.
_CONTEXT_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)

_COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)


def _receiver_tail(expr: ast.expr) -> str:
    """Last named component of a receiver chain.

    Subscripts are transparent — ``forest.trees[i]`` names ``trees`` —
    so indexing into a tree collection cannot hide the receiver.
    """
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Subscript):
        return _receiver_tail(expr.value)
    return ""


def _is_scalar_estimate_call(node: ast.Call) -> bool:
    func = node.func
    return (
        isinstance(func, ast.Attribute)
        and func.attr == "estimate"
        and "predictor" in _receiver_tail(func.value).lower()
    )


def _is_tree_predict_call(node: ast.Call) -> bool:
    func = node.func
    return (
        isinstance(func, ast.Attribute)
        and func.attr == "predict"
        and "tree" in _receiver_tail(func.value).lower()
    )


def _tree_predict_calls(tree: ast.Module) -> List[ast.Call]:
    """Every per-tree predict call, looped or not: one is already drift."""
    return [
        node
        for node in ast.walk(tree)
        if isinstance(node, ast.Call) and _is_tree_predict_call(node)
    ]


def _per_iteration_calls(tree: ast.Module) -> List[ast.Call]:
    """Scalar-estimate calls whose subtree executes once per iteration."""
    flagged: List[ast.Call] = []

    def visit(node: ast.AST, in_loop: bool) -> None:
        if isinstance(node, _CONTEXT_NODES):
            for child in ast.iter_child_nodes(node):
                visit(child, False)
            return
        if in_loop and isinstance(node, ast.Call) and _is_scalar_estimate_call(node):
            flagged.append(node)
        if isinstance(node, (ast.For, ast.AsyncFor)):
            # The iterable expression evaluates once; body/orelse repeat.
            visit(node.iter, in_loop)
            visit(node.target, True)
            for stmt in node.body + node.orelse:
                visit(stmt, True)
            return
        if isinstance(node, ast.While):
            # The test re-evaluates every iteration, like the body.
            visit(node.test, True)
            for stmt in node.body + node.orelse:
                visit(stmt, True)
            return
        if isinstance(node, _COMPREHENSIONS):
            # The first generator's source evaluates once; the element
            # expression, conditions, and later generators repeat.
            for position, generator in enumerate(node.generators):
                visit(generator.iter, in_loop if position == 0 else True)
                visit(generator.target, True)
                for condition in generator.ifs:
                    visit(condition, True)
            if isinstance(node, ast.DictComp):
                visit(node.key, True)
                visit(node.value, True)
            else:
                visit(node.elt, True)
            return
        for child in ast.iter_child_nodes(node):
            visit(child, in_loop)

    visit(tree, False)
    return flagged


@rule(
    "RL007",
    "scalar-path-drift",
    "repro/core/ loops must use the columnar estimate_matrix API (not "
    "per-config predictor.estimate() calls), and repro/core/ + "
    "repro/runtime/ must predict through the flattened forest, never "
    "per-tree tree.predict()",
)
def check_scalar_path_drift(
    module: ModuleInfo, index: ProjectIndex
) -> Iterator[Finding]:
    """Flag scalar-estimate loops and per-tree predicts on hot paths."""
    if any(path_matches(module.rel_path, core) for core in CORE_PATHS):
        for node in _per_iteration_calls(module.tree):
            yield Finding(
                path=module.path,
                line=node.lineno,
                col=node.col_offset,
                rule_id="RL007",
                severity=Severity.ERROR,
                message=(
                    "per-config predictor.estimate() inside a loop on the "
                    "decision core; batch the candidates through "
                    "estimate_matrix(counters, table, indices) (or move the "
                    "deliberate scalar fallback into a helper function)"
                ),
            )
    if any(path_matches(module.rel_path, path) for path in TREE_PATHS):
        for node in _tree_predict_calls(module.tree):
            yield Finding(
                path=module.path,
                line=node.lineno,
                col=node.col_offset,
                rule_id="RL007",
                severity=Severity.ERROR,
                message=(
                    "per-tree tree.predict() on the decision hot path; "
                    "predict through the forest (RandomForest.predict), "
                    "whose flattened node arrays descend every tree in "
                    "one vectorized pass"
                ),
            )
