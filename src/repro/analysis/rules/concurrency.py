"""RL004 worker-pickle-safety: ProcessPool payloads must pickle cleanly.

Everything handed to a ``ProcessPoolExecutor`` — the submitted callable,
its arguments, and the pool's ``initializer``/``initargs`` — crosses a
process boundary by pickling.  Lambdas and nested functions fail
outright; locks, open files, and the observability bundle (tracer /
metrics registry, which hold thread-local state and locks) either fail
or, worse, pickle a *copy* whose mutations are silently lost in the
parent.  The engine's contract is that workers receive plain value
objects (requests, spec dicts) and ship plain value objects back.

The rule resolves pool receivers statically: a name bound (by
assignment or ``with ... as``) to a ``ProcessPoolExecutor(...)`` call.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.findings import Finding, Severity
from repro.analysis.index import ModuleInfo, ProjectIndex, dotted_name
from repro.analysis.registry import rule
from repro.analysis.rules.common import ScopeMap

__all__ = ["check_worker_pickle_safety"]

#: Constructor calls whose results must never travel to a worker.
_UNPICKLABLE_FACTORIES = frozenset(
    {
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
        "threading.Event",
        "threading.Semaphore",
        "threading.BoundedSemaphore",
        "threading.Barrier",
        "open",
        "io.open",
        "builtins.open",
    }
)

#: Obs-bundle constructors (suffix-matched; they carry locks and
#: thread-local state, and worker-side mutations would be lost anyway).
_OBS_FACTORY_SUFFIXES = (
    "Instrumentation",
    "Tracer",
    "MetricsRegistry",
    "make_instrumentation",
)

#: Bare names that denote the obs bundle when passed wholesale.
_OBS_NAMES = frozenset({"obs", "tracer", "registry", "instrumentation"})


def _is_pool_constructor(module: ModuleInfo, node: ast.expr) -> bool:
    resolved = module.resolve(node)
    return resolved is not None and resolved.endswith("ProcessPoolExecutor")


def _resolves_to_pool(
    module: ModuleInfo, scopes: ScopeMap, node: ast.expr
) -> bool:
    """Whether an expression denotes a ProcessPoolExecutor instance."""
    if isinstance(node, ast.Call):
        return _is_pool_constructor(module, node.func)
    if isinstance(node, ast.Name):
        value = scopes.lookup(node, node.id)
        return (
            value is not None
            and isinstance(value, ast.Call)
            and _is_pool_constructor(module, value.func)
        )
    return False


def _finding(module: ModuleInfo, node: ast.AST, message: str) -> Finding:
    return Finding(
        path=module.path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        rule_id="RL004",
        severity=Severity.ERROR,
        message=message,
    )


def _check_target(
    module: ModuleInfo, scopes: ScopeMap, node: ast.expr
) -> Optional[Finding]:
    """Validate the callable submitted to (or initializing) a pool."""
    if isinstance(node, ast.Lambda):
        return _finding(
            module, node,
            "lambda submitted to a process pool is not picklable; "
            "use a module-level function",
        )
    if isinstance(node, ast.Attribute):
        return _finding(
            module, node,
            f"bound callable {dotted_name(node) or node.attr!r} submitted "
            "to a process pool may capture unpicklable state; submit a "
            "module-level function and pass plain data",
        )
    if isinstance(node, ast.Name):
        if scopes.is_nested_def(node, node.id):
            return _finding(
                module, node,
                f"nested function {node.id!r} submitted to a process pool "
                "is not picklable; move it to module level",
            )
        value = scopes.lookup(node, node.id)
        if isinstance(value, ast.Lambda):
            return _finding(
                module, node,
                f"{node.id!r} is a lambda; lambdas are not picklable "
                "across the process boundary",
            )
    return None


def _payload_problem(
    module: ModuleInfo, scopes: ScopeMap, node: ast.expr
) -> Optional[str]:
    """Why an argument expression is unsafe to ship to a worker."""
    if isinstance(node, ast.Lambda):
        return "a lambda is not picklable"
    if isinstance(node, ast.Call):
        return _call_problem(module, node)
    if isinstance(node, ast.Name):
        if node.id in _OBS_NAMES:
            return (
                f"{node.id!r} is the observability bundle; ship value "
                "snapshots (registry.snapshot() / span dicts) instead"
            )
        value = scopes.lookup(node, node.id)
        if isinstance(value, ast.Lambda):
            return f"{node.id!r} is bound to a lambda"
        if isinstance(value, ast.Call):
            problem = _call_problem(module, value)
            if problem is not None:
                return f"{node.id!r} is {problem}"
    if isinstance(node, ast.Attribute) and node.attr in _OBS_NAMES:
        return (
            f"{dotted_name(node) or node.attr!r} is the observability "
            "bundle; ship value snapshots instead"
        )
    return None


def _call_problem(module: ModuleInfo, call: ast.Call) -> Optional[str]:
    resolved = module.resolve(call.func)
    if resolved is None:
        return None
    if resolved in _UNPICKLABLE_FACTORIES:
        kind = "an open file" if resolved.endswith("open") else "a lock"
        return f"{kind} ({resolved}) and cannot cross the process boundary"
    if any(resolved.endswith(suffix) for suffix in _OBS_FACTORY_SUFFIXES):
        return (
            f"the observability bundle ({resolved}); workers must ship "
            "value snapshots back instead"
        )
    return None


def _check_payload(
    module: ModuleInfo, scopes: ScopeMap, node: ast.expr
) -> Optional[Finding]:
    problem = _payload_problem(module, scopes, node)
    if problem is None:
        return None
    return _finding(
        module, node, f"process-pool payload is unsafe to pickle: {problem}"
    )


@rule(
    "RL004",
    "worker-pickle-safety",
    "process-pool submissions must be module-level callables with "
    "plain-value payloads (no locks, files, or obs bundles)",
)
def check_worker_pickle_safety(
    module: ModuleInfo, index: ProjectIndex
) -> Iterator[Finding]:
    """Flag unpicklable process-pool targets and payloads."""
    scopes = ScopeMap(module.tree)
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        # pool.submit(target, *args, **kwargs)
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "submit"
            and _resolves_to_pool(module, scopes, func.value)
        ):
            if node.args:
                finding = _check_target(module, scopes, node.args[0])
                if finding is not None:
                    yield finding
            for arg in node.args[1:]:
                finding = _check_payload(module, scopes, arg)
                if finding is not None:
                    yield finding
            for keyword in node.keywords:
                finding = _check_payload(module, scopes, keyword.value)
                if finding is not None:
                    yield finding
        # ProcessPoolExecutor(initializer=..., initargs=(...))
        elif _is_pool_constructor(module, func):
            for keyword in node.keywords:
                if keyword.arg == "initializer":
                    finding = _check_target(module, scopes, keyword.value)
                    if finding is not None:
                        yield finding
                elif keyword.arg == "initargs":
                    elements = (
                        keyword.value.elts
                        if isinstance(keyword.value, (ast.Tuple, ast.List))
                        else [keyword.value]
                    )
                    for element in elements:
                        finding = _check_payload(module, scopes, element)
                        if finding is not None:
                            yield finding
