"""RL009 lock-discipline: ``*_unlocked`` calls must hold the lock.

PR 7 gave the metrics layer a deliberately sharp edge: bound
instruments expose ``inc_unlocked``/``observe_unlocked``/
``set_unlocked`` so hot paths can batch many updates under **one**
``with registry.lock`` frame instead of paying a lock round-trip per
counter.  The contract — "only call these while holding the registry
lock" — lived in docstrings until this rule.

RL009 runs the held-locks must-analysis
(:mod:`repro.analysis.flow.locksets`) over every function in
``repro/`` and flags:

* a call to a ``*_unlocked`` method — or to any function annotated
  ``# repro-lint: requires-lock=<attr>`` anywhere in the project (the
  one-level call-graph propagation) — at a program point where **no**
  lock is held on some path.  Because the analysis is *must*, a frame
  that only dominates one branch of an ``if`` (the
  partially-dominated shape) does not count.
* a ``with`` re-acquire of a lock token already held — the self-
  deadlock shape; ``threading.Lock`` is not reentrant, and the
  registry lock is shared across every bound instrument (see the
  fail-safe comment in ``runtime/session.py``, which takes the rare
  path *outside* the bulk frame for exactly this reason).

Motivating audit (PR 8's hoisted hot paths, all verified clean by this
rule and locked in by the mutation test on ``obs/health.py``):
``GreedyHillClimbOptimizer._record_search``,
``HorizonController.record``, ``PowerSession._finish_decide`` and
``ModelHealthMonitor.observe`` each hoist ``tracer.current()`` out of
the frame, then do their ``*_unlocked`` batch strictly inside
``with self._m_lock:`` (an alias of ``registry.lock``).

Precision notes: a call site with *some* lock held is accepted even
when the receiver cannot be resolved to a specific object (bound
instruments are usually reached through subscripts like
``self._m_counters[...]``, which have no dotted name); the rule is
therefore about lock *frames*, not lock *identity*.  Bodies of
``requires-lock`` functions are analyzed with their contracted lock
pre-held, so helpers calling helpers stay clean while every outermost
call site is still checked.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.findings import Finding, Severity
from repro.analysis.flow.annotations import module_flow
from repro.analysis.flow.callgraph import call_name, project_flow
from repro.analysis.flow.cfg import calls_in
from repro.analysis.flow.locksets import held_lock_states, with_item_token
from repro.analysis.index import ProjectIndex
from repro.analysis.registry import rule
from repro.analysis.rules.flowbase import Seen, flow_modules

__all__ = ["check_lock_discipline"]


@rule(
    "RL009",
    "lock-discipline",
    "calls to *_unlocked methods (and # repro-lint: requires-lock "
    "functions) must run inside a with-lock frame on every path, and "
    "a held lock must not be re-acquired (deadlock shape)",
    scope="flow",
)
def check_lock_discipline(index: ProjectIndex) -> Iterator[Finding]:
    """Flag unlocked-contract calls outside lock frames; re-acquires."""
    project = project_flow(index)
    for module in flow_modules(index):
        flow = module_flow(module)
        for func in flow.functions:
            states = held_lock_states(func)
            seen: Seen = set()
            for block, atom in func.cfg().atoms():
                state = states.get(block.id)
                if state is None:
                    continue  # unreachable copy
                if atom.kind == "with-enter":
                    token = with_item_token(atom.node)  # type: ignore[arg-type]
                    if token is not None and token in state:
                        key = (atom.line, atom.col, "reacquire")
                        if key not in seen:
                            seen.add(key)
                            yield Finding(
                                path=module.path,
                                line=atom.line,
                                col=atom.col,
                                rule_id="RL009",
                                severity=Severity.ERROR,
                                message=(
                                    f"re-acquiring lock '{token}' that is "
                                    "already held on this path; "
                                    "threading.Lock is not reentrant, so "
                                    "this deadlocks at runtime"
                                ),
                            )
                if state:
                    continue  # some lock held on every path: frame ok
                for call in calls_in(atom.node):
                    required = project.required_lock_for_call(call, module)
                    if required is None:
                        continue
                    name = call_name(call, module) or "<call>"
                    key = (call.lineno, call.col_offset, name)
                    if key in seen:
                        continue
                    seen.add(key)
                    yield Finding(
                        path=module.path,
                        line=call.lineno,
                        col=call.col_offset,
                        rule_id="RL009",
                        severity=Severity.ERROR,
                        message=(
                            f"call to '{name}' requires the "
                            f"'{required}' lock but no lock frame "
                            "dominates this path; wrap the batch in "
                            "'with <registry>.lock:' (or annotate the "
                            "enclosing function requires-lock if its "
                            "callers hold it)"
                        ),
                    )
