"""RL006 mutable-default-config: no shared mutable defaults.

A mutable default — ``def f(xs=[])``, ``space=ConfigSpace()`` in a
signature, or a bare mutable default on a dataclass field — is
evaluated once and shared by every call/instance.  For configuration
objects this is the worst kind of spooky action: one caller stepping a
shared ``ConfigSpace`` (or mutating a shared dict of knobs) changes the
search space of every later run, which both corrupts results and
poisons cache fingerprints.  Python's ``dataclasses`` only rejects
``list``/``dict``/``set`` defaults at runtime; numpy arrays and domain
objects slip through, so the lint closes the gap statically.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.findings import Finding, Severity
from repro.analysis.index import ModuleInfo, ProjectIndex
from repro.analysis.registry import rule

__all__ = ["check_mutable_defaults"]

#: Constructors whose results are mutable (shared-state hazard).
_MUTABLE_CALL_TAILS = frozenset(
    {
        "dict", "list", "set", "bytearray", "defaultdict", "OrderedDict",
        "deque", "Counter",
        # Domain configuration/state objects:
        "ConfigSpace", "Simulator", "MetricsRegistry", "Tracer",
        "ResultCache", "ExperimentContext",
    }
)

#: numpy array constructors (mutable buffers).
_NUMPY_ARRAY_TAILS = frozenset(
    {"array", "zeros", "ones", "empty", "full", "arange", "linspace"}
)

_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
                     ast.SetComp)


def _mutable_default_problem(
    module: ModuleInfo, node: ast.expr
) -> Optional[str]:
    """Why a default expression is a shared mutable value, or ``None``."""
    if isinstance(node, _MUTABLE_LITERALS):
        return "a mutable literal"
    if isinstance(node, ast.Call):
        resolved = module.resolve(node.func)
        if resolved is None:
            return None
        tail = resolved.rsplit(".", 1)[-1]
        if tail in _MUTABLE_CALL_TAILS:
            return f"a shared {tail}() instance"
        if resolved.startswith("numpy.") and tail in _NUMPY_ARRAY_TAILS:
            return f"a shared numpy.{tail}() buffer"
    return None


def _finding(module: ModuleInfo, node: ast.expr, where: str,
             problem: str) -> Finding:
    return Finding(
        path=module.path,
        line=node.lineno,
        col=node.col_offset,
        rule_id="RL006",
        severity=Severity.ERROR,
        message=(
            f"{where} defaults to {problem}, evaluated once and shared by "
            "every caller/instance; default to None and construct inside, "
            "or use field(default_factory=...)"
        ),
    )


def _field_call_default(node: ast.expr) -> Optional[ast.expr]:
    """The ``default=`` expression of a ``field(...)`` call, if any."""
    if not isinstance(node, ast.Call):
        return None
    callee = node.func
    name = callee.id if isinstance(callee, ast.Name) else (
        callee.attr if isinstance(callee, ast.Attribute) else None
    )
    if name != "field":
        return None
    for keyword in node.keywords:
        if keyword.arg == "default":
            return keyword.value
    return ast.Constant(value=None)  # field(...) without default= is safe


@rule(
    "RL006",
    "mutable-default-config",
    "no mutable default arguments or dataclass field defaults "
    "(shared ConfigSpace/dict/list instances)",
)
def check_mutable_defaults(
    module: ModuleInfo, index: ProjectIndex
) -> Iterator[Finding]:
    """Flag shared mutable defaults in signatures and dataclass fields."""
    # Function and lambda signature defaults.
    for node in ast.walk(module.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        name = getattr(node, "name", "<lambda>")
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            problem = _mutable_default_problem(module, default)
            if problem is not None:
                yield _finding(
                    module, default, f"parameter of {name}()", problem
                )
    # Dataclass field defaults.
    for dc in index.dataclasses:
        if dc.module_rel_path != module.rel_path:
            continue
        for field_info in dc.fields:
            default = field_info.default
            if default is None:
                continue
            inner = _field_call_default(default)
            checked = inner if inner is not None else default
            problem = _mutable_default_problem(module, checked)
            if problem is not None:
                yield _finding(
                    module, checked,
                    f"dataclass field {dc.name}.{field_info.name}", problem,
                )
