"""RL012 unguarded-shared-mutation: shared attributes write under lock.

The registry/manager objects are the rendezvous points of the
threaded runtime: one ``MetricsRegistry`` is shared by every bound
instrument, every session, and the health monitor; a
``SessionManager`` fans one decision batch across many sessions.
Their mutable attributes are declared with a class-level contract::

    # repro-lint: shared-state=_metrics,sources
    class MetricsRegistry:
        ...

and RL012 checks every method of an annotated class — plus every
method of its module-local subclasses, which inherit the declaration
one level down (``_Bound`` declares ``_series``; the writes live in
``BoundGauge``/``BoundCounter``): a *write* to a declared attribute — direct assignment/augmentation, a subscript
store through it, a mutating container method (``append``, ``pop``,
``update``...), including through a local alias bound from
``self.<attr>`` — must sit inside a lock frame on every path (the
held-locks must-analysis again, so a frame covering only one branch
does not pass).  ``__init__``/``__new__`` are exempt (no concurrent
observer exists yet), as are methods carrying ``requires-lock`` —
their callers hold the lock, and RL009 polices those call sites.

Motivating examples (both found by running this rule over ``src/``
and fixed in the same change, in ``obs/metrics.py``):

* ``MetricsRegistry.merge`` bumped ``self.sources`` *after* leaving
  the ``with self._lock:`` block that merged the series — a racing
  ``snapshot_and_reset`` could read the merged data but the stale
  source count.
* ``MetricsRegistry.snapshot_and_reset`` reset ``self.sources = 1``
  outside the same frame, racing concurrent ``merge`` calls from
  worker result handlers.

Both writes moved inside the existing frames; no new locking was
needed, which is the common shape of this fix.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.findings import Finding, Severity
from repro.analysis.flow.annotations import ClassFlow, FunctionFlow, module_flow
from repro.analysis.flow.cfg import calls_in
from repro.analysis.flow.locksets import held_lock_states
from repro.analysis.index import ModuleInfo, ProjectIndex
from repro.analysis.registry import rule
from repro.analysis.rules.flowbase import flow_modules

__all__ = ["check_shared_mutation"]

#: Container methods that mutate their receiver in place.
_MUTATORS = (
    "append", "extend", "insert", "add", "update", "setdefault",
    "pop", "popitem", "remove", "discard", "clear", "sort",
)

#: Methods where unguarded writes are legal: construction precedes
#: sharing.
_EXEMPT_METHODS = ("__init__", "__new__", "__post_init__")


def _shared_attr_of(expr: ast.expr, shared: Tuple[str, ...]) -> Optional[str]:
    """The declared attribute an expression designates, if any."""
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
        and expr.attr in shared
    ):
        return expr.attr
    return None


def _aliases(func: FunctionFlow, shared: Tuple[str, ...]) -> Dict[str, str]:
    """Local name -> shared attribute for ``x = self.<attr>`` binds."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(func.node):
        if isinstance(node, ast.Assign):
            attr = _shared_attr_of(node.value, shared)
            if attr is not None:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        aliases[target.id] = attr
    return aliases


def _written_attrs(
    node: ast.AST, shared: Tuple[str, ...], aliases: Dict[str, str]
) -> List[Tuple[str, int, int]]:
    """``(attr, line, col)`` for every shared-state write in a subtree."""

    def designated(expr: ast.expr) -> Optional[str]:
        attr = _shared_attr_of(expr, shared)
        if attr is not None:
            return attr
        if isinstance(expr, ast.Name):
            return aliases.get(expr.id)
        return None

    writes: List[Tuple[str, int, int]] = []
    targets: List[ast.expr] = []
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
        targets = [node.target]
    elif isinstance(node, ast.Delete):
        targets = list(node.targets)
    for target in targets:
        attr = designated(target)
        if attr is not None and not isinstance(target, ast.Name):
            # plain-Name targets rebind the alias, not the attribute
            writes.append((attr, target.lineno, target.col_offset))
        if isinstance(target, ast.Subscript):
            attr = designated(target.value)
            if attr is not None:
                writes.append((attr, target.lineno, target.col_offset))
    for call in calls_in(node):
        func_expr = call.func
        if (
            isinstance(func_expr, ast.Attribute)
            and func_expr.attr in _MUTATORS
        ):
            attr = designated(func_expr.value)
            if attr is not None:
                writes.append((attr, call.lineno, call.col_offset))
    return writes


def _effective_shared(
    cls: ClassFlow, by_name: Dict[str, ClassFlow]
) -> Tuple[str, ...]:
    """Own declaration plus one level of module-local base classes."""
    shared = set(cls.shared_state)
    for base in cls.node.bases:
        name: Optional[str] = None
        if isinstance(base, ast.Name):
            name = base.id
        elif isinstance(base, ast.Attribute):
            name = base.attr
        base_cls = by_name.get(name or "")
        if base_cls is not None:
            shared.update(base_cls.shared_state)
    return tuple(sorted(shared))


def _check_class(
    cls: ClassFlow,
    shared: Tuple[str, ...],
    methods: List[FunctionFlow],
    module: ModuleInfo,
) -> Iterator[Finding]:
    for func in methods:
        if func.name in _EXEMPT_METHODS:
            continue
        if func.requires_lock is not None:
            continue  # the caller's frame covers this body (RL009)
        aliases = _aliases(func, shared)
        states = held_lock_states(func)
        reported: Set[Tuple[int, int]] = set()
        for block, atom in func.cfg().atoms():
            state = states.get(block.id)
            if state is None or state:
                continue  # unreachable, or a lock is held on all paths
            for attr, line, col in _written_attrs(
                atom.node, shared, aliases
            ):
                key = (line, col)
                if key in reported:
                    continue
                reported.add(key)
                yield Finding(
                    path=module.path,
                    line=line,
                    col=col,
                    rule_id="RL012",
                    severity=Severity.ERROR,
                    message=(
                        f"write to shared attribute "
                        f"'{cls.name}.{attr}' outside a lock frame; "
                        "move it inside 'with self.<lock>:' (or mark "
                        "the method requires-lock if callers hold "
                        "the lock)"
                    ),
                )


@rule(
    "RL012",
    "unguarded-shared-mutation",
    "attributes declared # repro-lint: shared-state=... may only be "
    "written inside a lock frame (outside __init__); writes through "
    "local aliases of self.<attr> count",
    scope="flow",
)
def check_shared_mutation(index: ProjectIndex) -> Iterator[Finding]:
    """Flag unguarded writes to declared shared state."""
    for module in flow_modules(index):
        flow = module_flow(module)
        by_name = {cls.name: cls for cls in flow.classes}
        for cls in flow.classes:
            shared = _effective_shared(cls, by_name)
            if not shared:
                continue
            yield from _check_class(
                cls, shared, flow.methods_of(cls.name), module
            )
