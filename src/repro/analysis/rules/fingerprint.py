"""RL003 fingerprint-coverage: cache-key material must stay describable.

The engine's content-addressed cache is only sound if *everything* that
affects a run's outcome reaches the cache key.  Two static facets of
that contract are checked here, both cross-module:

1. **Describable annotations.**  Dataclasses whose instances flow into
   cache fingerprints (the request/spec types in ``engine/variants.py``
   and every workload spec under ``workloads/``) must keep their fields
   within what :func:`repro.engine.fingerprint.describe` can reduce to
   distinct canonical forms.  ``Callable`` fields are the classic trap:
   every plain function describes to the same opaque ``["obj", ...]``
   node, so two different behaviours fingerprint identically and the
   cache silently serves stale results.  Locks, files, threads, and
   executors do not describe at all and fail only at runtime.

2. **Serializer coverage.**  The run types in ``sim/trace.py`` are
   persisted by ``engine/serialize.py``; a field added to a run
   dataclass but not mentioned in the serializer would be silently
   dropped from cached results.  Every field name of every dataclass in
   the trace module must therefore appear (as a string, attribute, or
   keyword) in the paired serializer module.

Registry-metadata types that never reach a fingerprint (e.g.
``VariantSpec``, which holds the compute callables themselves) are
exempted by name in :data:`REGISTRY_ONLY_TYPES`.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set

from repro.analysis.findings import Finding, Severity
from repro.analysis.index import (
    DataclassInfo,
    ModuleInfo,
    ProjectIndex,
    annotation_heads,
)
from repro.analysis.registry import rule

__all__ = ["check_fingerprint_coverage"]

#: Modules whose dataclasses are cache-key material.
FINGERPRINTED_SCOPES = ("repro/engine/variants.py", "repro/workloads/")

#: Dataclasses in scope that are registry metadata, never fingerprinted.
#: (``VariantSpec`` intentionally holds the compute callables; its
#: instances describe *behaviour*, they are not cache-key inputs.)
REGISTRY_ONLY_TYPES = frozenset({"VariantSpec"})

#: The serializer/run-type module pair checked by facet 2.
SERIALIZER_PATH = "repro/engine/serialize.py"
TRACE_PATH = "repro/sim/trace.py"

#: Fully-qualified type names describe() cannot fingerprint soundly.
NON_FINGERPRINTABLE = frozenset(
    {
        "typing.Callable",
        "collections.abc.Callable",
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
        "threading.Event",
        "threading.Semaphore",
        "threading.BoundedSemaphore",
        "threading.Barrier",
        "threading.Thread",
        "typing.IO",
        "typing.TextIO",
        "typing.BinaryIO",
        "io.IOBase",
        "io.RawIOBase",
        "io.BufferedIOBase",
        "io.TextIOBase",
        "io.TextIOWrapper",
        "io.BufferedReader",
        "io.BufferedWriter",
        "socket.socket",
        "queue.Queue",
        "multiprocessing.Queue",
        "multiprocessing.Lock",
        "multiprocessing.Pool",
        "concurrent.futures.Executor",
        "concurrent.futures.ThreadPoolExecutor",
        "concurrent.futures.ProcessPoolExecutor",
        "concurrent.futures.Future",
    }
)


def _resolved_heads(module: ModuleInfo, annotation: Optional[ast.expr]) -> Set[str]:
    """Annotation heads, expanded through the module's import aliases."""
    resolved: Set[str] = set()
    for head in annotation_heads(annotation):
        root, _, rest = head.partition(".")
        target = module.import_aliases.get(root)
        full = head if target is None else (f"{target}.{rest}" if rest else target)
        resolved.add(full)
    return resolved


def _check_annotations(
    index: ProjectIndex, dc: DataclassInfo
) -> Iterator[Finding]:
    module = index.module_for(dc.module_rel_path)
    if module is None:
        return
    for field in dc.fields:
        bad = _resolved_heads(module, field.annotation) & NON_FINGERPRINTABLE
        for name in sorted(bad):
            yield Finding(
                path=module.path,
                line=field.line,
                col=field.col,
                rule_id="RL003",
                severity=Severity.ERROR,
                message=(
                    f"field {dc.name}.{field.name} is typed {name}, which "
                    "engine.fingerprint.describe() cannot reduce to a "
                    "distinct canonical form; cache keys would collide or "
                    "fail at runtime"
                ),
            )


def _covered_names(serializer: ModuleInfo) -> Set[str]:
    """Every identifier-ish name the serializer module mentions."""
    names: Set[str] = set()
    for node in ast.walk(serializer.tree):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            names.add(node.value)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
        elif isinstance(node, ast.keyword) and node.arg is not None:
            names.add(node.arg)
    return names


def _serializer_pairs(
    index: ProjectIndex,
) -> Iterator[Dict[str, ModuleInfo]]:
    """Each serializer module paired with its sibling trace module.

    Pairing is by tree prefix, so fixture trees that mirror the layout
    (``.../repro/engine/serialize.py`` + ``.../repro/sim/trace.py``)
    pair with themselves rather than with the real sources.
    """
    for serializer in index.modules_matching(SERIALIZER_PATH):
        prefix = serializer.rel_path[: -len(SERIALIZER_PATH)]
        trace = index.module_for(prefix + TRACE_PATH)
        if trace is not None:
            yield {"serializer": serializer, "trace": trace}


def _check_serializer_coverage(index: ProjectIndex) -> Iterator[Finding]:
    for pair in _serializer_pairs(index):
        serializer, trace = pair["serializer"], pair["trace"]
        covered = _covered_names(serializer)
        for dc in index.dataclasses:
            if dc.module_rel_path != trace.rel_path:
                continue
            for field in dc.fields:
                if field.name not in covered:
                    yield Finding(
                        path=trace.path,
                        line=field.line,
                        col=field.col,
                        rule_id="RL003",
                        severity=Severity.ERROR,
                        message=(
                            f"field {dc.name}.{field.name} is not mentioned "
                            f"in {serializer.rel_path}; cached results would "
                            "silently drop it on round-trip"
                        ),
                    )


@rule(
    "RL003",
    "fingerprint-coverage",
    "cache-key dataclasses must stay describable and fully serialized",
    scope="project",
)
def check_fingerprint_coverage(index: ProjectIndex) -> Iterator[Finding]:
    """Cross-module fingerprint/serialization coverage check."""
    for scope in FINGERPRINTED_SCOPES:
        for dc in index.dataclasses_in(scope):
            if dc.name in REGISTRY_ONLY_TYPES:
                continue
            yield from _check_annotations(index, dc)
    yield from _check_serializer_coverage(index)
