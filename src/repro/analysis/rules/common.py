"""Shared AST scope analysis for the built-in rules.

The rules here never need full type inference — they need to answer
three cheap questions about a node:

* which function (stack) encloses it,
* what expression a local name was last bound to in that function, and
* whether a name is a parameter (and with what annotation) or a
  module-level definition.

:class:`ScopeMap` precomputes all of that in one pass per module.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple, Union

__all__ = ["FunctionScope", "ScopeMap", "call_name"]

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Sentinel for names bound by loops/comprehensions (value unknowable).
LOOP_BOUND = ast.Constant(value=None)


@dataclass
class FunctionScope:
    """Static facts about one function body.

    Attributes:
        node: The function definition.
        assignments: Local name -> last assigned expression (walked in
            source order; loop targets map to :data:`LOOP_BOUND`).
        params: Parameter name -> annotation expression (or ``None``).
        nested_defs: Names of functions/classes defined inside.
    """

    node: FunctionNode
    assignments: Dict[str, ast.expr] = field(default_factory=dict)
    params: Dict[str, Optional[ast.expr]] = field(default_factory=dict)
    nested_defs: Set[str] = field(default_factory=set)

    def is_local(self, name: str) -> bool:
        """Whether the name is bound somewhere inside this function."""
        return (
            name in self.assignments
            or name in self.params
            or name in self.nested_defs
        )


def _bind_target(scope: FunctionScope, target: ast.expr, value: ast.expr) -> None:
    if isinstance(target, ast.Name):
        scope.assignments[target.id] = value
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            _bind_target(scope, element, LOOP_BOUND)
    elif isinstance(target, ast.Starred):
        _bind_target(scope, target.value, LOOP_BOUND)


def _collect_scope(func: FunctionNode) -> FunctionScope:
    scope = FunctionScope(node=func)
    args = func.args
    all_args = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    for arg in all_args:
        scope.params[arg.arg] = arg.annotation
    if args.vararg is not None:
        scope.params[args.vararg.arg] = args.vararg.annotation
    if args.kwarg is not None:
        scope.params[args.kwarg.arg] = args.kwarg.annotation

    def visit(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                scope.nested_defs.add(child.name)
                continue  # bindings inside nested defs are theirs
            if isinstance(child, ast.Assign):
                for target in child.targets:
                    _bind_target(scope, target, child.value)
            elif isinstance(child, ast.AnnAssign) and child.value is not None:
                _bind_target(scope, child.target, child.value)
            elif isinstance(child, ast.AugAssign):
                _bind_target(scope, child.target, LOOP_BOUND)
            elif isinstance(child, (ast.For, ast.AsyncFor)):
                _bind_target(scope, child.target, LOOP_BOUND)
            elif isinstance(child, (ast.With, ast.AsyncWith)):
                for item in child.items:
                    if item.optional_vars is not None:
                        _bind_target(
                            scope, item.optional_vars, item.context_expr
                        )
            elif isinstance(child, ast.comprehension):
                _bind_target(scope, child.target, LOOP_BOUND)
            elif isinstance(child, (ast.Import, ast.ImportFrom)):
                for alias in child.names:
                    bound = (alias.asname or alias.name).split(".")[0]
                    scope.assignments[bound] = LOOP_BOUND
            visit(child)

    visit(func)
    return scope


class ScopeMap:
    """Per-module map from AST nodes to their enclosing function scopes."""

    def __init__(self, tree: ast.Module) -> None:
        self._stack_of: Dict[int, Tuple[FunctionScope, ...]] = {}
        self._scopes: Dict[int, FunctionScope] = {}
        self.module_defs: Set[str] = {
            stmt.name
            for stmt in tree.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
        }
        self._walk(tree, ())

    def _walk(self, node: ast.AST, stack: Tuple[FunctionScope, ...]) -> None:
        for child in ast.iter_child_nodes(node):
            child_stack = stack
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scope = self._scopes.get(id(child))
                if scope is None:
                    scope = _collect_scope(child)
                    self._scopes[id(child)] = scope
                child_stack = stack + (scope,)
            self._stack_of[id(child)] = child_stack
            self._walk(child, child_stack)

    def stack_for(self, node: ast.AST) -> Tuple[FunctionScope, ...]:
        """Enclosing function scopes, outermost first (empty at module level)."""
        return self._stack_of.get(id(node), ())

    def lookup(self, node: ast.AST, name: str) -> Optional[ast.expr]:
        """The expression a name was last assigned in the innermost
        enclosing function that binds it, else ``None``."""
        for scope in reversed(self.stack_for(node)):
            if name in scope.assignments:
                return scope.assignments[name]
            if name in scope.params or name in scope.nested_defs:
                return None
        return None

    def param_annotation(
        self, node: ast.AST, name: str
    ) -> Tuple[bool, Optional[ast.expr]]:
        """``(is_parameter, annotation)`` for a name at a node."""
        for scope in reversed(self.stack_for(node)):
            if name in scope.params:
                return True, scope.params[name]
            if name in scope.assignments or name in scope.nested_defs:
                return False, None
        return False, None

    def is_nested_def(self, node: ast.AST, name: str) -> bool:
        """Whether a name refers to a def nested inside an enclosing
        function (and therefore not picklable)."""
        for scope in reversed(self.stack_for(node)):
            if name in scope.nested_defs:
                return True
            if name in scope.assignments or name in scope.params:
                return False
        return False


def call_name(node: ast.expr) -> Optional[ast.expr]:
    """The callee expression if the node is a call, else ``None``."""
    return node.func if isinstance(node, ast.Call) else None
