"""RL005 obs-purity: observation must never mutate the observed.

Two invariants, both born out of the PR-3 cache-fingerprint hazard
(``describe()`` walks ``__dict__``, so *any* attribute stored on a
fingerprinted object — a ``Simulator``, a session — changes cache keys
and invalidates every cached result):

1. Code under ``repro/obs/`` must not write attributes on foreign
   objects.  It may mutate ``self`` and obs-owned value types
   (:data:`OBS_OWNED_TYPES`: spans, tracers, registries), but a
   simulator, session, manager, or policy handed to an exporter or
   tracer must come back untouched.

2. Anywhere in the tree, obs handles (``obs``/``tracer``/``registry``)
   must not be *stored* on simulator or session objects from outside —
   instrumentation is passed per call, never installed as an attribute.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional

from repro.analysis.findings import Finding, Severity
from repro.analysis.index import (
    ModuleInfo,
    ProjectIndex,
    annotation_heads,
    path_matches,
)
from repro.analysis.registry import rule
from repro.analysis.rules.common import ScopeMap

__all__ = ["check_obs_purity"]

#: Modules the foreign-write facet applies to.
OBS_PATHS = ("repro/obs/",)

#: Value types the obs layer owns and may freely mutate.
OBS_OWNED_TYPES = frozenset(
    {
        "Span",
        "Tracer",
        "NullTracer",
        "MetricsRegistry",
        "Instrumentation",
        "CacheStats",
        "SessionStats",
    }
)

#: Obs-handle attribute names that must never be installed externally.
OBS_ATTRS = frozenset({"obs", "_obs", "tracer", "_tracer", "registry", "_registry"})

#: Receiver classes obs handles must never be stored on.
GUARDED_CLASSES = frozenset(
    {"Simulator", "SessionRuntime", "SessionManager", "InstrumentedSession"}
)

#: Parameter names treated as foreign when unannotated (obs modules).
_FOREIGN_PARAM_NAMES = frozenset(
    {"sim", "simulator", "session", "sessions", "manager", "runtime", "policy"}
)


def _root_name(node: ast.expr) -> Optional[ast.Name]:
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node if isinstance(node, ast.Name) else None


def _annotation_type_names(annotation: Optional[ast.expr]) -> frozenset:
    heads = set()
    for head in annotation_heads(annotation):
        heads.add(head.rsplit(".", 1)[-1])
    return frozenset(heads)


def _receiver_class(
    scopes: ScopeMap, root: ast.Name
) -> Optional[str]:
    """Best-effort class name of a receiver variable."""
    is_param, annotation = scopes.param_annotation(root, root.id)
    if is_param:
        names = _annotation_type_names(annotation) & GUARDED_CLASSES
        return next(iter(names), None)
    value = scopes.lookup(root, root.id)
    if isinstance(value, ast.Call):
        callee = value.func
        tail = None
        if isinstance(callee, ast.Name):
            tail = callee.id
        elif isinstance(callee, ast.Attribute):
            tail = callee.attr
        if tail in GUARDED_CLASSES:
            return tail
        if tail == "session":  # sim.session(...) returns a SessionRuntime
            return "SessionRuntime"
    return None


def _attribute_targets(node: ast.stmt) -> Iterator[ast.Attribute]:
    targets: List[ast.expr] = []
    if isinstance(node, ast.Assign):
        targets = node.targets
    elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
        targets = [node.target]
    for target in targets:
        if isinstance(target, ast.Attribute):
            yield target
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                if isinstance(element, ast.Attribute):
                    yield element


def _foreign_write_finding(
    module: ModuleInfo, scopes: ScopeMap, target: ast.Attribute
) -> Optional[Finding]:
    """Facet 1: non-self attribute writes inside obs modules."""
    root = _root_name(target.value)
    if root is None or root.id in ("self", "cls"):
        return None
    is_param, annotation = scopes.param_annotation(root, root.id)
    if is_param:
        annotated = _annotation_type_names(annotation)
        if annotated & OBS_OWNED_TYPES:
            return None
        if annotated & GUARDED_CLASSES or root.id in _FOREIGN_PARAM_NAMES:
            return Finding(
                path=module.path,
                line=target.lineno,
                col=target.col_offset,
                rule_id="RL005",
                severity=Severity.ERROR,
                message=(
                    f"obs code writes {root.id}.{target.attr}; observation "
                    "must never mutate the observed object (cache-"
                    "fingerprint hazard) — keep obs state per-call"
                ),
            )
    return None


def _install_finding(
    module: ModuleInfo, scopes: ScopeMap, target: ast.Attribute
) -> Optional[Finding]:
    """Facet 2: obs handles installed on simulator/session objects."""
    if target.attr not in OBS_ATTRS:
        return None
    root = _root_name(target.value)
    if root is None or root.id in ("self", "cls"):
        return None
    receiver = _receiver_class(scopes, root)
    if receiver is None:
        return None
    return Finding(
        path=module.path,
        line=target.lineno,
        col=target.col_offset,
        rule_id="RL005",
        severity=Severity.ERROR,
        message=(
            f"obs handle installed as {root.id}.{target.attr} on a "
            f"{receiver}; instrumentation is passed per call, never "
            "stored on fingerprinted objects (describe() walks __dict__)"
        ),
    )


@rule(
    "RL005",
    "obs-purity",
    "obs code must not mutate observed objects; obs handles are "
    "per-call, never stored on simulators/sessions",
)
def check_obs_purity(module: ModuleInfo, index: ProjectIndex) -> Iterator[Finding]:
    """Flag observation code that mutates the objects it observes."""
    scopes = ScopeMap(module.tree)
    in_obs = any(path_matches(module.rel_path, p) for p in OBS_PATHS)
    for node in ast.walk(module.tree):
        if not isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            continue
        for target in _attribute_targets(node):
            finding = _install_finding(module, scopes, target)
            if finding is None and in_obs:
                finding = _foreign_write_finding(module, scopes, target)
            if finding is not None:
                yield finding
