"""RL010 shm-lifecycle: owned segments must reach release on all paths.

The parallel engine ships feature blocks to pool workers through named
POSIX shared memory (``repro.engine.shm``).  The protocol has three
legs the type system cannot see:

* the **owner** creates a segment (``SharedMemory(create=True, ...)``
  or ``export_block``, annotated ``# repro-lint: acquires=close``) and
  must ``close``+``unlink`` it on *every* path — a segment that
  escapes on an exception outlives the process in ``/dev/shm`` (the
  CI leak check is the dynamic counterpart of this rule);
* **workers** attach (``attach_block``, annotated
  ``# repro-lint: shm-attach``) and must *never* ``unlink`` — the
  owner's segment is not theirs to destroy;
* receiver-style acquisitions (``# repro-lint:
  acquires-on-receiver=<release>``, e.g. ``preload_lattice`` /
  ``clear_preload``) must be balanced on the receiver before every
  exit.

RL010 runs a *may*-analysis (union join) over live owned resources: an
acquisition assigned to a local becomes a live fact on the **normal**
out-edge only (a failed constructor acquired nothing), and the fact
dies when the handle is released (``.close()``/``.unlink()``/its
annotated release method), registered for cleanup or otherwise
escapes — passed to any call (``stack.callback(h.close)``,
``pool.append(h)``), stored into an attribute or container, returned,
or entered as a ``with`` context.  Releases kill on the exceptional
edge too: once ``ExitStack`` holds the callback, unwinding is safe.
Any fact still live at the function's normal or raise exit — or
overwritten by a rebind — is a leak on some path.

Motivating example (found by this rule and fixed in the same change):
``ExperimentEngine._compute_parallel`` exported the feature block,
then pickled the table payload *before* registering
``stack.callback(shared_export.close)`` — and its ``except`` fallback
rebound ``shared_export = None``, dropping a live segment if anything
between export and registration raised.  The fix registers the
cleanup callback immediately after the export, before any statement
that can raise.  Same shape in ``export_block`` itself: the segment
is created, then a numpy copy runs before ownership transfers to the
returned ``SharedBlockExport`` — the copy is now guarded so the
segment is unlinked if it raises.  And on the receiver side,
``SessionManager.step_batch`` called ``preload_lattice`` on each
grouped optimizer but only entered its ``try``/``finally`` (the one
running ``clear_preload``) several statements later — an exception
from a later group's sweep or from the obs counters left lattice
preloads installed on live optimizers; the ``finally`` now covers the
whole span from first preload to dispatch.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.analysis.findings import Finding, Severity
from repro.analysis.flow.annotations import FunctionFlow, ModuleFlow, module_flow
from repro.analysis.flow.callgraph import ProjectFlow, project_flow
from repro.analysis.flow.cfg import Atom, calls_in
from repro.analysis.flow.dataflow import ForwardAnalysis, run_forward
from repro.analysis.index import ModuleInfo, ProjectIndex, dotted_name
from repro.analysis.registry import rule
from repro.analysis.rules.flowbase import flow_modules

__all__ = ["check_shm_lifecycle"]

#: Dotted names that construct an owning SharedMemory handle when
#: called with ``create=True``.
_SHARED_MEMORY_NAMES = (
    "multiprocessing.shared_memory.SharedMemory",
    "shared_memory.SharedMemory",
    "SharedMemory",
)

#: Release methods accepted for any owned handle, on top of the
#: annotated one: the shm protocol releases via close/unlink pairs.
_GENERIC_RELEASES = ("close", "unlink")

ResourceState = FrozenSet[str]


@dataclass(frozen=True)
class _Acquisition:
    """One tracked acquisition site."""

    token: str
    target: str
    release: str
    line: int
    col: int
    kind: str  # "handle" (assigned result) or "receiver"


def _is_create_true(call: ast.Call) -> bool:
    for keyword in call.keywords:
        if keyword.arg == "create":
            value = keyword.value
            return isinstance(value, ast.Constant) and value.value is True
    return False


def _acquisition_release(
    call: ast.Call, module: ModuleInfo, project: ProjectFlow
) -> Optional[str]:
    """Release method owed for a call's result, or ``None``."""
    resolved = module.resolve(call.func)
    if resolved in _SHARED_MEMORY_NAMES:
        return "unlink" if _is_create_true(call) else None
    if project.is_shm_attach_call(call, module):
        return None  # attaching is not owning
    return project.release_for_call(call, module)


def _receiver_name(call: ast.Call) -> Optional[str]:
    if isinstance(call.func, ast.Attribute):
        return dotted_name(call.func.value)
    return None


class _LiveResources(ForwardAnalysis[ResourceState]):
    """May-live owned resources, tokenized per acquisition site."""

    def __init__(
        self,
        func: FunctionFlow,
        module: ModuleInfo,
        project: ProjectFlow,
    ) -> None:
        self.func = func
        self.module = module
        self.project = project
        self.acquisitions: Dict[str, _Acquisition] = {}

    # -- fact bookkeeping --------------------------------------------------------

    def _tokens_of(self, target: str) -> Set[str]:
        return {
            token
            for token, acq in self.acquisitions.items()
            if acq.target == target
        }

    def _gens(self, atom: Atom) -> List[_Acquisition]:
        node = atom.node
        gens: List[_Acquisition] = []
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            release = _acquisition_release(node.value, self.module, self.project)
            if release is not None:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        acq = _Acquisition(
                            token=f"{target.id}@{node.lineno}",
                            target=target.id,
                            release=release,
                            line=node.value.lineno,
                            col=node.value.col_offset,
                            kind="handle",
                        )
                        self.acquisitions[acq.token] = acq
                        gens.append(acq)
        for call in calls_in(node):
            release = self.project.receiver_release_for_call(call, self.module)
            receiver = _receiver_name(call)
            if release is not None and receiver is not None:
                acq = _Acquisition(
                    token=f"{receiver}@{call.lineno}",
                    target=receiver,
                    release=release,
                    line=call.lineno,
                    col=call.col_offset,
                    kind="receiver",
                )
                self.acquisitions[acq.token] = acq
                gens.append(acq)
        return gens

    def _released_targets(self, atom: Atom) -> Set[str]:
        """Targets whose release method is called in this atom."""
        released: Set[str] = set()
        for call in calls_in(atom.node):
            func = call.func
            if not isinstance(func, ast.Attribute):
                continue
            receiver = dotted_name(func.value)
            if receiver is None:
                continue
            for acq in self.acquisitions.values():
                if acq.target != receiver:
                    continue
                if func.attr == acq.release or func.attr in _GENERIC_RELEASES:
                    released.add(receiver)
        return released

    def _releases_of(self, target: str) -> Set[str]:
        methods = set(_GENERIC_RELEASES)
        for acq in self.acquisitions.values():
            if acq.target == target:
                methods.add(acq.release)
        return methods

    def _escaped_targets(self, atom: Atom) -> Set[str]:
        """Targets whose handle leaves local ownership in this atom.

        Two distinct shapes kill here: the handle itself escaping
        (``pool.append(h)``, ``return h``, ``self._shm = h``,
        ``stack.enter_context(h)``) and its *release method* being
        registered as a callback (``stack.callback(h.close)``).  A
        plain attribute of the handle passed along (``buffer=shm.buf``,
        ``name=shm.name``) is neither — the caller borrowed a view,
        ownership stayed here — which is exactly what lets this rule
        see the leak window between creating a segment and wrapping it
        in its owning export object.
        """
        node = atom.node
        escaped: Set[str] = set()
        targets = {acq.target for acq in self.acquisitions.values()}

        def mark(expr: Optional[ast.AST]) -> None:
            if expr is None:
                return
            if isinstance(expr, ast.Attribute):
                base = dotted_name(expr.value)
                if base is not None and base in targets:
                    # handle.<release> handed off as a callback
                    if expr.attr in self._releases_of(base):
                        escaped.add(base)
                    return  # other attributes: borrowed, not escaped
                mark(expr.value)
                return
            if isinstance(expr, ast.Name):
                for target in targets:
                    if expr.id == target or target.startswith(expr.id + "."):
                        escaped.add(target)
                return
            for child in ast.iter_child_nodes(expr):
                mark(child)

        # A *method* call on the handle itself (``h.resize(...)``) does
        # not escape it, so callees are skipped; their arguments are not.
        for call in calls_in(node):
            for arg in call.args:
                mark(arg)
            for keyword in call.keywords:
                mark(keyword.value)
        if isinstance(node, ast.Return):
            mark(node.value)
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            assign_targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in assign_targets:
                if not isinstance(target, ast.Name):
                    # stored into an attribute/container: ownership
                    # transferred to a longer-lived object
                    value = getattr(node, "value", None)
                    if value is not None:
                        mark(value)
        if atom.kind == "with-enter":
            mark(node.context_expr)  # type: ignore[attr-defined]
        for child in ast.walk(node):
            if isinstance(child, (ast.Yield, ast.YieldFrom)):
                mark(child.value)
        # ``if h is None: ...`` / ``if h is not None: stack.callback``:
        # the author is already discriminating the no-resource case, and
        # a may-analysis cannot correlate the branch with fact death —
        # treating the test as a kill avoids flagging the guarded-
        # registration idiom.
        if atom.kind == "test":
            for child in ast.walk(node):
                if not isinstance(child, ast.Compare):
                    continue
                if not any(
                    isinstance(op, (ast.Is, ast.IsNot)) for op in child.ops
                ):
                    continue
                operands = [child.left] + list(child.comparators)
                if not any(
                    isinstance(o, ast.Constant) and o.value is None
                    for o in operands
                ):
                    continue
                for operand in operands:
                    if isinstance(operand, ast.Name) and operand.id in targets:
                        escaped.add(operand.id)
        return escaped

    def _rebound_targets(self, atom: Atom) -> Set[str]:
        node = atom.node
        rebound: Set[str] = set()
        targets = {acq.target for acq in self.acquisitions.values()}
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id in targets:
                    rebound.add(target.id)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, ast.Name) and node.target.id in targets:
                rebound.add(node.target.id)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id in targets:
                    rebound.add(target.id)
        return rebound

    def _kills(self, atom: Atom) -> Set[str]:
        killed_targets = (
            self._released_targets(atom)
            | self._escaped_targets(atom)
            | self._rebound_targets(atom)
        )
        killed: Set[str] = set()
        for target in killed_targets:
            killed |= self._tokens_of(target)
        return killed

    # -- analysis interface ------------------------------------------------------

    def entry_state(self, cfg: object) -> ResourceState:
        return frozenset()

    def join(self, a: ResourceState, b: ResourceState) -> ResourceState:
        return a | b

    def transfer(self, atom: Atom, state: ResourceState) -> ResourceState:
        state = state - self._kills(atom)
        for acq in self._gens(atom):
            state = state | {acq.token}
        return state

    def transfer_exc(self, atom: Atom, state: ResourceState) -> ResourceState:
        # The atom raised: releases and escapes that already executed
        # are indistinguishable from ones that did not, so killing on
        # the exceptional edge is the no-false-positive choice — the
        # rule targets handles with *no* cleanup registered, not
        # cleanup racing the precise raising expression.  Gens do not
        # apply: a constructor that raised acquired nothing.
        return state - self._kills(atom)


def _leak_message(acq: _Acquisition) -> str:
    if acq.kind == "receiver":
        return (
            f"'{acq.target}.{acq.release}()' is not reached on every "
            f"path after this acquiring call; pair the acquisition "
            f"with its release in try/finally"
        )
    return (
        f"owned resource '{acq.target}' may not reach "
        f"'{acq.release}()' on all paths (exception or early return "
        "between acquisition and release); register cleanup in "
        "try/finally or ExitStack immediately after acquiring"
    )


def _check_function(
    func: FunctionFlow, module: ModuleInfo, project: ProjectFlow
) -> Iterator[Finding]:
    analysis = _LiveResources(func, module, project)
    cfg = func.cfg()
    states = run_forward(cfg, analysis)
    if not analysis.acquisitions:
        return

    leaked: Set[str] = set()
    for exit_id in (cfg.exit, cfg.raise_exit):
        leaked |= states.get(exit_id, frozenset())
    reported: Set[Tuple[int, int]] = set()
    for token in sorted(leaked):
        acq = analysis.acquisitions[token]
        key = (acq.line, acq.col)
        if key in reported:
            continue
        reported.add(key)
        yield Finding(
            path=module.path,
            line=acq.line,
            col=acq.col,
            rule_id="RL010",
            severity=Severity.ERROR,
            message=_leak_message(acq),
        )

    # Rebinding a name whose handle may still be live silently drops
    # the only reference (the `shared_export = None` fallback shape).
    for block, atom in cfg.atoms():
        state = states.get(block.id)
        if not state:
            continue
        rebound = analysis._rebound_targets(atom)
        if not rebound:
            continue
        used = set(analysis._escaped_targets(atom)) | set(
            analysis._released_targets(atom)
        )
        for target in sorted(rebound - used):
            live = analysis._tokens_of(target) & state
            if not live:
                continue
            key = (atom.line, atom.col)
            if key in reported:
                continue
            reported.add(key)
            yield Finding(
                path=module.path,
                line=atom.line,
                col=atom.col,
                rule_id="RL010",
                severity=Severity.ERROR,
                message=(
                    f"rebinding '{target}' while its resource may "
                    "still be live on this path drops the handle "
                    "without release; release it first (or register "
                    "cleanup at acquisition)"
                ),
            )


def _check_attach_paths(
    flow: ModuleFlow, module: ModuleInfo
) -> Iterator[Finding]:
    """Worker-attach functions must never unlink the owner's segment."""
    for func in flow.functions:
        if "shm-attach" not in func.annotations:
            continue
        for call in calls_in(func.node):
            if (
                isinstance(call.func, ast.Attribute)
                and call.func.attr == "unlink"
            ):
                yield Finding(
                    path=module.path,
                    line=call.lineno,
                    col=call.col_offset,
                    rule_id="RL010",
                    severity=Severity.ERROR,
                    message=(
                        "unlink() inside a shm-attach (worker) path: "
                        "attached segments belong to the exporting "
                        "owner; only close() the local mapping here"
                    ),
                )


@rule(
    "RL010",
    "shm-lifecycle",
    "SharedMemory/export_block acquisitions must reach close/unlink on "
    "every CFG path (try/finally or ExitStack); unlink is owner-only "
    "and forbidden in shm-attach worker paths",
    scope="flow",
)
def check_shm_lifecycle(index: ProjectIndex) -> Iterator[Finding]:
    """Flag leaked owned handles and worker-side unlinks."""
    project = project_flow(index)
    for module in flow_modules(index):
        flow = module_flow(module)
        for func in flow.functions:
            yield from _check_function(func, module, project)
        yield from _check_attach_paths(flow, module)
