"""RL008 trace-schema-coverage: the trace format must track its inputs.

The kernel-launch trace format (``workloads/traces/format.py``) is the
durable interface between recorded runs and every downstream consumer:
the replayer, the differential harness, and the checked-in golden
traces.  Two drift hazards are checked statically, both cross-module:

1. **Kernel-field coverage.**  ``kernel_to_dict``/``kernel_from_dict``
   serialize :class:`~repro.workloads.kernel.KernelSpec` field by
   field.  A field added to a kernel dataclass but never mentioned in
   the format module would be silently dropped from every trace — the
   round-trip property ("record -> serialize -> parse -> replay yields
   identical decisions") would quietly stop covering that dimension of
   the workload.  Every field of every dataclass in the kernel module
   must therefore appear (as a string, attribute, or keyword) in the
   paired format module.

2. **Comparator coverage.**  The differential harness trusts
   ``replay.py`` to compare *every* field of a recorded decision
   against the re-executed outcome.  A ``RecordedDecision`` field the
   replay module never mentions is a field tampering cannot be detected
   on — the "float-identical replay" guarantee would be vacuous for it.

Pairing is by tree prefix (the convention from RL003), so fixture trees
mirroring the layout pair with themselves rather than the real sources.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Set

from repro.analysis.findings import Finding, Severity
from repro.analysis.index import ModuleInfo, ProjectIndex
from repro.analysis.registry import rule

__all__ = ["check_trace_schema_coverage"]

#: The format/kernel module pair checked by facet 1.
FORMAT_PATH = "repro/workloads/traces/format.py"
KERNEL_PATH = "repro/workloads/kernel.py"

#: The replay module paired with the format module by facet 2.
REPLAY_PATH = "repro/workloads/traces/replay.py"

#: The decision dataclass whose fields the replay comparator must cover.
DECISION_TYPE = "RecordedDecision"


def _mentioned_names(module: ModuleInfo) -> Set[str]:
    """Every identifier-ish name the module mentions.

    String constants, attribute accesses, and keyword-argument names all
    count, matching how serializers and comparators actually reference
    fields (``payload["time_s"]``, ``record.time_s``, ``time_s=...``).
    """
    names: Set[str] = set()
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            names.add(node.value)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
        elif isinstance(node, ast.keyword) and node.arg is not None:
            names.add(node.arg)
    return names


def _module_pairs(
    index: ProjectIndex, anchor: str, partner: str
) -> Iterator[Dict[str, ModuleInfo]]:
    """Each module matching ``anchor`` paired with its sibling ``partner``.

    Pairing is by tree prefix, so a fixture tree that mirrors the layout
    pairs with its own partner module rather than the real sources.
    """
    for module in index.modules_matching(anchor):
        prefix = module.rel_path[: -len(anchor)]
        sibling = index.module_for(prefix + partner)
        if sibling is not None:
            yield {"anchor": module, "partner": sibling}


def _check_kernel_coverage(index: ProjectIndex) -> Iterator[Finding]:
    for pair in _module_pairs(index, FORMAT_PATH, KERNEL_PATH):
        format_mod, kernel_mod = pair["anchor"], pair["partner"]
        covered = _mentioned_names(format_mod)
        for dc in index.dataclasses:
            if dc.module_rel_path != kernel_mod.rel_path:
                continue
            for field in dc.fields:
                if field.name not in covered:
                    yield Finding(
                        path=kernel_mod.path,
                        line=field.line,
                        col=field.col,
                        rule_id="RL008",
                        severity=Severity.ERROR,
                        message=(
                            f"field {dc.name}.{field.name} is not mentioned "
                            f"in {format_mod.rel_path}; traces would silently "
                            "drop it and replay could not reproduce it"
                        ),
                    )


def _check_comparator_coverage(index: ProjectIndex) -> Iterator[Finding]:
    for pair in _module_pairs(index, FORMAT_PATH, REPLAY_PATH):
        format_mod, replay_mod = pair["anchor"], pair["partner"]
        covered = _mentioned_names(replay_mod)
        for dc in index.dataclasses:
            if dc.module_rel_path != format_mod.rel_path:
                continue
            if dc.name != DECISION_TYPE:
                continue
            for field in dc.fields:
                if field.name not in covered:
                    yield Finding(
                        path=format_mod.path,
                        line=field.line,
                        col=field.col,
                        rule_id="RL008",
                        severity=Severity.ERROR,
                        message=(
                            f"field {dc.name}.{field.name} is not mentioned "
                            f"in {replay_mod.rel_path}; the differential "
                            "replay comparator would never detect drift in it"
                        ),
                    )


@rule(
    "RL008",
    "trace-schema-coverage",
    "trace format must cover kernel fields; replay must compare all "
    "recorded-decision fields",
    scope="project",
)
def check_trace_schema_coverage(index: ProjectIndex) -> Iterator[Finding]:
    """Cross-module trace-format/comparator coverage check."""
    yield from _check_kernel_coverage(index)
    yield from _check_comparator_coverage(index)
