"""RL013 budget-conservation: apportion paths must assert conservation.

The fleet's safety contract is that the sum of per-node budgets never
exceeds the global cap (``docs/FLEET.md``).  The contract is enforced
at runtime by an assertion inside the allocator's ``apportion`` path —
``assert math.fsum(budgets.values()) <= self.cap_w`` in
:mod:`repro.fleet.budget` — and this rule makes the assertion itself a
checked invariant: deleting or weakening it is a lint error, not a
silent regression that only a well-aimed property test would catch.

Concretely, every class that defines an ``apportion`` method in an
allocator module (``repro/fleet/budget.py``-shaped paths, matched the
same way RL003 pairs serializer/trace modules so fixture mirror trees
check themselves) must contain, on the apportion path, an ``assert``
whose test both

* sums the apportioned budgets — a call to ``sum`` or ``fsum`` (plain
  or attribute-qualified, e.g. ``math.fsum``), and
* compares with ``<=`` (or the mirrored ``>=``) against the cap.

"On the apportion path" means in ``apportion`` itself or in any
same-module helper it (transitively) calls — either a method of the
same class invoked through ``self`` or a module-level function — so
refactoring the tail of ``apportion`` into a ``_finalize`` helper does
not defeat the rule.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from repro.analysis.findings import Finding, Severity
from repro.analysis.index import ModuleInfo, ProjectIndex
from repro.analysis.registry import rule

__all__ = ["check_budget_conservation"]

#: Allocator modules whose apportion paths must carry the assertion.
ALLOCATOR_PATH = "repro/fleet/budget.py"

#: Call names that count as summing the budget vector.
SUM_NAMES = frozenset({"sum", "fsum"})


def _call_name(node: ast.Call) -> Optional[str]:
    """The terminal name of a call target (``fsum`` for ``math.fsum``)."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _is_conservation_assert(node: ast.Assert) -> bool:
    """True when the assert both sums budgets and bounds them by a cap."""
    sums = any(
        isinstance(sub, ast.Call) and _call_name(sub) in SUM_NAMES
        for sub in ast.walk(node.test)
    )
    bounded = any(
        isinstance(sub, ast.Compare)
        and any(isinstance(op, (ast.LtE, ast.GtE)) for op in sub.ops)
        for sub in ast.walk(node.test)
    )
    return sums and bounded


def _local_calls(body: List[ast.stmt]) -> Set[str]:
    """Names of same-module callees reachable from ``body``.

    Collects both ``self._helper(...)`` method calls and bare
    ``_helper(...)`` module-function calls; the caller resolves which
    exist.
    """
    names: Set[str] = set()
    for stmt in body:
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "self"
            ):
                names.add(func.attr)
            elif isinstance(func, ast.Name):
                names.add(func.id)
    return names


def _apportion_path_bodies(
    module: ModuleInfo, cls: ast.ClassDef, entry: ast.FunctionDef
) -> Iterator[List[ast.stmt]]:
    """Statement bodies on the apportion path, entry first.

    Follows calls one module deep: ``self`` methods of the same class
    and module-level functions, transitively, each visited once.
    """
    methods: Dict[str, ast.FunctionDef] = {
        node.name: node
        for node in cls.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    functions: Dict[str, ast.FunctionDef] = {
        node.name: node
        for node in module.tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    seen: Set[str] = {entry.name}
    worklist: List[ast.FunctionDef] = [entry]
    while worklist:
        fn = worklist.pop()
        yield fn.body
        for name in sorted(_local_calls(fn.body)):
            if name in seen:
                continue
            target = methods.get(name) or functions.get(name)
            if target is not None:
                seen.add(name)
                worklist.append(target)


def _check_allocator(module: ModuleInfo) -> Iterator[Finding]:
    for cls in module.tree.body:
        if not isinstance(cls, ast.ClassDef):
            continue
        apportion = next(
            (
                node
                for node in cls.body
                if isinstance(node, ast.FunctionDef)
                and node.name == "apportion"
            ),
            None,
        )
        if apportion is None:
            continue
        covered = any(
            isinstance(node, ast.Assert) and _is_conservation_assert(node)
            for body in _apportion_path_bodies(module, cls, apportion)
            for stmt in body
            for node in ast.walk(stmt)
        )
        if not covered:
            yield Finding(
                path=module.path,
                line=apportion.lineno,
                col=apportion.col_offset,
                rule_id="RL013",
                severity=Severity.ERROR,
                message=(
                    f"{cls.name}.apportion has no budget-conservation "
                    "assertion on its path; assert "
                    "sum/fsum(budgets) <= cap so oversubscription fails "
                    "loudly instead of overdrawing the fleet"
                ),
            )


@rule(
    "RL013",
    "budget-conservation",
    "budget apportion paths must assert sum(child budgets) <= cap",
    scope="project",
)
def check_budget_conservation(index: ProjectIndex) -> Iterator[Finding]:
    """Cross-module conservation-assertion coverage check."""
    for module in index.modules_matching(ALLOCATOR_PATH):
        yield from _check_allocator(module)
