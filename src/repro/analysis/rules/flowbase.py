"""Shared plumbing for the flow-sensitive rules (RL009–RL012).

All four rules govern the same territory: modules under a ``repro/``
component, which matches both the shipped tree
(``src/repro/obs/metrics.py``) and the fixture mirror-trees
(``tests/analysis/fixtures/rl009/repro/obs/bad.py``) while leaving
ordinary test files alone — tests exercise unlocked fast paths and
fake lifecycles on purpose.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set, Tuple

from repro.analysis.index import ModuleInfo, ProjectIndex, path_matches

__all__ = ["FLOW_PATHS", "flow_modules", "names_in", "Seen"]

#: Path fragments the flow rules govern.
FLOW_PATHS = ("repro/",)

#: Dedupe key: duplicated ``finally`` bodies mean one source statement
#: can sit in several CFG blocks; findings collapse per source point.
Seen = Set[Tuple[int, int, str]]


def flow_modules(index: ProjectIndex) -> List[ModuleInfo]:
    """The indexed modules the flow rules apply to."""
    return [
        module
        for module in index.modules
        if any(path_matches(module.rel_path, path) for path in FLOW_PATHS)
    ]


def names_in(node: ast.AST) -> Iterator[str]:
    """Every plain ``Name`` identifier occurring in a subtree."""
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            yield child.id
