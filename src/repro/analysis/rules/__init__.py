"""Built-in rule catalogue; importing this package registers every rule.

Rule ids:

* ``RL001`` no-wallclock-on-hot-path (:mod:`.determinism`)
* ``RL002`` unseeded-rng (:mod:`.determinism`)
* ``RL003`` fingerprint-coverage (:mod:`.fingerprint`)
* ``RL004`` worker-pickle-safety (:mod:`.concurrency`)
* ``RL005`` obs-purity (:mod:`.obs`)
* ``RL006`` mutable-default-config (:mod:`.config`)
* ``RL007`` scalar-path-drift (:mod:`.hotpath`)
* ``RL008`` trace-schema-coverage (:mod:`.traces`)
* ``RL009`` lock-discipline (:mod:`.locks`) — flow-sensitive
* ``RL010`` shm-lifecycle (:mod:`.lifecycle`) — flow-sensitive
* ``RL011`` memo-staleness (:mod:`.memo`) — flow-sensitive
* ``RL012`` unguarded-shared-mutation (:mod:`.shared_state`) — flow-sensitive
* ``RL013`` budget-conservation (:mod:`.budget`)
"""

from repro.analysis.rules import (  # noqa: F401
    budget,
    concurrency,
    config,
    determinism,
    fingerprint,
    hotpath,
    lifecycle,
    locks,
    memo,
    obs,
    shared_state,
    traces,
)

__all__ = [
    "budget",
    "concurrency",
    "config",
    "determinism",
    "fingerprint",
    "hotpath",
    "lifecycle",
    "locks",
    "memo",
    "obs",
    "shared_state",
    "traces",
]
