"""Per-line and per-file suppression comments.

Syntax (anywhere a comment is legal)::

    x = time.time()  # repro-lint: disable=RL001
    y = foo()        # repro-lint: disable=RL001,RL002
    # repro-lint: disable-file=RL004
    # repro-lint: disable-file=ALL

``disable`` applies to the findings reported on the comment's own line;
``disable-file`` applies to the whole file regardless of where it
appears.  ``ALL`` matches every rule.  Comments are found with
:mod:`tokenize`, so directives inside string literals are ignored.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, Tuple

from repro.analysis.findings import Finding

__all__ = ["Suppressions", "scan_suppressions"]

#: Matches one directive inside a comment token.
_DIRECTIVE_RE = re.compile(
    r"repro-lint:\s*(?P<kind>disable-file|disable)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)

#: Wildcard rule name matching every rule.
ALL_RULES = "ALL"


@dataclass(frozen=True)
class Suppressions:
    """The suppression directives of one source file.

    Attributes:
        file_wide: Rule ids disabled for the entire file.
        by_line: Rule ids disabled on specific 1-based lines.
    """

    file_wide: FrozenSet[str] = frozenset()
    by_line: Dict[int, FrozenSet[str]] = field(default_factory=dict)

    def is_suppressed(self, finding: Finding) -> bool:
        """Whether a finding is silenced by a directive."""
        if self._matches(self.file_wide, finding.rule_id):
            return True
        return self._matches(
            self.by_line.get(finding.line, frozenset()), finding.rule_id
        )

    @staticmethod
    def _matches(rules: FrozenSet[str], rule_id: str) -> bool:
        return ALL_RULES in rules or rule_id in rules


def _directives(source: str) -> Iterator[Tuple[int, str, FrozenSet[str]]]:
    """Yield ``(line, kind, rules)`` for every directive comment."""
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        for match in _DIRECTIVE_RE.finditer(token.string):
            rules = frozenset(
                part.strip() for part in match.group("rules").split(",")
            )
            yield token.start[0], match.group("kind"), rules


def scan_suppressions(source: str) -> Suppressions:
    """Collect the suppression directives of a source file."""
    file_wide: FrozenSet[str] = frozenset()
    by_line: Dict[int, FrozenSet[str]] = {}
    for line, kind, rules in _directives(source):
        if kind == "disable-file":
            file_wide = file_wide | rules
        else:
            by_line[line] = by_line.get(line, frozenset()) | rules
    return Suppressions(file_wide=file_wide, by_line=by_line)
