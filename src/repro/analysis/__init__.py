"""AST-based static analysis enforcing the repo's runtime invariants.

``repro lint`` machine-checks the correctness properties the engine,
runtime, and obs layers rely on but cannot enforce at runtime:
simulated-time discipline (RL001), seeded randomness (RL002),
cache-fingerprint and serializer coverage (RL003), process-pool pickle
safety (RL004), observability purity (RL005), mutable-default
hygiene (RL006), columnar/scalar parity (RL007), trace-schema
coverage (RL008), and — via the flow-sensitive tier
(:mod:`repro.analysis.flow`: per-function CFGs plus dataflow
fixpoints) — lock discipline (RL009), shared-memory lifecycle
(RL010), memo staleness (RL011), and unguarded shared-state mutation
(RL012).  See ``docs/ANALYSIS.md`` for the full catalogue, the
suppression and annotation syntax, and how to add a rule.

Public API::

    from repro.analysis import run_lint, render_text, render_json

    result = run_lint(["src"])          # LintResult
    print(render_text(result))
    raise SystemExit(result.exit_code)
"""

from repro.analysis.baseline import BASELINE_SCHEMA, Baseline
from repro.analysis.engine import (
    LintResult,
    PARSE_ERROR_ID,
    discover_files,
    run_lint,
)
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import Rule, all_rules, get_rule, rule
from repro.analysis.reporters import (
    REPORT_SCHEMA,
    parse_json,
    render_catalogue,
    render_json,
    render_stats,
    render_text,
)

__all__ = [
    "BASELINE_SCHEMA",
    "Baseline",
    "Finding",
    "LintResult",
    "PARSE_ERROR_ID",
    "REPORT_SCHEMA",
    "Rule",
    "Severity",
    "all_rules",
    "discover_files",
    "get_rule",
    "parse_json",
    "render_catalogue",
    "render_json",
    "render_stats",
    "render_text",
    "rule",
    "run_lint",
]
