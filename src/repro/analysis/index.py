"""The cross-module project index rules run against.

The engine parses every discovered file once into a :class:`ModuleInfo`
(AST, source, suppressions, normalized path) and aggregates them into a
:class:`ProjectIndex`.  The index pre-extracts the facts that more than
one rule needs — dataclass definitions with their fields, and per-module
import alias maps — so individual rules stay small and single-purpose.

Path scoping uses the *normalized relative path* (``rel_path``, always
``/``-separated).  Rules match path fragments such as
``"repro/sim/"`` against it, which makes the same rule work both on the
real tree (``src/repro/sim/simulator.py``) and on fixture trees that
mirror the layout (``tests/analysis/fixtures/rl001/repro/sim/bad.py``).
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.suppressions import Suppressions, scan_suppressions

__all__ = [
    "FieldInfo",
    "DataclassInfo",
    "ModuleInfo",
    "ProjectIndex",
    "build_module",
    "annotation_heads",
    "dotted_name",
]


def dotted_name(node: ast.AST) -> Optional[str]:
    """The dotted name of a ``Name``/``Attribute`` chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def annotation_heads(node: Optional[ast.AST]) -> Set[str]:
    """Every dotted name appearing in a type annotation.

    ``Tuple[Tuple[str, Any], ...]`` yields ``{"Tuple", "str", "Any"}``;
    string annotations are re-parsed so quoted forward references
    contribute their names too.
    """
    heads: Set[str] = set()
    if node is None:
        return heads
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return heads
    for child in ast.walk(node):
        if isinstance(child, (ast.Name, ast.Attribute)):
            name = dotted_name(child)
            if name is not None:
                heads.add(name)
    # Attribute chains also walk their inner Name; keep only maximal
    # dotted names plus plain names that are not a prefix of a chain.
    maximal = {
        h
        for h in heads
        if not any(other != h and other.startswith(h + ".") for other in heads)
    }
    return maximal


@dataclass(frozen=True)
class FieldInfo:
    """One dataclass field as written in source.

    Attributes:
        name: Field name.
        annotation: The annotation expression, if any.
        default: The default-value expression, if any (for
            ``field(...)`` calls this is the call itself).
        line: 1-based line of the field statement.
        col: Column offset of the field statement.
    """

    name: str
    annotation: Optional[ast.expr]
    default: Optional[ast.expr]
    line: int
    col: int


@dataclass(frozen=True)
class DataclassInfo:
    """One ``@dataclass``-decorated class definition.

    Attributes:
        name: Class name.
        module_rel_path: ``rel_path`` of the defining module.
        fields: Annotated fields in declaration order (``ClassVar``
            annotations excluded).
        line: 1-based line of the ``class`` statement.
    """

    name: str
    module_rel_path: str
    fields: Tuple[FieldInfo, ...]
    line: int


@dataclass
class ModuleInfo:
    """One parsed source file.

    Attributes:
        path: The path as discovered (used in findings).
        rel_path: Normalized ``/``-separated relative path for scoping.
        tree: Parsed AST.
        source: Raw source text.
        suppressions: The file's suppression directives.
        import_aliases: Local name -> imported dotted name, e.g.
            ``{"np": "numpy", "perf_counter": "time.perf_counter"}``.
        caches: Scratch space for derived per-module facts (e.g. the
            flow model built by :mod:`repro.analysis.flow`), keyed by
            subsystem; never part of module identity.
    """

    path: str
    rel_path: str
    tree: ast.Module
    source: str
    suppressions: Suppressions
    import_aliases: Dict[str, str] = field(default_factory=dict)
    caches: Dict[str, object] = field(
        default_factory=dict, repr=False, compare=False
    )

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Fully-qualified dotted name of a ``Name``/``Attribute`` chain.

        Import aliases are expanded: with ``import numpy as np``,
        ``np.random.default_rng`` resolves to
        ``numpy.random.default_rng``.
        """
        name = dotted_name(node)
        if name is None:
            return None
        head, _, rest = name.partition(".")
        target = self.import_aliases.get(head)
        if target is None:
            return name
        return f"{target}.{rest}" if rest else target


def _import_aliases(tree: ast.Module) -> Dict[str, str]:
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    aliases[alias.asname] = alias.name
                else:
                    head = alias.name.split(".")[0]
                    aliases[head] = head
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                if alias.name == "*":
                    continue
                aliases[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
    return aliases


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = dotted_name(target)
        if name in ("dataclass", "dataclasses.dataclass"):
            return True
    return False


def _is_classvar(annotation: ast.expr) -> bool:
    return any(
        head == "ClassVar" or head.endswith(".ClassVar")
        for head in annotation_heads(annotation)
    )


def _dataclass_fields(node: ast.ClassDef) -> Tuple[FieldInfo, ...]:
    fields: List[FieldInfo] = []
    for stmt in node.body:
        if not isinstance(stmt, ast.AnnAssign):
            continue
        if not isinstance(stmt.target, ast.Name):
            continue
        if _is_classvar(stmt.annotation):
            continue
        fields.append(
            FieldInfo(
                name=stmt.target.id,
                annotation=stmt.annotation,
                default=stmt.value,
                line=stmt.lineno,
                col=stmt.col_offset,
            )
        )
    return tuple(fields)


def build_module(path: str, root: Optional[str] = None) -> ModuleInfo:
    """Parse one source file into a :class:`ModuleInfo`.

    Raises:
        SyntaxError: When the file does not parse; the engine converts
            this into a parse-error finding.
    """
    with open(path, encoding="utf-8") as handle:
        source = handle.read()
    rel = os.path.relpath(path, root) if root else path
    rel_path = rel.replace(os.sep, "/")
    tree = ast.parse(source, filename=path)
    return ModuleInfo(
        path=path,
        rel_path=rel_path,
        tree=tree,
        source=source,
        suppressions=scan_suppressions(source),
        import_aliases=_import_aliases(tree),
    )


@dataclass
class ProjectIndex:
    """Aggregated facts about every linted module.

    Attributes:
        modules: Every successfully parsed module, in discovery order.
        dataclasses: Every ``@dataclass`` definition found.
        caches: Scratch space for derived cross-module facts (e.g. the
            call-graph layer of :mod:`repro.analysis.flow`), keyed by
            subsystem; never part of index identity.
    """

    modules: List[ModuleInfo] = field(default_factory=list)
    dataclasses: List[DataclassInfo] = field(default_factory=list)
    caches: Dict[str, object] = field(
        default_factory=dict, repr=False, compare=False
    )

    @classmethod
    def build(cls, modules: List[ModuleInfo]) -> "ProjectIndex":
        """Index a list of parsed modules."""
        index = cls(modules=list(modules))
        for module in modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef) and _is_dataclass_decorated(node):
                    index.dataclasses.append(
                        DataclassInfo(
                            name=node.name,
                            module_rel_path=module.rel_path,
                            fields=_dataclass_fields(node),
                            line=node.lineno,
                        )
                    )
        return index

    def module_for(self, rel_path: str) -> Optional[ModuleInfo]:
        """The module with exactly this ``rel_path``, if indexed."""
        for module in self.modules:
            if module.rel_path == rel_path:
                return module
        return None

    def modules_matching(self, fragment: str) -> List[ModuleInfo]:
        """Modules whose ``rel_path`` contains a path fragment."""
        return [m for m in self.modules if path_matches(m.rel_path, fragment)]

    def dataclasses_in(self, fragment: str) -> List[DataclassInfo]:
        """Dataclasses defined in modules matching a path fragment."""
        return [
            dc
            for dc in self.dataclasses
            if path_matches(dc.module_rel_path, fragment)
        ]


def path_matches(rel_path: str, fragment: str) -> bool:
    """Whether a normalized path contains a ``/``-separated fragment.

    A fragment ending in ``/`` matches a directory anywhere in the
    path (including at the start); otherwise it must match a suffix at
    a component boundary: ``"repro/sim/"`` matches
    ``src/repro/sim/simulator.py`` and ``"engine/variants.py"``
    matches ``src/repro/engine/variants.py``.
    """
    haystack = "/" + rel_path
    if fragment.endswith("/"):
        return "/" + fragment in haystack
    return haystack.endswith("/" + fragment)
