"""repro: reproduction of "Dynamic GPGPU Power Management Using Adaptive
Model Predictive Control" (Majumdar et al., HPCA 2017).

The package implements the paper's complete system on a modelled AMD
A10-7850K APU:

* :mod:`repro.hardware` — the DVFS tables, 336-point configuration
  space, and ground-truth timing/power/thermal models.
* :mod:`repro.workloads` — kernels, Table-III counters, and the 15
  Table-IV evaluation benchmarks.
* :mod:`repro.ml` — a from-scratch Random Forest performance/power
  predictor and the synthetic-error models.
* :mod:`repro.core` — the MPC power manager (optimizer, pattern
  extractor, performance tracker, adaptive horizon) and the PPK /
  theoretically-optimal baselines.
* :mod:`repro.sim` — the execution simulator, Turbo Core baseline, and
  comparison metrics.
* :mod:`repro.experiments` — one module per table/figure of the paper.

Quickstart::

    from repro import (Simulator, TurboCorePolicy, MPCPowerManager,
                       train_predictor, benchmark)

    sim = Simulator()
    app = benchmark("kmeans")
    turbo = sim.run(app, TurboCorePolicy())
    mpc = MPCPowerManager(turbo.throughput, train_predictor())
    sim.run(app, mpc)              # profiling invocation (runs PPK)
    result = sim.run(app, mpc)     # true MPC
"""

import logging as _logging

from repro.core import (
    AdaptiveHorizonGenerator,
    GreedyHillClimbOptimizer,
    KernelPatternExtractor,
    MPCPowerManager,
    PerformanceTracker,
    PPKPolicy,
    SearchOrder,
    build_search_order,
    solve_theoretically_optimal,
)
from repro.core.policies import FixedConfigPolicy, PlannedPolicy
from repro.runtime import (
    KernelLaunch,
    LaunchOutcome,
    LifecycleError,
    PolicyLifecycle,
    PolicyState,
    SessionManager,
    SessionRuntime,
    SessionStats,
    invocation_pair,
    launch_events,
)
from repro.hardware import (
    APUModel,
    ConfigSpace,
    FAILSAFE_CONFIG,
    HardwareConfig,
    Measurement,
)
from repro.ml import (
    OraclePredictor,
    RandomForestPredictor,
    SyntheticErrorPredictor,
    evaluate_predictor,
    train_predictor,
)
from repro.sim import (
    OverheadModel,
    RunResult,
    Simulator,
    TurboCorePolicy,
    energy_savings_pct,
    gpu_energy_savings_pct,
    performance_loss_pct,
    speedup,
)
from repro.workloads import (
    Application,
    BENCHMARK_NAMES,
    KernelSpec,
    ScalingClass,
    all_benchmarks,
    benchmark,
)

__version__ = "1.0.0"

# Library convention: never configure logging for the application, but
# make sure "no handler" warnings can't fire for the repro.* hierarchy.
_logging.getLogger("repro").addHandler(_logging.NullHandler())

__all__ = [
    "__version__",
    # hardware
    "APUModel",
    "ConfigSpace",
    "HardwareConfig",
    "FAILSAFE_CONFIG",
    "Measurement",
    # workloads
    "Application",
    "KernelSpec",
    "ScalingClass",
    "BENCHMARK_NAMES",
    "all_benchmarks",
    "benchmark",
    # ml
    "train_predictor",
    "evaluate_predictor",
    "RandomForestPredictor",
    "OraclePredictor",
    "SyntheticErrorPredictor",
    # core
    "MPCPowerManager",
    "PPKPolicy",
    "FixedConfigPolicy",
    "PlannedPolicy",
    "GreedyHillClimbOptimizer",
    "PerformanceTracker",
    "KernelPatternExtractor",
    "AdaptiveHorizonGenerator",
    "SearchOrder",
    "build_search_order",
    "solve_theoretically_optimal",
    # runtime
    "KernelLaunch",
    "LaunchOutcome",
    "LifecycleError",
    "PolicyLifecycle",
    "PolicyState",
    "SessionManager",
    "SessionRuntime",
    "SessionStats",
    "invocation_pair",
    "launch_events",
    # sim
    "Simulator",
    "OverheadModel",
    "RunResult",
    "TurboCorePolicy",
    "energy_savings_pct",
    "gpu_energy_savings_pct",
    "speedup",
    "performance_loss_pct",
]
