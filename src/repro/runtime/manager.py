"""The session manager: many concurrent sessions behind one event stream.

The ROADMAP north star is a service consuming kernel-launch events from
many concurrent applications.  :class:`SessionManager` is that hosting
layer: it keys :class:`~repro.runtime.session.SessionRuntime` instances
by session id, routes an interleaved :class:`KernelLaunch` stream to
the right session, and aggregates per-session statistics.  Because each
session's policy only ever sees its own launches, interleaving is
transparent: a session's trace is identical whether it ran alone or
multiplexed with others (asserted by the runtime test suite).

With a :class:`~repro.engine.sessions.SessionStore` attached, sessions
can be persisted into the experiment engine's content-addressed cache
and resumed by a different worker (``persist`` / ``resume``).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional

from repro.hardware.apu import APUModel
from repro.hardware.config import FAILSAFE_CONFIG, HardwareConfig
from repro.obs import Instrumentation, or_noop, publish_session_stats
from repro.runtime.events import KernelLaunch, LaunchOutcome
from repro.runtime.session import SessionRuntime, SessionStats
from repro.sim.policy import PowerPolicy
from repro.sim.simulator import MANAGER_CONFIG, OverheadModel
from repro.workloads.counters import CounterSynthesizer

__all__ = ["SessionManager"]


class SessionManager:
    """Hosts concurrent policy sessions over one shared hardware model.

    All sessions execute on the same APU/counter/overhead models (the
    machine being managed); each session hosts its own policy and keeps
    its own trace and statistics.

    Args:
        apu: Shared ground-truth hardware model.
        counters: Shared counter synthesizer.
        overhead: Shared decision-overhead model.
        manager_config: Configuration the optimizer runs at.
        cpu_phase_s: Per-launch CPU phase that hides optimizer time.
        enforce_tdp: Throttle over-TDP configurations before executing.
        isolate_faults: Fault-isolate hosted policies (the default for
            long-lived streaming service use).
        fail_safe: Fallback configuration for degraded decisions.
        store: Optional :class:`~repro.engine.sessions.SessionStore`
            for :meth:`persist` / :meth:`resume`.
        obs: Optional instrumentation shared by every hosted session
            (defaults to the no-op instrumentation).
    """

    def __init__(
        self,
        apu: Optional[APUModel] = None,
        counters: Optional[CounterSynthesizer] = None,
        overhead: Optional[OverheadModel] = None,
        manager_config: HardwareConfig = MANAGER_CONFIG,
        cpu_phase_s: float = 0.0,
        enforce_tdp: bool = False,
        isolate_faults: bool = True,
        fail_safe: HardwareConfig = FAILSAFE_CONFIG,
        store: Optional[Any] = None,
        obs: Optional[Instrumentation] = None,
    ) -> None:
        self.apu = apu if apu is not None else APUModel()
        self.counters = counters if counters is not None else CounterSynthesizer()
        self.overhead = overhead if overhead is not None else OverheadModel()
        self.manager_config = manager_config
        self.cpu_phase_s = cpu_phase_s
        self.enforce_tdp = enforce_tdp
        self.isolate_faults = isolate_faults
        self.fail_safe = fail_safe
        self.store = store
        self.obs = or_noop(obs)
        self._sessions: Dict[str, SessionRuntime] = {}

    # ----- session registry ------------------------------------------------------

    def add_session(self, session_id: str, policy: PowerPolicy, *,
                    app_name: str = "",
                    charge_overhead: bool = True) -> SessionRuntime:
        """Register a new session hosting ``policy``.

        Raises:
            ValueError: If the id is empty or already registered.
        """
        if not session_id:
            raise ValueError("session_id must be non-empty")
        if session_id in self._sessions:
            raise ValueError(f"session {session_id!r} already registered")
        session = SessionRuntime(
            policy=policy,
            apu=self.apu,
            counters=self.counters,
            overhead=self.overhead,
            manager_config=self.manager_config,
            cpu_phase_s=self.cpu_phase_s,
            enforce_tdp=self.enforce_tdp,
            isolate_faults=self.isolate_faults,
            fail_safe=self.fail_safe,
            session_id=session_id,
            app_name=app_name,
            charge_overhead=charge_overhead,
            obs=self.obs,
        )
        self._sessions[session_id] = session
        return session

    def session(self, session_id: str) -> SessionRuntime:
        """The registered session, or a clear error naming known ids."""
        try:
            return self._sessions[session_id]
        except KeyError:
            known = ", ".join(sorted(self._sessions)) or "<none>"
            raise KeyError(
                f"unknown session {session_id!r}; registered: {known}"
            ) from None

    def remove_session(self, session_id: str) -> SessionRuntime:
        """Deregister and return a session (its state stays usable)."""
        session = self.session(session_id)
        del self._sessions[session_id]
        return session

    def session_ids(self) -> List[str]:
        """Registered session ids, sorted."""
        return sorted(self._sessions)

    def __contains__(self, session_id: str) -> bool:
        return session_id in self._sessions

    def __len__(self) -> int:
        return len(self._sessions)

    # ----- event routing ---------------------------------------------------------

    def dispatch(self, event: KernelLaunch) -> LaunchOutcome:
        """Route one event to its session and process it."""
        return self.session(event.session_id).process(event)

    def run_stream(self, events: Iterable[KernelLaunch]) -> Iterator[LaunchOutcome]:
        """Consume an interleaved multi-session event stream."""
        for event in events:
            yield self.dispatch(event)

    def stats(self) -> Dict[str, SessionStats]:
        """Per-session statistics keyed by session id."""
        return {sid: s.stats for sid, s in sorted(self._sessions.items())}

    def aggregate_stats(self) -> SessionStats:
        """All sessions' statistics merged into one, with provenance.

        The merged object's ``sources`` counts the sessions folded in,
        so fleet-level reports can state how many sessions they cover.
        """
        total = SessionStats(sources=0)
        for _, session in sorted(self._sessions.items()):
            total.merge(session.stats)
        return total

    def publish_stats(self) -> None:
        """Publish per-session and aggregate stats to the registry."""
        registry = self.obs.registry
        for sid, session in sorted(self._sessions.items()):
            publish_session_stats(registry, session.stats, session=sid)
        if self._sessions:
            publish_session_stats(
                registry, self.aggregate_stats(), session="_aggregate"
            )

    # ----- persistence -----------------------------------------------------------

    def _require_store(self) -> Any:
        if self.store is None:
            raise RuntimeError("no SessionStore attached to this manager")
        return self.store

    def persist(self, session_id: str) -> str:
        """Snapshot one session into the attached store.

        Returns:
            The store key the snapshot was written under.
        """
        return self._require_store().save(
            session_id, self.session(session_id).snapshot()
        )

    def persist_all(self) -> Dict[str, str]:
        """Snapshot every registered session; returns id -> store key."""
        return {sid: self.persist(sid) for sid in self.session_ids()}

    def resume(self, session_id: str, policy: PowerPolicy, *,
               app_name: str = "") -> SessionRuntime:
        """Rebuild a persisted session from the attached store.

        ``policy`` must be constructed with the same arguments as the
        persisted one; its mutable state is restored from the snapshot.

        Raises:
            KeyError: If the store has no snapshot for the id.
        """
        payload = self._require_store().load(session_id)
        if payload is None:
            raise KeyError(f"no persisted snapshot for session {session_id!r}")
        session = self.add_session(session_id, policy, app_name=app_name)
        try:
            session.restore(payload)
        except Exception:
            del self._sessions[session_id]
            raise
        return session
