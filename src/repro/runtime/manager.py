"""The session manager: many concurrent sessions behind one event stream.

The ROADMAP north star is a service consuming kernel-launch events from
many concurrent applications.  :class:`SessionManager` is that hosting
layer: it keys :class:`~repro.runtime.session.SessionRuntime` instances
by session id, routes an interleaved :class:`KernelLaunch` stream to
the right session, and aggregates per-session statistics.  Because each
session's policy only ever sees its own launches, interleaving is
transparent: a session's trace is identical whether it ran alone or
multiplexed with others (asserted by the runtime test suite).

With a :class:`~repro.engine.sessions.SessionStore` attached, sessions
can be persisted into the experiment engine's content-addressed cache
and resumed by a different worker (``persist`` / ``resume``).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence

from repro.hardware.apu import APUModel
from repro.hardware.config import FAILSAFE_CONFIG, HardwareConfig
from repro.obs import Instrumentation, or_noop, publish_session_stats
from repro.runtime.events import KernelLaunch, LaunchOutcome
from repro.runtime.session import (
    RECENT_ERRORS_LIMIT,
    SessionRuntime,
    SessionStats,
)
from repro.sim.policy import PowerPolicy
from repro.sim.simulator import MANAGER_CONFIG, OverheadModel
from repro.workloads.counters import CounterSynthesizer

__all__ = ["SessionManager", "chunk_distinct_sessions"]


def chunk_distinct_sessions(items: Sequence[Any], key: Any) -> List[List[Any]]:
    """Split ``items`` into maximal distinct-session runs, in order.

    A chunk closes as soon as a session repeats, so each chunk is a
    legal :meth:`SessionManager.step_batch` input and per-session item
    order is preserved across chunks.  Shared by the trace replayer's
    batched mode and the fleet nodes.

    Args:
        items: The ordered items to chunk.
        key: Callable mapping an item to its session id.
    """
    chunks: List[List[Any]] = []
    chunk: List[Any] = []
    sessions: set = set()
    for item in items:
        sid = key(item)
        if sid in sessions:
            chunks.append(chunk)
            chunk, sessions = [], set()
        chunk.append(item)
        sessions.add(sid)
    if chunk:
        chunks.append(chunk)
    return chunks


class SessionManager:
    """Hosts concurrent policy sessions over one shared hardware model.

    All sessions execute on the same APU/counter/overhead models (the
    machine being managed); each session hosts its own policy and keeps
    its own trace and statistics.

    Args:
        apu: Shared ground-truth hardware model.
        counters: Shared counter synthesizer.
        overhead: Shared decision-overhead model.
        manager_config: Configuration the optimizer runs at.
        cpu_phase_s: Per-launch CPU phase that hides optimizer time.
        enforce_tdp: Throttle over-TDP configurations before executing.
        power_budget_w: Optional node power budget (watts) applied to
            every hosted session — launches are throttled under
            ``min(budget, TDP if enforce_tdp)``.  Updated live via
            :meth:`set_power_budget` (the fleet allocator's entry
            point, re-negotiated each epoch).
        isolate_faults: Fault-isolate hosted policies (the default for
            long-lived streaming service use).
        fail_safe: Fallback configuration for degraded decisions.
        store: Optional :class:`~repro.engine.sessions.SessionStore`
            for :meth:`persist` / :meth:`resume`.
        obs: Optional instrumentation shared by every hosted session
            (defaults to the no-op instrumentation).
    """

    def __init__(
        self,
        apu: Optional[APUModel] = None,
        counters: Optional[CounterSynthesizer] = None,
        overhead: Optional[OverheadModel] = None,
        manager_config: HardwareConfig = MANAGER_CONFIG,
        cpu_phase_s: float = 0.0,
        enforce_tdp: bool = False,
        isolate_faults: bool = True,
        fail_safe: HardwareConfig = FAILSAFE_CONFIG,
        store: Optional[Any] = None,
        obs: Optional[Instrumentation] = None,
        power_budget_w: Optional[float] = None,
    ) -> None:
        if power_budget_w is not None and power_budget_w <= 0:
            raise ValueError("power_budget_w must be positive")
        self.apu = apu if apu is not None else APUModel()
        self.counters = counters if counters is not None else CounterSynthesizer()
        self.overhead = overhead if overhead is not None else OverheadModel()
        self.manager_config = manager_config
        self.cpu_phase_s = cpu_phase_s
        self.enforce_tdp = enforce_tdp
        self.power_budget_w = power_budget_w
        self.isolate_faults = isolate_faults
        self.fail_safe = fail_safe
        self.store = store
        self.obs = or_noop(obs)
        self._sessions: Dict[str, SessionRuntime] = {}

    # ----- session registry ------------------------------------------------------

    def add_session(self, session_id: str, policy: PowerPolicy, *,
                    app_name: str = "",
                    charge_overhead: bool = True,
                    recent_errors_limit: int = RECENT_ERRORS_LIMIT,
                    ) -> SessionRuntime:
        """Register a new session hosting ``policy``.

        Raises:
            ValueError: If the id is empty or already registered.
        """
        if not session_id:
            raise ValueError("session_id must be non-empty")
        if session_id in self._sessions:
            raise ValueError(f"session {session_id!r} already registered")
        session = SessionRuntime(
            policy=policy,
            apu=self.apu,
            counters=self.counters,
            overhead=self.overhead,
            manager_config=self.manager_config,
            cpu_phase_s=self.cpu_phase_s,
            enforce_tdp=self.enforce_tdp,
            isolate_faults=self.isolate_faults,
            fail_safe=self.fail_safe,
            session_id=session_id,
            app_name=app_name,
            charge_overhead=charge_overhead,
            obs=self.obs,
            recent_errors_limit=recent_errors_limit,
            power_budget_w=self.power_budget_w,
        )
        self._sessions[session_id] = session
        return session

    def session(self, session_id: str) -> SessionRuntime:
        """The registered session, or a clear error naming known ids."""
        try:
            return self._sessions[session_id]
        except KeyError:
            known = ", ".join(sorted(self._sessions)) or "<none>"
            raise KeyError(
                f"unknown session {session_id!r}; registered: {known}"
            ) from None

    def remove_session(self, session_id: str) -> SessionRuntime:
        """Deregister and return a session (its state stays usable)."""
        session = self.session(session_id)
        del self._sessions[session_id]
        return session

    def session_ids(self) -> List[str]:
        """Registered session ids, sorted."""
        return sorted(self._sessions)

    def __contains__(self, session_id: str) -> bool:
        return session_id in self._sessions

    def __len__(self) -> int:
        return len(self._sessions)

    # ----- event routing ---------------------------------------------------------

    def dispatch(self, event: KernelLaunch) -> LaunchOutcome:
        """Route one event to its session and process it."""
        return self.session(event.session_id).process(event)

    def run_stream(self, events: Iterable[KernelLaunch]) -> Iterator[LaunchOutcome]:
        """Consume an interleaved multi-session event stream."""
        for event in events:
            yield self.dispatch(event)

    def step_batch(self, events: Sequence[KernelLaunch]) -> List[LaunchOutcome]:
        """Process one launch per session with their sweeps stacked.

        Each ready session's policy is asked (side-effect free) which
        counter vectors its upcoming decision will sweep; sessions whose
        optimizers share a predictor and search lattice are grouped, the
        deduplicated counters of each group go to the predictor as one
        stacked ``estimate_matrix_many`` call, and the shared
        whole-lattice estimates are preloaded into every member
        optimizer before the events are dispatched normally, in order.

        Decisions, per-session statistics, evaluation charges, and
        per-decision telemetry are identical to dispatching the events
        one at a time — preloaded rows are float-for-float what each
        session's own sweep would have produced, and fault isolation is
        unchanged (a failing prefetch just drops that session back to
        its lazy path).

        Args:
            events: At most one launch per session; sessions are
                independent, so within-batch order is irrelevant to the
                results but preserved in the returned outcomes.

        Returns:
            One :class:`LaunchOutcome` per event, in input order.

        Raises:
            ValueError: If two events target the same session (their
                relative order would matter — stream those instead).
            KeyError: If an event names an unregistered session.
        """
        events = list(events)
        seen: set = set()
        for event in events:
            if event.session_id in seen:
                raise ValueError(
                    "step_batch events must target distinct sessions; "
                    f"{event.session_id!r} appears more than once"
                )
            seen.add(event.session_id)
        sessions = [self.session(event.session_id) for event in events]

        # Group prefetch requests by (predictor, lattice): one stacked
        # sweep per group serves every member session.
        groups: Dict[Any, List[Any]] = {}
        requests: Dict[Any, List[Any]] = {}
        for event, session in zip(events, sessions):
            optimizer = getattr(session.policy, "optimizer", None)
            if optimizer is None or not getattr(optimizer, "matrix_enabled", False):
                continue
            try:
                wanted = tuple(session.prefetch_counters(event))
            except Exception:
                # Fault isolation: a failing prefetch must not take the
                # batch down — the session decides on its lazy path and
                # any real fault surfaces through process() as usual.
                continue
            if not wanted:
                continue
            key = (id(optimizer.predictor), optimizer.lattice_key)
            groups.setdefault(key, []).append(optimizer)
            requests.setdefault(key, []).append(wanted)

        preloaded: List[Any] = []
        swept = 0
        requested = 0
        # Every preload must be cleared even when a later group's sweep
        # or the obs counters raise (RL010), so the whole span from the
        # first preload_lattice to dispatch sits under one finally.
        try:
            for key, members in groups.items():
                unique: Dict[Any, None] = {}
                for wanted in requests[key]:
                    requested += len(wanted)
                    for counters in wanted:
                        unique.setdefault(counters)
                try:
                    batches = members[0].sweep_many(list(unique))
                except Exception:
                    continue  # every member falls back to its lazy sweep
                swept += len(unique)
                mapping = dict(zip(unique, batches))
                for optimizer in members:
                    optimizer.preload_lattice(mapping)
                    preloaded.append(optimizer)

            if self.obs.enabled:
                registry = self.obs.registry
                registry.counter(
                    "repro_runtime_batched_steps_total",
                    "step_batch calls processed",
                ).inc()
                registry.counter(
                    "repro_runtime_batched_launches_total",
                    "Launches processed through step_batch",
                ).inc(len(events))
                registry.counter(
                    "repro_runtime_batched_sweeps_total",
                    "Distinct whole-lattice sweeps computed for batches",
                ).inc(swept)
                registry.counter(
                    "repro_runtime_batched_dedup_hits_total",
                    "Prefetched sweep requests served by another "
                    "session's sweep",
                ).inc(requested - swept)

            return [self.dispatch(event) for event in events]
        finally:
            for optimizer in preloaded:
                optimizer.clear_preload()

    # ----- power budget ----------------------------------------------------------

    def set_power_budget(self, watts: Optional[float]) -> None:
        """Update the node power budget live (fleet epoch entry point).

        Applies to every hosted session *and* to sessions added later;
        ``None`` removes the budget constraint.  Takes effect at each
        session's next launch — in-flight launches are not revisited,
        matching how a real power controller applies a new cap at the
        next scheduling quantum.
        """
        if watts is not None and watts <= 0:
            raise ValueError("power_budget_w must be positive")
        self.power_budget_w = watts
        for session in self._sessions.values():
            session.power_budget_w = watts

    def utilization(self) -> Dict[str, float]:
        """Aggregate power/throughput demand signal for the allocator.

        Average power is total energy over total busy time (kernel +
        overhead); throughput is instructions over kernel time.  Both
        are 0.0 before any launch has been processed.
        """
        total = self.aggregate_stats()
        busy_s = total.kernel_time_s + total.overhead_time_s
        return {
            "power_w": total.energy_j / busy_s if busy_s > 0 else 0.0,
            "throughput_ips": (
                total.instructions / total.kernel_time_s
                if total.kernel_time_s > 0
                else 0.0
            ),
            "energy_j": total.energy_j,
            "busy_time_s": busy_s,
            "sessions": float(len(self._sessions)),
            "launches": float(total.launches),
        }

    def stats(self) -> Dict[str, SessionStats]:
        """Per-session statistics keyed by session id."""
        return {sid: s.stats for sid, s in sorted(self._sessions.items())}

    def aggregate_stats(self) -> SessionStats:
        """All sessions' statistics merged into one, with provenance.

        The merged object's ``sources`` counts the sessions folded in,
        so fleet-level reports can state how many sessions they cover.
        """
        total = SessionStats(sources=0)
        for _, session in sorted(self._sessions.items()):
            total.merge(session.stats)
        return total

    def publish_stats(self) -> None:
        """Publish per-session and aggregate stats to the registry."""
        registry = self.obs.registry
        for sid, session in sorted(self._sessions.items()):
            publish_session_stats(registry, session.stats, session=sid)
        if self._sessions:
            publish_session_stats(
                registry, self.aggregate_stats(), session="_aggregate"
            )

    # ----- persistence -----------------------------------------------------------

    def _require_store(self) -> Any:
        if self.store is None:
            raise RuntimeError("no SessionStore attached to this manager")
        return self.store

    def persist(self, session_id: str) -> str:
        """Snapshot one session into the attached store.

        Returns:
            The store key the snapshot was written under.
        """
        return self._require_store().save(
            session_id, self.session(session_id).snapshot()
        )

    def persist_all(self) -> Dict[str, str]:
        """Snapshot every registered session; returns id -> store key."""
        return {sid: self.persist(sid) for sid in self.session_ids()}

    def resume(self, session_id: str, policy: PowerPolicy, *,
               app_name: str = "") -> SessionRuntime:
        """Rebuild a persisted session from the attached store.

        ``policy`` must be constructed with the same arguments as the
        persisted one; its mutable state is restored from the snapshot.

        Raises:
            KeyError: If the store has no snapshot for the id.
        """
        payload = self._require_store().load(session_id)
        if payload is None:
            raise KeyError(f"no persisted snapshot for session {session_id!r}")
        session = self.add_session(session_id, policy, app_name=app_name)
        try:
            session.restore(payload)
        except Exception:
            del self._sessions[session_id]
            raise
        return session
