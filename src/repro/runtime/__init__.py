"""The streaming runtime layer: sessions, typed events, policy hosting.

``repro.runtime`` sits between the policy layer (:mod:`repro.core`,
:mod:`repro.sim.policy`) and the drivers that feed it work (the offline
:class:`~repro.sim.simulator.Simulator`, the CLI's streaming mode, the
experiment engine).  It owns the online control loop the paper's
framework runs at every kernel-launch boundary:

* :mod:`~repro.runtime.events` — the typed event protocol: a session
  consumes :class:`KernelLaunch` events and emits
  :class:`LaunchOutcome` events.
* :mod:`~repro.runtime.lifecycle` — the formal policy lifecycle state
  machine (``PROFILING -> FROZEN -> MPC``).
* :mod:`~repro.runtime.session` — :class:`SessionRuntime`, the
  fault-isolating host that executes the decide / throttle /
  charge-overhead / observe sequence for one application session, and
  snapshots/restores policy state for migration.
* :mod:`~repro.runtime.manager` — :class:`SessionManager`, which hosts
  many concurrent sessions keyed by application/session id and routes
  an interleaved event stream between them.

The layer is driver-agnostic by construction: the same policy object
produces identical decisions whether it is driven by offline replay
(``Simulator.run``), a streaming iterator (``SessionRuntime.run_stream``),
or interleaved with other applications (``SessionManager.run_stream``).
"""

from repro.runtime.events import KernelLaunch, LaunchOutcome, launch_events
from repro.runtime.lifecycle import LifecycleError, PolicyLifecycle, PolicyState
from repro.runtime.manager import SessionManager
from repro.runtime.session import (
    SessionRuntime,
    SessionStats,
    invocation_pair,
    throttle_to_tdp,
)

__all__ = [
    "KernelLaunch",
    "LaunchOutcome",
    "launch_events",
    "LifecycleError",
    "PolicyLifecycle",
    "PolicyState",
    "SessionManager",
    "SessionRuntime",
    "SessionStats",
    "invocation_pair",
    "throttle_to_tdp",
]
