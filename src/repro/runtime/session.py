"""The session runtime: a fault-isolating host for one policy.

:class:`SessionRuntime` owns the online control loop the paper's
framework runs at every kernel-launch boundary — the sequence that used
to be hard-wired inside ``Simulator.run``:

1. **decide** — ask the policy for a configuration (fault-isolated:
   a predictor/optimizer exception degrades to the fail-safe
   configuration instead of killing the session),
2. **throttle** — optionally clamp the choice into the TDP the way the
   part's power controller would,
3. **charge overhead** — convert the decision's model evaluations into
   host-CPU time and energy,
4. **execute + observe** — run the kernel on the ground-truth APU model
   and feed the resulting telemetry back to the policy.

The loop is driver-agnostic: :meth:`run` replays an application offline
(what :class:`~repro.sim.simulator.Simulator` now delegates to),
:meth:`run_stream` consumes a :class:`~repro.runtime.events.KernelLaunch`
iterator, and :class:`~repro.runtime.manager.SessionManager` interleaves
many sessions.  All three produce numerically identical traces.

Sessions are migratable: :meth:`snapshot` captures the policy's mutable
state (and the session's position) as a JSON-able dict, and
:meth:`restore` rebuilds it on a freshly constructed session, so a
session can move across engine workers or persist in the experiment
engine's content-addressed cache.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.hardware.apu import APUModel
from repro.hardware.config import (
    FAILSAFE_CONFIG,
    ConfigSpace,
    HardwareConfig,
    Knob,
)
from repro.hardware.dvfs import GPU_DPM_STATES
from repro.obs import Instrumentation, or_noop
from repro.runtime.events import KernelLaunch, LaunchOutcome, launch_events
from repro.sim.policy import Decision, Observation, PowerPolicy
from repro.sim.simulator import MANAGER_CONFIG, OverheadModel
from repro.sim.trace import LaunchRecord, RunResult
from repro.workloads.app import Application
from repro.workloads.counters import CounterSynthesizer
from repro.workloads.kernel import KernelSpec

__all__ = [
    "RECENT_ERRORS_LIMIT",
    "SESSION_SNAPSHOT_SCHEMA",
    "SessionRuntime",
    "SessionStats",
    "invocation_pair",
    "throttle_to_cap",
    "throttle_to_tdp",
]

#: Bump when the session snapshot layout changes.
SESSION_SNAPSHOT_SCHEMA = 1

#: How many isolated-fault exception reprs a session retains.
RECENT_ERRORS_LIMIT = 8

#: The throttling hardware sees every DPM state, not just the
#: software-searched subset.  Built once at module load instead of per
#: launch (the seed rebuilt this ConfigSpace inside every throttle call).
_THROTTLE_SPACE = ConfigSpace(gpu_states=tuple(GPU_DPM_STATES))


def throttle_to_cap(apu: APUModel, spec: KernelSpec,
                    config: HardwareConfig, cap_w: float) -> HardwareConfig:
    """Clamp a configuration under a chip power cap the way the part would.

    Mirrors Turbo Core's shedding order: CPU P-states first, then the
    GPU DPM state.  Returns the first configuration along that path
    whose chip power fits under ``cap_w``; if none fits, the lowest one.
    With ``cap_w == apu.tdp_w`` this is exactly the TDP throttle the
    part's power controller applies; a *node power budget* (see
    ``repro.fleet``) enforces itself by passing a tighter cap through
    the same path.
    """
    current = config
    while apu.kernel_power(spec, current).total_w > cap_w:
        lowered = _THROTTLE_SPACE.step(current, Knob.CPU, -1)
        if lowered is None:
            lowered = _THROTTLE_SPACE.step(current, Knob.GPU, -1)
        if lowered is None:
            break
        current = lowered
    return current


def throttle_to_tdp(apu: APUModel, spec: KernelSpec,
                    config: HardwareConfig) -> HardwareConfig:
    """Clamp a configuration into the TDP (``throttle_to_cap`` at it)."""
    return throttle_to_cap(apu, spec, config, apu.tdp_w)


@dataclass
class SessionStats:
    """Structured per-session counters, updated on every launch.

    Attributes:
        runs: Application invocations started (``begin_run`` calls).
        launches: Kernel launches processed across all runs.
        model_evaluations: Predictor queries charged to the session.
        fail_safe_decisions: Launches the *policy itself* sent to the
            fail-safe configuration (no admissible configuration met
            the target).
        fail_safe_fallbacks: Launches where the policy *raised* and the
            runtime degraded to the fail-safe configuration.
        observe_failures: Telemetry deliveries the policy raised on
            (swallowed; the launch record is unaffected).
        instructions: Total instructions executed across all launches
            (``instructions / kernel_time_s`` is the session's
            aggregate throughput, the signal the fleet's budget
            allocator weighs demand by).
        kernel_time_s: Total kernel execution time.
        overhead_time_s: Total optimizer overhead time charged.
        energy_j: Total chip energy including overheads.
        last_error: Formatted ``Type: message`` of the most recent
            isolated policy fault, if any.
        recent_errors: Ring buffer of the last ``recent_errors_limit``
            isolated-fault exception reprs, oldest first.
        sources: How many sessions' worth of data this object holds
            (grows under :meth:`merge`, so aggregates keep provenance).
        recent_errors_limit: Capacity of the error ring buffer
            (default :data:`RECENT_ERRORS_LIMIT`; configurable per
            session through :class:`SessionRuntime`).
    """

    runs: int = 0
    launches: int = 0
    model_evaluations: int = 0
    fail_safe_decisions: int = 0
    fail_safe_fallbacks: int = 0
    observe_failures: int = 0
    instructions: float = 0.0
    kernel_time_s: float = 0.0
    overhead_time_s: float = 0.0
    energy_j: float = 0.0
    last_error: Optional[str] = None
    recent_errors: List[str] = field(default_factory=list)
    sources: int = 1
    recent_errors_limit: int = RECENT_ERRORS_LIMIT

    def record_error(self, exc: BaseException) -> None:
        """Retain an isolated policy fault (formatted + ring buffer)."""
        self.last_error = f"{type(exc).__name__}: {exc}"
        self.recent_errors.append(repr(exc))
        if len(self.recent_errors) > self.recent_errors_limit:
            del self.recent_errors[: len(self.recent_errors) - self.recent_errors_limit]

    def merge(self, other: "SessionStats") -> None:
        """Accumulate another session's stats (e.g. across workers).

        Counters and totals add; ``sources`` adds so the merged object
        reports how many sessions contributed; the error ring keeps the
        newest ``recent_errors_limit`` (this object's) entries across
        both.
        """
        self.runs += other.runs
        self.launches += other.launches
        self.model_evaluations += other.model_evaluations
        self.fail_safe_decisions += other.fail_safe_decisions
        self.fail_safe_fallbacks += other.fail_safe_fallbacks
        self.observe_failures += other.observe_failures
        self.instructions += other.instructions
        self.kernel_time_s += other.kernel_time_s
        self.overhead_time_s += other.overhead_time_s
        self.energy_j += other.energy_j
        if other.last_error is not None:
            self.last_error = other.last_error
        self.recent_errors = (
            self.recent_errors + other.recent_errors
        )[-self.recent_errors_limit:]
        self.sources += other.sources

    def as_dict(self) -> Dict[str, Any]:
        """JSON-able form (used by session snapshots)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SessionStats":
        """Rebuild from :meth:`as_dict` output.

        Tolerates payloads from before the provenance fields existed
        (``recent_errors`` / ``sources`` default), so schema-1 session
        snapshots keep loading.
        """
        return cls(**payload)

    def format(self) -> str:
        """One-line summary for reports and the CLI's streaming mode."""
        line = (
            f"{self.runs} run(s), {self.launches} launches, "
            f"{self.model_evaluations} model evals; "
            f"fail-safe {self.fail_safe_decisions} by policy / "
            f"{self.fail_safe_fallbacks} by fault degradation, "
            f"{self.observe_failures} observe faults; "
            f"{self.kernel_time_s * 1e3:.1f} ms kernels + "
            f"{self.overhead_time_s * 1e3:.2f} ms overhead, "
            f"{self.energy_j:.2f} J"
        )
        if self.sources > 1:
            line += f" [merged from {self.sources} session(s)]"
        if self.recent_errors:
            newest_first = "; ".join(reversed(self.recent_errors))
            line += (
                f"; recent faults (last {self.recent_errors_limit}): "
                f"{newest_first}"
            )
        return line


class SessionRuntime:
    """Hosts one policy against a stream of kernel-launch events.

    Args:
        policy: The power-management policy to host.  Its state
            persists across runs of the session, modelling repeated
            application invocations under one resident framework.
        apu: Ground-truth hardware model.
        counters: Synthesizer producing each launch's Table-III
            counters for the policy.
        overhead: Model converting decisions into optimizer overhead.
        manager_config: Hardware configuration the optimizer runs at.
        cpu_phase_s: CPU-phase duration that can hide optimizer time
            from the wall clock (Section VI-E); energy is still charged.
        enforce_tdp: Throttle over-TDP configurations before executing.
        power_budget_w: Optional node power budget (watts).  When set,
            configurations are throttled under
            ``min(budget, TDP if enforce_tdp)`` through the same
            shedding path as the TDP — this is how a fleet node's
            apportioned budget (``repro.fleet``) reaches every hosted
            policy.  ``None`` (the default) leaves behaviour exactly
            as before: TDP-only when ``enforce_tdp``, unconstrained
            otherwise.  Host property, not migratable session state:
            a restored session takes the *new* host's budget.
        isolate_faults: When set (the streaming default), a policy
            exception inside ``decide`` degrades the launch to the
            fail-safe configuration and increments
            ``stats.fail_safe_fallbacks`` instead of propagating; an
            exception inside ``observe`` is swallowed and counted.
            ``Simulator`` hosts with this off to preserve the offline
            harness's fail-fast semantics.
        fail_safe: Configuration applied when a decision faults.
        session_id: Routing key of this session in a manager.
        app_name: Default application name for streamed runs (offline
            replay takes it from the application itself).
        charge_overhead: Default overhead charging for streamed runs.
        obs: Observability hooks (``repro.obs``).  Defaults to the
            shared no-op instrumentation; when live, the runtime emits
            one ``launch`` span per processed event (stamped with the
            session's *simulated* time, never the wall clock) plus
            lifecycle/fault metrics, and feeds each finished launch
            span to ``obs.health`` (the model-health monitor, when
            installed).  Share the same object with the hosted policy
            so its decision annotations land on the same spans.
        recent_errors_limit: Capacity of the isolated-fault ring buffer
            retained in ``stats.recent_errors``.
    """

    def __init__(
        self,
        policy: PowerPolicy,
        apu: Optional[APUModel] = None,
        counters: Optional[CounterSynthesizer] = None,
        overhead: Optional[OverheadModel] = None,
        manager_config: HardwareConfig = MANAGER_CONFIG,
        cpu_phase_s: float = 0.0,
        enforce_tdp: bool = False,
        isolate_faults: bool = True,
        fail_safe: HardwareConfig = FAILSAFE_CONFIG,
        session_id: str = "",
        app_name: str = "",
        charge_overhead: bool = True,
        obs: Optional[Instrumentation] = None,
        recent_errors_limit: int = RECENT_ERRORS_LIMIT,
        power_budget_w: Optional[float] = None,
    ) -> None:
        if cpu_phase_s < 0:
            raise ValueError("cpu_phase_s must be non-negative")
        if recent_errors_limit < 1:
            raise ValueError("recent_errors_limit must be >= 1")
        if power_budget_w is not None and power_budget_w <= 0:
            raise ValueError("power_budget_w must be positive")
        self.obs = or_noop(obs)
        self.policy = policy
        self.apu = apu if apu is not None else APUModel()
        self.counters = counters if counters is not None else CounterSynthesizer()
        self.overhead = overhead if overhead is not None else OverheadModel()
        self.manager_config = manager_config
        self.cpu_phase_s = cpu_phase_s
        self.enforce_tdp = enforce_tdp
        self.power_budget_w = power_budget_w
        self.isolate_faults = isolate_faults
        self.fail_safe = fail_safe
        self.session_id = session_id
        self.app_name = app_name
        self.charge_overhead = charge_overhead
        self.stats = SessionStats(recent_errors_limit=recent_errors_limit)
        self._result: Optional[RunResult] = None
        # Pre-bound series handles for the per-launch telemetry (the
        # session/policy labels never change after construction); the
        # rare paths — faults, TDP throttles, fail-safe causes — keep
        # the plain labelled API.  No-ops under NOOP obs.
        registry = self.obs.registry
        self._m_runs = registry.counter(
            "repro_runtime_runs_total", "Application invocations started"
        ).labelled(session=session_id, policy=policy.name)
        self._m_launches = registry.counter(
            "repro_runtime_launches_total", "Kernel launches processed"
        ).labelled(session=session_id, policy=policy.name)
        self._m_kernel_seconds = registry.histogram(
            "repro_runtime_kernel_seconds", "Per-launch kernel execution time"
        ).labelled(session=session_id)
        self._m_overhead_seconds = registry.histogram(
            "repro_runtime_overhead_seconds",
            "Per-launch optimizer overhead time",
        ).labelled(session=session_id)
        self._m_lock = registry.lock

    # ----- run lifecycle --------------------------------------------------------

    @property
    def result(self) -> Optional[RunResult]:
        """Trace of the current (or just-finished) run, if any."""
        return self._result

    def begin_run(self, app_name: Optional[str] = None) -> None:
        """Start a new application invocation.

        Resets the policy's per-run cursors and opens a fresh trace;
        knowledge the policy carries *across* runs (pattern store,
        frozen profile) is preserved, exactly as under offline replay.
        """
        if app_name is not None:
            self.app_name = app_name
        self.policy.begin_run()
        self.stats.runs += 1
        self._m_runs.inc()
        self._result = RunResult(
            app_name=self.app_name, policy_name=self.policy.name
        )

    def _next_index(self) -> Optional[int]:
        if self._result is None:
            return None
        return self._result.base_index + len(self._result.launches)

    @property
    def effective_cap_w(self) -> Optional[float]:
        """The power cap launches are throttled under, if any.

        The tighter of the part's TDP (when ``enforce_tdp``) and the
        node budget (when set); ``None`` when neither constraint is
        active.
        """
        caps = []
        if self.enforce_tdp:
            caps.append(self.apu.tdp_w)
        if self.power_budget_w is not None:
            caps.append(self.power_budget_w)
        if not caps:
            return None
        return min(caps)

    @property
    def sim_time_s(self) -> float:
        """The session's simulated clock: kernel time plus overhead.

        Used to timestamp trace spans so traces are deterministic
        functions of the workload, independent of host speed.
        """
        return self.stats.kernel_time_s + self.stats.overhead_time_s

    # ----- the control loop ------------------------------------------------------

    def prefetch_counters(self, event: KernelLaunch):
        """Counter vectors the policy expects to sweep for ``event``.

        The batched dispatch path (``SessionManager.step_batch``) calls
        this before :meth:`process` to stack many sessions' predictor
        sweeps into one call.  Events that start a new run (or arrive
        out of order) predict nothing: ``process`` will change policy
        state (``begin_run``) before deciding, so any guess made now
        could be wrong — the decision then simply uses its own lazy
        sweep.  Side-effect free.
        """
        expected = self._next_index()
        if expected is None or (event.index == 0 and expected > 0):
            return ()
        if event.index != expected:
            return ()
        return tuple(self.policy.prefetch_counters(event.index))

    def process(self, event: KernelLaunch, *,
                charge_overhead: Optional[bool] = None) -> LaunchOutcome:
        """Execute one kernel-launch event end to end.

        An ``index == 0`` event starts a new run automatically (after
        at least one launch has been processed), so multi-invocation
        streams need no explicit ``begin_run`` calls.  Out-of-order
        events are rejected before the policy is consulted.

        Returns:
            The typed outcome; its record is also appended to
            :attr:`result`.
        """
        expected = self._next_index()
        if expected is None or (event.index == 0 and expected > 0):
            self.begin_run()
            expected = 0
        if event.index != expected:
            raise ValueError(
                f"out-of-order launch event: got index {event.index}, "
                f"expected {expected}"
            )
        charge = self.charge_overhead if charge_overhead is None else charge_overhead

        tracer = self.obs.tracer
        registry = self.obs.registry
        assert self._result is not None
        span = tracer.start_span(
            "launch",
            at=self.sim_time_s,
            session=self.session_id,
            app=self._result.app_name,
            policy=self._result.policy_name,
            index=event.index,
            kernel=event.spec.key,
        )

        # 1. decide (fault-isolated).
        fallback = False
        try:
            decision = self.policy.decide(event.index)
        except Exception as exc:
            if not self.isolate_faults:
                tracer.end_span(span, at=self.sim_time_s)
                raise
            self.stats.fail_safe_fallbacks += 1
            self.stats.record_error(exc)
            span.annotate("error", repr(exc))
            registry.counter(
                "repro_runtime_faults_total",
                "Isolated policy faults, by failing phase",
            ).inc(session=self.session_id, phase="decide")
            decision = Decision(config=self.fail_safe, fail_safe=True)
            fallback = True

        # 2. throttle under the active power cap (TDP and/or node
        # budget), as the part's power controller would.
        cap_w = self.effective_cap_w
        if cap_w is not None:
            throttled = throttle_to_cap(self.apu, event.spec,
                                        decision.config, cap_w)
            if throttled != decision.config:
                decision = replace(decision, config=throttled)
                span.annotate("tdp_throttled", True)
                registry.counter(
                    "repro_runtime_tdp_throttles_total",
                    "Launches whose configuration was throttled into the "
                    "active power cap (TDP or node budget)",
                ).inc(session=self.session_id)

        # 3. charge the decision's optimizer overhead.
        overhead_time = 0.0
        overhead_gpu_j = 0.0
        overhead_cpu_j = 0.0
        if charge:
            compute_time = self.overhead.decision_time_s(decision)
            overhead_time = max(0.0, compute_time - self.cpu_phase_s)
            if compute_time > 0.0:
                # Energy is charged for the full optimizer runtime even
                # when a CPU phase hides it from the wall clock.
                manager = self.apu.manager_measurement(
                    compute_time, self.manager_config
                )
                overhead_gpu_j = manager.gpu_energy_j
                overhead_cpu_j = manager.cpu_energy_j

        # 4. execute on the ground truth and feed telemetry back.
        measurement = self.apu.execute(event.spec, decision.config)
        counters = self.counters.observe(event.spec, sequence=event.index)
        try:
            self.policy.observe(
                Observation(
                    index=event.index,
                    config=decision.config,
                    counters=counters,
                    measurement=measurement,
                    instructions=event.spec.instructions,
                )
            )
        except Exception as exc:
            if not self.isolate_faults:
                tracer.end_span(span, at=self.sim_time_s)
                raise
            self.stats.observe_failures += 1
            self.stats.record_error(exc)
            span.annotate("error", repr(exc))
            registry.counter(
                "repro_runtime_faults_total",
                "Isolated policy faults, by failing phase",
            ).inc(session=self.session_id, phase="observe")

        record = LaunchRecord(
            index=event.index,
            kernel_key=event.spec.key,
            config=decision.config,
            time_s=measurement.time_s,
            gpu_energy_j=measurement.gpu_energy_j,
            cpu_energy_j=measurement.cpu_energy_j,
            instructions=event.spec.instructions,
            overhead_time_s=overhead_time,
            overhead_gpu_energy_j=overhead_gpu_j,
            overhead_cpu_energy_j=overhead_cpu_j,
            horizon=decision.horizon,
            fail_safe=decision.fail_safe,
        )
        assert self._result is not None
        self._result.append(record)

        self.stats.launches += 1
        self.stats.model_evaluations += decision.model_evaluations
        if decision.fail_safe and not fallback:
            self.stats.fail_safe_decisions += 1
        self.stats.instructions += record.instructions
        self.stats.kernel_time_s += record.time_s
        self.stats.overhead_time_s += overhead_time
        self.stats.energy_j += record.energy_j + record.overhead_energy_j

        if tracer.enabled:
            # Direct writes into the span's attribute dict: eleven
            # ``span.annotate`` calls per launch are pure call overhead
            # on the hot path.  The null span shares one class-level
            # dict, so the disabled path must not reach these stores.
            attrs = span.attributes
            attrs["config"] = str(decision.config)
            attrs["horizon"] = decision.horizon
            attrs["model_evaluations"] = decision.model_evaluations
            attrs["fail_safe"] = decision.fail_safe
            attrs["fallback"] = fallback
            attrs["time_s"] = record.time_s
            attrs["observed_ips"] = record.instructions / record.time_s
            attrs["observed_power_w"] = record.energy_j / record.time_s
            attrs["energy_j"] = record.energy_j
            attrs["overhead_time_s"] = overhead_time
            attrs["overhead_energy_j"] = record.overhead_energy_j
        # The health monitor (a no-op unless installed) reads the
        # predicted-vs-observed pairs off the finished span to update
        # error ledgers and drift detectors; handing it the attribute
        # dict directly skips re-parsing the payload envelope.
        tracer.end_span(span, at=self.sim_time_s)
        self.obs.health.observe_launch(span.attributes, at=self.sim_time_s)

        if registry.enabled:
            if decision.fail_safe:
                # Rare path; stays on the labelled API (and outside the
                # bulk lock hold below — the registry lock is not
                # reentrant).
                registry.counter(
                    "repro_runtime_fail_safe_total",
                    "Fail-safe launches, by cause (policy decision vs fault "
                    "degradation)",
                ).inc(
                    session=self.session_id,
                    cause="fault" if fallback else "policy",
                )
            with self._m_lock:
                self._m_launches.inc_unlocked()
                self._m_kernel_seconds.observe_unlocked(record.time_s)
                if overhead_time > 0.0:
                    self._m_overhead_seconds.observe_unlocked(overhead_time)

        return LaunchOutcome(
            session_id=self.session_id,
            app_name=self._result.app_name,
            policy_name=self._result.policy_name,
            record=record,
            fallback=fallback,
        )

    # ----- drivers ---------------------------------------------------------------

    def run(self, app: Application, *,
            charge_overhead: Optional[bool] = None) -> RunResult:
        """Offline replay: one full invocation of ``app``."""
        self.begin_run(app.name)
        for event in launch_events(app, self.session_id):
            self.process(event, charge_overhead=charge_overhead)
        assert self._result is not None
        return self._result

    def run_stream(self, events: Iterable[KernelLaunch], *,
                   charge_overhead: Optional[bool] = None) -> Iterator[LaunchOutcome]:
        """Consume a launch-event stream, yielding outcomes as they happen."""
        for event in events:
            yield self.process(event, charge_overhead=charge_overhead)

    # ----- migration -------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """The session's migratable state as a JSON-able dict.

        Captures the policy's mutable state (via
        :meth:`~repro.sim.policy.PowerPolicy.snapshot`), the session
        counters, and the position within the current run.  The trace
        of an in-flight run is *not* captured: a resumed session's
        :attr:`result` covers post-resume launches only (with their
        original indices).
        """
        next_index = self._next_index()
        return {
            "schema": SESSION_SNAPSHOT_SCHEMA,
            "session_id": self.session_id,
            "app_name": self._result.app_name if self._result else self.app_name,
            "charge_overhead": self.charge_overhead,
            "policy": {
                "name": self.policy.name,
                "state": self.policy.snapshot(),
            },
            "stats": self.stats.as_dict(),
            "next_index": next_index,
        }

    def restore(self, payload: Dict[str, Any]) -> None:
        """Rebuild a snapshotted session on this freshly built host.

        The hosted policy must have been constructed with the same
        arguments as the snapshotted one; only mutable state migrates.
        """
        if payload.get("schema") != SESSION_SNAPSHOT_SCHEMA:
            raise ValueError(
                f"unsupported session snapshot schema: {payload.get('schema')!r}"
            )
        if payload["policy"]["name"] != self.policy.name:
            raise ValueError(
                f"snapshot is for policy {payload['policy']['name']!r}, "
                f"host runs {self.policy.name!r}"
            )
        self.session_id = payload["session_id"]
        self.app_name = payload["app_name"]
        self.charge_overhead = payload["charge_overhead"]
        self.policy.restore(payload["policy"]["state"])
        self.stats = SessionStats.from_dict(payload["stats"])
        next_index = payload["next_index"]
        if next_index is None:
            self._result = None
        else:
            # Resume mid-run: the trace continues at the snapshotted
            # position; pre-snapshot records live with the old host.
            self._result = RunResult(
                app_name=self.app_name,
                policy_name=self.policy.name,
                base_index=next_index,
            )


def invocation_pair(session: SessionRuntime, app: Application, *,
                    charge_overhead: Optional[bool] = None) -> Tuple[RunResult, RunResult]:
    """Profiling invocation followed by the steady-state invocation.

    The canonical two-run MPC protocol (profile, then optimize) used by
    the CLI and the experiment variants.

    Returns:
        ``(first, steady)`` run traces.
    """
    first = session.run(app, charge_overhead=charge_overhead)
    steady = session.run(app, charge_overhead=charge_overhead)
    return first, steady
