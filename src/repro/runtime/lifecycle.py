"""The formal policy lifecycle state machine.

The paper's manager has three phases (Section IV): on an application's
first invocation it *profiles* (running PPK while the pattern extractor
records the execution order), at the end of that invocation the profile
is *frozen* into a search order and horizon statistics, and every later
invocation runs true *MPC*.  The seed implementation encoded this as
``self._stats is None`` branching; the runtime makes it an explicit,
validated state machine so sessions can be inspected, serialized, and
migrated:

    PROFILING ──freeze──▶ FROZEN ──first MPC decision──▶ MPC

Transitions are one-way: a policy never returns to profiling (the
paper's framework keeps its pattern store for the process lifetime).
Restoring a snapshot rebuilds the machine directly in the snapshotted
state.
"""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet

__all__ = ["LifecycleError", "PolicyState", "PolicyLifecycle"]


class LifecycleError(RuntimeError):
    """An operation was attempted in an incompatible lifecycle state."""


class PolicyState(enum.Enum):
    """Lifecycle phase of a profile-then-optimize policy."""

    #: First invocation: run PPK while the execution pattern is recorded.
    PROFILING = "profiling"
    #: Profile frozen into search order + horizon statistics; the next
    #: decision will be the first true MPC decision.
    FROZEN = "frozen"
    #: Steady state: receding-horizon MPC against the frozen profile.
    MPC = "mpc"


#: Legal transitions; anything else raises :class:`LifecycleError`.
_ALLOWED: Dict[PolicyState, FrozenSet[PolicyState]] = {
    PolicyState.PROFILING: frozenset({PolicyState.FROZEN}),
    PolicyState.FROZEN: frozenset({PolicyState.MPC}),
    PolicyState.MPC: frozenset(),
}


class PolicyLifecycle:
    """A validated ``PROFILING -> FROZEN -> MPC`` state machine.

    Args:
        initial: Starting state; new policies begin in ``PROFILING``,
            restored snapshots may start anywhere.
    """

    def __init__(self, initial: PolicyState = PolicyState.PROFILING) -> None:
        self._state = initial

    @property
    def state(self) -> PolicyState:
        """The current lifecycle state."""
        return self._state

    def transition(self, target: PolicyState) -> None:
        """Advance to ``target``; raises on an illegal transition."""
        if target not in _ALLOWED[self._state]:
            raise LifecycleError(
                f"illegal lifecycle transition {self._state.value!r} -> "
                f"{target.value!r}"
            )
        self._state = target

    def expect(self, *states: PolicyState) -> None:
        """Assert the machine is in one of ``states``."""
        if self._state not in states:
            wanted = ", ".join(s.value for s in states)
            raise LifecycleError(
                f"operation requires lifecycle state in ({wanted}); "
                f"currently {self._state.value!r}"
            )

    def __repr__(self) -> str:
        return f"PolicyLifecycle({self._state.value!r})"
