"""The typed event protocol of the streaming runtime.

A session consumes :class:`KernelLaunch` events — one per kernel-launch
boundary, exactly where the paper's manager makes its decision — and
emits one :class:`LaunchOutcome` per processed launch.  Events are
immutable and carry a ``session_id`` routing key so streams from many
concurrent applications can be interleaved through one
:class:`~repro.runtime.manager.SessionManager`.

``index`` is the zero-based launch position within the *current*
application invocation; an event with ``index == 0`` marks the start of
a new invocation (sessions reset their per-run cursors on it, the same
way :meth:`~repro.sim.policy.PowerPolicy.begin_run` does under offline
replay).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from repro.workloads.kernel import KernelSpec

if TYPE_CHECKING:  # imported lazily to keep this module a leaf
    from repro.sim.trace import LaunchRecord
    from repro.workloads.app import Application

__all__ = ["KernelLaunch", "LaunchOutcome", "launch_events"]


@dataclass(frozen=True)
class KernelLaunch:
    """One kernel-launch boundary: the moment a policy must decide.

    Attributes:
        index: Zero-based launch position within the current
            application invocation.  ``0`` starts a new invocation.
        spec: Ground-truth kernel about to launch.  The *runtime* uses
            it to execute on the APU model and synthesize counters;
            policies never see it (they only receive post-launch
            :class:`~repro.sim.policy.Observation` telemetry).
        session_id: Routing key naming the session (application
            instance) this launch belongs to.
    """

    index: int
    spec: KernelSpec
    session_id: str = ""

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError("launch index must be non-negative")


@dataclass(frozen=True)
class LaunchOutcome:
    """What the runtime measured and charged for one processed launch.

    Attributes:
        session_id: Session the launch belonged to.
        app_name: Application name of the session's current run.
        policy_name: Policy that managed the launch.
        record: The full per-launch trace record (configuration, time,
            energies, overheads, horizon, fail-safe flag).
        fallback: ``True`` when the decision did not come from the
            policy at all but from the runtime's fault degradation (the
            policy raised and the fail-safe configuration was applied).
    """

    session_id: str
    app_name: str
    policy_name: str
    record: "LaunchRecord"
    fallback: bool = False

    @property
    def index(self) -> int:
        """Launch index of the underlying record."""
        return self.record.index


def launch_events(app: "Application", session_id: str = "") -> Iterator[KernelLaunch]:
    """The launch-event stream of one application invocation.

    Args:
        app: Application whose kernels are launched, in order.
        session_id: Routing key stamped on every event.

    Yields:
        One :class:`KernelLaunch` per kernel, in execution order.
    """
    for index, spec in enumerate(app.kernels):
        yield KernelLaunch(index=index, spec=spec, session_id=session_id)
