"""``repro.fleet`` — fleet-scale simulation under hierarchical budgets.

The paper manages one APU with per-kernel MPC; this package opens the
fleet axis the ROADMAP's north star asks for: many simulated nodes
(each a :class:`~repro.runtime.manager.SessionManager` hosting a slice
of the session population), sharded across engine worker processes,
under a datacenter-level power cap that a :class:`BudgetAllocator`
apportions into per-node budgets — re-negotiated on a fixed epoch as
load shifts (shares-per-watt with a min-floor and headroom-reclaim,
after the serverless power-budgeting models in SNIPPETS.md).  Each
node's budget reaches every hosted policy through the runtime's
existing throttle path (``throttle_to_cap``), exactly as the TDP does.

Determinism is the contract (see ``docs/FLEET.md``): same seed + same
shard count ⇒ identical per-session decisions, and a fleet of one
node with no cap reproduces the streaming ``SessionManager`` decisions
float-for-float (asserted by ``tests/fleet/``).
"""

from repro.fleet.budget import BudgetAllocator, NodeDemand
from repro.fleet.node import FleetNode
from repro.fleet.shard import InlineShard, ProcessShard, ShardError
from repro.fleet.sim import EpochRecord, FleetReport, FleetSimulator

__all__ = [
    "BudgetAllocator",
    "EpochRecord",
    "FleetNode",
    "FleetReport",
    "FleetSimulator",
    "InlineShard",
    "NodeDemand",
    "ProcessShard",
    "ShardError",
]
