"""The hierarchical power-budget allocator.

One global datacenter cap, apportioned into per-node budgets every
epoch from the nodes' measured demand.  The policy follows the
shares-per-watt shape of the serverless power-budgeting models
(SNIPPETS.md snippet 1) and the floor/reclaim mechanics of classic
node power-policy managers (snippet 2):

* **min-floor** — every node is guaranteed a floor (so an idle node
  can still run its manager and ramp back up), feasibility-clamped to
  ``cap / n`` so the floors alone can never oversubscribe the cap;
* **headroom** — a node's request is its measured draw grown by a
  headroom fraction, so rising load finds watts already granted
  instead of throttling for a full epoch;
* **headroom-reclaim** — watts the requests leave unused are reclaimed
  and redistributed to the busy nodes in proportion to their demand
  (idle nodes keep only their floor's worth of slack);
* **shares-per-watt scaling** — when requests oversubscribe the cap,
  everyone keeps the floor and the remaining watts are divided in
  proportion to each node's above-floor request.

Conservation is the invariant the fleet's safety rests on: the sum of
apportioned budgets never exceeds the cap.  It is asserted inside
:meth:`BudgetAllocator.apportion` itself (the RL013 lint rule checks
the assertion is present) and re-checked per epoch by the fleet tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Sequence

__all__ = ["BudgetAllocator", "NodeDemand"]

#: Default per-node guaranteed floor, in watts.
DEFAULT_MIN_FLOOR_W = 10.0

#: Default headroom fraction granted above measured demand.
DEFAULT_HEADROOM_FRAC = 0.25


@dataclass(frozen=True)
class NodeDemand:
    """One node's demand signal for an epoch re-negotiation.

    Attributes:
        node_id: The reporting node.
        power_w: Average power drawn over the epoch (0.0 when idle).
        throughput_ips: Aggregate instructions/s over the epoch.
        sessions: Active sessions hosted on the node.
        launches: Launches processed during the epoch.
    """

    node_id: str
    power_w: float = 0.0
    throughput_ips: float = 0.0
    sessions: int = 0
    launches: int = 0


class BudgetAllocator:
    """Apportions a global power cap into per-node budgets.

    Args:
        cap_w: The global cap, in watts (must be positive).
        min_floor_w: Guaranteed per-node floor; clamped to ``cap / n``
            at apportion time so floors stay feasible at any fleet
            size.
        headroom_frac: Fraction of measured demand granted on top of
            it, so load growth finds watts already in place.
    """

    def __init__(
        self,
        cap_w: float,
        *,
        min_floor_w: float = DEFAULT_MIN_FLOOR_W,
        headroom_frac: float = DEFAULT_HEADROOM_FRAC,
    ) -> None:
        if cap_w <= 0:
            raise ValueError("cap_w must be positive")
        if min_floor_w <= 0:
            raise ValueError("min_floor_w must be positive")
        if headroom_frac < 0:
            raise ValueError("headroom_frac must be non-negative")
        self.cap_w = cap_w
        self.min_floor_w = min_floor_w
        self.headroom_frac = headroom_frac

    def apportion(self, demands: Sequence[NodeDemand]) -> Dict[str, float]:
        """One epoch's budgets, keyed by node id.

        Pure and deterministic: the same demand vector always produces
        the same budgets.  Every budget is at least the (feasible)
        floor and the budgets always conserve the cap.

        Raises:
            ValueError: On duplicate node ids.
        """
        if not demands:
            return {}
        ids = [d.node_id for d in demands]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate node ids in demand vector")
        n = len(demands)
        floor = min(self.min_floor_w, self.cap_w / n)
        requests = {
            d.node_id: max(d.power_w * (1.0 + self.headroom_frac), floor)
            for d in demands
        }
        requested = math.fsum(requests.values())

        if requested <= self.cap_w:
            # Under-subscribed: grant every request, then reclaim the
            # leftover headroom for the busy nodes, pro-rata by demand
            # (idle fleets split it evenly).
            leftover = self.cap_w - requested
            weight = math.fsum(d.power_w for d in demands)
            budgets = {}
            for d in demands:
                share = d.power_w / weight if weight > 0 else 1.0 / n
                budgets[d.node_id] = requests[d.node_id] + leftover * share
        else:
            # Over-subscribed: floors are sacred, the remaining watts
            # split in proportion to each node's above-floor request
            # (shares-per-watt).
            spare = self.cap_w - floor * n
            deficit = math.fsum(r - floor for r in requests.values())
            budgets = {
                node_id: floor + spare * ((request - floor) / deficit)
                for node_id, request in requests.items()
            }

        total = math.fsum(budgets.values())
        if total > self.cap_w:
            # Float rounding can land a hair above the cap; shave the
            # whole vector by one part in 1e12 (sub-microwatt at any
            # realistic cap) so conservation holds exactly.
            scale = (self.cap_w / total) * (1.0 - 1e-12)
            budgets = {node_id: b * scale for node_id, b in budgets.items()}
        assert math.fsum(budgets.values()) <= self.cap_w, (
            "budget conservation violated: apportioned more than the cap"
        )
        return budgets
