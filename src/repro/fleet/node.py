"""One simulated fleet node: a SessionManager slice of the population.

A :class:`FleetNode` owns its own ground-truth hardware models (one
APU per node, as in a real fleet) and a
:class:`~repro.runtime.manager.SessionManager` hosting the sessions
placed on it.  Because counter synthesis is a pure function of
``(seed, kernel, sequence)`` and a policy only ever sees its own
session's launches, a session's decisions are *placement-invariant*:
they are float-for-float the same on any node of any fleet — the
foundation of the fleet-of-one differential contract
(``tests/fleet/test_differential.py``).

The node's epoch interface is deliberately narrow and picklable
(events in, decisions out), so the same object serves both the
in-process transport and the engine worker-process shard protocol in
:mod:`repro.fleet.shard`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.hardware.apu import APUModel
from repro.obs import Instrumentation, make_instrumentation
from repro.runtime.events import KernelLaunch
from repro.runtime.manager import SessionManager, chunk_distinct_sessions
from repro.runtime.session import SessionStats
from repro.sim.simulator import OverheadModel
from repro.workloads.counters import CounterSynthesizer
from repro.workloads.kernel import KernelSpec
from repro.workloads.traces.format import RecordedDecision, SessionSpec
from repro.workloads.traces.replay import build_policy, outcome_decision

__all__ = ["FleetNode"]


class FleetNode:
    """Hosts one node's worth of sessions behind the epoch protocol.

    Args:
        node_id: The node's id within the fleet (e.g. ``node-0``).
        enforce_tdp: Whether hosted sessions throttle into the TDP
            (taken from the trace header by the simulator).
        use_matrix: Decision-core path for MPC/PPK sessions.
        batched: Feed each epoch's events through
            ``SessionManager.step_batch`` in maximal distinct-session
            chunks (the default); ``False`` dispatches one at a time.
            Decisions are identical either way (the step-batch
            differential contract).
        cache_dir: Random Forest cache directory for ``forest``
            predictor specs.
        obs: Node-local instrumentation.  Defaults to a live private
            registry/tracer pair whose contents ship to the parent at
            each epoch via :meth:`drain_obs` (the engine-worker merge
            idiom).
    """

    def __init__(
        self,
        node_id: str,
        *,
        enforce_tdp: bool = False,
        use_matrix: bool = True,
        batched: bool = True,
        cache_dir: str = ".cache",
        obs: Optional[Instrumentation] = None,
    ) -> None:
        self.node_id = node_id
        self.use_matrix = use_matrix
        self.batched = batched
        self.cache_dir = cache_dir
        self.obs = obs if obs is not None else make_instrumentation()
        self.apu = APUModel()
        self.counters = CounterSynthesizer()
        self.overhead = OverheadModel()
        self.manager = SessionManager(
            apu=self.apu,
            counters=self.counters,
            overhead=self.overhead,
            enforce_tdp=enforce_tdp,
            isolate_faults=True,
            obs=self.obs,
        )
        # Spec + kernels per hosted session, kept so a migrated-in
        # snapshot can rebuild an identically-constructed policy.
        self._specs: Dict[str, Tuple[SessionSpec, List[KernelSpec]]] = {}
        # Kernel specs by key per session: lets the step protocol ship
        # slim (index, session, kernel_key) launches instead of full
        # specs on every event (the specs crossed once at add_session).
        self._kernels: Dict[str, Dict[str, KernelSpec]] = {}
        # Demand deltas are epoch-windowed: remember the totals at the
        # end of the previous epoch.
        self._last = {"energy_j": 0.0, "busy_s": 0.0, "instructions": 0.0,
                      "kernel_s": 0.0, "launches": 0.0}

    # ----- session lifecycle ----------------------------------------------------

    def add_session(self, spec: SessionSpec,
                    kernels: Sequence[KernelSpec]) -> None:
        """Place a session on this node, building its policy."""
        kernels = list(kernels)
        policy = build_policy(
            spec.policy,
            kernels,
            apu=self.apu,
            overhead=self.overhead,
            obs=self.obs,
            use_matrix=self.use_matrix,
            cache_dir=self.cache_dir,
        )
        self.manager.add_session(
            spec.session_id,
            policy,
            app_name=spec.app_name,
            charge_overhead=spec.charge_overhead,
        )
        self._specs[spec.session_id] = (spec, kernels)
        self._kernels[spec.session_id] = {k.key: k for k in kernels}

    def remove_session(self, session_id: str) -> None:
        """Drop a session (after departure or migration out)."""
        self.manager.remove_session(session_id)
        del self._specs[session_id]
        del self._kernels[session_id]

    def session_ids(self) -> List[str]:
        """Hosted session ids, sorted."""
        return self.manager.session_ids()

    # ----- the epoch protocol ---------------------------------------------------

    def step(
        self, events: Sequence[Tuple[int, str, str]]
    ) -> List[Tuple[str, int, RecordedDecision]]:
        """Process one epoch's slice of the event stream, in order.

        Events arrive slim — ``(index, session_id, kernel_key)`` — and
        resolve against the specs registered at :meth:`add_session`, so
        the shard pipe never re-ships a ``KernelSpec`` per launch.

        Returns ``(session_id, index, decision)`` per event, in input
        order — the picklable form the parent folds into the fleet
        report and the differential tests compare float-for-float.
        """
        launches = [
            KernelLaunch(
                index=index,
                spec=self._kernels[session_id][kernel_key],
                session_id=session_id,
            )
            for index, session_id, kernel_key in events
        ]
        outcomes = []
        if self.batched:
            for chunk in chunk_distinct_sessions(
                launches, key=lambda l: l.session_id
            ):
                outcomes.extend(self.manager.step_batch(chunk))
        else:
            for launch in launches:
                outcomes.append(self.manager.dispatch(launch))
        return [
            (o.session_id, o.record.index, outcome_decision(o))
            for o in outcomes
        ]

    def set_budget(self, watts: Optional[float]) -> None:
        """Apply this epoch's apportioned budget to every session.

        The fleet simulator publishes the budget gauge parent-side
        (after the epoch's registry merge), so the node itself only
        updates the throttle cap.
        """
        self.manager.set_power_budget(watts)

    def demand(self) -> Dict[str, Any]:
        """Epoch-windowed demand signal (deltas since the last call).

        Returns the :class:`~repro.fleet.budget.NodeDemand` fields as a
        plain dict (picklable across the shard boundary).
        """
        total = self.manager.aggregate_stats()
        busy_s = total.kernel_time_s + total.overhead_time_s
        d_energy = total.energy_j - self._last["energy_j"]
        d_busy = busy_s - self._last["busy_s"]
        d_instructions = total.instructions - self._last["instructions"]
        d_kernel = total.kernel_time_s - self._last["kernel_s"]
        d_launches = total.launches - self._last["launches"]
        self._last = {
            "energy_j": total.energy_j,
            "busy_s": busy_s,
            "instructions": total.instructions,
            "kernel_s": total.kernel_time_s,
            "launches": total.launches,
        }
        return {
            "node_id": self.node_id,
            "power_w": d_energy / d_busy if d_busy > 0 else 0.0,
            "throughput_ips": d_instructions / d_kernel if d_kernel > 0 else 0.0,
            "sessions": len(self.manager),
            "launches": int(d_launches),
        }

    def stats(self) -> Dict[str, SessionStats]:
        """Per-session statistics of every hosted session."""
        return self.manager.stats()

    def drain_obs(self) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
        """This epoch's registry snapshot and finished spans.

        The registry is snapshot-and-reset so parent-side merges never
        double-count across epochs; spans drain in emission order.
        """
        snapshot = self.obs.registry.snapshot_and_reset()
        spans = self.obs.tracer.drain()
        return snapshot, spans

    # ----- migration ------------------------------------------------------------

    def snapshot_session(self, session_id: str) -> Dict[str, Any]:
        """A session's migratable state, plus what rebuilds its policy."""
        spec, kernels = self._specs[session_id]
        return {
            "spec": spec.as_dict(),
            "kernels": [k for k in kernels],
            "session": self.manager.session(session_id).snapshot(),
        }

    def restore_session(self, payload: Dict[str, Any]) -> None:
        """Rebuild a migrated-in session from :meth:`snapshot_session`."""
        spec = SessionSpec.from_dict(payload["spec"])
        self.add_session(spec, payload["kernels"])
        try:
            self.manager.session(spec.session_id).restore(payload["session"])
        except Exception:
            self.remove_session(spec.session_id)
            raise
