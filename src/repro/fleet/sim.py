"""The fleet simulator: epochs, placement, and the budget hierarchy.

:class:`FleetSimulator` drives a multi-session kernel-launch trace
through N simulated nodes.  The event walk is the arrival schedule:
sessions are placed on the least-loaded node the first time they
launch, their events buffer per node, and every ``epoch_launches``
dispatched events the fleet flushes an **epoch**:

1. each node processes its buffered slice (``step_batch`` chunks),
2. each node reports epoch-windowed demand (power, throughput),
3. the :class:`~repro.fleet.budget.BudgetAllocator` re-apportions the
   global cap and the new per-node budgets are pushed down (becoming
   the throttle cap every hosted policy sees),
4. node metrics registries and spans merge parent-side, one ``epoch``
   span is emitted, and queued sessions are placed into freed
   capacity.

With ``cap_w=None`` no budgets are ever pushed, so a fleet of one
node reproduces the streaming ``SessionManager`` decisions
float-for-float (the differential contract, ``tests/fleet/``); with a
cap, conservation — sum of node budgets never above the cap — is
asserted by the allocator at every epoch and recorded per epoch in
the report for the safety tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.fleet.budget import (
    DEFAULT_HEADROOM_FRAC,
    DEFAULT_MIN_FLOOR_W,
    BudgetAllocator,
    NodeDemand,
)
from repro.fleet.shard import InlineShard, ProcessShard
from repro.obs import Instrumentation, make_instrumentation
from repro.runtime.session import SessionStats
from repro.workloads.traces.format import RecordedDecision, Trace, TraceEvent

__all__ = ["EpochRecord", "FleetReport", "FleetSimulator", "TRANSPORTS"]

#: Shard transports the simulator can drive.
TRANSPORTS = ("inline", "process")


@dataclass(frozen=True)
class EpochRecord:
    """One epoch re-negotiation, as recorded in the fleet report.

    ``budgets`` is empty when the fleet runs uncapped; when capped,
    ``sum(budgets.values()) <= cap_w`` at every epoch (the budget
    safety invariant the tests re-check).
    """

    epoch: int
    launches: int
    cap_w: Optional[float]
    demands: Tuple[NodeDemand, ...]
    budgets: Dict[str, float]


@dataclass
class FleetReport:
    """Everything one fleet run produced.

    Attributes:
        decisions: Per-session decision sequences, in each session's
            launch order (the objects the differential tests compare
            float-for-float against streaming replay).
        stats: Per-session statistics, keyed by session id.
        placement: Final session → node-id map (queued-then-placed and
            migrated sessions show their last host).
        epochs: One :class:`EpochRecord` per epoch, in order.
        queued: Sessions that waited in the admission queue.
        shed: Sessions dropped because queue and fleet were full.
        registry: The fleet-level metrics registry (node registries
            merged in every epoch).
        spans: All spans: node launch spans plus the parent's ``epoch``
            spans, in emission order.
    """

    nodes: int
    decisions: Dict[str, List[RecordedDecision]] = field(default_factory=dict)
    stats: Dict[str, SessionStats] = field(default_factory=dict)
    placement: Dict[str, str] = field(default_factory=dict)
    epochs: List[EpochRecord] = field(default_factory=list)
    queued: int = 0
    shed: int = 0
    registry: Any = None
    spans: List[Dict[str, Any]] = field(default_factory=list)

    def aggregate_stats(self) -> SessionStats:
        """Every session's statistics merged, with provenance."""
        total = SessionStats(sources=0)
        for _, stats in sorted(self.stats.items()):
            total.merge(stats)
        return total

    def launches(self) -> int:
        """Total launches processed across the fleet."""
        return sum(len(seq) for seq in self.decisions.values())


class FleetSimulator:
    """Shards a trace's sessions across N nodes under one power cap.

    Args:
        trace: The multi-session trace to drive (validated up front).
        nodes: Fleet size.
        cap_w: Global power cap; ``None`` runs uncapped (no budgets
            are ever pushed — the fleet-of-one differential mode).
        epoch_launches: Dispatched launches per budget epoch.
        transport: ``"inline"`` (in-process nodes) or ``"process"``
            (one long-lived worker process per node).
        max_sessions_per_node: Admission limit; arrivals beyond it
            queue, and queue overflow beyond ``max_queued`` sheds.
        max_queued: Admission-queue capacity (``None`` = unbounded).
        rebalance: Migrate one session from the most- to the
            least-loaded node at each epoch boundary when they differ
            by two or more (snapshot/restore migration; decisions are
            placement-invariant, so rebalancing never changes them).
        min_floor_w / headroom_frac: Allocator policy knobs.
        use_matrix: Decision-core path for MPC/PPK sessions.
        batched: Step nodes through ``step_batch`` chunks (default) or
            one event at a time.
        cache_dir: Random Forest cache directory.
    """

    def __init__(
        self,
        trace: Trace,
        *,
        nodes: int = 1,
        cap_w: Optional[float] = None,
        epoch_launches: int = 32,
        transport: str = "inline",
        max_sessions_per_node: Optional[int] = None,
        max_queued: Optional[int] = None,
        rebalance: bool = False,
        min_floor_w: float = DEFAULT_MIN_FLOOR_W,
        headroom_frac: float = DEFAULT_HEADROOM_FRAC,
        use_matrix: bool = True,
        batched: bool = True,
        cache_dir: str = ".cache",
    ) -> None:
        if nodes < 1:
            raise ValueError("nodes must be at least 1")
        if epoch_launches < 1:
            raise ValueError("epoch_launches must be at least 1")
        if transport not in TRANSPORTS:
            raise ValueError(
                f"unknown transport {transport!r}; known: {TRANSPORTS}"
            )
        if max_sessions_per_node is not None and max_sessions_per_node < 1:
            raise ValueError("max_sessions_per_node must be at least 1")
        self.trace = trace.ensure_valid()
        self.nodes = nodes
        self.cap_w = cap_w
        self.epoch_launches = epoch_launches
        self.transport = transport
        self.max_sessions_per_node = max_sessions_per_node
        self.max_queued = max_queued
        self.rebalance = rebalance
        self.use_matrix = use_matrix
        self.batched = batched
        self.cache_dir = cache_dir
        self.allocator = (
            BudgetAllocator(
                cap_w, min_floor_w=min_floor_w, headroom_frac=headroom_frac
            )
            if cap_w is not None
            else None
        )
        self.obs: Instrumentation = make_instrumentation()

    # ----- shard construction ---------------------------------------------------

    def _build_shards(self, stack: Any) -> List[Any]:
        node_kwargs = {
            "enforce_tdp": self.trace.header.enforce_tdp,
            "use_matrix": self.use_matrix,
            "batched": self.batched,
            "cache_dir": self.cache_dir,
        }
        shards: List[Any] = []
        if self.transport == "inline":
            for i in range(self.nodes):
                shard = InlineShard(f"node-{i}", **node_kwargs)
                stack.callback(shard.close)
                shards.append(shard)
            return shards
        # Process transport: export the hardware feature block once so
        # N workers adopt one shared copy instead of building N (the
        # engine-lane shm idiom; best-effort, workers fall back).
        shared_table = None
        try:
            from repro.engine.shm import export_block
            from repro.hardware.config import ConfigSpace
            from repro.hardware.table import ConfigTable, lattice_feature_key

            space = ConfigSpace()
            export = export_block(ConfigTable(space).feature_block)
            # Register the unlink before anything else can raise
            # (RL010); ExitStack runs it after the shards have closed.
            stack.callback(export.close)
            shared_table = {
                "key": lattice_feature_key(space),
                "handle": export.handle,
            }
        except Exception:
            shared_table = None
        for i in range(self.nodes):
            shard = ProcessShard(
                f"node-{i}", shared_table=shared_table, **node_kwargs
            )
            stack.callback(shard.close)
            shards.append(shard)
        return shards

    # ----- the run --------------------------------------------------------------

    def run(self) -> FleetReport:
        """Drive the whole trace; returns the fleet report."""
        import contextlib

        report = FleetReport(nodes=self.nodes, registry=self.obs.registry)
        registry = self.obs.registry
        tracer = self.obs.tracer

        remaining = {
            sid: len(self.trace.events_for(sid))
            for sid in self.trace.session_ids()
        }
        placement: Dict[str, int] = {}
        active: List[set] = [set() for _ in range(self.nodes)]
        departed: set = set()
        shed: set = set()
        queued: Dict[str, List[TraceEvent]] = {}
        queued_order: List[str] = []

        with contextlib.ExitStack() as stack:
            shards = self._build_shards(stack)
            pending_new: List[List[Tuple[Any, Any]]] = [[] for _ in shards]
            buffers: List[List[TraceEvent]] = [[] for _ in shards]
            epoch = 0

            def capacity_node() -> Optional[int]:
                """Least-loaded node with admission capacity, or None."""
                best: Optional[int] = None
                for i in range(self.nodes):
                    load = len(active[i])
                    if (
                        self.max_sessions_per_node is not None
                        and load >= self.max_sessions_per_node
                    ):
                        continue
                    if best is None or load < len(active[best]):
                        best = i
                return best

            def place(sid: str, node: int) -> None:
                placement[sid] = node
                active[node].add(sid)
                report.placement[sid] = shards[node].node_id
                pending_new[node].append(
                    (self.trace.session(sid), self.trace.unique_kernels(sid))
                )

            def flush() -> int:
                """Run one epoch; returns events pre-buffered for the next."""
                nonlocal epoch
                launches = sum(len(b) for b in buffers)
                if launches == 0 and not any(pending_new):
                    return 0
                for i, shard in enumerate(shards):
                    for spec, kernels in pending_new[i]:
                        shard.post("add_session", spec, kernels)
                    if buffers[i]:
                        # Slim launches: specs already crossed with
                        # add_session, only keys ride the pipe per event.
                        shard.post(
                            "step",
                            [
                                (e.index, e.session, e.spec.key)
                                for e in buffers[i]
                            ],
                        )
                for i, shard in enumerate(shards):
                    results = shard.collect()
                    if buffers[i]:
                        for sid, _index, decision in results[-1]:
                            report.decisions.setdefault(sid, []).append(decision)
                for i, buffer in enumerate(buffers):
                    for event in buffer:
                        remaining[event.session] -= 1
                    for sid in {e.session for e in buffer}:
                        if remaining[sid] == 0:
                            departed.add(sid)
                            active[i].discard(sid)
                    pending_new[i] = []
                    buffers[i] = []

                # Demand collection + parent-side registry/span merge.
                for shard in shards:
                    shard.post("demand")
                    shard.post("drain_obs")
                demands: List[NodeDemand] = []
                for shard in shards:
                    demand_payload, (snapshot, spans) = shard.collect()
                    demands.append(NodeDemand(**demand_payload))
                    registry.merge(snapshot)
                    for span in spans:
                        tracer.emit(span)

                # Budget re-negotiation under the global cap.
                budgets: Dict[str, float] = {}
                if self.allocator is not None:
                    budgets = self.allocator.apportion(demands)
                    for shard in shards:
                        shard.post("set_budget", budgets[shard.node_id])
                    for shard in shards:
                        shard.collect()
                    for node_id, watts in budgets.items():
                        registry.gauge(
                            "repro_fleet_node_budget_watts",
                            "Per-node power budget apportioned at the "
                            "last epoch",
                        ).set(watts, node=node_id)

                registry.counter(
                    "repro_fleet_epochs_total", "Fleet budget epochs completed"
                ).inc()
                span = tracer.start_span(
                    "epoch",
                    at=float(epoch),
                    epoch=epoch,
                    nodes=self.nodes,
                    launches=launches,
                    sessions=len(placement) - len(departed),
                )
                if self.cap_w is not None:
                    span.annotate("cap_w", self.cap_w)
                    span.annotate(
                        "budget_total_w", sum(budgets.values())
                    )
                tracer.end_span(span, at=float(epoch + 1))
                report.epochs.append(
                    EpochRecord(
                        epoch=epoch,
                        launches=launches,
                        cap_w=self.cap_w,
                        demands=tuple(demands),
                        budgets=budgets,
                    )
                )
                epoch += 1

                # Admit queued sessions into freed capacity; their
                # buffered events open the next epoch.
                prefill = 0
                while queued_order:
                    node = capacity_node()
                    if node is None:
                        break
                    sid = queued_order.pop(0)
                    place(sid, node)
                    backlog = queued.pop(sid)
                    buffers[node].extend(backlog)
                    prefill += len(backlog)

                if self.rebalance and self.nodes > 1:
                    self._rebalance_once(shards, placement, active, report)
                return prefill

            epoch_fill = 0
            for event in self.trace.events:
                sid = event.session
                if sid in shed:
                    continue
                if sid in queued:
                    queued[sid].append(event)
                    continue
                if sid not in placement:
                    node = capacity_node()
                    if node is None:
                        if (
                            self.max_queued is not None
                            and len(queued_order) >= self.max_queued
                        ):
                            shed.add(sid)
                            report.shed += 1
                            registry.counter(
                                "repro_fleet_sessions_shed_total",
                                "Sessions dropped: fleet and queue full",
                            ).inc()
                        else:
                            queued[sid] = [event]
                            queued_order.append(sid)
                            report.queued += 1
                            registry.counter(
                                "repro_fleet_sessions_queued_total",
                                "Sessions admitted through the wait queue",
                            ).inc()
                        continue
                    place(sid, node)
                buffers[placement[sid]].append(event)
                epoch_fill += 1
                if epoch_fill >= self.epoch_launches:
                    epoch_fill = flush()

            # Tail flushes: the partial last epoch, then any queued
            # backlog admitted into capacity it freed.
            while any(buffers) or any(pending_new):
                flush()

            # Final stats sweep.
            for shard in shards:
                shard.post("stats")
            for shard in shards:
                (stats,) = shard.collect()
                report.stats.update(stats)

        report.spans = tracer.drain()
        return report

    def _rebalance_once(
        self,
        shards: List[Any],
        placement: Dict[str, int],
        active: List[set],
        report: FleetReport,
    ) -> None:
        """Migrate one session from the most- to the least-loaded node.

        Uses the runtime's snapshot/restore: the session's policy state
        moves byte-for-byte, and because decisions are
        placement-invariant the migrated session's remaining decisions
        are unchanged (asserted by ``tests/fleet/test_migration.py``).
        """
        loads = [len(a) for a in active]
        src = max(range(len(shards)), key=lambda i: loads[i])
        dst = min(range(len(shards)), key=lambda i: loads[i])
        if loads[src] - loads[dst] < 2:
            return
        sid = sorted(active[src])[0]
        shards[src].post("snapshot_session", sid)
        (payload,) = shards[src].collect()
        shards[dst].post("restore_session", payload)
        shards[dst].collect()
        shards[src].post("remove_session", sid)
        shards[src].collect()
        active[src].discard(sid)
        active[dst].add(sid)
        placement[sid] = dst
        report.placement[sid] = shards[dst].node_id
        self.obs.registry.counter(
            "repro_fleet_migrations_total",
            "Sessions migrated between nodes by the rebalancer",
        ).inc()
