"""Shard transports: how the fleet reaches its nodes.

Two interchangeable transports drive :class:`~repro.fleet.node.FleetNode`
behind one post/collect protocol:

* :class:`InlineShard` executes node methods in-process — the
  reference semantics, and what the determinism tests compare the
  process transport against;
* :class:`ProcessShard` runs the node on a long-lived worker process
  (one per node, as the engine lane runs request workers), speaking a
  ``(command, args)`` / ``("ok" | "err", payload)`` pipe protocol.
  Worker failures re-raise parent-side as :class:`ShardError` with the
  original remote traceback, mirroring ``EngineWorkerError``.

The protocol is split into :meth:`post` and :meth:`collect` so the
parent can post one epoch's work to *every* node before collecting any
result — the fan-out that buys wall-clock parallelism without threads
(and therefore without new lock discipline for RL009/RL012 to check).

Workers adopt the parent's exported shared-memory hardware feature
block best-effort at startup (the PR 7 idiom), so N nodes do not build
N copies of the config-lattice features.
"""

from __future__ import annotations

import multiprocessing
import pickle
from typing import Any, List, Optional, Tuple

from repro.fleet.node import FleetNode

__all__ = ["InlineShard", "ProcessShard", "ShardError"]


class ShardError(RuntimeError):
    """A shard worker failed; carries the original remote traceback."""

    def __init__(self, node_id: str, command: str, remote_traceback: str) -> None:
        self.node_id = node_id
        self.command = command
        self.remote_traceback = remote_traceback
        super().__init__(
            f"shard {node_id!r} failed executing {command!r}\n"
            f"--- original worker traceback ---\n{remote_traceback}"
        )


class InlineShard:
    """The in-process transport: a FleetNode called directly.

    Results are computed eagerly at :meth:`post` time (the parent *is*
    the node), buffered, and handed back by :meth:`collect` in post
    order — the same observable protocol as :class:`ProcessShard`.
    """

    def __init__(self, node_id: str, **node_kwargs: Any) -> None:
        self.node_id = node_id
        node_kwargs.pop("shared_table", None)  # in-process: nothing to attach
        self.node = FleetNode(node_id, **node_kwargs)
        self._results: List[Any] = []

    def post(self, command: str, *args: Any) -> None:
        """Queue one node-method call."""
        self._results.append(getattr(self.node, command)(*args))

    def collect(self) -> List[Any]:
        """Results of every posted call since the last collect, in order."""
        results, self._results = self._results, []
        return results

    def close(self) -> None:
        """Release the shard (no-op in-process)."""


# repro-lint: shm-attach
def _shard_worker(conn: Any, config_bytes: bytes) -> None:
    """Long-lived worker loop: build the node, serve commands until EOF.

    Never raises across the process boundary: failures travel back as
    ``("err", traceback_text)`` and the loop keeps serving, so one bad
    command cannot wedge the epoch protocol.
    """
    config = pickle.loads(config_bytes)
    shared_table = config.pop("shared_table", None)
    if shared_table is not None:
        # Best-effort zero-copy adoption of the parent's exported
        # feature block; any failure just builds locally.
        try:
            from repro.engine.shm import attach_block
            from repro.hardware.table import register_shared_feature_block

            register_shared_feature_block(
                shared_table["key"], attach_block(shared_table["handle"])
            )
        except Exception:
            pass
    node_id = config.pop("node_id")
    node = FleetNode(node_id, **config)
    while True:
        try:
            message = conn.recv()
        except EOFError:
            break
        if message is None:
            break
        command, args = message
        try:
            conn.send(("ok", getattr(node, command)(*args)))
        except BaseException:
            import traceback

            conn.send(("err", traceback.format_exc()))
    conn.close()


class ProcessShard:
    """The worker-process transport: one long-lived process per node.

    Args:
        node_id: The node's fleet id.
        shared_table: Optional ``{"key", "handle"}`` spec of the
            parent's exported shared-memory feature block.
        **node_kwargs: Forwarded to the worker-side ``FleetNode``
            (``obs`` is not forwardable — the worker always builds its
            own live instrumentation and ships it back via
            ``drain_obs``).
    """

    def __init__(self, node_id: str,
                 shared_table: Optional[dict] = None,
                 **node_kwargs: Any) -> None:
        if "obs" in node_kwargs:
            raise ValueError(
                "ProcessShard workers own their instrumentation; "
                "merge via drain_obs instead of passing obs"
            )
        self.node_id = node_id
        config = dict(node_kwargs)
        config["node_id"] = node_id
        config["shared_table"] = shared_table
        parent_conn, child_conn = multiprocessing.Pipe()
        self._conn = parent_conn
        self._pending: List[str] = []
        self._process = multiprocessing.Process(
            target=_shard_worker,
            args=(child_conn, pickle.dumps(config, pickle.HIGHEST_PROTOCOL)),
            daemon=True,
        )
        self._process.start()
        child_conn.close()

    def post(self, command: str, *args: Any) -> None:
        """Send one command; the worker executes commands in order."""
        self._conn.send((command, args))
        self._pending.append(command)

    def collect(self) -> List[Any]:
        """Block for every posted command's result, in post order."""
        results = []
        while self._pending:
            status, payload = self._conn.recv()
            command = self._pending.pop(0)
            if status != "ok":
                raise ShardError(self.node_id, command, payload)
            results.append(payload)
        return results

    def close(self) -> None:
        """Shut the worker down and reap it."""
        try:
            self._conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        self._conn.close()
        self._process.join(timeout=10.0)
        if self._process.is_alive():
            self._process.terminate()
            self._process.join(timeout=5.0)
