"""Figure 11: amortization of the initial profiling losses.

MPC needs one profiling invocation (run as PPK) before it can exploit
the extracted pattern; Figure 11 shows MPC's savings over PPK when the
application is re-executed 1, 10, and 100 times after that initial
execution, plus the steady state (no initial losses at all).

Because every post-profiling invocation is statistically identical, the
k-re-execution aggregate is computed from the measured first and
steady-state invocations:

    total(k) = first + k * steady        (MPC)
    total(k) = (k + 1) * ppk             (PPK)

Shape targets: non-negligible gains after a single re-execution, most
of the steady-state gain recovered by ten.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.experiments.common import ExperimentContext, ExperimentTable
from repro.sim.metrics import geomean, mean

__all__ = ["RE_EXECUTIONS", "fig11", "amortized_deltas"]

#: Re-execution counts shown in the paper's Figure 11.
RE_EXECUTIONS = (1, 10, 100)


def amortized_deltas(ctx: ExperimentContext, name: str,
                     re_executions: int) -> Dict[str, float]:
    """MPC-vs-PPK energy savings and speedup after k re-executions.

    Args:
        ctx: The shared experiment context.
        name: Benchmark name.
        re_executions: Number of invocations after the initial one; 0
            means the initial (profiling) invocation alone.

    Returns:
        ``{"energy_savings_pct": ..., "speedup": ...}``.
    """
    if re_executions < 0:
        raise ValueError("re_executions must be non-negative")
    first = ctx.mpc_first(name)
    steady = ctx.mpc(name)
    ppk = ctx.ppk(name)

    k = re_executions
    mpc_energy = first.energy_j + k * steady.energy_j
    mpc_time = first.total_time_s + k * steady.total_time_s
    ppk_energy = (k + 1) * ppk.energy_j
    ppk_time = (k + 1) * ppk.total_time_s
    return {
        "energy_savings_pct": 100.0 * (1.0 - mpc_energy / ppk_energy),
        "speedup": ppk_time / mpc_time,
    }


def steady_state_deltas(ctx: ExperimentContext, name: str) -> Dict[str, float]:
    """The ideal no-initial-loss case (steady-state invocation only)."""
    steady = ctx.mpc(name)
    ppk = ctx.ppk(name)
    return {
        "energy_savings_pct": 100.0 * (1.0 - steady.energy_j / ppk.energy_j),
        "speedup": ppk.total_time_s / steady.total_time_s,
    }


def fig11(ctx: ExperimentContext) -> ExperimentTable:
    """Reproduce Figure 11: MPC vs PPK over repeated executions."""
    table = ExperimentTable(
        experiment_id="Figure 11",
        title="MPC energy savings / speedup vs PPK after re-executing "
        "each benchmark the given number of times",
        headers=["Benchmark"]
        + [f"E% (x{k})" for k in RE_EXECUTIONS]
        + ["E% (steady)"]
        + [f"Speedup (x{k})" for k in RE_EXECUTIONS]
        + ["Speedup (steady)"],
    )
    for name in ctx.benchmark_names:
        savings = []
        speeds = []
        for k in RE_EXECUTIONS:
            deltas = amortized_deltas(ctx, name, k)
            savings.append(round(deltas["energy_savings_pct"], 2))
            speeds.append(round(deltas["speedup"], 3))
        steady = steady_state_deltas(ctx, name)
        table.add_row(
            name,
            *savings,
            round(steady["energy_savings_pct"], 2),
            *speeds,
            round(steady["speedup"], 3),
        )
    return table


def fig11_summary(ctx: ExperimentContext) -> Dict[int, Dict[str, float]]:
    """Across-benchmark aggregates per re-execution count."""
    out: Dict[int, Dict[str, float]] = {}
    for k in RE_EXECUTIONS:
        deltas = [amortized_deltas(ctx, n, k) for n in ctx.benchmark_names]
        out[k] = {
            "energy_savings_pct": mean(d["energy_savings_pct"] for d in deltas),
            "speedup": geomean(d["speedup"] for d in deltas),
        }
    return out
