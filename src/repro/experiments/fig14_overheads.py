"""Figure 14: MPC's own energy and performance overheads.

The worst-case accounting of the paper: kernels arrive back-to-back, so
every optimizer invocation delays the application and burns CPU energy
(plus GPU idle leakage).  Reported relative to the Turbo Core run.
Shape targets: sub-1% performance overhead and a fraction of a percent
of energy, with the short-kernel benchmark (Spmv) the worst.
"""

from __future__ import annotations

from typing import Dict

from repro.experiments.common import ExperimentContext, ExperimentTable
from repro.sim.metrics import mean

__all__ = ["fig14", "fig14_summary"]


def fig14(ctx: ExperimentContext) -> ExperimentTable:
    """Reproduce Figure 14: MPC overheads relative to Turbo Core."""
    table = ExperimentTable(
        experiment_id="Figure 14",
        title="MPC energy and performance overheads vs Turbo Core "
        "(adaptive horizon, alpha = 0.05)",
        headers=[
            "Benchmark",
            "Energy overhead (%)",
            "Performance overhead (%)",
        ],
    )
    for name in ctx.benchmark_names:
        turbo = ctx.turbo(name)
        mpc = ctx.mpc(name)
        table.add_row(
            name,
            round(100.0 * mpc.overhead_energy_j / turbo.energy_j, 3),
            round(100.0 * mpc.overhead_time_s / turbo.total_time_s, 3),
        )
    return table


def fig14_summary(ctx: ExperimentContext) -> Dict[str, float]:
    """Mean and maximum overheads across the benchmarks."""
    energy = []
    perf = []
    for name in ctx.benchmark_names:
        turbo = ctx.turbo(name)
        mpc = ctx.mpc(name)
        energy.append(100.0 * mpc.overhead_energy_j / turbo.energy_j)
        perf.append(100.0 * mpc.overhead_time_s / turbo.total_time_s)
    return {
        "mean_energy_overhead_pct": mean(energy),
        "max_energy_overhead_pct": max(energy),
        "mean_perf_overhead_pct": mean(perf),
        "max_perf_overhead_pct": max(perf),
    }
