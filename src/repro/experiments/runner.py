"""Run every reproduced table and figure and print/collect the results.

``python -m repro.experiments.runner`` regenerates all of the paper's
tables and figures in one pass (sharing one context, so each policy run
happens once) and prints them in order.  With ``--jobs N`` the full
app x policy simulation matrix is prefetched through the
:class:`~repro.engine.core.ExperimentEngine` on ``N`` worker processes;
results are content-hash cached on disk, so a rerun is nearly free::

    python -m repro.experiments.runner --jobs 4
    python -m repro.experiments.runner fig8 fig9 --no-cache
"""

from __future__ import annotations

import argparse
import logging
import time
from typing import Callable, Dict, List, Optional, Sequence

from repro.experiments import (
    ablation_design,
    ablation_horizon,
    fig2_scaling,
    fig3_throughput,
    fig4_limit_study,
    fig7_search_order,
    fig8_mpc_vs_turbo,
    fig9_mpc_vs_ppk,
    fig10_gpu_energy,
    fig11_amortization,
    fig12_theoretical_limit,
    fig13_prediction_error,
    fig14_overheads,
    fig15_horizon,
    headline,
    tables,
)
from repro.experiments.common import ExperimentContext, ExperimentTable

__all__ = ["ALL_EXPERIMENTS", "run_all", "main"]

#: Progress/diagnostics go through logging (tables stay on stdout: they
#: are the program's output, not commentary about it).
logger = logging.getLogger("repro.experiments.runner")

#: Every experiment, in the paper's presentation order.
ALL_EXPERIMENTS: Dict[str, Callable[[ExperimentContext], ExperimentTable]] = {
    "table1": tables.table1,
    "table2": tables.table2,
    "fig2": fig2_scaling.fig2,
    "fig3": fig3_throughput.fig3,
    "fig4": fig4_limit_study.fig4,
    "table3": tables.table3,
    "table4": tables.table4,
    "fig7": fig7_search_order.fig7,
    "fig8": fig8_mpc_vs_turbo.fig8,
    "fig9": fig9_mpc_vs_ppk.fig9,
    "fig10": fig10_gpu_energy.fig10,
    "fig11": fig11_amortization.fig11,
    "fig12": fig12_theoretical_limit.fig12,
    "fig13": fig13_prediction_error.fig13,
    "fig14": fig14_overheads.fig14,
    "fig15": fig15_horizon.fig15,
    "headline": headline.headline_table,
    "ablation": ablation_horizon.ablation,
    "ablation_search_order": ablation_design.ablation_search_order,
    "ablation_window_reserve": ablation_design.ablation_window_reserve,
    "ablation_overhead_hiding": ablation_design.ablation_overhead_hiding,
}


def run_all(
    ctx: Optional[ExperimentContext] = None,
    only: Optional[Sequence[str]] = None,
    echo: bool = True,
) -> List[ExperimentTable]:
    """Run the selected experiments and return their tables.

    Args:
        ctx: Shared context; a fresh one is created when omitted.
        only: Experiment keys to run (defaults to all, in order).
        echo: Whether to print each table as it completes.

    Returns:
        The produced tables, in run order.
    """
    ctx = ctx if ctx is not None else ExperimentContext()
    keys = list(only) if only is not None else list(ALL_EXPERIMENTS)
    unknown = [key for key in keys if key not in ALL_EXPERIMENTS]
    if unknown:
        raise KeyError(
            f"unknown experiment {unknown[0]!r}; known: {', '.join(ALL_EXPERIMENTS)}"
        )
    if ctx.engine is not None:
        from repro.engine.matrix import requests_for

        requests = requests_for(keys, ctx)
        logger.info(
            "prefetching %d runs for %d experiments (jobs=%d)",
            len(requests), len(keys), ctx.engine.jobs,
        )
        ctx.engine.prefetch(ctx, requests)
    results: List[ExperimentTable] = []
    for key in keys:
        start = time.perf_counter()
        table = ALL_EXPERIMENTS[key](ctx)
        logger.info("%s done in %.2fs", key, time.perf_counter() - start)
        results.append(table)
        if echo:
            print(table.format())
            print()
    return results


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for the runner's command line."""
    parser = argparse.ArgumentParser(
        prog="repro.experiments.runner",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "keys", nargs="*", metavar="experiment",
        help="experiment keys to run (default: all, in paper order)",
    )
    parser.add_argument(
        "-j", "--jobs", type=int, default=1,
        help="worker processes for the simulation matrix (default: 1)",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="engine/model cache directory (default: .cache)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="neither read nor write the on-disk result cache",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="log engine cache/compute statistics at the end",
    )
    parser.add_argument(
        "--log-level", default="info",
        choices=("debug", "info", "warning", "error"),
        help="threshold for the repro.* logging hierarchy (default: info)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Command-line entry point; returns the process exit code."""
    from repro.engine import DEFAULT_CACHE_DIR, ExperimentEngine

    args = build_parser().parse_args(argv)
    logging.basicConfig(
        level=getattr(logging, args.log_level.upper()),
        format="%(levelname)s %(name)s: %(message)s",
    )
    cache_dir = args.cache_dir if args.cache_dir is not None else DEFAULT_CACHE_DIR
    engine = ExperimentEngine(
        jobs=args.jobs, cache_dir=cache_dir, use_cache=not args.no_cache
    )
    ctx = ExperimentContext(cache_dir=cache_dir, engine=engine)
    run_all(ctx, only=args.keys or None)
    if args.stats:
        logger.info("%s", engine.stats.format())
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
