"""Run every reproduced table and figure and print/collect the results.

``python -m repro.experiments.runner`` regenerates all of the paper's
tables and figures in one pass (sharing one context, so each policy run
happens once) and prints them in order.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.experiments import (
    ablation_design,
    ablation_horizon,
    fig2_scaling,
    fig3_throughput,
    fig4_limit_study,
    fig7_search_order,
    fig8_mpc_vs_turbo,
    fig9_mpc_vs_ppk,
    fig10_gpu_energy,
    fig11_amortization,
    fig12_theoretical_limit,
    fig13_prediction_error,
    fig14_overheads,
    fig15_horizon,
    headline,
    tables,
)
from repro.experiments.common import ExperimentContext, ExperimentTable

__all__ = ["ALL_EXPERIMENTS", "run_all"]

#: Every experiment, in the paper's presentation order.
ALL_EXPERIMENTS: Dict[str, Callable[[ExperimentContext], ExperimentTable]] = {
    "table1": tables.table1,
    "table2": tables.table2,
    "fig2": fig2_scaling.fig2,
    "fig3": fig3_throughput.fig3,
    "fig4": fig4_limit_study.fig4,
    "table3": tables.table3,
    "table4": tables.table4,
    "fig7": fig7_search_order.fig7,
    "fig8": fig8_mpc_vs_turbo.fig8,
    "fig9": fig9_mpc_vs_ppk.fig9,
    "fig10": fig10_gpu_energy.fig10,
    "fig11": fig11_amortization.fig11,
    "fig12": fig12_theoretical_limit.fig12,
    "fig13": fig13_prediction_error.fig13,
    "fig14": fig14_overheads.fig14,
    "fig15": fig15_horizon.fig15,
    "headline": headline.headline_table,
    "ablation": ablation_horizon.ablation,
    "ablation_search_order": ablation_design.ablation_search_order,
    "ablation_window_reserve": ablation_design.ablation_window_reserve,
    "ablation_overhead_hiding": ablation_design.ablation_overhead_hiding,
}


def run_all(
    ctx: Optional[ExperimentContext] = None,
    only: Optional[Sequence[str]] = None,
    echo: bool = True,
) -> List[ExperimentTable]:
    """Run the selected experiments and return their tables.

    Args:
        ctx: Shared context; a fresh one is created when omitted.
        only: Experiment keys to run (defaults to all, in order).
        echo: Whether to print each table as it completes.

    Returns:
        The produced tables, in run order.
    """
    ctx = ctx if ctx is not None else ExperimentContext()
    keys = list(only) if only is not None else list(ALL_EXPERIMENTS)
    results: List[ExperimentTable] = []
    for key in keys:
        try:
            experiment = ALL_EXPERIMENTS[key]
        except KeyError:
            raise KeyError(
                f"unknown experiment {key!r}; known: {', '.join(ALL_EXPERIMENTS)}"
            ) from None
        table = experiment(ctx)
        results.append(table)
        if echo:
            print(table.format())
            print()
    return results


if __name__ == "__main__":
    import sys

    run_all(only=sys.argv[1:] or None)
