"""Figure 3: kernel throughput phases of Spmv, kmeans, hybridsort.

Runs the three Table-II benchmarks under the Turbo Core baseline and
reports each launch's instruction throughput normalized to the
application's overall throughput.  Shape targets: Spmv steps from high
to low throughput; kmeans opens low then jumps high; hybridsort bounces
across kernels and across inputs of the same kernel.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentContext, ExperimentTable

__all__ = ["FIG3_BENCHMARKS", "fig3", "throughput_series"]

FIG3_BENCHMARKS = ("Spmv", "kmeans", "hybridsort")


def throughput_series(ctx: ExperimentContext, name: str) -> list:
    """Per-launch throughput normalized to the app's overall throughput."""
    run = ctx.turbo(name)
    overall = run.instructions / run.kernel_time_s
    return [record.throughput / overall for record in run.launches]


def fig3(ctx: ExperimentContext) -> ExperimentTable:
    """Reproduce Figure 3's normalized-throughput series."""
    table = ExperimentTable(
        experiment_id="Figure 3",
        title="Normalized kernel throughput over execution order "
        "(y normalized to each app's overall throughput)",
        headers=["Benchmark", "Launch", "Kernel", "Normalized throughput"],
    )
    for name in FIG3_BENCHMARKS:
        series = throughput_series(ctx, name)
        run = ctx.turbo(name)
        for record, value in zip(run.launches, series):
            table.add_row(name, record.index + 1, record.kernel_key, round(value, 3))
    return table
