"""Figure 2: kernel scaling behaviour across NB states and CU counts.

For one representative kernel of each scaling class, sweep the NB state
(NB3..NB0) and the CU count (2..8) at the fastest GPU DPM state, report
the speedup over the smallest configuration, and mark the
energy-optimal point of the full (NB x DPM x CU) sweep.

Shape targets from the paper:

* compute-bound speeds up ~4x with CUs and ignores the NB state; its
  energy optimum sits at a *low* NB state;
* memory-bound speeds up with the NB state but saturates from NB2
  (same DRAM bus as NB1/NB0) and with CUs once the bus is saturated;
* the "peak" kernel is fastest (and most efficient) below 8 CUs due to
  shared-cache interference;
* the unscalable kernel is flat everywhere and most efficient at the
  smallest configuration.
"""

from __future__ import annotations

from typing import Dict

from repro.experiments.common import ExperimentContext, ExperimentTable
from repro.hardware.config import HardwareConfig
from repro.workloads.kernel import KernelSpec, ScalingClass

__all__ = ["REPRESENTATIVE_KERNELS", "fig2"]

#: One representative kernel per scaling class (paper's exemplars:
#: MaxFlops, readGlobalMemoryCoalesced, writeCandidates, astar).
REPRESENTATIVE_KERNELS: Dict[str, KernelSpec] = {
    "compute (MaxFlops)": KernelSpec(
        "MaxFlops", ScalingClass.COMPUTE, 10.0, 0.02,
        parallel_fraction=0.995, compute_efficiency=0.9,
    ),
    "memory (readGlobalMemoryCoalesced)": KernelSpec(
        "readGlobalMemoryCoalesced", ScalingClass.MEMORY, 0.8, 1.5,
        parallel_fraction=0.9, compute_efficiency=0.7,
    ),
    "peak (writeCandidates)": KernelSpec(
        "writeCandidates", ScalingClass.PEAK, 4.0, 0.5,
        cache_interference=0.5, cache_sweet_spot_cu=4,
        parallel_fraction=0.95, compute_efficiency=0.75,
    ),
    "unscalable (astar)": KernelSpec(
        "astar", ScalingClass.UNSCALABLE, 0.3, 0.08, serial_time_s=0.03,
        parallel_fraction=0.7,
    ),
}

_NB_STATES = ("NB3", "NB2", "NB1", "NB0")
_CU_COUNTS = (2, 4, 6, 8)


def fig2(ctx: ExperimentContext) -> ExperimentTable:
    """Reproduce Figure 2's speedup grids and energy-optimal marks."""
    table = ExperimentTable(
        experiment_id="Figure 2",
        title="Kernel speedup vs NB state x CU count (GPU at DPM4), with "
        "the energy-optimal configuration of the full sweep",
        headers=["Kernel class", "NB state"]
        + [f"{cu} CUs" for cu in _CU_COUNTS]
        + ["Energy-optimal config"],
    )
    apu = ctx.apu
    for label, spec in REPRESENTATIVE_KERNELS.items():
        reference = apu.execute(
            spec, HardwareConfig(cpu="P5", nb="NB3", gpu="DPM4", cu=2)
        ).time_s

        optimal = min(
            (c for c in ctx.space if c.cpu == "P7"),
            key=lambda c: apu.kernel_energy(spec, c),
        )
        for nb in _NB_STATES:
            speedups = []
            for cu in _CU_COUNTS:
                config = HardwareConfig(cpu="P5", nb=nb, gpu="DPM4", cu=cu)
                speedups.append(reference / apu.execute(spec, config).time_s)
            table.add_row(
                label,
                nb,
                *[round(s, 3) for s in speedups],
                str(optimal),
            )
    return table
