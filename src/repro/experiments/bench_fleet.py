"""Microbenchmark: fleet decisions/sec across shard counts and caps.

``repro bench fleet`` drives one serverless arrival trace (the bench
variant of the ``serverless`` scenario family: shared kernels, no
per-session variety, so every node does identical work per launch)
through :class:`~repro.fleet.sim.FleetSimulator` over a grid of fleet
sizes and global caps:

* **nodes** — 1, 4, and 8 worker-process shards (1 and 4 in
  ``--quick`` mode).  The single-node entry *is* the batched streaming
  baseline: one ``SessionManager`` stepping ``step_batch`` chunks.
* **caps** — ``tight`` (60% of the fleet's aggregate TDP, so budget
  throttling engages every epoch) and ``loose`` (120%, so the
  allocator runs but never bites).

Results append to ``BENCH_fleet.json`` so fleet throughput is tracked
across changes to the shard protocol, and each entry records
``cpu_count``: the multi-node speedup is a property of the host's
parallelism, and a 1-CPU container legitimately reports ~1x where a
4-vCPU CI runner reports >2x.  The optional ``min_speedup`` bound is
therefore asserted by the CLI only when explicitly passed (the CI
fleet lane passes it; local smoke runs do not).

Wall-clock timing is deliberate and allowed here: this module lives in
``repro/experiments/``, the RL001 allowlist.  The *decisions* made
under every grid point are deterministic; only the throughput numbers
vary with the host.
"""

from __future__ import annotations

import json
import os
import random
import time
from typing import Dict, List, Optional

from repro.fleet import FleetSimulator
from repro.workloads.traces import Trace, build_serverless

__all__ = ["run_bench_fleet", "format_fleet_entry", "DEFAULT_OUTPUT", "SCHEMA"]

#: Trajectory file schema identifier.
SCHEMA = "repro/bench_fleet/v1"

#: Default trajectory file, at the repository root.
DEFAULT_OUTPUT = "BENCH_fleet.json"

#: Fleet sizes timed per cap label.
_FULL_NODES = (1, 4, 8)
_QUICK_NODES = (1, 4)

#: Cap labels as fractions of the fleet's aggregate TDP.
CAP_FRACTIONS = {"tight": 0.6, "loose": 1.2}

#: The node count whose speedup over the single-node baseline is
#: reported (and optionally asserted) per cap label.
SPEEDUP_NODES = 4


def bench_trace(seed: int = 0, *, quick: bool = False) -> Trace:
    """The bench workload: a no-variety serverless arrival trace.

    ``variety=False`` gives every session the same kernel pair, so the
    per-launch work is uniform across nodes and the grid measures shard
    scaling, not placement luck.  Sizes are chosen so decision work
    dominates worker startup and pipe overhead — roughly a thousand
    launches even in quick mode — otherwise multi-node speedups are
    startup-bound regardless of host parallelism.
    """
    sessions, invocations = (16, 20) if quick else (16, 40)
    return build_serverless(
        random.Random(f"{seed}:bench-fleet"),
        seed=seed,
        sessions=sessions,
        invocations=invocations,
        variety=False,
        name="serverless-bench",
        with_assertions=False,
    )


def _time_grid_point(
    trace: Trace, nodes: int, cap_w: float, *, epoch_launches: int
) -> Dict[str, object]:
    """One timed fleet run; the report's decisions fix the work done."""
    sim = FleetSimulator(
        trace,
        nodes=nodes,
        cap_w=cap_w,
        epoch_launches=epoch_launches,
        transport="process" if nodes > 1 else "inline",
    )
    start = time.perf_counter()
    report = sim.run()
    elapsed = time.perf_counter() - start
    total = report.aggregate_stats()
    launches = report.launches()
    return {
        "nodes": nodes,
        "cap_w": round(cap_w, 2),
        "transport": sim.transport,
        "launches": launches,
        "epochs": len(report.epochs),
        "elapsed_s": round(elapsed, 4),
        "decisions_per_s": round(launches / elapsed, 2),
        "energy_j": round(total.energy_j, 4),
        "throughput_ips": round(
            total.instructions / total.kernel_time_s
            if total.kernel_time_s > 0
            else 0.0,
            2,
        ),
        "budget_conserved": all(
            not e.budgets or sum(e.budgets.values()) <= e.cap_w * (1 + 1e-9)
            for e in report.epochs
        ),
    }


def _load_trajectory(path: str) -> List[Dict[str, object]]:
    if not os.path.exists(path):
        return []
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("schema") != SCHEMA:
        return []
    trajectory = payload.get("trajectory", [])
    return trajectory if isinstance(trajectory, list) else []


def run_bench_fleet(
    quick: bool = False,
    output: str = DEFAULT_OUTPUT,
    label: Optional[str] = None,
    seed: int = 0,
    min_speedup: Optional[float] = None,
    epoch_launches: int = 32,
) -> Dict[str, object]:
    """Run the fleet grid and append to the trajectory file.

    Args:
        quick: Smaller trace and the {1, 4}-node grid — the CI smoke
            configuration.
        output: Trajectory JSON path.
        label: Entry label (defaults to ``"quick"``/``"full"``).
        seed: Workload seed; the same seed always builds the same
            trace, so grid points are comparable across entries.
        min_speedup: When given, recorded in the entry so the
            trajectory carries the asserted bound (the CLI enforces
            it against the best per-cap 4-node speedup).
        epoch_launches: Budget-epoch length in dispatched launches.

    Returns:
        The appended trajectory entry.
    """
    from repro.hardware.apu import APUModel

    trace = bench_trace(seed, quick=quick)
    tdp_w = APUModel().tdp_w
    node_grid = _QUICK_NODES if quick else _FULL_NODES

    grid: List[Dict[str, object]] = []
    for cap_label, fraction in sorted(CAP_FRACTIONS.items()):
        for nodes in node_grid:
            point = _time_grid_point(
                trace,
                nodes,
                fraction * tdp_w * nodes,
                epoch_launches=epoch_launches,
            )
            point["cap"] = cap_label
            grid.append(point)

    speedups: Dict[str, float] = {}
    for cap_label in CAP_FRACTIONS:
        rates = {
            p["nodes"]: p["decisions_per_s"]
            for p in grid
            if p["cap"] == cap_label
        }
        if SPEEDUP_NODES in rates and 1 in rates:
            speedups[cap_label] = round(rates[SPEEDUP_NODES] / rates[1], 2)

    entry: Dict[str, object] = {
        "label": label or ("quick" if quick else "full"),
        "quick": quick,
        "seed": seed,
        "trace": {
            "name": trace.header.name,
            "sessions": len(trace.session_ids()),
            "events": len(trace.events),
        },
        "epoch_launches": epoch_launches,
        "cpu_count": os.cpu_count(),
        "grid": grid,
        "speedup_4_node": speedups,
    }
    if min_speedup is not None:
        entry["min_speedup"] = min_speedup

    trajectory = _load_trajectory(output)
    trajectory.append(entry)
    with open(output, "w", encoding="utf-8") as handle:
        json.dump({"schema": SCHEMA, "trajectory": trajectory}, handle, indent=2)
        handle.write("\n")
    return entry


def best_speedup(entry: Dict[str, object]) -> Optional[float]:
    """The entry's best per-cap 4-node speedup, or None if unmeasured."""
    speedups = entry.get("speedup_4_node")
    if not isinstance(speedups, dict) or not speedups:
        return None
    return max(speedups.values())


def format_fleet_entry(entry: Dict[str, object]) -> str:
    """Render one trajectory entry as an aligned text table."""
    trace = entry["trace"]
    assert isinstance(trace, dict)
    lines = [
        f"== bench fleet ({entry['label']}): {trace['name']}, "
        f"{trace['sessions']} sessions / {trace['events']} launches, "
        f"{entry['cpu_count']} cpu(s) ==",
        f"{'cap':6s} {'nodes':>5s} {'cap W':>8s} {'epochs':>6s} "
        f"{'decisions/s':>12s} {'energy J':>10s}",
    ]
    grid = entry["grid"]
    assert isinstance(grid, list)
    for point in grid:
        lines.append(
            f"{point['cap']:6s} {point['nodes']:>5d} {point['cap_w']:>8.1f} "
            f"{point['epochs']:>6d} {point['decisions_per_s']:>12.1f} "
            f"{point['energy_j']:>10.2f}"
        )
    speedups = entry.get("speedup_4_node")
    if isinstance(speedups, dict):
        for cap_label, value in sorted(speedups.items()):
            lines.append(
                f"{SPEEDUP_NODES}-node speedup vs single-node batched "
                f"({cap_label}): {value:.2f}x"
            )
    return "\n".join(lines)
