"""Figure 8: PPK and MPC energy savings and speedup over Turbo Core.

Both policies use the Random Forest predictor and are charged for their
optimization overheads; MPC results are steady-state (after the
profiling invocation).  Shape targets: MPC fares similarly to PPK on
the regular benchmarks and pronouncedly better on the irregular ones;
MPC's overall performance loss stays within a few percent (the adaptive
horizon bounds it near alpha = 5%), with srad the worst case.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentContext, ExperimentTable
from repro.sim.metrics import energy_savings_pct, geomean, mean, speedup

__all__ = ["fig8", "fig8_summary"]


def fig8(ctx: ExperimentContext) -> ExperimentTable:
    """Reproduce Figure 8: per-benchmark PPK and MPC vs Turbo Core."""
    table = ExperimentTable(
        experiment_id="Figure 8",
        title="PPK and MPC energy savings / speedup over AMD Turbo Core "
        "(Random Forest predictions, overheads included)",
        headers=[
            "Benchmark",
            "PPK energy savings (%)",
            "MPC energy savings (%)",
            "PPK speedup",
            "MPC speedup",
        ],
    )
    for name in ctx.benchmark_names:
        turbo = ctx.turbo(name)
        ppk = ctx.ppk(name)
        mpc = ctx.mpc(name)
        table.add_row(
            name,
            round(energy_savings_pct(ppk, turbo), 2),
            round(energy_savings_pct(mpc, turbo), 2),
            round(speedup(ppk, turbo), 3),
            round(speedup(mpc, turbo), 3),
        )
    return table


def fig8_summary(ctx: ExperimentContext) -> dict:
    """Aggregate Figure-8 numbers (the paper's 24.8% / -1.8% headline).

    Returns:
        Dict with mean energy savings (%) and geomean speedups of MPC
        and PPK over Turbo Core.
    """
    mpc_savings, ppk_savings, mpc_speed, ppk_speed = [], [], [], []
    for name in ctx.benchmark_names:
        turbo = ctx.turbo(name)
        mpc_savings.append(energy_savings_pct(ctx.mpc(name), turbo))
        ppk_savings.append(energy_savings_pct(ctx.ppk(name), turbo))
        mpc_speed.append(speedup(ctx.mpc(name), turbo))
        ppk_speed.append(speedup(ctx.ppk(name), turbo))
    return {
        "mpc_energy_savings_pct": mean(mpc_savings),
        "ppk_energy_savings_pct": mean(ppk_savings),
        "mpc_speedup": geomean(mpc_speed),
        "ppk_speedup": geomean(ppk_speed),
    }
