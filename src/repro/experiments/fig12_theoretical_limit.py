"""Figure 12: how close heuristic MPC gets to the theoretical limit.

Both schemes get perfect prediction, no overheads, and unlimited
horizons; the only differences left are MPC's greedy hill climbing and
fixed search order versus TO's globally optimal assignment.  Shape
target: MPC captures the large majority of TO's energy savings (the
paper reports 92% of the savings and 93% of the performance gain).
"""

from __future__ import annotations

from typing import Dict

from repro.experiments.common import ExperimentContext, ExperimentTable
from repro.sim.metrics import energy_savings_pct, geomean, mean, speedup

__all__ = ["fig12", "fig12_summary"]


def fig12(ctx: ExperimentContext) -> ExperimentTable:
    """Reproduce Figure 12: idealized MPC vs Theoretically Optimal."""
    table = ExperimentTable(
        experiment_id="Figure 12",
        title="Idealized MPC (perfect prediction, full horizon, no "
        "overhead) vs Theoretically Optimal, over Turbo Core",
        headers=[
            "Benchmark",
            "MPC energy savings (%)",
            "TO energy savings (%)",
            "MPC speedup",
            "TO speedup",
        ],
    )
    for name in ctx.benchmark_names:
        turbo = ctx.turbo(name)
        mpc = ctx.mpc_ideal(name)
        to = ctx.theoretically_optimal(name)
        table.add_row(
            name,
            round(energy_savings_pct(mpc, turbo), 2),
            round(energy_savings_pct(to, turbo), 2),
            round(speedup(mpc, turbo), 3),
            round(speedup(to, turbo), 3),
        )
    return table


def fig12_summary(ctx: ExperimentContext) -> Dict[str, float]:
    """The fraction of TO's gains the MPC heuristic captures."""
    mpc_savings, to_savings, mpc_speed, to_speed = [], [], [], []
    for name in ctx.benchmark_names:
        turbo = ctx.turbo(name)
        mpc_savings.append(energy_savings_pct(ctx.mpc_ideal(name), turbo))
        to_savings.append(energy_savings_pct(ctx.theoretically_optimal(name), turbo))
        mpc_speed.append(speedup(ctx.mpc_ideal(name), turbo))
        to_speed.append(speedup(ctx.theoretically_optimal(name), turbo))
    return {
        "mpc_energy_savings_pct": mean(mpc_savings),
        "to_energy_savings_pct": mean(to_savings),
        "energy_capture_ratio": mean(mpc_savings) / mean(to_savings),
        "mpc_speedup": geomean(mpc_speed),
        "to_speedup": geomean(to_speed),
    }
