"""The paper's headline numbers (abstract / Section VI-A).

* vs Turbo Core: 24.8% energy savings at 1.8% performance loss
  (overheads included).
* vs PPK: 6.6% chip-wide energy savings while improving performance by
  9.6%; 5.1% GPU energy savings.
* CPU/GPU split of the savings: 75% / 25%.
"""

from __future__ import annotations

from typing import Dict

from repro.experiments.common import ExperimentContext, ExperimentTable
from repro.experiments.fig8_mpc_vs_turbo import fig8_summary
from repro.experiments.fig9_mpc_vs_ppk import fig9_summary
from repro.experiments.fig10_gpu_energy import fig10_summary

__all__ = ["headline_numbers", "headline_table"]

#: The paper's reported values, for side-by-side reporting.
PAPER_VALUES: Dict[str, float] = {
    "mpc_vs_turbo_energy_savings_pct": 24.8,
    "mpc_vs_turbo_perf_loss_pct": 1.8,
    "mpc_vs_ppk_energy_savings_pct": 6.6,
    "mpc_vs_ppk_speedup_pct": 9.6,
    "cpu_share_of_savings_pct": 75.0,
    "gpu_share_of_savings_pct": 25.0,
}


def headline_numbers(ctx: ExperimentContext) -> Dict[str, float]:
    """Compute the reproduction's headline aggregates."""
    f8 = fig8_summary(ctx)
    f9 = fig9_summary(ctx)
    f10 = fig10_summary(ctx)
    return {
        "mpc_vs_turbo_energy_savings_pct": f8["mpc_energy_savings_pct"],
        "mpc_vs_turbo_perf_loss_pct": 100.0 * (1.0 - f8["mpc_speedup"]),
        "mpc_vs_ppk_energy_savings_pct": f9["energy_savings_pct"],
        "mpc_vs_ppk_speedup_pct": 100.0 * (f9["speedup"] - 1.0),
        "cpu_share_of_savings_pct": f10["cpu_share_of_savings_pct"],
        "gpu_share_of_savings_pct": f10["gpu_share_of_savings_pct"],
    }


def headline_table(ctx: ExperimentContext) -> ExperimentTable:
    """Paper-vs-measured table of the headline numbers."""
    measured = headline_numbers(ctx)
    table = ExperimentTable(
        experiment_id="Headline",
        title="Paper headline numbers vs this reproduction",
        headers=["Metric", "Paper", "Reproduced"],
    )
    for key, paper_value in PAPER_VALUES.items():
        table.add_row(key, paper_value, round(measured[key], 2))
    return table
