"""Figure 4: the limit study — PPK vs Theoretically Optimal.

Both schemes get *perfect* knowledge of every kernel's behaviour at
every configuration and incur no overhead; TO additionally knows the
exact future.  Shape targets: PPK matches TO on the regular benchmarks
(single repeating kernel — future knowledge is worthless) and falls
behind — in energy, performance, or both — on the irregular ones.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentContext, ExperimentTable
from repro.sim.metrics import energy_savings_pct, speedup

__all__ = ["fig4"]


def fig4(ctx: ExperimentContext) -> ExperimentTable:
    """Reproduce Figure 4: PPK / TO savings and speedup over Turbo Core."""
    table = ExperimentTable(
        experiment_id="Figure 4",
        title="Limit study with perfect prediction: energy savings and "
        "speedup over AMD Turbo Core",
        headers=[
            "Benchmark",
            "PPK energy savings (%)",
            "TO energy savings (%)",
            "PPK speedup",
            "TO speedup",
        ],
    )
    for name in ctx.benchmark_names:
        turbo = ctx.turbo(name)
        ppk = ctx.ppk_oracle(name)
        to = ctx.theoretically_optimal(name)
        table.add_row(
            name,
            round(energy_savings_pct(ppk, turbo), 2),
            round(energy_savings_pct(to, turbo), 2),
            round(speedup(ppk, turbo), 3),
            round(speedup(to, turbo), 3),
        )
    return table
