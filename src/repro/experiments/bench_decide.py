"""Microbenchmark: decisions/sec of the greedy hill-climb hot path.

``repro bench decide`` times :meth:`GreedyHillClimbOptimizer.optimize_kernel`
— the per-kernel-boundary decision the MPC manager makes at runtime —
under each predictor backend, once through the columnar
``estimate_matrix`` path and once with ``use_matrix=False`` (the scalar
``estimate``/``estimate_batch`` protocol, i.e. the pre-columnar call
shapes).  Results append to a trajectory file (``BENCH_decide.json`` by
default) so the decisions/sec history is tracked across changes to the
decision core.

Wall-clock timing is deliberate and allowed here: this module lives in
``repro/experiments/``, the RL001 allowlist.  The *decisions* being
timed are deterministic — both paths pick identical configurations —
only the throughput numbers vary with the host.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Optional, Tuple

from repro.core.optimizer import GreedyHillClimbOptimizer
from repro.core.pattern import KernelRecord
from repro.core.tracker import PerformanceTracker
from repro.hardware.apu import APUModel
from repro.hardware.config import FAILSAFE_CONFIG, ConfigSpace
from repro.ml.predictors import OraclePredictor, PerfPowerPredictor, train_predictor
from repro.workloads.counters import CounterSynthesizer
from repro.workloads.suites import benchmark

__all__ = ["run_bench_decide", "DEFAULT_OUTPUT", "SCHEMA"]

#: Trajectory file schema identifier.
SCHEMA = "repro/bench_decide/v1"

#: Default trajectory file, at the repository root.
DEFAULT_OUTPUT = "BENCH_decide.json"

#: Decision workload: one case per unique kernel of this benchmark.
DEFAULT_BENCHMARK = "kmeans"

#: Minimum timed decisions per (backend, path) measurement.
_FULL_DECISIONS = 120
_QUICK_DECISIONS = 24


def _decision_cases(
    apu: APUModel, space: ConfigSpace, benchmark_name: str
) -> Tuple[List[Tuple[KernelRecord, PerformanceTracker]], List[object]]:
    """(record, tracker) pairs for every unique kernel of a benchmark.

    Targets are set to 90% of each kernel's fail-safe throughput so the
    searches have headroom to climb — the representative decision shape,
    not the degenerate everything-infeasible one.
    """
    app = benchmark(benchmark_name)
    synthesizer = CounterSynthesizer(noise=0.0)
    fail_safe = space.clamp(FAILSAFE_CONFIG)
    cases = []
    for spec in app.unique_kernels:
        measurement = apu.execute(spec, fail_safe)
        record = KernelRecord(
            signature=(),
            counters=synthesizer.nominal(spec),
            instructions=spec.instructions,
        )
        target = 0.9 * spec.instructions / measurement.time_s
        cases.append((record, PerformanceTracker(target)))
    return cases, list(app.unique_kernels)


def _time_path(
    optimizer: GreedyHillClimbOptimizer,
    cases: List[Tuple[KernelRecord, PerformanceTracker]],
    min_decisions: int,
) -> Tuple[float, int]:
    """(decisions/sec, decisions timed) for one optimizer configuration."""
    for record, tracker in cases:  # warm predictor/table caches
        optimizer.optimize_kernel(record, tracker)
    decisions = 0
    start = time.perf_counter()
    while decisions < min_decisions:
        for record, tracker in cases:
            optimizer.optimize_kernel(record, tracker)
            decisions += 1
    elapsed = time.perf_counter() - start
    return decisions / elapsed, decisions


#: Interleaved-session counts timed by the batched backend path.
BATCH_SESSIONS = (8, 64)


def _time_batched(
    optimizer: GreedyHillClimbOptimizer,
    cases: List[Tuple[KernelRecord, PerformanceTracker]],
    sessions: int,
    min_decisions: int,
) -> Tuple[float, int]:
    """(decisions/sec, decisions timed) for batched multi-session steps.

    Models ``SessionManager.step_batch``: each step decides once for
    ``sessions`` interleaved sessions whose pending kernels cycle
    through the benchmark's unique kernels, so the batch dedups to the
    same few lattice sweeps a real multi-tenant step would.
    """
    batch = [cases[i % len(cases)] for i in range(sessions)]
    optimizer.optimize_kernel_batch(batch)  # warm predictor/table caches
    decisions = 0
    start = time.perf_counter()
    while decisions < min_decisions:
        optimizer.optimize_kernel_batch(batch)
        decisions += sessions
    elapsed = time.perf_counter() - start
    return decisions / elapsed, decisions


def _bench_health_overhead(
    rf: PerfPowerPredictor,
    sessions: int,
    min_decisions: int,
    benchmark_name: str,
) -> Dict[str, object]:
    """Health-enabled vs NOOP hot-path rates (the <=5% budget).

    Unlike the optimizer microbenchmarks above, this times the shipping
    hot path end to end: :meth:`SessionManager.step_batch` driving
    ``sessions`` MPC sessions on the batched rf backend, once under the
    NOOP instrumentation default and once with metrics, tracing, and
    the model-health monitor installed.  Each step carries the full
    per-launch runtime work (decision, APU execution, accounting), so
    the overhead percentage is what a deployment actually pays for
    observability — not the layer's cost against a bare optimizer loop.

    Host-noise discipline: the arms alternate slice by slice, each
    slice is one *whole invocation* (the per-step cost varies ~10x
    between the begin-run re-optimization phase and steady-state skip
    decisions, so phase-aligning slices gives every slice the same
    workload mix), and the leading arm flips every slice so machine
    drift and GC cadence hit both arms equally.  Both managers consume
    identical event streams and the health layer never feeds back into
    decisions, so the arms stay decision-identical (cross-checked on a
    final untimed step).
    """
    from repro.core.manager import MPCPowerManager
    from repro.obs import NOOP, make_instrumentation
    from repro.runtime.events import launch_events
    from repro.runtime.manager import SessionManager
    from repro.sim.simulator import Simulator
    from repro.sim.turbocore import TurboCorePolicy

    sim = Simulator()
    app = benchmark(benchmark_name)
    turbo = sim.run(app, TurboCorePolicy(tdp_w=sim.apu.tdp_w))
    target = turbo.instructions / turbo.kernel_time_s

    steps_per_slice = len(app.kernels)
    slices = max(2, -(-min_decisions // steps_per_slice))
    timed_steps = slices * steps_per_slice
    # One full invocation warms each arm untimed: the MPC sessions
    # profile their launch pattern there, so every timed slice covers
    # one steady-state ``mpc`` invocation with caches and ledgers hot.
    warm_steps = len(app.kernels)
    total_steps = warm_steps + timed_steps + 1  # +1: equivalence check
    invocations = -(-total_steps // len(app.kernels))
    ids = [f"s{i}" for i in range(sessions)]
    streams = {
        sid: [
            event
            for _ in range(invocations)
            for event in launch_events(app, session_id=sid)
        ]
        for sid in ids
    }
    batches = [
        [streams[sid][step] for sid in ids] for step in range(total_steps)
    ]

    obs = make_instrumentation(keep_spans=False, health=True)

    def build_arm(instrumentation: object) -> SessionManager:
        manager = SessionManager(
            apu=sim.apu, counters=sim.counters, overhead=sim.overhead,
            obs=instrumentation,
        )
        # All sessions share one predictor instance so step_batch
        # groups them into stacked whole-lattice sweeps — the batched
        # rf backend configuration.
        for sid in ids:
            manager.add_session(
                sid,
                MPCPowerManager(
                    target, rf, overhead_model=sim.overhead,
                    obs=instrumentation,
                ),
            )
        return manager

    noop_arm = build_arm(NOOP)
    health_arm = build_arm(obs)

    def run_slice(manager: SessionManager, base: int, steps: int) -> float:
        start = time.perf_counter()
        for step in range(base, base + steps):
            manager.step_batch(batches[step])
        return time.perf_counter() - start

    run_slice(noop_arm, 0, warm_steps)
    run_slice(health_arm, 0, warm_steps)
    noop_s = health_s = 0.0
    step = warm_steps
    for index in range(slices):
        if index % 2 == 0:
            noop_slice = run_slice(noop_arm, step, steps_per_slice)
            health_slice = run_slice(health_arm, step, steps_per_slice)
        else:
            health_slice = run_slice(health_arm, step, steps_per_slice)
            noop_slice = run_slice(noop_arm, step, steps_per_slice)
        noop_s += noop_slice
        health_s += health_slice
        step += steps_per_slice
    identical = [o.record for o in noop_arm.step_batch(batches[step])] == [
        o.record for o in health_arm.step_batch(batches[step])
    ]
    timed = timed_steps * sessions
    noop_rate = timed / noop_s
    health_rate = timed / health_s
    return {
        "backend": "rf",
        "sessions": sessions,
        "decisions_timed": timed,
        "decisions_identical": identical,
        "noop_decisions_per_s": round(noop_rate, 2),
        "health_decisions_per_s": round(health_rate, 2),
        "overhead_pct": round(100.0 * (1.0 - health_rate / noop_rate), 2),
    }


def _bench_backend(
    name: str,
    predictor: PerfPowerPredictor,
    space: ConfigSpace,
    cases: List[Tuple[KernelRecord, PerformanceTracker]],
    min_decisions: int,
) -> Dict[str, object]:
    """Scalar-vs-matrix-vs-batched decisions/sec for one backend."""
    matrix = GreedyHillClimbOptimizer(space, predictor, use_matrix=True)
    scalar = GreedyHillClimbOptimizer(space, predictor, use_matrix=False)
    matrix_rate, timed = _time_path(matrix, cases, min_decisions)
    scalar_rate, _ = _time_path(scalar, cases, min_decisions)
    batched: Dict[str, object] = {}
    for sessions in BATCH_SESSIONS:
        rate, _ = _time_batched(matrix, cases, sessions, min_decisions)
        batched[str(sessions)] = {
            "decisions_per_s": round(rate, 2),
            "speedup_vs_matrix": round(rate / matrix_rate, 2),
            "speedup_vs_scalar": round(rate / scalar_rate, 2),
        }
    return {
        "backend": name,
        "scalar_decisions_per_s": round(scalar_rate, 2),
        "matrix_decisions_per_s": round(matrix_rate, 2),
        "speedup": round(matrix_rate / scalar_rate, 2),
        "decisions_timed": timed,
        "batched": batched,
    }


def _load_trajectory(path: str) -> List[Dict[str, object]]:
    if not os.path.exists(path):
        return []
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("schema") != SCHEMA:
        return []
    trajectory = payload.get("trajectory", [])
    return trajectory if isinstance(trajectory, list) else []


def run_bench_decide(
    quick: bool = False,
    output: str = DEFAULT_OUTPUT,
    label: Optional[str] = None,
    benchmark_name: str = DEFAULT_BENCHMARK,
    cache_dir: Optional[str] = ".cache",
    max_health_overhead_pct: Optional[float] = None,
) -> Dict[str, object]:
    """Run the decide microbenchmark and append to the trajectory file.

    Args:
        quick: Time fewer decisions and use a small Random Forest —
            the CI smoke configuration.
        output: Trajectory JSON path.
        label: Entry label (defaults to ``"quick"``/``"full"``).
        benchmark_name: Benchmark supplying the decision workload.
        cache_dir: Cache directory for the trained forest.
        max_health_overhead_pct: When given, record the bound in the
            entry's ``health_overhead.budget_pct`` so the trajectory
            carries the asserted budget (the CLI enforces it).

    Returns:
        The appended trajectory entry.
    """
    apu = APUModel()
    space = ConfigSpace()
    cases, kernels = _decision_cases(apu, space, benchmark_name)
    min_decisions = _QUICK_DECISIONS if quick else _FULL_DECISIONS

    if quick:
        forest_params = {"n_estimators": 4, "max_depth": 10}
    else:
        forest_params = {}
    rf = train_predictor(apu=apu, cache_dir=cache_dir, **forest_params)
    oracle = OraclePredictor(apu, kernels)

    entry: Dict[str, object] = {
        "label": label or ("quick" if quick else "full"),
        "quick": quick,
        "benchmark": benchmark_name,
        "cases": len(cases),
        "backends": {
            "rf": _bench_backend("rf", rf, space, cases, min_decisions),
            "oracle": _bench_backend(
                "oracle", oracle, space, cases, min_decisions
            ),
        },
        # Model-health cost on the shipping hot path: batched rf
        # step_batch with the monitor installed vs the NOOP default.
        "health_overhead": _bench_health_overhead(
            rf, max(BATCH_SESSIONS), min_decisions, benchmark_name
        ),
    }
    if max_health_overhead_pct is not None:
        overhead = entry["health_overhead"]
        assert isinstance(overhead, dict)
        overhead["budget_pct"] = max_health_overhead_pct

    trajectory = _load_trajectory(output)
    trajectory.append(entry)
    with open(output, "w", encoding="utf-8") as handle:
        json.dump({"schema": SCHEMA, "trajectory": trajectory}, handle, indent=2)
        handle.write("\n")
    return entry


def format_entry(entry: Dict[str, object]) -> str:
    """Render one trajectory entry as an aligned text table."""
    lines = [
        f"== bench decide ({entry['label']}): {entry['benchmark']}, "
        f"{entry['cases']} kernels ==",
        f"{'backend':8s} {'scalar/s':>10s} {'matrix/s':>10s} {'speedup':>8s}",
    ]
    backends = entry["backends"]
    assert isinstance(backends, dict)
    for name, stats in backends.items():
        lines.append(
            f"{name:8s} {stats['scalar_decisions_per_s']:>10.1f} "
            f"{stats['matrix_decisions_per_s']:>10.1f} "
            f"{stats['speedup']:>7.2f}x"
        )
    for name, stats in backends.items():
        for sessions, batch in stats.get("batched", {}).items():
            lines.append(
                f"{name:8s} batched@{sessions:>2s}: "
                f"{batch['decisions_per_s']:>9.1f}/s "
                f"({batch['speedup_vs_matrix']:.2f}x vs matrix, "
                f"{batch['speedup_vs_scalar']:.2f}x vs scalar)"
            )
    overhead = entry.get("health_overhead")
    if isinstance(overhead, dict):
        budget = overhead.get("budget_pct")
        suffix = f", budget {budget:g}%" if budget is not None else ""
        lines.append(
            f"health   batched@{overhead['sessions']}: "
            f"{overhead['health_decisions_per_s']:>9.1f}/s vs "
            f"{overhead['noop_decisions_per_s']:.1f}/s NOOP "
            f"({overhead['overhead_pct']:+.2f}% overhead{suffix})"
        )
    return "\n".join(lines)
