"""Figure 7: the search-order worked example.

Reconstructs the paper's hypothetical six-kernel irregular application:
the first three launches keep the accumulated throughput above target,
the last three drag it below.  The resulting search order must be
(3, 2, 1, 6, 5, 4) in the paper's 1-based numbering, and the
optimization windows at each launch must match the worked example
(kernel 1 -> (3,2,1), kernel 2 -> (3,2), ..., kernel 4 -> (6,5,4)).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.search_order import SearchOrder, build_search_order
from repro.experiments.common import ExperimentContext, ExperimentTable

__all__ = ["example_profile", "example_search_order", "fig7"]


def example_profile() -> Tuple[List[float], List[float], float]:
    """The hypothetical profile behind the paper's Figure 7.

    Six kernels: the first three run at high throughput and keep the
    accumulated application throughput above the target; the last three
    are long, low-throughput kernels that drag it below.

    Returns:
        ``(kernel_throughputs, cumulative_throughputs, target)`` with
        all throughputs normalized to the target (=1.0).
    """
    kernel = [3.0, 2.0, 1.5, 0.3, 0.6, 0.9]
    times = [1.0, 1.0, 1.0, 8.0, 4.0, 2.0]
    cumulative = []
    insts = 0.0
    elapsed = 0.0
    for throughput, time in zip(kernel, times):
        insts += throughput * time
        elapsed += time
        cumulative.append(insts / elapsed)
    return kernel, cumulative, 1.0


def example_search_order() -> SearchOrder:
    """The search order for the Figure 7 example."""
    kernel, cumulative, target = example_profile()
    return build_search_order(kernel, cumulative, target)


def fig7(ctx: ExperimentContext = None) -> ExperimentTable:
    """Reproduce Figure 7's search order and per-kernel windows."""
    order = example_search_order()
    table = ExperimentTable(
        experiment_id="Figure 7",
        title="Search order and optimization windows of the hypothetical "
        "irregular application (1-based kernel numbers)",
        headers=["Executing kernel", "Optimization window (search order)"],
    )
    for current in range(len(order)):
        window = order.window(current)
        table.add_row(
            current + 1, "(" + ", ".join(str(p + 1) for p in window) + ")"
        )
    return table
